"""Poison-template quarantine: strikes, TTL decay, escalation."""

from __future__ import annotations

import pytest

from repro.obs import MetricsRegistry
from repro.serve import TemplateQuarantine

KEY = (("R0", "R1"), ())
OTHER = (("R2",), ())


class TestStrikes:
    def test_quarantines_on_kth_strike(self):
        q = TemplateQuarantine(strikes=3, ttl=10)
        assert not q.strike(KEY)
        assert not q.strike(KEY)
        assert not q.is_quarantined(KEY)
        assert q.strike(KEY)  # K-th strike: newly quarantined
        assert q.is_quarantined(KEY)
        assert len(q) == 1

    def test_strikes_are_per_key(self):
        q = TemplateQuarantine(strikes=2, ttl=10)
        q.strike(KEY)
        q.strike(OTHER)
        assert not q.is_quarantined(KEY)
        assert not q.is_quarantined(OTHER)
        q.strike(KEY)
        assert q.is_quarantined(KEY)
        assert not q.is_quarantined(OTHER)

    def test_strikes_while_quarantined_do_not_requarantine(self):
        q = TemplateQuarantine(strikes=1, ttl=10)
        assert q.strike(KEY)
        assert not q.strike(KEY)
        assert q.stats.quarantines == 1

    def test_disabled_never_quarantines(self):
        q = TemplateQuarantine(strikes=0)
        assert not q.enabled
        for _ in range(10):
            assert not q.strike(KEY)
        assert not q.is_quarantined(KEY)

    def test_validation(self):
        with pytest.raises(ValueError):
            TemplateQuarantine(strikes=-1)
        with pytest.raises(ValueError):
            TemplateQuarantine(ttl=0)


class TestDecay:
    def test_ttl_expires_after_n_ticks(self):
        q = TemplateQuarantine(strikes=1, ttl=3)
        q.strike(KEY)
        for _ in range(2):
            q.tick()
            assert q.is_quarantined(KEY)
        q.tick()
        assert not q.is_quarantined(KEY)
        assert q.stats.expirations == 1

    def test_expiry_resets_strike_count(self):
        q = TemplateQuarantine(strikes=2, ttl=1)
        q.strike(KEY)
        q.strike(KEY)
        q.tick()
        assert not q.is_quarantined(KEY)
        # A fresh offense needs K strikes again, not one.
        assert not q.strike(KEY)
        assert q.strike(KEY)

    def test_reoffense_doubles_ttl(self):
        q = TemplateQuarantine(strikes=1, ttl=2)
        q.strike(KEY)
        q.tick(), q.tick()
        assert not q.is_quarantined(KEY)
        q.strike(KEY)  # second offense: TTL 4
        for _ in range(3):
            q.tick()
            assert q.is_quarantined(KEY)
        q.tick()
        assert not q.is_quarantined(KEY)


class TestAccounting:
    def test_metrics_and_stats(self):
        metrics = MetricsRegistry()
        q = TemplateQuarantine(strikes=1, ttl=2, metrics=metrics)
        q.strike(KEY)
        q.served(KEY)
        q.tick(), q.tick()
        snapshot = metrics.snapshot()
        assert snapshot["quarantine.strikes"] == 1
        assert snapshot["serve.quarantined"] == 1
        assert snapshot["quarantine.served"] == 1
        assert snapshot["quarantine.expirations"] == 1
        assert snapshot["quarantine.active"] == 0
        stats = q.as_dict()
        assert stats["quarantines"] == 1
        assert stats["active"] == 0
