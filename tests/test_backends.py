"""Backend tests: golden SQL emission, differential oracle agreement,
edge-case semantics, and the unsupported-plan contract.

The oracle lineup (iterator ≡ vectorized ≡ pyloop ≡ sqlite) is the
strongest check in this file: SQLite is an engine we did not write, so
agreement validates both the plan and the lowering.  Golden files under
``tests/fixtures/sql/`` pin the emitted SQL byte-for-byte (the emitter
is deterministic by construction); regenerate with
``REGEN_SQL_GOLDEN=1 pytest tests/test_backends.py``.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.__main__ import main
from repro.backends import (
    Backend,
    DifferentialOracle,
    SqlBackend,
    backend_names,
    get_backend,
    normalize_rows,
)
from repro.catalog import AccessPath, Catalog, TableDef
from repro.catalog.schema import ColumnDef
from repro.config import OptimizerConfig
from repro.cost.propfuncs import PlanFactory
from repro.errors import BackendError, UnsupportedPlanError
from repro.optimizer import StarburstOptimizer
from repro.plans.operators import STORE
from repro.query.expressions import ColumnRef
from repro.query.parser import parse_predicate, parse_query
from repro.stars.builtin_rules import extended_rules
from repro.storage import Database
from repro.workloads import chain_workload, clique_workload, star_workload
from repro.workloads.paper import figure1_query, paper_catalog, paper_database

FIXTURES = Path(__file__).parent / "fixtures" / "sql"
ORACLE = DifferentialOracle()


@pytest.fixture(scope="module")
def two_index_paper():
    """The paper catalog with a second EMP index (on SALARY), so the
    index AND-ing/OR-ing strategies have two columns to play with."""
    cat = paper_catalog()
    cat.add_index(AccessPath("EMP_SALARY", "EMP", ("SALARY",)))
    db = paper_database(cat)
    return cat, db


def distinct_plans(result, limit=None):
    """The chosen plan plus SAP alternatives, deduplicated by digest."""
    plans, seen = [], set()
    for plan in (result.best_plan, *result.alternatives):
        plan = getattr(plan, "plan", plan)
        if plan.digest not in seen:
            seen.add(plan.digest)
            plans.append(plan)
        if limit is not None and len(plans) >= limit:
            break
    return plans


def assert_plans_agree(catalog, database, query, rules=None, config=None, limit=None):
    optimizer = StarburstOptimizer(catalog, rules=rules, config=config)
    result = optimizer.optimize(query)
    plans = distinct_plans(result, limit)
    assert plans
    for plan in plans:
        report = ORACLE.check(result.query, plan, database)
        assert report.agreed, report.mismatch_summary()
    return result


# ---------------------------------------------------------------------------
# Golden SQL emission
# ---------------------------------------------------------------------------

GOLDEN_QUERIES = {
    "figure1_local.sql": (
        "paper",
        None,
    ),
    "figure1_distributed.sql": (
        "paper-distributed",
        None,
    ),
    "order_by.sql": (
        "paper",
        "SELECT NAME, MGR FROM DEPT, EMP WHERE DEPT.DNO = EMP.DNO "
        "AND MGR = 'Haas' ORDER BY NAME DESC",
    ),
    "arith_null_guard.sql": (
        "paper",
        "SELECT ENO FROM EMP WHERE NOT (SALARY % 7 = 3) AND SALARY / 2 < 50000",
    ),
}


class TestGoldenSql:
    @pytest.mark.parametrize("fixture", sorted(GOLDEN_QUERIES))
    def test_emission_matches_golden(self, fixture, paper_db, paper_db_distributed):
        workload, sql = GOLDEN_QUERIES[fixture]
        cat, _db = paper_db if workload == "paper" else paper_db_distributed
        query = figure1_query(cat) if sql is None else parse_query(sql, cat)
        result = StarburstOptimizer(cat).optimize(query)
        compiled = SqlBackend().compile_plan(result.query, result.best_plan, cat)
        path = FIXTURES / fixture
        if os.environ.get("REGEN_SQL_GOLDEN"):
            path.write_text(compiled.text)
        assert path.exists(), f"golden file {path} missing; run with REGEN_SQL_GOLDEN=1"
        assert compiled.text == path.read_text(), (
            f"emitted SQL drifted from {path.name}; if the change is "
            "intentional, regenerate with REGEN_SQL_GOLDEN=1"
        )

    def test_emission_is_deterministic(self, paper_db):
        cat, _db = paper_db
        query = figure1_query(cat)
        result = StarburstOptimizer(cat).optimize(query)
        first = SqlBackend().compile_plan(result.query, result.best_plan, cat)
        second = SqlBackend().compile_plan(result.query, result.best_plan, cat)
        assert first.text == second.text

    def test_header_carries_digest_and_notes(self, paper_db):
        cat, _db = paper_db
        query = figure1_query(cat)
        result = StarburstOptimizer(cat).optimize(query)
        compiled = SqlBackend().compile_plan(result.query, result.best_plan, cat)
        assert f"-- plan digest: {result.best_plan.digest}" in compiled.text
        for note in compiled.notes:
            assert f"-- note: {note}" in compiled.text


# ---------------------------------------------------------------------------
# Differential agreement across workloads and rule strategies
# ---------------------------------------------------------------------------


class TestOracleAgreement:
    def test_figure1_all_alternatives(self, paper_db):
        cat, db = paper_db
        assert_plans_agree(cat, db, figure1_query(cat))

    def test_figure1_distributed_all_alternatives(self, paper_db_distributed):
        cat, db = paper_db_distributed
        assert_plans_agree(cat, db, figure1_query(cat))

    def test_unpruned_alternatives(self, paper_db):
        cat, db = paper_db
        assert_plans_agree(
            cat, db, figure1_query(cat),
            config=OptimizerConfig(prune=False), limit=24,
        )

    @pytest.mark.parametrize("maker,n", [
        (chain_workload, 2), (star_workload, 3), (clique_workload, 3),
    ])
    def test_synthetic_workloads(self, maker, n):
        wl = maker(n)
        assert_plans_agree(wl.catalog, wl.database, wl.query, limit=16)

    def test_or_index_plans(self, two_index_paper):
        """Index OR-ing: UNION of TID streams deduplicated before GET."""
        cat, db = two_index_paper
        query = parse_query(
            "SELECT NAME FROM EMP WHERE EMP.DNO = 3 OR EMP.SALARY < 40000", cat)
        result = assert_plans_agree(
            cat, db, query, rules=extended_rules(or_index=True),
            config=OptimizerConfig(prune=False), limit=24,
        )
        ops = {n.op for p in distinct_plans(result, 24) for n in p.nodes()}
        assert {"UNION", "DEDUP"} <= ops

    def test_and_index_plans(self, two_index_paper):
        """Index AND-ing: INTERSECT of two TID-only index probes."""
        cat, db = two_index_paper
        query = parse_query(
            "SELECT NAME FROM EMP WHERE EMP.DNO = 3 AND EMP.SALARY < 60000", cat)
        result = assert_plans_agree(
            cat, db, query, rules=extended_rules(and_index=True),
            config=OptimizerConfig(prune=False), limit=24,
        )
        ops = {n.op for p in distinct_plans(result, 24) for n in p.nodes()}
        assert "INTERSECT" in ops

    def test_semijoin_plans(self, paper_db_distributed):
        """Semijoin filtration: SJ + PROJECT shipping only join columns."""
        cat, db = paper_db_distributed
        result = assert_plans_agree(
            cat, db, figure1_query(cat), rules=extended_rules(semijoin=True),
            config=OptimizerConfig(prune=False), limit=32,
        )
        flavors = {n.flavor for p in distinct_plans(result, 32) for n in p.nodes()}
        assert "SJ" in flavors


# ---------------------------------------------------------------------------
# NULL, empty-table, and duplicate-row semantics
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def null_db():
    """Tiny catalog with nullable columns, an empty table, and exact
    duplicate rows — the classic lowering traps."""
    cat = Catalog(query_site="local")
    cat.add_table(TableDef("T", (
        ColumnDef("K"),                        # not nullable: indexable
        ColumnDef("A", nullable=True),
        ColumnDef("B"),                        # not nullable: arithmetic-safe
        ColumnDef("S", "str", nullable=True),
    )))
    cat.add_table(TableDef("E", (ColumnDef("X"),)))
    cat.add_index(AccessPath("T_K", "T", ("K",)))
    db = Database(cat)
    db.create_storage("T")
    db.create_storage("E")
    rows = [
        {"K": 0, "A": 1, "B": -7, "S": "x"},
        {"K": 0, "A": 1, "B": -7, "S": "x"},   # exact duplicate
        {"K": 1, "A": None, "B": 3, "S": None},
        {"K": 2, "A": 4, "B": -8, "S": "y"},
        {"K": 2, "A": None, "B": -9, "S": None},
        {"K": 3, "A": -2, "B": 5, "S": "z"},
    ]
    db.load("T", rows)
    db.analyze_all()
    return cat, db


class TestEdgeSemantics:
    def test_not_over_null_comparison(self, null_db):
        """The engine is two-valued: A < 5 is False when A is NULL, so
        NOT (A < 5) is *True* for NULL rows.  Three-valued SQL would
        drop them — the guarded emission must not."""
        cat, db = null_db
        query = parse_query("SELECT A, B FROM T WHERE NOT (A < 5)", cat)
        assert_plans_agree(cat, db, query)

    def test_null_never_equals_null(self, null_db):
        cat, db = null_db
        query = parse_query("SELECT A FROM T WHERE A = A", cat)
        assert_plans_agree(cat, db, query)

    def test_python_modulo_and_division(self, null_db):
        """Negative operands: Python's divisor-sign %, true division."""
        cat, db = null_db
        query = parse_query("SELECT K, B FROM T WHERE B % 3 = 2 OR B / 2 < -3", cat)
        assert_plans_agree(cat, db, query)

    def test_null_arithmetic_raises_in_every_python_backend(self, null_db):
        """Arithmetic over NULL is an *error* in the engine (not a NULL
        result); the three Python backends must agree on raising.  SQL
        would yield NULL instead, so such queries sit outside the
        oracle's comparable set — a documented semantic boundary."""
        cat, db = null_db
        query = parse_query("SELECT K FROM T WHERE A / 2 < 1", cat)
        result = StarburstOptimizer(cat).optimize(query)
        report = ORACLE.check(result.query, result.best_plan, db)
        by_name = {o.backend: o for o in report.outcomes}
        for name in ("iterator", "vectorized", "pyloop"):
            assert by_name[name].error is not None

    def test_duplicates_preserved(self, null_db):
        cat, db = null_db
        query = parse_query("SELECT A, S FROM T WHERE A = 1", cat)
        result = assert_plans_agree(cat, db, query)
        report = ORACLE.check(result.query, result.best_plan, db)
        counts = {o.backend: o.row_count for o in report.outcomes}
        assert counts["sqlite"] == 2  # both duplicate rows survive

    def test_index_probe_fetches_nulls(self, null_db):
        """Index on K, NULLs only in the fetched (GET) columns."""
        cat, db = null_db
        query = parse_query("SELECT A, S FROM T WHERE K = 2", cat)
        assert_plans_agree(cat, db, query, config=OptimizerConfig(prune=False))

    def test_empty_table(self, null_db):
        cat, db = null_db
        query = parse_query("SELECT X FROM E WHERE X = 1", cat)
        result = assert_plans_agree(cat, db, query)
        report = ORACLE.check(result.query, result.best_plan, db)
        assert all(o.row_count == 0 for o in report.outcomes if o.comparable)

    def test_join_with_empty_side(self, null_db):
        cat, db = null_db
        query = parse_query("SELECT A, X FROM T, E WHERE T.A = E.X", cat)
        assert_plans_agree(cat, db, query)

    def test_order_by_null_placement(self, null_db):
        """Engine sort key is (v is None, v): NULLs last ascending,
        first descending — must survive the ORDER BY lowering."""
        cat, db = null_db
        for direction in ("", " DESC"):
            query = parse_query(f"SELECT A FROM T ORDER BY A{direction}", cat)
            assert_plans_agree(cat, db, query)

    def test_filter_lowering(self, null_db):
        """FILTER never appears in optimizer output for these queries, so
        exercise its lowering on a hand-built plan."""
        cat, db = null_db
        factory = PlanFactory(cat)
        query = parse_query("SELECT A, B FROM T WHERE NOT (B < 4)", cat)
        pred = parse_predicate("NOT (T.B < 4)", cat, ("T",))
        cols = frozenset(ColumnRef("T", c) for c in ("A", "B"))
        plan = factory.filter(factory.access_base("T", cols, ()), {pred})
        report = ORACLE.check(query, plan, db)
        assert report.agreed, report.mismatch_summary()


# ---------------------------------------------------------------------------
# Unsupported plans: clean refusal + honest fallback
# ---------------------------------------------------------------------------


class TestUnsupported:
    def _store_plan(self, cat, db):
        result = StarburstOptimizer(cat).optimize(figure1_query(cat))
        for plan in distinct_plans(result):
            if any(n.op == STORE for n in plan.nodes()):
                return result.query, plan
        pytest.skip("no STORE plan in the SAP")

    def test_pyloop_declares_store_unsupported(self, paper_db_distributed):
        cat, db = paper_db_distributed
        query, plan = self._store_plan(cat, db)
        backend = get_backend("pyloop")
        assert backend.supports(query, plan) is False
        with pytest.raises(UnsupportedPlanError) as err:
            backend.compile_plan(query, plan, cat)
        assert err.value.op is not None

    def test_pyloop_fallback_matches_vectorized(self, paper_db_distributed):
        cat, db = paper_db_distributed
        query, plan = self._store_plan(cat, db)
        rows = get_backend("pyloop").execute(query, plan, db)
        expected = get_backend("vectorized").execute(query, plan, db)
        assert normalize_rows(rows) == normalize_rows(expected)

    def test_oracle_flags_fallback(self, paper_db_distributed):
        cat, db = paper_db_distributed
        query, plan = self._store_plan(cat, db)
        report = ORACLE.check(query, plan, db)
        assert report.agreed
        assert "pyloop" in report.fallbacks

    def test_sql_supports_store_plans(self, paper_db_distributed):
        """STORE is inside the SQL subset (it becomes a CTE)."""
        cat, db = paper_db_distributed
        query, plan = self._store_plan(cat, db)
        assert get_backend("sql").supports(query, plan)


# ---------------------------------------------------------------------------
# Protocol, registry, normalization
# ---------------------------------------------------------------------------


class TestProtocol:
    def test_registry_names(self):
        assert {"iterator", "vectorized", "sql", "sqlite", "pyloop"} <= set(
            backend_names()
        )

    def test_instances_cached_and_conform(self):
        for name in backend_names():
            backend = get_backend(name)
            assert backend is get_backend(name)
            assert isinstance(backend, Backend)
            assert backend.name == name

    def test_unknown_backend_rejected(self):
        with pytest.raises(BackendError, match="registered"):
            get_backend("cobol")

    def test_normalize_folds_numeric_types(self):
        assert normalize_rows([(1, True)]) == normalize_rows([(1.0, 1)])
        assert normalize_rows([(1,), (1,)]) != normalize_rows([(1,)])  # multiset
        assert normalize_rows([(None,), (0,)]) == normalize_rows([(0,), (None,)])


# ---------------------------------------------------------------------------
# CLI faces
# ---------------------------------------------------------------------------


class TestCli:
    def test_compile_plan_sql(self, capsys):
        assert main(["compile-plan"]) == 0
        out = capsys.readouterr().out
        assert "-- repro sql backend" in out
        assert "SELECT" in out

    def test_compile_plan_pyloop_out(self, tmp_path, capsys):
        target = tmp_path / "plan.py"
        assert main(["compile-plan", "--backend", "pyloop",
                     "--out", str(target)]) == 0
        assert "def run(tables):" in target.read_text()

    def test_diff_default_lineup(self, capsys):
        assert main(["diff"]) == 0
        out = capsys.readouterr().out
        assert "AGREE" in out
        assert "0 disagreement(s)" in out

    def test_diff_single_backend(self, capsys):
        assert main(["diff", "--backend", "sqlite"]) == 0
        out = capsys.readouterr().out
        assert "iterator" in out and "sqlite" in out

    def test_diff_alternatives(self, capsys):
        assert main(["diff", "--alternatives", "3",
                     "--workload", "paper-distributed"]) == 0


# ---------------------------------------------------------------------------
# Randomized differential runs
# ---------------------------------------------------------------------------

_MGR = st.sampled_from(["Haas", "Mohan", "Lindsay", "Nobody"])
_DNO = st.integers(min_value=-5, max_value=60)
_SAL = st.integers(min_value=20_000, max_value=160_000)


@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(mgr=_MGR, dno=_DNO, low=_SAL, high=_SAL)
def test_random_predicates_all_backends(paper_db, mgr, dno, low, high):
    cat, db = paper_db
    low, high = min(low, high), max(low, high)
    query = parse_query(
        "SELECT NAME, MGR FROM DEPT, EMP WHERE DEPT.DNO = EMP.DNO "
        f"AND (MGR = '{mgr}' OR DEPT.DNO = {dno}) "
        f"AND SALARY BETWEEN {low} AND {high}",
        cat,
    )
    result = StarburstOptimizer(cat).optimize(query)
    for plan in distinct_plans(result, limit=4):
        report = ORACLE.check(result.query, plan, db)
        assert report.agreed, report.mismatch_summary()


@settings(
    max_examples=6,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(
    maker=st.sampled_from([chain_workload, star_workload, clique_workload]),
    n=st.integers(min_value=2, max_value=3),
    seed=st.integers(min_value=0, max_value=4),
    sites=st.integers(min_value=1, max_value=2),
)
def test_random_workloads_all_backends(maker, n, seed, sites):
    wl = maker(n, rows=60, seed=seed, n_sites=sites)
    result = StarburstOptimizer(wl.catalog).optimize(wl.query)
    for plan in distinct_plans(result, limit=3):
        report = ORACLE.check(result.query, plan, wl.database)
        assert report.agreed, report.mismatch_summary()
