"""Warm-restart snapshots: round-trips, corruption fallback, golden file.

The golden fixture (``tests/fixtures/snapshot_golden.jsonl``) pins the
on-disk schema byte-for-byte after normalization — timestamps, the
checksum, and the pickle blobs (pickle bytes are not stable across
Python versions) are replaced by fixed placeholders; everything
structural must match exactly.  Regenerate after an *intentional* format
change (bump ``SNAPSHOT_VERSION``!) with::

    PYTHONPATH=src python tests/test_snapshot.py --regenerate
"""

from __future__ import annotations

import hashlib
import json
import pathlib

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.query.template import canonical_key
from repro.robust.feedback import FeedbackCache
from repro.serve import (
    OptimizerService,
    Request,
    ServiceConfig,
    SnapshotError,
    load_snapshot,
    restore_snapshot,
    save_snapshot,
)
from repro.serve.cache import PlanTemplateCache
from repro.serve.snapshot import (
    SNAPSHOT_VERSION,
    inspect_snapshot,
    normalize_snapshot_text,
    snapshot_text,
)
from repro.workloads import chain_workload

SQL = "SELECT R0.ID, R2.ID FROM R0, R1, R2 WHERE R0.ID = R1.FK AND R1.ID = R2.FK"
SQL_B = "SELECT R0.ID FROM R0, R1 WHERE R0.ID = R1.FK AND R0.VAL < 20"

GOLDEN = pathlib.Path(__file__).parent / "fixtures" / "snapshot_golden.jsonl"


@pytest.fixture(scope="module")
def workload():
    return chain_workload(3, rows=40)


@pytest.fixture(scope="module")
def warm_service(workload):
    """A service with a warmed cache and one feedback observation."""
    service = OptimizerService(
        workload.catalog, service=ServiceConfig(workers=1, queue_limit=8)
    )
    service.serve_all([Request(SQL), Request(SQL_B)])
    service.feedback.record(["R0"], [], 123.0)
    return service


def _rebuild_checksum(text: str) -> str:
    """Re-sign tampered payload lines so only the tamper is detected."""
    lines = text.splitlines()
    header = json.loads(lines[0])
    digest = hashlib.sha256()
    for line in lines[1:]:
        digest.update(line.encode("utf-8"))
        digest.update(b"\n")
    header["checksum"] = digest.hexdigest()
    header["templates"] = sum(
        1 for line in lines[1:] if '"kind":"template"' in line
    )
    header["feedback"] = sum(
        1 for line in lines[1:] if '"kind":"feedback"' in line
    )
    lines[0] = json.dumps(header, sort_keys=True, separators=(",", ":"))
    return "\n".join(lines) + "\n"


class TestRoundTrip:
    def test_template_entries_preserved(self, warm_service, tmp_path):
        path = str(tmp_path / "snap.jsonl")
        save_snapshot(path, warm_service.cache, warm_service.feedback)
        snapshot = load_snapshot(path)
        originals = warm_service.cache.entries()
        assert len(snapshot.templates) == len(originals) == 2
        for restored, original in zip(snapshot.templates, originals):
            assert restored.key == original.key
            assert restored.plan.digest == original.plan.digest
            assert restored.best_cost == original.best_cost
            assert restored.estimated_card == original.estimated_card
            assert restored.band_center == original.band_center
            assert restored.exact_key == original.exact_key
            assert restored.tier == original.tier
            assert restored.open == original.open
        assert snapshot.feedback == warm_service.feedback.entries()

    def test_restored_service_serves_cache_hits(
        self, workload, warm_service, tmp_path
    ):
        path = str(tmp_path / "snap.jsonl")
        save_snapshot(path, warm_service.cache, warm_service.feedback)
        restarted = OptimizerService(
            workload.catalog,
            service=ServiceConfig(
                workers=1, queue_limit=8, snapshot_path=path
            ),
        )
        assert restarted.snapshot_loaded
        assert restarted.templates_restored == 2
        responses = restarted.serve_all([Request(SQL), Request(SQL_B)])
        assert [r.tier for r in responses] == ["cached", "cached"]

    def test_restore_respects_capacity(self, workload, warm_service, tmp_path):
        path = str(tmp_path / "snap.jsonl")
        save_snapshot(path, warm_service.cache, None)
        snapshot = load_snapshot(path)
        small = PlanTemplateCache(workload.catalog, capacity=1)
        restored = restore_snapshot(snapshot, small, None)
        assert restored == (2, 0)
        assert len(small) == 1  # LRU evicted down to capacity

    @settings(max_examples=25, deadline=None)
    @given(
        observations=st.dictionaries(
            st.text(
                alphabet="ABCDEFGHIJ", min_size=1, max_size=3
            ),
            st.floats(
                min_value=0.0, max_value=1e12,
                allow_nan=False, allow_infinity=False,
            ),
            max_size=8,
        )
    )
    def test_feedback_round_trip_property(self, observations):
        import tempfile

        feedback = FeedbackCache()
        for table, value in observations.items():
            feedback.record([table], [], value)
        with tempfile.TemporaryDirectory() as directory:
            path = str(pathlib.Path(directory) / "feedback.jsonl")
            save_snapshot(path, None, feedback)
            snapshot = load_snapshot(path)
        expected = {
            canonical_key([table], []): float(value)
            for table, value in observations.items()
        }
        assert snapshot.feedback == expected
        target = FeedbackCache()
        restore_snapshot(snapshot, None, target)
        assert target.entries() == expected

    def test_inspect_summarizes(self, warm_service, tmp_path):
        path = str(tmp_path / "snap.jsonl")
        save_snapshot(path, warm_service.cache, warm_service.feedback)
        info = inspect_snapshot(path)
        assert info["version"] == SNAPSHOT_VERSION
        assert info["templates"] == 2
        assert info["feedback"] == 1
        assert info["tiers"] == {"full": 2}


class TestCorruption:
    @pytest.fixture()
    def snapshot_file(self, warm_service, tmp_path):
        path = tmp_path / "snap.jsonl"
        save_snapshot(str(path), warm_service.cache, warm_service.feedback)
        return path

    def _expect_error(self, path, match):
        with pytest.raises(SnapshotError, match=match):
            load_snapshot(str(path))

    def test_missing_file(self, tmp_path):
        self._expect_error(tmp_path / "nope.jsonl", "unreadable")

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        self._expect_error(path, "empty")

    def test_garbage_header(self, tmp_path):
        path = tmp_path / "garbage.jsonl"
        path.write_text("not json at all\n")
        self._expect_error(path, "unparseable header")

    def test_wrong_type_tag(self, snapshot_file):
        text = snapshot_file.read_text().replace(
            '"type":"repro_snapshot"', '"type":"other_thing"', 1
        )
        snapshot_file.write_text(text)
        self._expect_error(snapshot_file, "bad type tag")

    def test_version_skew(self, snapshot_file):
        text = snapshot_file.read_text().replace(
            f'"version":{SNAPSHOT_VERSION}', '"version":999', 1
        )
        snapshot_file.write_text(text)
        self._expect_error(snapshot_file, "version")

    def test_truncated_payload(self, snapshot_file):
        lines = snapshot_file.read_text().splitlines()
        snapshot_file.write_text("\n".join(lines[:-1]) + "\n")
        self._expect_error(snapshot_file, "truncated")

    def test_checksum_mismatch(self, snapshot_file):
        text = snapshot_file.read_text().replace(
            '"tier":"full"', '"tier":"full"' + " ", 1
        )
        snapshot_file.write_text(text)
        self._expect_error(snapshot_file, "checksum mismatch")

    def test_undecodable_blob(self, snapshot_file):
        lines = snapshot_file.read_text().splitlines()
        entry = json.loads(lines[1])
        assert entry["kind"] == "template"
        entry["plan"] = "!!!not-base64-pickle!!!"
        lines[1] = json.dumps(entry, sort_keys=True, separators=(",", ":"))
        # Re-sign so the tampered blob is what the loader trips on.
        snapshot_file.write_text(
            _rebuild_checksum("\n".join(lines) + "\n")
        )
        self._expect_error(snapshot_file, "blob")

    def test_service_cold_starts_on_corrupt_snapshot(
        self, workload, snapshot_file
    ):
        snapshot_file.write_text("garbage\n")
        service = OptimizerService(
            workload.catalog,
            service=ServiceConfig(
                workers=1, queue_limit=8, snapshot_path=str(snapshot_file)
            ),
        )
        assert not service.snapshot_loaded
        assert service.snapshot_error is not None
        assert len(service.cache) == 0
        [response] = service.serve_all([Request(SQL)])
        assert response.ok  # cold but alive


class TestGolden:
    def test_normalized_snapshot_matches_golden(self, warm_service):
        text = normalize_snapshot_text(
            snapshot_text(warm_service.cache, warm_service.feedback)
        )
        assert GOLDEN.exists(), (
            "golden fixture missing — regenerate with "
            "`PYTHONPATH=src python tests/test_snapshot.py --regenerate`"
        )
        assert text == GOLDEN.read_text()

    def test_normalization_is_idempotent_and_time_free(self, warm_service):
        first = normalize_snapshot_text(
            snapshot_text(warm_service.cache, warm_service.feedback,
                          created=1000.0)
        )
        second = normalize_snapshot_text(
            snapshot_text(warm_service.cache, warm_service.feedback,
                          created=2000.0)
        )
        assert first == second


def _regenerate() -> None:
    workload = chain_workload(3, rows=40)
    service = OptimizerService(
        workload.catalog, service=ServiceConfig(workers=1, queue_limit=8)
    )
    service.serve_all([Request(SQL), Request(SQL_B)])
    service.feedback.record(["R0"], [], 123.0)
    GOLDEN.parent.mkdir(parents=True, exist_ok=True)
    GOLDEN.write_text(normalize_snapshot_text(
        snapshot_text(service.cache, service.feedback)
    ))
    print(f"wrote {GOLDEN}")


if __name__ == "__main__":
    import sys

    if "--regenerate" in sys.argv:
        _regenerate()
    else:
        sys.exit(pytest.main([__file__, "-q"]))
