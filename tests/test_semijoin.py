"""Tests for the semijoin filtration strategy (the paper's omitted
"filtration methods such as semi-joins and Bloom-joins" [BERN 81]),
shipped as optional rule data on top of a PROJECT LOLEPOP and a hash
semijoin (SJ) flavor of JOIN."""

import pytest

from repro.catalog import Catalog, ColumnStats, TableDef, TableStats
from repro.catalog.catalog import make_columns
from repro.cost.propfuncs import PlanFactory
from repro.errors import ReproError
from repro.executor import QueryExecutor, naive_evaluate
from repro.optimizer import StarburstOptimizer
from repro.plans.operators import JOIN, PROJECT, SHIP
from repro.query.expressions import ColumnRef
from repro.query.parser import parse_predicate, parse_query
from repro.stars.builtin_rules import extended_rules
from repro.storage import Database
from repro.workloads.paper import figure1_query, paper_catalog, paper_database

L_K = ColumnRef("L", "K")
L_V = ColumnRef("L", "V")
R_K = ColumnRef("R", "K")
R_W = ColumnRef("R", "W")


def semijoin_plans(plans):
    return [
        p
        for p in plans
        if any(n.op == JOIN and n.flavor == "SJ" for n in p.nodes())
    ]


@pytest.fixture()
def local_env():
    cat = Catalog()
    cat.add_table(TableDef("L", make_columns("K", "V")))
    cat.add_table(TableDef("R", make_columns("K", "W")))
    db = Database(cat)
    db.create_storage("L")
    db.create_storage("R")
    db.load("L", [(k, k * 10) for k in range(8)])
    db.load("R", [(k % 4, k) for k in range(12)])
    db.analyze_all()
    return cat, db


class TestSemijoinOperator:
    def test_emits_each_match_once(self, local_env):
        cat, db = local_env
        factory = PlanFactory(cat)
        pred = parse_predicate("L.K = R.K", cat, ("L", "R"))
        # Semijoin R (3 rows per key 0..3) by L's keys 0..7.
        outer = factory.access_base("R", {R_K, R_W}, set())
        inner = factory.access_base("L", {L_K}, set())
        plan = factory.join("SJ", outer, inner, {pred})
        rows, _ = QueryExecutor(db).run_plan(plan)
        # Every R row has a matching L key, each emitted exactly once.
        assert len(rows) == 12

    def test_filters_unmatched(self, local_env):
        cat, db = local_env
        factory = PlanFactory(cat)
        pred = parse_predicate("L.K = R.K", cat, ("L", "R"))
        # Semijoin L (keys 0..7) by R's keys 0..3.
        outer = factory.access_base("L", {L_K, L_V}, set())
        inner = factory.access_base("R", {R_K}, set())
        plan = factory.join("SJ", outer, inner, {pred})
        rows, _ = QueryExecutor(db).run_plan(plan)
        assert sorted(row[L_K] for row in rows) == [0, 1, 2, 3]

    def test_properties_stay_outer(self, local_env):
        cat, _ = local_env
        factory = PlanFactory(cat)
        pred = parse_predicate("L.K = R.K", cat, ("L", "R"))
        outer = factory.access_base("L", {L_K, L_V}, set())
        inner = factory.access_base("R", {R_K}, set())
        plan = factory.join("SJ", outer, inner, {pred})
        assert plan.props.tables == {"L"}
        assert plan.props.cols == {L_K, L_V}
        assert plan.props.card <= outer.props.card + 1e-9

    def test_without_hashable_pred_raises_at_runtime(self, local_env):
        cat, db = local_env
        factory = PlanFactory(cat)
        pred = parse_predicate("L.K < R.K", cat, ("L", "R"))
        plan = factory.join(
            "SJ",
            factory.access_base("L", {L_K}, set()),
            factory.access_base("R", {R_K}, set()),
            {pred},
        )
        from repro.errors import ExecutionError

        with pytest.raises(ExecutionError, match="hashable"):
            QueryExecutor(db).run_plan(plan)


class TestProjectOperator:
    def test_narrows_columns(self, local_env):
        cat, db = local_env
        factory = PlanFactory(cat)
        scan = factory.access_base("L", {L_K, L_V}, set())
        plan = factory.project(scan, {L_K})
        rows, _ = QueryExecutor(db).run_plan(plan)
        assert all(set(row) == {L_K} for row in rows)
        assert plan.props.cols == {L_K}

    def test_requires_subset(self, local_env):
        cat, _ = local_env
        factory = PlanFactory(cat)
        scan = factory.access_base("L", {L_K}, set())
        with pytest.raises(ReproError, match="not in the stream"):
            factory.project(scan, {L_V})

    def test_order_truncated_at_dropped_column(self, local_env):
        cat, _ = local_env
        factory = PlanFactory(cat)
        scan = factory.sort(factory.access_base("L", {L_K, L_V}, set()), (L_V, L_K))
        plan = factory.project(scan, {L_K})
        assert plan.props.order == ()  # leading order column was dropped


class TestSemijoinRules:
    @pytest.fixture()
    def distributed(self):
        cat = paper_catalog(distributed=True, dept_rows=40, emp_rows=1200)
        db = paper_database(cat)
        return cat, db

    def test_generated_for_remote_inner(self, distributed):
        cat, db = distributed
        result = StarburstOptimizer(
            cat, rules=extended_rules(semijoin=True)
        ).optimize(figure1_query(cat))
        plans = semijoin_plans(result.engine.plan_table.all_plans())
        assert plans

    def test_shape_matches_bernstein_pattern(self, distributed):
        """project → ship → semijoin at home → ship survivors → join."""
        cat, db = distributed
        result = StarburstOptimizer(
            cat, rules=extended_rules(semijoin=True)
        ).optimize(figure1_query(cat))
        plan = semijoin_plans(result.engine.plan_table.all_plans())[0]
        sj = next(n for n in plan.nodes() if n.flavor == "SJ")
        # The filter source is a shipped projection.
        filter_source = sj.inputs[1]
        ops = [n.op for n in filter_source.nodes()]
        assert ops[0] == SHIP
        assert PROJECT in ops
        # The semijoin happens at the inner's home site.
        assert sj.props.site == cat.table("EMP").site

    def test_not_generated_for_local_query(self):
        cat = paper_catalog(distributed=False)
        paper_database(cat)
        result = StarburstOptimizer(
            cat, rules=extended_rules(semijoin=True)
        ).optimize(figure1_query(cat))
        assert not semijoin_plans(result.engine.plan_table.all_plans())

    def test_answers_unchanged(self, distributed):
        cat, db = distributed
        query = figure1_query(cat)
        result = StarburstOptimizer(
            cat, rules=extended_rules(semijoin=True)
        ).optimize(query)
        executor = QueryExecutor(db)
        reference = naive_evaluate(query, db).as_multiset()
        for plan in result.alternatives:
            assert executor.run(query, plan).as_multiset() == reference

    def test_wins_when_join_is_selective_and_inner_remote(self):
        """A big remote inner with few matching rows: shipping the
        semijoin-reduced inner beats shipping it whole."""
        cat = Catalog(query_site="HQ")
        cat.add_site("FAR")
        cat.add_table(
            TableDef("O", make_columns("K", "V"), site="HQ"), TableStats(card=50)
        )
        cat.add_table(
            TableDef("I", make_columns("K", ("PAY", "str")), site="FAR"),
            TableStats(card=50_000),
        )
        cat.set_column_stats("O", "K", ColumnStats(n_distinct=50, low=0, high=50_000))
        cat.set_column_stats("I", "K", ColumnStats(n_distinct=50_000, low=0, high=50_000))
        sql = "SELECT O.V, I.PAY FROM O, I WHERE O.K = I.K"
        without = StarburstOptimizer(cat, rules=extended_rules()).optimize(sql)
        with_sj = StarburstOptimizer(
            cat, rules=extended_rules(semijoin=True)
        ).optimize(sql)
        assert with_sj.best_cost < without.best_cost
        assert semijoin_plans([with_sj.best_plan])
