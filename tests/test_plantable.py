"""Unit tests for the hashed plan table."""

import pytest

from repro.cost.model import CostModel
from repro.query.expressions import ColumnRef
from repro.stars.plantable import PlanTable, plan_key

DNO = ColumnRef("DEPT", "DNO")
MGR = ColumnRef("DEPT", "MGR")


@pytest.fixture()
def table(catalog):
    return PlanTable(CostModel(catalog))


class TestLookupInsert:
    def test_miss_then_hit(self, table, factory):
        assert table.lookup(["DEPT"], []) is None
        table.insert(["DEPT"], [], [factory.access_base("DEPT", {DNO}, set())])
        assert table.lookup(["DEPT"], []) is not None
        assert table.stats.lookups == 2
        assert table.stats.hits == 1
        assert table.stats.misses == 1

    def test_key_includes_predicates(self, table, factory, mgr_pred):
        table.insert(["DEPT"], [], [factory.access_base("DEPT", {DNO}, set())])
        assert table.lookup(["DEPT"], [mgr_pred]) is None

    def test_insert_merges(self, table, factory):
        scan = factory.access_base("DEPT", {DNO}, set())
        table.insert(["DEPT"], [], [scan])
        table.insert(["DEPT"], [], [factory.sort(scan, (DNO,))])
        assert len(table.lookup(["DEPT"], [])) == 2

    def test_insert_prunes_dominated(self, table, factory):
        scan = factory.access_base("DEPT", {DNO}, set())
        double_sort = factory.sort(factory.sort(scan, (DNO,)), (DNO,))
        table.insert(["DEPT"], [], [scan, factory.sort(scan, (DNO,)), double_sort])
        survivors = table.lookup(["DEPT"], [])
        assert len(survivors) == 2
        assert table.stats.plans_pruned == 1

    def test_prune_disabled(self, catalog, factory):
        table = PlanTable(CostModel(catalog), prune=False)
        scan = factory.access_base("DEPT", {DNO}, set())
        table.insert(
            ["DEPT"], [], [factory.sort(scan, (DNO,)), factory.sort(factory.sort(scan, (DNO,)), (DNO,))]
        )
        assert len(table.lookup(["DEPT"], [])) == 2

    def test_plan_key_order_independent(self, mgr_pred):
        assert plan_key(["A", "B"], [mgr_pred]) == plan_key(["B", "A"], [mgr_pred])


class TestInstrumentation:
    def test_build_counts(self, table, factory):
        scan = factory.access_base("DEPT", {DNO}, set())
        table.insert(["DEPT"], [], [scan])
        table.insert(["DEPT"], [], [factory.sort(scan, (DNO,))])
        assert table.expansions_for(["DEPT"]) == 2
        assert table.expansions_for(["EMP"]) == 0

    def test_hit_rate(self, table, factory):
        table.insert(["DEPT"], [], [factory.access_base("DEPT", {DNO}, set())])
        table.lookup(["DEPT"], [])
        table.lookup(["DEPT"], [])
        assert table.stats.hit_rate() == 1.0

    def test_all_plans_and_keys(self, table, factory, mgr_pred):
        table.insert(["DEPT"], [], [factory.access_base("DEPT", {DNO}, set())])
        table.insert(["DEPT"], [mgr_pred], [factory.access_base("DEPT", {DNO}, {mgr_pred})])
        assert len(table.keys()) == 2
        assert len(table.all_plans()) == 2
        assert len(table) == 2
