"""Unit tests for the EXODUS-style transformational baseline."""

import pytest

from repro.baseline import TransformationalOptimizer
from repro.baseline.logical import (
    JOIN_TRANSFORMATIONS,
    LogicalJoin,
    LogicalScan,
    TransformStats,
    canonical,
    closure,
    initial_tree,
    replace_subtree,
    subtrees,
)
from repro.config import OptimizerConfig
from repro.query.parser import parse_query
from repro.workloads.generator import chain_workload


class TestLogicalTrees:
    def test_initial_is_left_deep(self, catalog, fig1_query):
        tree = initial_tree(fig1_query)
        assert canonical(tree) == "(DEPT ⋈ EMP)"

    def test_subtrees_enumeration(self):
        tree = LogicalJoin(LogicalJoin(LogicalScan("A"), LogicalScan("B")), LogicalScan("C"))
        assert len(list(subtrees(tree))) == 5

    def test_replace_subtree(self):
        inner = LogicalJoin(LogicalScan("A"), LogicalScan("B"))
        tree = LogicalJoin(inner, LogicalScan("C"))
        swapped = replace_subtree(tree, inner, LogicalJoin(LogicalScan("B"), LogicalScan("A")))
        assert canonical(swapped) == "((B ⋈ A) ⋈ C)"
        assert canonical(tree) == "((A ⋈ B) ⋈ C)"  # original untouched

    def test_rules_fire_where_applicable(self):
        stats = TransformStats()
        join = LogicalJoin(LogicalScan("A"), LogicalScan("B"))
        results = {
            rule.name: rule.try_apply(join, stats) for rule in JOIN_TRANSFORMATIONS
        }
        assert canonical(results["commute"]) == "(B ⋈ A)"
        assert results["assoc_lr"] is None  # left child is a scan
        assert stats.match_attempts == 3


class TestClosure:
    def test_two_tables_two_trees(self, catalog, fig1_query):
        stats = TransformStats()
        trees = closure(fig1_query, stats)
        assert {canonical(t) for t in trees} == {"(DEPT ⋈ EMP)", "(EMP ⋈ DEPT)"}

    def test_chain3_counts(self):
        wl = chain_workload(3, rows=20, seed=1)
        stats = TransformStats()
        trees = closure(wl.query, stats)
        # chain R0-R1-R2: orders without cartesian products:
        # shapes ((xy)z): (01)2, (10)2, (12)0, (21)0 and mirrors = 8
        assert len(trees) == 8
        assert stats.match_attempts > 0
        assert stats.condition_evaluations > 0

    def test_cartesian_allowed_grows_space(self):
        wl = chain_workload(3, rows=20, seed=1)
        restricted = closure(wl.query, TransformStats(), allow_cartesian=False)
        unrestricted = closure(wl.query, TransformStats(), allow_cartesian=True)
        assert len(unrestricted) > len(restricted)
        # All labelled binary trees over 3 leaves: 3! * Catalan(2) = 12.
        assert len(unrestricted) == 12

    def test_work_grows_superlinearly(self):
        works = []
        for n in (2, 3, 4):
            wl = chain_workload(n, rows=10, seed=1)
            stats = TransformStats()
            closure(wl.query, stats)
            works.append(stats.match_attempts + stats.condition_evaluations)
        assert works[2] > 4 * works[1] > 8 * works[0]


class TestBaselineOptimizer:
    def test_matches_star_best_cost(self, catalog, fig1_query):
        from repro.optimizer import StarburstOptimizer
        from repro.stars.builtin_rules import extended_rules

        star = StarburstOptimizer(catalog, rules=extended_rules()).optimize(fig1_query)
        base = TransformationalOptimizer(catalog).optimize(fig1_query)
        assert base.best_cost == pytest.approx(star.best_cost, rel=0.01)

    def test_plan_covers_all_tables_and_preds(self, catalog, fig1_query):
        base = TransformationalOptimizer(catalog).optimize(fig1_query)
        assert base.best_plan.props.tables == {"DEPT", "EMP"}
        assert set(fig1_query.predicates) <= set(base.best_plan.props.preds)

    def test_order_by_enforced(self, catalog):
        query = parse_query("SELECT NAME FROM EMP ORDER BY NAME", catalog)
        base = TransformationalOptimizer(catalog).optimize(query)
        order = [c.column for c in base.best_plan.props.order]
        assert order[:1] == ["NAME"]

    def test_distributed_result_site(self, distributed_catalog):
        query = parse_query("SELECT MGR FROM DEPT", distributed_catalog)
        base = TransformationalOptimizer(distributed_catalog).optimize(query)
        assert base.best_plan.props.site == "L.A."

    def test_stats_reported(self, catalog, fig1_query):
        base = TransformationalOptimizer(catalog).optimize(fig1_query)
        stats = base.stats
        assert stats.match_attempts > 0
        assert stats.implementation_applications > 0
        assert stats.physical_plans_built > 0
        assert stats.total_rule_work >= stats.match_attempts
        assert "implementation_applications" in stats.as_dict()
