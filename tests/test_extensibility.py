"""Tests of the section-5 extensibility story.

"Easiest to change are the STARs themselves ... new STARs can be added to
that file without impacting the Starburst system code at all."  These
tests add strategies as pure rule text, register new condition functions,
and replace whole STARs, then check the optimizer picks them up.
"""

import pytest

from repro.executor import QueryExecutor, naive_evaluate
from repro.optimizer import StarburstOptimizer
from repro.plans.operators import JOIN, SORT, STORE
from repro.query.parser import parse_query
from repro.stars.builtin_rules import HASH_JOIN_RULES, default_rules
from repro.stars.dsl import parse_rules
from repro.stars.registry import default_registry
from repro.workloads.paper import figure1_query


class TestRulesAsData:
    def test_hash_join_added_without_code_changes(self, paper_db):
        cat, db = paper_db
        query = figure1_query(cat)
        rules = default_rules()
        parse_rules(HASH_JOIN_RULES, base=rules)  # pure data
        result = StarburstOptimizer(cat, rules=rules).optimize(query)
        flavors = {
            n.flavor for p in result.alternatives for n in p.nodes() if n.op == JOIN
        }
        assert "HA" in flavors
        # And the new strategy's plans execute correctly.
        executor = QueryExecutor(db)
        reference = naive_evaluate(query, db).as_multiset()
        for plan in result.alternatives:
            assert executor.run(query, plan).as_multiset() == reference

    def test_new_star_with_new_condition_function(self, paper_db):
        """A DBC-defined strategy: force-sort tiny outer streams, guarded
        by a custom condition function (the paper's 'C function')."""
        cat, db = paper_db
        registry = default_registry()
        registry.register(
            "small_stream",
            lambda ctx, stream: all(
                ctx.catalog.table_stats(t).card <= 100 for t in stream.tables
            ),
        )
        rules = default_rules()
        parse_rules(
            """
            extend JMeth {
                alt if small_stream(T1) and nonempty(SP) ->
                    JOIN(MG, SORT(Glue(T1, {}), merge_cols(SP, T1)),
                             Glue(T2 [order = merge_cols(SP, T2)], IP),
                             SP, P - (IP | SP));
            }
            """,
            base=rules,
        )
        query = figure1_query(cat)
        result = StarburstOptimizer(cat, rules=rules, registry=registry).optimize(query)
        executor = QueryExecutor(db)
        reference = naive_evaluate(query, db).as_multiset()
        for plan in result.alternatives:
            assert executor.run(query, plan).as_multiset() == reference

    def test_replace_star_definition(self, paper_db):
        """Replacing JoinRoot to pin the permutation (DEPT always outer)."""
        cat, db = paper_db
        rules = default_rules()
        rules.replace(
            parse_rules("star X(T1, T2, P) { alt -> PermutedJoin(T1, T2, P); }").get("X")
        )
        # Build a one-permutation JoinRoot.
        single = parse_rules(
            "star JoinRootOnce(T1, T2, P) { alt -> PermutedJoin(T1, T2, P); }"
        ).get("JoinRootOnce")
        from repro.stars.ast import StarDef

        rules.replace(
            StarDef(
                name="JoinRoot",
                params=single.params,
                alternatives=single.alternatives,
                exclusive=single.exclusive,
                bindings=single.bindings,
            )
        )
        query = figure1_query(cat)
        result = StarburstOptimizer(cat, rules=rules).optimize(query)
        for plan in result.alternatives:
            join = next(n for n in plan.nodes() if n.op == JOIN)
            assert join.inputs[0].props.tables == {"DEPT"}

    def test_restricting_composite_inners_via_condition(self, catalog):
        """The paper's 4.1 remark: 'to exclude a composite inner ... we
        could add a condition restricting the inner table-set to be one
        table'."""
        rules = default_rules()
        rules.replace(
            parse_rules(
                """
                star JoinRoot2(T1, T2, P) {
                    alt if not composite(T2) -> PermutedJoin(T1, T2, P);
                    alt if not composite(T1) -> PermutedJoin(T2, T1, P);
                }
                """
            ).get("JoinRoot2")
        )
        # sanity: the rule text parses and validates with the registry.
        from repro.stars.validate import validate_rules

        report = validate_rules(rules, default_registry())
        assert report.ok


class TestExtendSemantics:
    def test_extend_shares_existing_bindings(self, catalog):
        """An extension can reference where-bindings of the base STAR
        (HASH_JOIN_RULES uses IP from BASE_RULES' JMeth)."""
        rules = default_rules()
        parse_rules(HASH_JOIN_RULES, base=rules)
        jmeth = rules.get("JMeth")
        binding_names = [name for name, _ in jmeth.bindings]
        assert binding_names == ["JP", "IP", "SP", "HP"]

    def test_extension_does_not_change_base_alternatives(self, catalog):
        base_alts = len(default_rules().get("JMeth").alternatives)
        rules = default_rules()
        parse_rules(HASH_JOIN_RULES, base=rules)
        assert len(rules.get("JMeth").alternatives) == base_alts + 1
        # A freshly built default set is unaffected.
        assert len(default_rules().get("JMeth").alternatives) == base_alts


class TestConfigExtensions:
    def test_faster_site_affects_choice(self, distributed_catalog):
        """Section 4.2: 'If a site with a particularly efficient join
        engine were available, then that site could easily be added to
        the definition of σ' — we add it via the registry."""
        registry = default_registry()
        registry.register(
            "candidate_sites",
            lambda ctx: ("N.Y.", "L.A.", "CHEAP"),
            replace=True,
        )
        distributed_catalog.add_site("CHEAP")
        query = parse_query(
            "SELECT NAME, MGR FROM DEPT, EMP WHERE DEPT.DNO = EMP.DNO",
            distributed_catalog,
        )
        result = StarburstOptimizer(distributed_catalog, registry=registry).optimize(query)
        sites_seen = set()
        for plan in result.engine.plan_table.all_plans():
            sites_seen.add(plan.props.site)
        assert "CHEAP" in sites_seen
