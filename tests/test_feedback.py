"""The cardinality feedback cache and its selectivity-estimator hook."""

from __future__ import annotations

import pytest

from repro.cost.selectivity import Selectivity
from repro.obs import MetricsRegistry, Tracer
from repro.optimizer import StarburstOptimizer
from repro.query.parser import parse_predicate
from repro.robust import FeedbackCache


@pytest.fixture()
def mgr_preds(catalog):
    return frozenset(
        {parse_predicate("DEPT.MGR = 'Haas'", catalog, ("DEPT", "EMP"))}
    )


class TestCache:
    def test_record_then_lookup_roundtrip(self, mgr_preds):
        cache = FeedbackCache()
        cache.record({"DEPT"}, mgr_preds, 3.0)
        assert cache.lookup({"DEPT"}, mgr_preds) == 3.0
        assert len(cache) == 1

    def test_key_is_set_valued_and_order_free(self, catalog, join_pred):
        cache = FeedbackCache()
        cache.record(["EMP", "DEPT"], [join_pred], 42.0)
        assert cache.lookup(["DEPT", "EMP"], (join_pred,)) == 42.0

    def test_miss_returns_none_and_counts(self, mgr_preds):
        cache = FeedbackCache()
        assert cache.lookup({"DEPT"}, mgr_preds) is None
        cache.record({"DEPT"}, mgr_preds, 5.0)
        cache.lookup({"DEPT"}, mgr_preds)
        assert cache.misses == 1
        assert cache.hits == 1
        assert cache.as_dict()["hit_rate"] == 0.5

    def test_later_observation_wins(self, mgr_preds):
        cache = FeedbackCache()
        cache.record({"DEPT"}, mgr_preds, 3.0)
        cache.record({"DEPT"}, mgr_preds, 7.0)
        assert cache.lookup({"DEPT"}, mgr_preds) == 7.0
        assert cache.records == 2

    def test_adjust_overrides_estimate_only_on_hit(self, mgr_preds):
        cache = FeedbackCache()
        assert cache.adjust({"DEPT"}, mgr_preds, 99.0) == 99.0
        cache.record({"DEPT"}, mgr_preds, 2.0)
        assert cache.adjust({"DEPT"}, mgr_preds, 99.0) == 2.0

    def test_empty_cache_is_truthy(self):
        # Callers guard with ``is None``; an empty cache must not read
        # as absent.
        assert bool(FeedbackCache())

    def test_observability_hooks(self, mgr_preds):
        tracer = Tracer()
        metrics = MetricsRegistry()
        cache = FeedbackCache(tracer=tracer, metrics=metrics)
        cache.record({"DEPT"}, mgr_preds, 3.0)
        cache.adjust({"DEPT"}, mgr_preds, 50.0)
        names = [e.name for e in tracer.events()]
        assert "feedback_record" in names
        assert "feedback_hit" in names
        snapshot = metrics.snapshot()
        assert snapshot["feedback.records"] == 1
        assert snapshot["feedback.hits"] == 1


class TestSelectivityHook:
    def test_no_feedback_passes_estimate_through(self, catalog, mgr_preds):
        sel = Selectivity(catalog)
        assert sel.adjusted_card({"DEPT"}, mgr_preds, 17.5) == 17.5

    def test_feedback_corrects_estimate(self, catalog, mgr_preds):
        cache = FeedbackCache()
        cache.record({"DEPT"}, mgr_preds, 4.0)
        sel = Selectivity(catalog, feedback=cache)
        assert sel.adjusted_card({"DEPT"}, mgr_preds, 17.5) == 4.0
        assert sel.adjusted_card({"EMP"}, frozenset(), 9.0) == 9.0


class TestOptimizerIntegration:
    def test_feedback_changes_estimated_cardinality(self, catalog, fig1_query):
        baseline = StarburstOptimizer(catalog).optimize(fig1_query)

        cache = FeedbackCache()
        mgr = parse_predicate("DEPT.MGR = 'Haas'", catalog, ("DEPT", "EMP"))
        cache.record({"DEPT"}, {mgr}, 1.0)
        corrected = StarburstOptimizer(
            catalog, feedback=cache
        ).optimize(fig1_query)

        # The selection on DEPT was estimated at card/n_distinct = 2;
        # feedback pins it to the observed 1 row, which propagates into
        # the join estimate.
        assert corrected.best_plan.props.card < baseline.best_plan.props.card
        assert cache.hits > 0

    def test_unrelated_feedback_changes_nothing(self, catalog, fig1_query):
        baseline = StarburstOptimizer(catalog).optimize(fig1_query)
        cache = FeedbackCache()
        cache.record({"NOT_A_TABLE"}, frozenset(), 123.0)
        corrected = StarburstOptimizer(
            catalog, feedback=cache
        ).optimize(fig1_query)
        assert corrected.best_plan.props.card == pytest.approx(
            baseline.best_plan.props.card
        )
        assert corrected.best_cost == pytest.approx(baseline.best_cost)


class TestBoundedCapacity:
    """The cache is LRU-bounded: a long-running server must not leak."""

    def test_capacity_evicts_oldest(self):
        cache = FeedbackCache(capacity=2)
        cache.record({"A"}, [], 1.0)
        cache.record({"B"}, [], 2.0)
        cache.record({"C"}, [], 3.0)  # evicts A
        assert len(cache) == 2
        assert cache.evictions == 1
        assert cache.lookup({"A"}, []) is None
        assert cache.lookup({"B"}, []) == 2.0
        assert cache.lookup({"C"}, []) == 3.0

    def test_lookup_refreshes_recency(self):
        cache = FeedbackCache(capacity=2)
        cache.record({"A"}, [], 1.0)
        cache.record({"B"}, [], 2.0)
        assert cache.lookup({"A"}, []) == 1.0  # A becomes most recent
        cache.record({"C"}, [], 3.0)  # evicts B, not A
        assert cache.lookup({"A"}, []) == 1.0
        assert cache.lookup({"B"}, []) is None

    def test_rerecord_updates_without_eviction(self):
        cache = FeedbackCache(capacity=2)
        cache.record({"A"}, [], 1.0)
        cache.record({"B"}, [], 2.0)
        cache.record({"A"}, [], 9.0)
        assert cache.evictions == 0
        assert cache.lookup({"A"}, []) == 9.0

    def test_eviction_metric_exported(self):
        metrics = MetricsRegistry()
        cache = FeedbackCache(metrics=metrics, capacity=1)
        cache.record({"A"}, [], 1.0)
        cache.record({"B"}, [], 2.0)
        assert metrics.snapshot()["feedback.evictions"] == 1
        assert cache.as_dict()["evictions"] == 1.0
        assert cache.as_dict()["capacity"] == 1.0

    def test_unbounded_when_capacity_none(self):
        cache = FeedbackCache(capacity=None)
        for i in range(5000):
            cache.record({f"T{i}"}, [], float(i))
        assert len(cache) == 5000
        assert cache.evictions == 0

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            FeedbackCache(capacity=0)

    def test_peek_counts_nothing_and_keeps_recency(self):
        cache = FeedbackCache(capacity=2)
        cache.record({"A"}, [], 1.0)
        cache.record({"B"}, [], 2.0)
        assert cache.peek({"A"}, []) == 1.0
        assert cache.hits == 0 and cache.misses == 0
        cache.record({"C"}, [], 3.0)  # peek did NOT refresh A: A evicted
        assert cache.peek({"A"}, []) is None
        assert cache.misses == 0
