"""Unit tests for the run-time LOLEPOP routines (unary operators).

Plans here are built directly with the PlanFactory against a small
hand-loaded database, so each run-time routine is exercised in isolation.
"""

import pytest

from repro.catalog import AccessPath, Catalog, TableDef
from repro.catalog.catalog import make_columns
from repro.cost.propfuncs import PlanFactory
from repro.errors import ExecutionError
from repro.executor import QueryExecutor
from repro.query.expressions import ColumnRef
from repro.query.parser import parse_predicate
from repro.storage import Database

A = ColumnRef("T", "A")
B = ColumnRef("T", "B")
S = ColumnRef("T", "S")


@pytest.fixture()
def env():
    cat = Catalog()
    cat.add_table(TableDef("T", make_columns("A", "B", ("S", "str"))))
    cat.add_index(AccessPath("T_A", "T", ("A",)))
    cat.add_index(AccessPath("T_AB", "T", ("A", "B")))
    db = Database(cat)
    db.create_storage("T")
    db.load("T", [(i, i % 3, f"s{i % 2}") for i in range(20)])
    db.analyze("T")
    return cat, db, PlanFactory(cat), QueryExecutor(db)


def pred(cat, text):
    return parse_predicate(text, cat, ("T",))


def values(rows, column):
    return [row[column] for row in rows]


class TestAccessHeap:
    def test_scan_all(self, env):
        cat, db, f, ex = env
        rows, stats = ex.run_plan(f.access_base("T", {A, B}, set()))
        assert len(rows) == 20
        assert set(rows[0]) == {A, B}

    def test_scan_applies_predicates(self, env):
        cat, db, f, ex = env
        plan = f.access_base("T", {A, B}, {pred(cat, "T.B = 1")})
        rows, _ = ex.run_plan(plan)
        assert len(rows) == 7
        assert all(row[B] == 1 for row in rows)

    def test_scan_charges_page_reads(self, env):
        cat, db, f, ex = env
        _, stats = ex.run_plan(f.access_base("T", {A}, set()))
        assert stats.page_reads >= 1


class TestAccessIndex:
    def test_index_scan_in_key_order(self, env):
        cat, db, f, ex = env
        plan = f.access_index("T", cat.path("T", "T_A"))
        rows, _ = ex.run_plan(plan)
        assert values(rows, A) == sorted(range(20))

    def test_index_equality_probe(self, env):
        cat, db, f, ex = env
        plan = f.access_index("T", cat.path("T", "T_A"), preds={pred(cat, "T.A = 7")})
        rows, _ = ex.run_plan(plan)
        assert values(rows, A) == [7]

    def test_index_yields_tid(self, env):
        cat, db, f, ex = env
        plan = f.access_index("T", cat.path("T", "T_A"))
        rows, _ = ex.run_plan(plan)
        tid = ColumnRef("T", "#TID")
        assert all(tid in row for row in rows)

    def test_composite_prefix_probe(self, env):
        cat, db, f, ex = env
        plan = f.access_index(
            "T", cat.path("T", "T_AB"), preds={pred(cat, "T.A = 4")}
        )
        rows, _ = ex.run_plan(plan)
        assert values(rows, A) == [4]

    def test_composite_full_probe(self, env):
        cat, db, f, ex = env
        plan = f.access_index(
            "T",
            cat.path("T", "T_AB"),
            preds={pred(cat, "T.A = 4"), pred(cat, "T.B = 1")},
        )
        rows, _ = ex.run_plan(plan)
        assert len(rows) == 1

    def test_index_residual_filter(self, env):
        cat, db, f, ex = env
        # B is a key column of T_AB but has no sargable eq on A: the
        # predicate on B filters during the scan.
        plan = f.access_index(
            "T", cat.path("T", "T_AB"), preds={pred(cat, "T.B = 2")}
        )
        rows, _ = ex.run_plan(plan)
        assert all(row[B] == 2 for row in rows)


class TestBtreeTableScan:
    def test_clustered_scan_in_key_order(self):
        cat = Catalog()
        cat.add_table(
            TableDef("O", make_columns("K", "V"), storage="btree", key=("K",))
        )
        db = Database(cat)
        db.create_storage("O")
        db.load("O", [(3, 30), (1, 10), (2, 20)])
        db.analyze("O")
        f = PlanFactory(cat)
        ex = QueryExecutor(db)
        K = ColumnRef("O", "K")
        rows, _ = ex.run_plan(f.access_base("O", {K, ColumnRef("O", "V")}, set()))
        assert values(rows, K) == [1, 2, 3]


class TestGet:
    def test_get_fetches_columns(self, env):
        cat, db, f, ex = env
        ix = f.access_index("T", cat.path("T", "T_A"), preds={pred(cat, "T.A = 3")})
        plan = f.get(ix, "T", {S, B})
        rows, _ = ex.run_plan(plan)
        assert rows[0][S] == "s1"
        assert rows[0][B] == 0

    def test_get_applies_predicates(self, env):
        cat, db, f, ex = env
        ix = f.access_index("T", cat.path("T", "T_A"))
        plan = f.get(ix, "T", {S}, {pred(cat, "T.S = 's0'")})
        rows, _ = ex.run_plan(plan)
        assert len(rows) == 10
        assert all(row[S] == "s0" for row in rows)

    def test_get_charges_fetch_io(self, env):
        cat, db, f, ex = env
        ix = f.access_index("T", cat.path("T", "T_A"))
        _, stats = ex.run_plan(f.get(ix, "T", {S}))
        assert stats.page_reads >= 20  # one fetch per tuple


class TestSortFilter:
    def test_sort_orders_rows(self, env):
        cat, db, f, ex = env
        plan = f.sort(f.access_base("T", {A, B}, set()), (B, A))
        rows, _ = ex.run_plan(plan)
        keys = [(row[B], row[A]) for row in rows]
        assert keys == sorted(keys)

    def test_filter_applies(self, env):
        cat, db, f, ex = env
        plan = f.filter(f.access_base("T", {A, B}, set()), {pred(cat, "T.A < 5")})
        rows, _ = ex.run_plan(plan)
        assert len(rows) == 5


class TestShip:
    def test_ship_counts_traffic(self):
        cat = Catalog(query_site="L.A.")
        cat.add_site("N.Y.")
        cat.add_table(TableDef("R", make_columns("X", ("S", "str")), site="N.Y."))
        db = Database(cat)
        db.create_storage("R")
        db.load("R", [(i, "abcdef") for i in range(50)])
        db.analyze("R")
        f = PlanFactory(cat)
        ex = QueryExecutor(db)
        X = ColumnRef("R", "X")
        plan = f.ship(f.access_base("R", {X, ColumnRef("R", "S")}, set()), "L.A.")
        rows, stats = ex.run_plan(plan)
        assert len(rows) == 50
        assert stats.messages >= 1
        assert stats.bytes_shipped == 50 * (4 + 6)


class TestStoreTempIndex:
    def test_store_and_reaccess(self, env):
        cat, db, f, ex = env
        stored = f.store(f.access_base("T", {A, B}, {pred(cat, "T.B = 0")}))
        plan = f.access_temp(stored)
        rows, stats = ex.run_plan(plan)
        assert len(rows) == 7
        assert stats.temps_materialized == 1

    def test_temp_access_applies_preds(self, env):
        cat, db, f, ex = env
        stored = f.store(f.access_base("T", {A, B}, set()))
        plan = f.access_temp(stored, preds={pred(cat, "T.A = 9")})
        rows, _ = ex.run_plan(plan)
        assert values(rows, A) == [9]

    def test_dynamic_index_probe(self, env):
        cat, db, f, ex = env
        stored = f.store(f.access_base("T", {A, B, S}, set()))
        indexed = f.buildix(stored, (B,))
        path = next(iter(indexed.props.paths))
        plan = f.access_temp_index(indexed, path, preds={pred(cat, "T.B = 2")})
        rows, _ = ex.run_plan(plan)
        assert len(rows) == 6
        assert all(row[B] == 2 for row in rows)
        # Clustered dynamic index delivers non-key columns too.
        assert all(S in row for row in rows)

    def test_temps_dropped_after_run(self, env):
        cat, db, f, ex = env
        stored = f.store(f.access_base("T", {A}, set()))
        ex.run_plan(f.access_temp(stored))
        assert db.base_table_names() == ("T",)
        # No temp tables are left behind.
        with pytest.raises(Exception):
            db.table(stored.props.stored_as)


class TestUnion:
    def test_union_concatenates(self, env):
        cat, db, f, ex = env
        low = f.access_base("T", {A, B}, {pred(cat, "T.A < 3")})
        high = f.filter(f.access_base("T", {A, B}, set()), {pred(cat, "T.A >= 17")})
        rows, _ = ex.run_plan(f.union(low, high))
        assert sorted(values(rows, A)) == [0, 1, 2, 17, 18, 19]
