"""Degenerate corners of the robustness knobs.

Two boundary cases the chaos/failover machinery must get right:

* a :class:`RetryPolicy` with ``max_attempts=1`` — retries disabled —
  must behave exactly like a plain single attempt, never pausing;
* ``retain_site_diversity`` pruning when every replica and table lives
  on ONE site — the diversity constraint is vacuous (all footprints are
  equal) and must neither crash nor keep extra plans alive.
"""

from __future__ import annotations

import pytest

from repro.config import OptimizerConfig
from repro.cost.model import CostModel
from repro.errors import LinkError
from repro.executor import QueryExecutor
from repro.executor.chaos import ChaosConfig, ChaosEngine, RetryPolicy, SimClock
from repro.executor.network import NetworkSim
from repro.optimizer import StarburstOptimizer
from repro.plans.sap import SAP
from repro.query.expressions import ColumnRef
from repro.workloads import chain_workload

DNO = ColumnRef("DEPT", "DNO")
MGR = ColumnRef("DEPT", "MGR")


class TestSingleAttemptPolicy:
    def test_max_attempts_one_equals_no_retries(self):
        assert RetryPolicy(max_attempts=1) == RetryPolicy.no_retries()

    @pytest.mark.parametrize("bad", [0, -1, -100])
    def test_fewer_than_one_attempt_rejected(self, bad):
        with pytest.raises(ValueError, match="at least 1"):
            RetryPolicy(max_attempts=bad)

    def test_first_transient_error_is_fatal(self):
        engine = ChaosEngine(ChaosConfig(seed=0, link_failure_prob=1.0))
        clock = SimClock()
        net = NetworkSim(
            chaos=engine, retry=RetryPolicy(max_attempts=1), clock=clock
        )
        with pytest.raises(LinkError):
            net.transfer("A", "B", tuples=1, nbytes=10)
        link = net.links[("A", "B")]
        assert link.attempts == 1
        assert link.retries == 0
        # No retry ever happened, so no backoff was ever slept.
        assert net.total_backoff == 0.0
        assert clock.now == 0.0

    def test_clean_link_unaffected_by_degenerate_policy(self):
        net = NetworkSim(retry=RetryPolicy(max_attempts=1))
        net.transfer("A", "B", tuples=5, nbytes=50)
        assert net.links[("A", "B")].tuples == 5

    def test_backoff_schedule_still_well_defined(self):
        # backoff() is never consulted at max_attempts=1, but the
        # schedule must remain valid (callers may print it).
        policy = RetryPolicy(max_attempts=1, base_backoff=0.25)
        assert policy.backoff(1) == pytest.approx(0.25)
        assert policy.backoff(50) == policy.max_backoff


class TestSiteDiversitySingleSite:
    def test_pruning_is_identical_to_plain_dominance(self, factory, catalog):
        # Both alternatives read DEPT at its one site: equal footprints,
        # so the diversity clause never protects the pricier plan.
        model = CostModel(catalog)
        scan = factory.access_base("DEPT", {DNO, MGR}, frozenset())
        stored = factory.access_temp(factory.store(scan))
        sap = SAP([scan, stored])
        plain = sap.pruned(model)
        diverse = sap.pruned(model, site_diversity=True)
        assert {p.digest for p in diverse} == {p.digest for p in plain}

    def test_single_site_workload_optimizes_identically(self):
        workload = chain_workload(3, rows=80, seed=7, n_sites=1)
        baseline = StarburstOptimizer(workload.catalog).optimize(workload.query)
        diverse = StarburstOptimizer(
            workload.catalog,
            config=OptimizerConfig(retain_site_diversity=True),
        ).optimize(workload.query)
        assert diverse.best_cost == pytest.approx(baseline.best_cost)
        rows = QueryExecutor(workload.database).run(
            diverse.query, diverse.best_plan
        )
        expected = QueryExecutor(workload.database).run(
            baseline.query, baseline.best_plan
        )
        assert rows.as_multiset() == expected.as_multiset()
