"""OpenMetrics rendering, the strict validator, and the /metrics server."""

from __future__ import annotations

import json
import urllib.request

import pytest

from repro.obs import MetricsRegistry, render_openmetrics, validate_openmetrics
from repro.obs.openmetrics import CONTENT_TYPE, sanitize_name
from repro.serve import MetricsServer


def _registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.inc("serve.requests", 5)
    registry.inc("serve.tier.full", 3)
    registry.set_gauge("serve.queue_depth", 2)
    registry.set_gauge("slo.latency.burn_rate", 0.25)
    for value in (0.001, 0.002, 0.004, 0.008):
        registry.observe("serve.latency_seconds", value)
    return registry


class TestSanitizeName:
    def test_dots_become_underscores(self):
        assert sanitize_name("serve.tier.full") == "serve_tier_full"

    def test_leading_digit_gets_prefixed(self):
        assert sanitize_name("9lives")[0] in ("_",)

    def test_legal_names_pass_through(self):
        assert sanitize_name("serve_requests") == "serve_requests"


class TestRender:
    def test_round_trips_through_the_validator(self):
        text = render_openmetrics(_registry())
        families = validate_openmetrics(text)
        assert families["serve_requests"] == "counter"
        assert families["serve_queue_depth"] == "gauge"
        assert families["serve_latency_seconds"] == "summary"

    def test_counters_expose_total_samples(self):
        text = render_openmetrics(_registry())
        assert "serve_requests_total 5" in text.splitlines()

    def test_histograms_expose_quantiles_count_sum(self):
        lines = render_openmetrics(_registry()).splitlines()
        assert any(
            line.startswith('serve_latency_seconds{quantile="0.5"}')
            for line in lines
        )
        assert any(
            line.startswith("serve_latency_seconds_count 4")
            for line in lines
        )
        assert any(
            line.startswith("serve_latency_seconds_sum")
            for line in lines
        )

    def test_ends_with_eof(self):
        assert render_openmetrics(_registry()).endswith("# EOF\n")

    def test_empty_registry_is_valid(self):
        text = render_openmetrics(MetricsRegistry())
        assert validate_openmetrics(text) == {}

    def test_name_collision_raises(self):
        registry = MetricsRegistry()
        registry.inc("serve.tier_full")
        registry.inc("serve.tier.full")
        with pytest.raises(ValueError, match="collision"):
            render_openmetrics(registry)

    def test_deterministic_output(self):
        assert render_openmetrics(_registry()) == render_openmetrics(
            _registry()
        )


class TestValidator:
    def test_missing_eof_rejected(self):
        with pytest.raises(ValueError, match="EOF"):
            validate_openmetrics("# TYPE a counter\na_total 1\n")

    def test_sample_without_type_rejected(self):
        with pytest.raises(ValueError, match="no TYPE"):
            validate_openmetrics("a_total 1\n# EOF\n")

    def test_counter_sample_must_be_total(self):
        with pytest.raises(ValueError, match="_total"):
            validate_openmetrics("# TYPE a counter\na 1\n# EOF\n")

    def test_gauge_sample_must_be_bare(self):
        with pytest.raises(ValueError, match="suffix"):
            validate_openmetrics("# TYPE a gauge\na_total 1\n# EOF\n")

    def test_summary_quantile_needs_label(self):
        with pytest.raises(ValueError, match="quantile"):
            validate_openmetrics("# TYPE a summary\na 1\n# EOF\n")

    def test_duplicate_type_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            validate_openmetrics(
                "# TYPE a counter\n# TYPE a counter\n# EOF\n"
            )

    def test_malformed_sample_rejected(self):
        with pytest.raises(ValueError, match="malformed"):
            validate_openmetrics("# TYPE a gauge\na one\n# EOF\n")

    def test_text_after_eof_rejected(self):
        with pytest.raises(ValueError):
            validate_openmetrics("# EOF\n# TYPE a gauge\na 1\n# EOF\n")


class TestMetricsServer:
    def test_scrape_metrics_endpoint(self):
        registry = _registry()
        with MetricsServer(registry) as server:
            with urllib.request.urlopen(f"{server.url}/metrics") as reply:
                assert reply.status == 200
                assert reply.headers["Content-Type"] == CONTENT_TYPE
                body = reply.read().decode("utf-8")
        families = validate_openmetrics(body)
        assert "serve_requests" in families

    def test_scrape_sees_live_updates(self):
        registry = _registry()
        with MetricsServer(registry) as server:
            registry.inc("serve.requests", 95)
            with urllib.request.urlopen(f"{server.url}/metrics") as reply:
                body = reply.read().decode("utf-8")
        assert "serve_requests_total 100" in body.splitlines()

    def test_healthz_default_document(self):
        with MetricsServer(MetricsRegistry()) as server:
            with urllib.request.urlopen(f"{server.url}/healthz") as reply:
                assert reply.status == 200
                assert json.loads(reply.read()) == {"ok": True}

    def test_healthz_custom_callable(self):
        health = lambda: {"ok": False, "queue_depth": 9}  # noqa: E731
        with MetricsServer(MetricsRegistry(), health=health) as server:
            with urllib.request.urlopen(f"{server.url}/healthz") as reply:
                assert json.loads(reply.read()) == {
                    "ok": False, "queue_depth": 9,
                }

    def test_unknown_path_is_404(self):
        with MetricsServer(MetricsRegistry()) as server:
            with pytest.raises(urllib.error.HTTPError) as err:
                urllib.request.urlopen(f"{server.url}/nope")
            assert err.value.code == 404

    def test_port_zero_picks_a_free_port(self):
        with MetricsServer(MetricsRegistry()) as a, \
                MetricsServer(MetricsRegistry()) as b:
            assert a.port != b.port
            assert a.port > 0

    def test_start_is_idempotent_and_stop_releases(self):
        server = MetricsServer(MetricsRegistry())
        assert server.start() is server.start()
        server.stop()
        server.stop()  # second stop is a no-op
