-- repro sql backend
-- plan digest: eca350855b7def60
-- query: SELECT EMP.NAME, EMP.ADDRESS, DEPT.MGR FROM DEPT, EMP WHERE DEPT.DNO = EMP.DNO AND DEPT.MGR = 'Haas'
-- note: SHIP N.Y. -> L.A. collapsed: emitted SQL runs single-site
-- note: JOIN(HA) lowered to a predicate join: the merge/hash physical strategy does not change the row set
SELECT q."EMP.NAME" AS "NAME", q."EMP.ADDRESS" AS "ADDRESS", q."DEPT.MGR" AS "MGR" FROM (SELECT a3."DEPT.DNO" AS "DEPT.DNO", a3."DEPT.MGR" AS "DEPT.MGR", b4."EMP.ADDRESS" AS "EMP.ADDRESS", b4."EMP.DNO" AS "EMP.DNO", b4."EMP.NAME" AS "EMP.NAME" FROM (SELECT t1."DNO" AS "DEPT.DNO", t1."MGR" AS "DEPT.MGR" FROM "DEPT" AS t1 WHERE (t1."MGR" IS NOT NULL AND t1."MGR" = 'Haas')) AS a3, (SELECT t2."ADDRESS" AS "EMP.ADDRESS", t2."DNO" AS "EMP.DNO", t2."NAME" AS "EMP.NAME" FROM "EMP" AS t2) AS b4 WHERE (a3."DEPT.DNO" IS NOT NULL AND b4."EMP.DNO" IS NOT NULL AND a3."DEPT.DNO" = b4."EMP.DNO")) AS q;
