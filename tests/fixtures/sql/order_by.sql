-- repro sql backend
-- plan digest: f991b33db950d1e9
-- query: SELECT EMP.NAME, DEPT.MGR FROM DEPT, EMP WHERE DEPT.DNO = EMP.DNO AND DEPT.MGR = 'Haas' ORDER BY EMP.NAME DESC
-- note: SORT(EMP.NAME) elided: row-set comparison is order-insensitive and the outer query re-derives ORDER BY
-- note: JOIN(HA) lowered to a predicate join: the merge/hash physical strategy does not change the row set
SELECT q."EMP.NAME" AS "NAME", q."DEPT.MGR" AS "MGR" FROM (SELECT b4."DEPT.DNO" AS "DEPT.DNO", b4."DEPT.MGR" AS "DEPT.MGR", a3."EMP.DNO" AS "EMP.DNO", a3."EMP.NAME" AS "EMP.NAME" FROM (SELECT t1."DNO" AS "EMP.DNO", t1."NAME" AS "EMP.NAME" FROM "EMP" AS t1) AS a3, (SELECT t2."DNO" AS "DEPT.DNO", t2."MGR" AS "DEPT.MGR" FROM "DEPT" AS t2 WHERE (t2."MGR" IS NOT NULL AND t2."MGR" = 'Haas')) AS b4 WHERE (b4."DEPT.DNO" IS NOT NULL AND a3."EMP.DNO" IS NOT NULL AND b4."DEPT.DNO" = a3."EMP.DNO")) AS q ORDER BY q."EMP.NAME" DESC NULLS FIRST;
