"""Optimization budgets: bounded search with an anytime answer.

The contract under test: a budget-limited optimization NEVER raises for
exhaustion — it returns the best plan found so far (or the greedy
heuristic fallback when the search died before any complete plan), marks
the result ``budget_exhausted``, and the returned plan executes to the
same rows as the unbudgeted plan.
"""

from __future__ import annotations

import pytest

from repro.executor import QueryExecutor
from repro.obs import MetricsRegistry, Tracer
from repro.optimizer import StarburstOptimizer
from repro.robust import BudgetExhausted, OptimizerBudget
from repro.workloads import chain_workload


class TestBudgetObject:
    def test_limits_must_be_positive(self):
        with pytest.raises(ValueError):
            OptimizerBudget(max_expansions=0)
        with pytest.raises(ValueError):
            OptimizerBudget(max_plans=-1)
        with pytest.raises(ValueError):
            OptimizerBudget(deadline_ticks=0)

    def test_unlimited_never_exhausts(self):
        budget = OptimizerBudget()
        assert budget.unlimited
        for _ in range(10_000):
            budget.charge_expansion("S")
            budget.charge_plans(5)
        assert not budget.exhausted

    def test_expansion_limit_raises_once_exceeded(self):
        budget = OptimizerBudget(max_expansions=3)
        for _ in range(3):
            budget.charge_expansion("S")
        with pytest.raises(BudgetExhausted):
            budget.charge_expansion("S")
        assert budget.exhausted
        assert "expansion" in budget.exhausted_reason

    def test_plan_limit_counts_bulk_charges(self):
        budget = OptimizerBudget(max_plans=10)
        budget.charge_plans(10)
        with pytest.raises(BudgetExhausted):
            budget.charge_plans(1)

    def test_deadline_counts_both_charge_kinds(self):
        budget = OptimizerBudget(deadline_ticks=3)
        budget.charge_expansion("S")
        budget.charge_plans(3)  # one tick regardless of plan count
        budget.charge_expansion("S")
        with pytest.raises(BudgetExhausted):
            budget.charge_expansion("S")

    def test_suspend_makes_charging_free(self):
        budget = OptimizerBudget(max_expansions=1)
        budget.charge_expansion("S")
        with budget.suspend():
            for _ in range(100):
                budget.charge_expansion("S")  # must not raise
        with pytest.raises(BudgetExhausted):
            budget.charge_expansion("S")

    def test_reset_clears_counters_and_reason(self):
        budget = OptimizerBudget(max_expansions=1)
        budget.charge_expansion("S")
        with pytest.raises(BudgetExhausted):
            budget.charge_expansion("S")
        budget.reset()
        assert not budget.exhausted
        assert budget.expansions == 0
        budget.charge_expansion("S")  # a fresh allowance

    def test_as_dict_is_flat_numeric(self):
        budget = OptimizerBudget(max_expansions=7)
        budget.charge_expansion("S")
        snapshot = budget.as_dict()
        assert all(isinstance(v, (int, float)) for v in snapshot.values())
        assert snapshot["expansions"] == 1


class TestAnytimeOptimization:
    """Exhaustion must never surface: optimize() always returns a plan."""

    @pytest.fixture(scope="class")
    def workload(self):
        return chain_workload(4, rows=60, seed=5)

    @pytest.fixture(scope="class")
    def reference(self, workload):
        result = StarburstOptimizer(workload.catalog).optimize(workload.query)
        rows = QueryExecutor(workload.database).run(
            result.query, result.best_plan
        )
        return result, rows

    @pytest.mark.parametrize("max_expansions", [1, 2, 5, 10, 25, 50])
    def test_tiny_budgets_never_raise_and_execute_correctly(
        self, workload, reference, max_expansions
    ):
        budget = OptimizerBudget(max_expansions=max_expansions)
        optimizer = StarburstOptimizer(workload.catalog, budget=budget)
        result = optimizer.optimize(workload.query)  # must not raise
        assert result.budget_exhausted
        assert result.best_plan is not None
        rows = QueryExecutor(workload.database).run(
            result.query, result.best_plan
        )
        _, expected = reference
        assert rows.as_multiset() == expected.as_multiset()

    def test_large_budget_matches_unbudgeted_search(self, workload, reference):
        budget = OptimizerBudget(max_expansions=100_000, max_plans=1_000_000)
        result = StarburstOptimizer(
            workload.catalog, budget=budget
        ).optimize(workload.query)
        expected, _ = reference
        assert not result.budget_exhausted
        assert not result.heuristic_fallback
        assert result.best_cost == pytest.approx(expected.best_cost)

    def test_starved_search_uses_heuristic_fallback(self, workload):
        budget = OptimizerBudget(max_expansions=1)
        result = StarburstOptimizer(
            workload.catalog, budget=budget
        ).optimize(workload.query)
        assert result.budget_exhausted
        assert result.heuristic_fallback
        assert "anytime" in result.explain()

    def test_anytime_cost_never_beats_full_search(self, workload, reference):
        expected, _ = reference
        budget = OptimizerBudget(max_expansions=10)
        result = StarburstOptimizer(
            workload.catalog, budget=budget
        ).optimize(workload.query)
        assert result.best_cost >= expected.best_cost - 1e-9

    def test_budget_resets_between_optimize_calls(self, workload):
        budget = OptimizerBudget(max_expansions=25)
        optimizer = StarburstOptimizer(workload.catalog, budget=budget)
        first = optimizer.optimize(workload.query)
        second = optimizer.optimize(workload.query)
        assert first.budget_exhausted == second.budget_exhausted
        assert first.best_cost == pytest.approx(second.best_cost)

    def test_exhaustion_observability(self, workload):
        tracer = Tracer()
        metrics = MetricsRegistry()
        budget = OptimizerBudget(max_expansions=5)
        StarburstOptimizer(
            workload.catalog, budget=budget, tracer=tracer, metrics=metrics
        ).optimize(workload.query)
        names = [e.name for e in tracer.events() if e.cat == "robust"]
        assert "budget_exhausted" in names
        snapshot = metrics.snapshot()
        assert snapshot["budget.exhaustions"] >= 1
        assert "budget.expansions" in snapshot


class TestBudgetReuse:
    """One budget object, many sequential requests — the serving layer's
    per-tenant pattern.  Exhausted state must never leak forward."""

    @pytest.fixture(scope="class")
    def workload(self):
        return chain_workload(4, rows=60, seed=5)

    def test_reset_clears_exhausted_state(self):
        budget = OptimizerBudget(max_expansions=1)
        budget.charge_expansion("a")
        with pytest.raises(BudgetExhausted):
            budget.charge_expansion("b")
        assert budget.exhausted
        budget.reset()
        assert not budget.exhausted
        assert budget.exhausted_reason is None
        assert budget.expansions == 0
        assert budget.plans == 0
        assert budget.ticks == 0
        budget.charge_expansion("c")  # limit intact, counters fresh

    def test_exhaustion_never_leaks_between_sequential_requests(
        self, workload
    ):
        """Starve request 1, then relax the limits on the *same* budget
        object: request 2 must run a complete, unexhausted search."""
        budget = OptimizerBudget(max_expansions=5)
        optimizer = StarburstOptimizer(workload.catalog, budget=budget)
        starved = optimizer.optimize(workload.query)
        assert starved.budget_exhausted
        budget.max_expansions = None
        fresh = optimizer.optimize(workload.query)
        assert not fresh.budget_exhausted
        assert not fresh.heuristic_fallback
        reference = StarburstOptimizer(workload.catalog).optimize(
            workload.query
        )
        assert fresh.best_cost == pytest.approx(reference.best_cost)

    def test_mutating_limits_between_requests(self, workload):
        """The serving layer reshapes one budget per request (deadline
        propagation): each request sees only its own limits."""
        budget = OptimizerBudget()
        optimizer = StarburstOptimizer(workload.catalog, budget=budget)
        budget.deadline_ticks = 10
        starved = optimizer.optimize(workload.query)
        assert starved.budget_exhausted
        budget.deadline_ticks = None
        unbounded = optimizer.optimize(workload.query)
        assert not unbounded.budget_exhausted
        budget.deadline_ticks = 10
        starved_again = optimizer.optimize(workload.query)
        assert starved_again.budget_exhausted
        assert starved_again.best_cost == pytest.approx(starved.best_cost)

    def test_suspend_nesting_restores_outer_state(self):
        budget = OptimizerBudget(max_expansions=1)
        with budget.suspend():
            with budget.suspend():
                budget.charge_expansion("inner")
            budget.charge_expansion("outer")  # still suspended
        assert budget.expansions == 0
        budget.charge_expansion("live")
        assert budget.expansions == 1

    def test_reset_inside_suspend_unsuspends(self):
        budget = OptimizerBudget(max_expansions=2)
        with budget.suspend():
            budget.reset()
            budget.charge_expansion("after-reset")
        assert budget.expansions == 1
