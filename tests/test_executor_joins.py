"""Unit tests for the join run-time routines (NL / MG / HA), including
sideways information passing and duplicate handling."""

import pytest

from repro.catalog import AccessPath, Catalog, TableDef
from repro.catalog.catalog import make_columns
from repro.cost.propfuncs import PlanFactory
from repro.errors import ExecutionError
from repro.executor import QueryExecutor
from repro.query.expressions import ColumnRef
from repro.query.parser import parse_predicate
from repro.storage import Database

L_K = ColumnRef("L", "K")
L_V = ColumnRef("L", "V")
R_K = ColumnRef("R", "K")
R_W = ColumnRef("R", "W")


@pytest.fixture()
def env():
    cat = Catalog()
    cat.add_table(TableDef("L", make_columns("K", "V")))
    cat.add_table(TableDef("R", make_columns("K", "W")))
    cat.add_index(AccessPath("R_K", "R", ("K",)))
    db = Database(cat)
    db.create_storage("L")
    db.create_storage("R")
    # L keys 0..9; R has duplicate keys (two rows per key 0..4).
    db.load("L", [(k, k * 10) for k in range(10)])
    db.load("R", [(k % 5, k) for k in range(10)])
    db.analyze_all()
    return cat, db, PlanFactory(cat), QueryExecutor(db)


def jp(cat):
    return parse_predicate("L.K = R.K", cat, ("L", "R"))


EXPECTED_PAIRS = sorted(
    (k, w) for k in range(10) for w in range(10) if k == w % 5
)


def result_pairs(rows):
    return sorted((row[L_K], row[R_W]) for row in rows)


class TestNestedLoop:
    def test_nl_with_heap_inner(self, env):
        cat, db, f, ex = env
        outer = f.access_base("L", {L_K, L_V}, set())
        inner = f.access_base("R", {R_K, R_W}, {jp(cat)})
        rows, _ = ex.run_plan(f.join("NL", outer, inner, {jp(cat)}))
        assert result_pairs(rows) == EXPECTED_PAIRS

    def test_nl_with_index_probe_sideways(self, env):
        cat, db, f, ex = env
        outer = f.access_base("L", {L_K, L_V}, set())
        probe = f.get(
            f.access_index("R", cat.path("R", "R_K"), preds={jp(cat)}),
            "R",
            {R_W},
        )
        rows, stats = ex.run_plan(f.join("NL", outer, probe, {jp(cat)}))
        assert result_pairs(rows) == EXPECTED_PAIRS

    def test_nl_with_materialized_inner(self, env):
        cat, db, f, ex = env
        outer = f.access_base("L", {L_K, L_V}, set())
        temp = f.access_temp(
            f.store(f.access_base("R", {R_K, R_W}, set())), preds={jp(cat)}
        )
        rows, stats = ex.run_plan(f.join("NL", outer, temp, {jp(cat)}))
        assert result_pairs(rows) == EXPECTED_PAIRS
        assert stats.temps_materialized == 1  # built once, rescanned 10x

    def test_nl_with_dynamic_index_inner(self, env):
        cat, db, f, ex = env
        outer = f.access_base("L", {L_K, L_V}, set())
        indexed = f.buildix(f.store(f.access_base("R", {R_K, R_W}, set())), (R_K,))
        path = next(iter(indexed.props.paths))
        probe = f.access_temp_index(indexed, path, preds={jp(cat)})
        rows, _ = ex.run_plan(f.join("NL", outer, probe, {jp(cat)}))
        assert result_pairs(rows) == EXPECTED_PAIRS

    def test_nl_composite_outer_binding_chain(self, env):
        """Two nested NL joins: the innermost probe sees bindings from
        both enclosing outers."""
        cat, db, f, ex = env
        # Join L with R twice... use a second predicate touching both.
        p2 = parse_predicate("L.V = R.W * 10", cat, ("L", "R"))
        outer = f.access_base("L", {L_K, L_V}, set())
        inner = f.access_base("R", {R_K, R_W}, {jp(cat), p2})
        rows, _ = ex.run_plan(f.join("NL", outer, inner, {jp(cat), p2}))
        assert result_pairs(rows) == [(k, k) for k in range(5)]


class TestMergeJoin:
    def test_mg_basic(self, env):
        cat, db, f, ex = env
        outer = f.sort(f.access_base("L", {L_K, L_V}, set()), (L_K,))
        inner = f.sort(f.access_base("R", {R_K, R_W}, set()), (R_K,))
        rows, _ = ex.run_plan(f.join("MG", outer, inner, {jp(cat)}))
        assert result_pairs(rows) == EXPECTED_PAIRS

    def test_mg_duplicate_groups_cross_product(self, env):
        cat, db, f, ex = env
        outer = f.sort(f.access_base("R", {R_K, R_W}, set()), (R_K,))
        inner = f.sort(f.access_base("L", {L_K, L_V}, set()), (L_K,))
        rows, _ = ex.run_plan(f.join("MG", outer, inner, {jp(cat)}))
        # R has 2 rows per key 0..4, L one row per key: 10 result rows.
        assert len(rows) == 10

    def test_mg_via_index_order(self, env):
        cat, db, f, ex = env
        outer = f.sort(f.access_base("L", {L_K, L_V}, set()), (L_K,))
        inner = f.get(f.access_index("R", cat.path("R", "R_K")), "R", {R_W})
        rows, _ = ex.run_plan(f.join("MG", outer, inner, {jp(cat)}))
        assert result_pairs(rows) == EXPECTED_PAIRS

    def test_mg_detects_out_of_order_input(self, env):
        cat, db, f, ex = env
        # Build an MG join whose inner is NOT actually sorted: factory
        # would reject it, so fabricate via a heap access node and a
        # hand-built join (simulating a bad rule set).
        outer = f.sort(f.access_base("L", {L_K, L_V}, set()), (L_K,))
        inner = f.access_base("R", {R_K, R_W}, set())  # heap order: 0..4,0..4
        from repro.plans.plan import PlanNode, make_params

        bad = PlanNode(
            "JOIN",
            "MG",
            make_params(join_preds=frozenset({jp(cat)}), residual_preds=frozenset()),
            (outer, inner),
            outer.props,
        )
        with pytest.raises(ExecutionError, match="out of order"):
            ex.run_plan(bad)

    def test_mg_residual_predicates_applied(self, env):
        cat, db, f, ex = env
        residual = parse_predicate("R.W >= 5", cat, ("L", "R"))
        outer = f.sort(f.access_base("L", {L_K, L_V}, set()), (L_K,))
        inner = f.sort(f.access_base("R", {R_K, R_W}, set()), (R_K,))
        rows, _ = ex.run_plan(f.join("MG", outer, inner, {jp(cat)}, {residual}))
        assert all(row[R_W] >= 5 for row in rows)

    def test_mg_without_merge_preds_rejected(self, env):
        cat, db, f, ex = env
        p = parse_predicate("L.V = R.W + R.K", cat, ("L", "R"))  # expression side
        outer = f.sort(f.access_base("L", {L_K, L_V}, set()), (L_K,))
        inner = f.sort(f.access_base("R", {R_K, R_W}, set()), (R_K,))
        plan = f.join("MG", outer, inner, {p})
        with pytest.raises(ExecutionError, match="column-to-column"):
            ex.run_plan(plan)


class TestHashJoin:
    def test_ha_basic(self, env):
        cat, db, f, ex = env
        outer = f.access_base("L", {L_K, L_V}, set())
        inner = f.access_base("R", {R_K, R_W}, set())
        rows, _ = ex.run_plan(f.join("HA", outer, inner, {jp(cat)}))
        assert result_pairs(rows) == EXPECTED_PAIRS

    def test_ha_expression_keys(self, env):
        cat, db, f, ex = env
        p = parse_predicate("L.K * 10 = R.W * 10", cat, ("L", "R"))
        outer = f.access_base("L", {L_K, L_V}, set())
        inner = f.access_base("R", {R_K, R_W}, set())
        rows, _ = ex.run_plan(f.join("HA", outer, inner, {p}))
        assert sorted((r[L_K], r[R_W]) for r in rows) == [(k, k) for k in range(10) if k < 10]

    def test_ha_rechecks_predicates(self, env):
        """Residual recheck (hash collisions, paper 4.5.1): passing the
        predicate as both join and residual changes nothing."""
        cat, db, f, ex = env
        outer = f.access_base("L", {L_K, L_V}, set())
        inner = f.access_base("R", {R_K, R_W}, set())
        rows, _ = ex.run_plan(f.join("HA", outer, inner, {jp(cat)}, {jp(cat)}))
        assert result_pairs(rows) == EXPECTED_PAIRS

    def test_ha_without_hashable_rejected(self, env):
        cat, db, f, ex = env
        p = parse_predicate("L.K < R.K", cat, ("L", "R"))
        plan = f.join(
            "HA",
            f.access_base("L", {L_K}, set()),
            f.access_base("R", {R_K}, set()),
            {p},
        )
        with pytest.raises(ExecutionError, match="hashable"):
            ex.run_plan(plan)


class TestNullHandling:
    def test_null_keys_never_match(self):
        cat = Catalog()
        cat.add_table(TableDef("L", make_columns("K", "V")))
        cat.add_table(TableDef("R", make_columns("K", "W")))
        db = Database(cat)
        db.create_storage("L")
        db.create_storage("R")
        db.load("L", [(None, 1), (2, 2)])
        db.load("R", [(None, 7), (2, 8)])
        db.analyze_all()
        f = PlanFactory(cat)
        ex = QueryExecutor(db)
        p = parse_predicate("L.K = R.K", cat, ("L", "R"))
        for flavor, outer_sorted in (("NL", False), ("HA", False), ("MG", True)):
            outer = f.access_base("L", {L_K, L_V}, set())
            inner = f.access_base("R", {R_K, R_W}, set())
            if outer_sorted:
                outer = f.sort(outer, (L_K,))
                inner = f.sort(inner, (R_K,))
            rows, _ = ex.run_plan(f.join(flavor, outer, inner, {p}))
            assert [(r[L_K], r[R_W]) for r in rows] == [(2, 8)], flavor
