"""Tests for the [LEE 88]-style evaluation-order control: alternatives
are taken in definition order, with an optional per-reference budget."""

import pytest

from repro.config import OptimizerConfig
from repro.executor import QueryExecutor, naive_evaluate
from repro.optimizer import StarburstOptimizer
from repro.plans.sap import Stream
from repro.query.parser import parse_query
from repro.stars.dsl import parse_rules
from repro.stars.engine import StarEngine
from repro.workloads.generator import chain_workload

RULES = """
star S(T, C) {
    alt -> ACCESS(T, C, {});
    alt -> SORT(ACCESS(T, C, {}), first_col(C));
    alt -> STORE(ACCESS(T, C, {}));
}
"""


def make_engine(catalog, limit=None):
    from repro.stars.registry import default_registry

    registry = default_registry()
    registry.register("first_col", lambda ctx, cols: tuple(sorted(cols, key=str))[:1])
    query = parse_query("SELECT MGR FROM DEPT", catalog)
    return StarEngine(
        parse_rules(RULES),
        catalog,
        query,
        registry=registry,
        config=OptimizerConfig(max_plans_per_reference=limit),
    )


class TestBudget:
    def test_unlimited_takes_all(self, catalog):
        engine = make_engine(catalog)
        from repro.query.expressions import ColumnRef

        sap = engine.expand("S", ("DEPT", frozenset({ColumnRef("DEPT", "MGR")})))
        assert len(sap) == 3

    def test_budget_stops_early(self, catalog):
        engine = make_engine(catalog, limit=1)
        from repro.query.expressions import ColumnRef

        sap = engine.expand("S", ("DEPT", frozenset({ColumnRef("DEPT", "MGR")})))
        assert len(sap) == 1
        # The FIRST alternative in definition order is the one taken.
        assert next(iter(sap)).op == "ACCESS"
        # Later alternatives were never even considered.
        assert engine.stats.alternatives_considered == 1

    def test_budget_of_two(self, catalog):
        engine = make_engine(catalog, limit=2)
        from repro.query.expressions import ColumnRef

        sap = engine.expand("S", ("DEPT", frozenset({ColumnRef("DEPT", "MGR")})))
        assert len(sap) == 2

    def test_budget_validated(self):
        with pytest.raises(ValueError):
            OptimizerConfig(max_plans_per_reference=0)


class TestBudgetedOptimization:
    def test_budgeted_optimizer_still_correct(self):
        """A tight budget trades plan quality for speed but never
        correctness."""
        wl = chain_workload(3, rows=50, seed=17)
        full = StarburstOptimizer(wl.catalog).optimize(wl.query)
        budgeted = StarburstOptimizer(
            wl.catalog, config=OptimizerConfig(max_plans_per_reference=1)
        ).optimize(wl.query)
        assert budgeted.stats.alternatives_considered <= full.stats.alternatives_considered
        assert budgeted.best_cost >= full.best_cost - 1e-9
        executor = QueryExecutor(wl.database)
        reference = naive_evaluate(wl.query, wl.database).as_multiset()
        assert (
            executor.run(wl.query, budgeted.best_plan).as_multiset() == reference
        )
