"""PR 9 rule compilation: AST → closures, interpreter as parity oracle.

The load-bearing invariant, mirroring :mod:`tests.test_hotpath`: the
compiled fast path must be *invisible* in the optimizer's answers — the
same best plan, cost, and full alternatives set with
``compile_stars`` on or off.  Expression-level parity is checked
differentially with hypothesis over randomly generated typed
expressions and environments.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import OptimizerConfig, StarburstOptimizer
from repro.__main__ import main as cli_main
from repro.errors import RuleError
from repro.plans.sap import SAP
from repro.stars.ast import (
    Alternative,
    Call,
    Compare,
    Const,
    ForAll,
    Logical,
    Negate,
    Param,
    RuleSet,
    SetExpr,
    SetLiteral,
    StarDef,
)
from repro.stars.builtin_rules import default_rules, extended_rules
from repro.stars.compile import compile_expr, compile_rules, uncompilable_sites
from repro.stars.engine import StarEngine
from repro.stars.registry import default_registry
from repro.stars.validate import validate_rules
from repro.workloads import (
    chain_workload,
    clique_workload,
    figure1_query,
    paper_catalog,
    star_workload,
)


def _workloads():
    """Small paper-workload suite: every shape, exhaustible sizes."""
    local = paper_catalog()
    distributed = paper_catalog(distributed=True)
    chain = chain_workload(3, rows=30, seed=31)
    star = star_workload(3, rows=30, seed=31)
    clique = clique_workload(3, rows=30, seed=31)
    return [
        ("paper", local, figure1_query(local)),
        ("paper-distributed", distributed, figure1_query(distributed)),
        ("chain:3", chain.catalog, chain.query),
        ("star:3", star.catalog, star.query),
        ("clique:3", clique.catalog, clique.query),
    ]


def _best(catalog, query, config=None):
    return StarburstOptimizer(catalog, config=config).optimize(query)


def _pick_registry():
    """default_registry plus ``t_pick(key)``: a singleton SAP per key,
    built from real plan nodes of the paper query."""
    catalog = paper_catalog()
    plans = list(_best(catalog, figure1_query(catalog)).alternatives)
    assert len(plans) >= 2
    by_key = {i: SAP([p]) for i, p in enumerate(plans[:2])}
    registry = default_registry()
    registry.register("t_pick", lambda ctx, key: by_key[key])
    return registry


def _pick_rules():
    """A one-STAR rule set whose body is a pure registry call — small
    enough to reason about staleness and dispatch caching directly."""
    return RuleSet([
        StarDef(
            name="PickAll",
            params=("K",),
            alternatives=(Alternative(term=Call("t_pick", (Param("K"),))),),
        )
    ])


def _engine(compile_stars=False, registry=None, rules=None):
    catalog = paper_catalog()
    return StarEngine(
        rules if rules is not None else extended_rules(),
        catalog,
        figure1_query(catalog),
        registry=registry,
        config=OptimizerConfig(compile_stars=compile_stars),
    )


# ---------------------------------------------------------------------------
# Differential expression evaluation (hypothesis)
# ---------------------------------------------------------------------------

#: Fixed parameter frame for generated expressions: two scalar slots and
#: two set slots, so Compare/SetExpr operands stay type-compatible.
PARAMS = ("A", "B", "S", "T")

_atoms = st.one_of(st.integers(-5, 5), st.sampled_from(["EMP", "DEPT", "x"]))
_atom_exprs = st.one_of(
    st.builds(Const, _atoms),
    st.sampled_from([Param("A"), Param("B")]),
)
_set_values = st.frozensets(_atoms, max_size=4)
_set_leaf = st.one_of(
    st.builds(Const, _set_values),
    st.sampled_from([Param("S"), Param("T")]),
    st.builds(SetLiteral, st.tuples(_atom_exprs, _atom_exprs)),
)
_set_exprs = st.recursive(
    _set_leaf,
    lambda children: st.builds(
        SetExpr, st.sampled_from(["|", "&", "-"]), children, children
    ),
    max_leaves=6,
)
_bool_leaf = st.one_of(
    st.builds(Compare, st.sampled_from(["==", "!="]), _atom_exprs, _atom_exprs),
    st.builds(
        Compare,
        st.sampled_from(["==", "!=", "<=", "<", ">=", ">"]),
        _set_exprs,
        _set_exprs,
    ),
    st.builds(Compare, st.just("in"), _atom_exprs, _set_exprs),
)
_bool_exprs = st.recursive(
    _bool_leaf,
    lambda children: st.one_of(
        st.builds(
            Logical,
            st.sampled_from(["and", "or"]),
            st.lists(children, min_size=2, max_size=3).map(tuple),
        ),
        st.builds(Negate, children),
    ),
    max_leaves=8,
)
_any_exprs = st.one_of(_bool_exprs, _set_exprs, _atom_exprs)
_envs = st.fixed_dictionaries({
    "A": _atoms, "B": _atoms, "S": _set_values, "T": _set_values,
})


class TestDifferentialExpressions:
    """Compiled closure and interpreter agree on every generated
    (expression, environment) pair — value parity, not just plan parity."""

    engine = _engine()

    @given(expr=_any_exprs, env=_envs)
    @settings(max_examples=200, deadline=None)
    def test_compiled_matches_interpreted(self, expr, env):
        fn, n_slots, _ = compile_expr(expr, PARAMS)
        assert n_slots == len(PARAMS)
        env_list = [env[p] for p in PARAMS]
        assert fn(self.engine, env_list) == self.engine._eval_expr(expr, env)

    @given(env=_envs)
    @settings(max_examples=20, deadline=None)
    def test_registry_call_parity(self, env):
        registry = default_registry()
        registry.register("t_pair", lambda ctx, a, b: frozenset({a, b}))
        engine = _engine(registry=registry)
        expr = Compare(
            "<=",
            Call("t_pair", (Param("A"), Param("B"))),
            SetExpr("|", Param("S"), SetLiteral((Param("A"), Param("B")))),
        )
        fn, _, stats = compile_expr(
            expr, PARAMS, registry=registry
        )
        assert stats.static_calls == 1
        env_list = [env[p] for p in PARAMS]
        assert fn(engine, env_list) == engine._eval_expr(expr, env)

    def test_unregistered_call_raises_rule_error_both_paths(self):
        expr = Call("no_such_fn", (Param("A"),))
        fn, _, stats = compile_expr(expr, PARAMS)
        assert stats.fallbacks == 1
        env = {"A": 1, "B": 2, "S": frozenset(), "T": frozenset()}
        with pytest.raises(RuleError):
            self.engine._eval_expr(expr, env)
        with pytest.raises(RuleError):
            fn(self.engine, [env[p] for p in PARAMS])

    def test_constant_subtrees_fold(self):
        expr = SetExpr(
            "|", SetLiteral((Const(1), Const(2))), Const(frozenset({3}))
        )
        fn, _, stats = compile_expr(expr, PARAMS)
        assert stats.constant_folds > 0
        assert fn(self.engine, [None] * 4) == frozenset({1, 2, 3})


# ---------------------------------------------------------------------------
# Plan-level parity: the flag must be invisible
# ---------------------------------------------------------------------------


class TestCompiledPlanParity:
    @pytest.mark.parametrize(
        "name,catalog,query", _workloads(), ids=lambda v: str(v)[:20]
    )
    def test_identical_plans_costs_and_alternatives(self, name, catalog, query):
        on = _best(catalog, query)
        off = _best(catalog, query, OptimizerConfig(compile_stars=False))
        assert on.engine.compiled is not None  # default-on
        assert off.engine.compiled is None
        assert on.stats.compiled_star_evals > 0
        assert off.stats.compiled_star_evals == 0
        assert on.best_plan.digest == off.best_plan.digest, (
            f"{name}: best plan changed"
        )
        assert on.best_cost == pytest.approx(off.best_cost), (
            f"{name}: best cost changed"
        )
        assert sorted(p.digest for p in on.alternatives) == sorted(
            p.digest for p in off.alternatives
        ), f"{name}: alternatives set changed"

    def test_expansion_stats_identical_modulo_compiled_counter(self):
        """The compiled path walks the same alternatives, conditions, and
        ∀-iterations as the interpreter — only the new counter differs."""
        wl = chain_workload(3, rows=30, seed=31)
        on = _best(wl.catalog, wl.query).stats
        off = _best(
            wl.catalog, wl.query, OptimizerConfig(compile_stars=False)
        ).stats
        for field in (
            "alternatives_considered",
            "conditions_evaluated",
            "forall_iterations",
        ):
            assert getattr(on, field) == getattr(off, field), field

    def test_forall_shadowing_parity(self):
        """A ∀ variable shadowing a STAR parameter of the same name: the
        compiled slot environment must see the loop element, exactly as
        the interpreter's dict environment does."""
        registry = _pick_registry()
        rules = RuleSet([
            StarDef(
                name="ShadowRoot",
                params=("X",),
                alternatives=(
                    Alternative(
                        term=ForAll(
                            var="X",
                            set_expr=Param("X"),
                            term=Call("t_pick", (Param("X"),)),
                        )
                    ),
                ),
            )
        ])
        args = (frozenset({0, 1}),)
        compiled_sap = _engine(
            compile_stars=True, registry=registry, rules=rules
        ).expand("ShadowRoot", args)
        interpreted_sap = _engine(
            compile_stars=False, registry=registry, rules=rules
        ).expand("ShadowRoot", args)
        assert {p.digest for p in compiled_sap} == {
            p.digest for p in interpreted_sap
        }
        assert len(compiled_sap) == 2


# ---------------------------------------------------------------------------
# Program cache and staleness
# ---------------------------------------------------------------------------


class TestProgramCache:
    def test_same_ruleset_and_registry_share_one_program(self):
        rules = extended_rules()
        registry = default_registry()
        first = compile_rules(rules, registry)
        second = compile_rules(rules, registry)
        assert second is first
        assert second.stats.cache_hits >= 1

    def test_registry_copies_share_the_program(self):
        """default_registry() copies hold the same function objects, so
        their fingerprints — and compiled programs — are equal."""
        rules = extended_rules()
        assert compile_rules(rules, default_registry()) is compile_rules(
            rules, default_registry()
        )

    def test_mutation_invalidates_the_program(self):
        rules = default_rules()
        registry = default_registry()
        before = compile_rules(rules, registry)
        rules.add(
            StarDef(
                name="Noop",
                params=("P",),
                alternatives=(Alternative(term=Param("P")),),
            )
        )
        after = compile_rules(rules, registry)
        assert after is not before
        assert "Noop" in after.stars
        assert "Noop" not in before.stars

    def test_stale_program_falls_back_to_interpreter(self):
        """Rules mutated under a live engine: the compiled snapshot no
        longer matches the StarDef, so expansion takes the oracle path
        instead of running stale closures."""
        registry = _pick_registry()
        rules = _pick_rules()
        engine = _engine(compile_stars=True, registry=registry, rules=rules)
        fresh = engine.expand("PickAll", (0,))
        assert engine.stats.compiled_star_evals == 1
        # Swap in a semantically identical but *different* StarDef: the
        # engine's snapshot now points at a dead object.
        rules.replace(_pick_rules().get("PickAll"))
        stale = engine.expand("PickAll", (0,))
        assert engine.stats.compiled_star_evals == 1  # interpreter ran
        assert {p.digest for p in stale} == {p.digest for p in fresh}

    def test_new_engine_recompiles_after_mutation(self):
        """The version-keyed cache means post-mutation engines get a
        fresh program, not the stale snapshot."""
        registry = _pick_registry()
        rules = _pick_rules()
        first = _engine(compile_stars=True, registry=registry, rules=rules)
        rules.replace(_pick_rules().get("PickAll"))
        second = _engine(compile_stars=True, registry=registry, rules=rules)
        assert second.compiled is not first.compiled
        second.expand("PickAll", (1,))
        assert second.stats.compiled_star_evals == 1


# ---------------------------------------------------------------------------
# Interpreter-side satellite: cached Call → StarRef dispatch
# ---------------------------------------------------------------------------


class TestCallRefCache:
    def test_call_to_star_reuses_one_starref(self):
        engine = _engine(
            compile_stars=False, registry=_pick_registry(),
            rules=_pick_rules(),
        )
        expr = Call("PickAll", (Const(0),))
        env: dict = {}
        first = engine._eval_expr(expr, env)
        assert len(engine._call_refs) == 1
        ref = next(iter(engine._call_refs.values()))
        second = engine._eval_expr(expr, env)
        assert engine._call_refs[id(expr)] is ref
        assert {p.digest for p in first} == {p.digest for p in second}


# ---------------------------------------------------------------------------
# Validation surfaces uncompilable rules
# ---------------------------------------------------------------------------


class TestValidationWarnings:
    def test_builtin_rules_compile_clean(self):
        registry = default_registry()
        for rules in (
            default_rules(),
            extended_rules(),
            extended_rules(
                tid_sort=True, or_index=True, and_index=True, semijoin=True
            ),
        ):
            assert uncompilable_sites(rules, registry) == ()
            report = validate_rules(rules, registry)
            assert report.ok and not report.warnings

    def test_unregistered_call_warns(self):
        rules = default_rules()
        rules.add(
            StarDef(
                name="Sloppy",
                params=("P",),
                alternatives=(
                    Alternative(
                        term=Param("P"),
                        condition=Call("mystery_fn", (Param("P"),)),
                    ),
                ),
            )
        )
        registry = default_registry()
        # Unknown names are a validation *error*; the compiler warning
        # channel targets legal-but-uncompilable sites, so register it
        # late the way a dynamically-patched registry would miss it.
        sites = uncompilable_sites(rules, registry)
        assert any("Sloppy" in s for s in sites)
        assert any("interpreted at runtime" in s for s in sites)


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


class TestCli:
    def test_optimize_no_compile_matches_default(self, capsys):
        assert cli_main(["optimize", "SELECT NAME FROM EMP"]) == 0
        default_out = capsys.readouterr().out
        assert (
            cli_main(["optimize", "SELECT NAME FROM EMP", "--no-compile"]) == 0
        )
        nocompile_out = capsys.readouterr().out
        pick = lambda text: [
            line for line in text.splitlines()
            if line.startswith(("best plan", "cost"))
        ]
        assert pick(default_out) == pick(nocompile_out)

    def test_optimize_profile_reports_compile_split(self, capsys):
        rc = cli_main(["optimize", "SELECT NAME FROM EMP", "--profile"])
        assert rc == 0
        assert "compile split:" in capsys.readouterr().out

    def test_optimize_profile_reports_compile_off(self, capsys):
        rc = cli_main([
            "optimize", "SELECT NAME FROM EMP", "--profile", "--no-compile",
        ])
        assert rc == 0
        assert "compile off" in capsys.readouterr().out

    def test_bench_opt_no_compile_layers_line(self, capsys):
        rc = cli_main([
            "bench-opt", "--workload", "chain:3", "--queries", "1",
            "--no-compile",
        ])
        assert rc == 0
        assert "compile=off" in capsys.readouterr().out
