"""Integration tests pinning the paper's three figures.

* Figure 1: the sort-merge plan for the DEPT ⋈ EMP example query, with
  the exact operator nesting the paper draws.
* Figure 2: the example property vector contents.
* Figure 3: the Glue mechanism injecting SHIP/SORT veneers over three
  pre-existing plans for DEPT and choosing the cheapest.
"""

import pytest

from repro.cost.propfuncs import PlanFactory
from repro.config import OptimizerConfig
from repro.plans.operators import ACCESS, GET, JOIN, SHIP, SORT
from repro.plans.plan import render_functional
from repro.plans.properties import requirements
from repro.plans.sap import Stream
from repro.query.expressions import ColumnRef
from repro.stars.builtin_rules import default_rules
from repro.stars.engine import StarEngine
from repro.workloads.paper import figure1_query, paper_catalog

DNO = ColumnRef("DEPT", "DNO")
MGR = ColumnRef("DEPT", "MGR")


@pytest.fixture()
def fig1_env():
    catalog = paper_catalog()
    query = figure1_query(catalog)
    # Disable pruning so the *full* repertoire is visible (the cheapest
    # variant would otherwise dominate the illustrative Figure-1 shape).
    engine = StarEngine(
        default_rules(), catalog, query, config=OptimizerConfig(prune=False)
    )
    jp = query.eligible_predicates(frozenset({"DEPT"}), frozenset({"EMP"}))
    sap = engine.expand(
        "JoinRoot", (Stream(frozenset({"DEPT"})), Stream(frozenset({"EMP"})), jp)
    )
    return catalog, query, engine, sap


def find_figure1_plan(sap):
    """The MG join with DEPT (sorted scan) outer and EMP (index + GET)
    inner — exactly Figure 1."""
    for plan in sap:
        if plan.op != JOIN or plan.flavor != "MG":
            continue
        outer, inner = plan.inputs
        if outer.props.tables != {"DEPT"} or inner.props.tables != {"EMP"}:
            continue
        if [n.op for n in outer.nodes()] != [SORT, ACCESS]:
            continue
        if [n.op for n in inner.nodes()] != [GET, ACCESS]:
            continue
        return plan
    return None


class TestFigure1:
    def test_plan_generated(self, fig1_env):
        _, _, _, sap = fig1_env
        assert find_figure1_plan(sap) is not None

    def test_outer_sorted_on_dno_with_mgr_predicate(self, fig1_env):
        _, _, _, sap = fig1_env
        plan = find_figure1_plan(sap)
        sort_node = plan.inputs[0]
        assert sort_node.param("order") == (DNO,)
        access = sort_node.inputs[0]
        assert access.param("table") == "DEPT"
        preds = access.param("preds")
        assert len(preds) == 1 and next(iter(preds)).tables() == {"DEPT"}

    def test_inner_uses_dno_index_and_gets_name_address(self, fig1_env):
        _, _, _, sap = fig1_env
        plan = find_figure1_plan(sap)
        get_node = plan.inputs[1]
        assert get_node.param("table") == "EMP"
        fetched = {c.column for c in get_node.param("columns")}
        assert {"NAME", "ADDRESS"} <= fetched
        index_access = get_node.inputs[0]
        assert index_access.flavor == "index"
        assert index_access.param("path").name == "EMP_DNO"
        assert ColumnRef("EMP", "#TID") in index_access.param("columns")

    def test_functional_notation_matches_paper_nesting(self, fig1_env):
        _, _, _, sap = fig1_env
        text = render_functional(find_figure1_plan(sap))
        assert text.startswith("JOIN(MG")
        assert "SORT(DEPT.DNO, ACCESS(heap, DEPT" in text
        assert "GET(EMP" in text
        assert "ACCESS(index, EMP_DNO" in text

    def test_join_predicate_applied_by_merge(self, fig1_env):
        _, _, _, sap = fig1_env
        plan = find_figure1_plan(sap)
        assert {str(p) for p in plan.param("join_preds")} == {"DEPT.DNO = EMP.DNO"}
        assert plan.param("residual_preds") == frozenset()


class TestFigure2:
    def test_property_vector_of_figure1_plan(self, fig1_env):
        catalog, query, engine, sap = fig1_env
        plan = find_figure1_plan(sap)
        props = plan.props
        # Relational (WHAT)
        assert props.tables == {"DEPT", "EMP"}
        assert {str(p) for p in props.preds} == {
            "DEPT.DNO = EMP.DNO",
            "DEPT.MGR = 'Haas'",
        }
        assert {c.column for c in props.cols} >= {"DNO", "MGR", "NAME", "ADDRESS"}
        # Physical (HOW)
        assert props.order == (DNO,)  # merge preserves the outer's order
        assert props.site == "local"
        assert not props.temp
        # Estimated (HOW MUCH)
        assert props.card > 0
        assert engine.ctx.model.total(props.cost) > 0

    def test_initial_properties_from_catalogs(self, fig1_env):
        """Section 3.1: initial properties of stored objects come from
        the system catalogs."""
        catalog, _, engine, _ = fig1_env
        factory = engine.ctx.factory
        scan = factory.access_base("DEPT", {DNO, MGR}, set())
        assert scan.props.site == catalog.table("DEPT").site
        assert scan.props.card == catalog.table_stats("DEPT").card
        assert scan.props.preds == frozenset()
        assert not scan.props.temp


class TestFigure3:
    """DEPT stored at N.Y.; requirement [site=L.A., order=DNO].  Three
    pre-existing plans: (1) already sorted at N.Y., (2) a plain ACCESS,
    (3) plan 2 already shipped to L.A.  Glue must add SHIP to (1),
    SORT+SHIP to (2), SORT to (3), and return the cheapest."""

    @pytest.fixture()
    def fig3(self):
        catalog = paper_catalog(distributed=True)
        query = figure1_query(catalog)
        engine = StarEngine(default_rules(), catalog, query)
        factory: PlanFactory = engine.ctx.factory
        base = factory.access_base("DEPT", {DNO, MGR}, set())
        plan1 = factory.sort(base, (DNO,))          # sorted, still at N.Y.
        plan2 = base                                 # plain ACCESS at N.Y.
        plan3 = factory.ship(base, "L.A.")           # shipped, unsorted
        return engine, (plan1, plan2, plan3)

    def test_veneers_injected_per_plan(self, fig3):
        engine, plans = fig3
        stream = Stream(
            frozenset({"DEPT"}),
            requirements(order=[DNO], site="L.A."),
            fixed_plans=plans,
        )
        out = engine.ctx.glue.resolve(stream, mode="all")
        for plan in out:
            assert plan.props.site == "L.A."
            assert plan.props.order[:1] == (DNO,)
        shapes = {tuple(n.op for n in p.nodes()) for p in out}
        # SHIP(SORT(ACCESS)) survives; its SORT∘SHIP twin costs the same
        # and is pruned as dominated (Glue keeps one witness per class).
        assert (SHIP, SORT, ACCESS) in shapes

    def test_plan3_gets_only_a_sort(self, fig3):
        """The third plan of Figure 3 (already shipped to L.A.) needs
        only a SORT veneer."""
        engine, plans = fig3
        stream = Stream(
            frozenset({"DEPT"}),
            requirements(order=[DNO], site="L.A."),
            fixed_plans=(plans[2],),
        )
        out = engine.ctx.glue.resolve(stream, mode="all")
        shapes = {tuple(n.op for n in p.nodes()) for p in out}
        assert shapes == {(SORT, SHIP, ACCESS)}

    def test_cheapest_chosen(self, fig3):
        engine, plans = fig3
        stream = Stream(
            frozenset({"DEPT"}),
            requirements(order=[DNO], site="L.A."),
            fixed_plans=plans,
        )
        all_plans = engine.ctx.glue.resolve(stream, mode="all")
        cheapest = engine.ctx.glue.resolve(stream, mode="cheapest")
        assert len(cheapest) == 1
        model = engine.ctx.model
        best = next(iter(cheapest))
        assert model.total(best.props.cost) == min(
            model.total(p.props.cost) for p in all_plans
        )

    def test_requirements_shown_as_ears(self, fig3):
        """Figure 3 draws order/site 'ears' on each plan's top LOLEPOP."""
        engine, plans = fig3
        from repro.plans.plan import render_tree

        stream = Stream(
            frozenset({"DEPT"}),
            requirements(order=[DNO], site="L.A."),
            fixed_plans=plans,
        )
        out = engine.ctx.glue.resolve(stream, mode="cheapest")
        text = render_tree(next(iter(out)), show_properties=True)
        assert "order: DNO" in text
        assert "site: L.A." in text
