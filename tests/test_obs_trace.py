"""Tests for the structured tracer (repro.obs.trace)."""

import json

import pytest

from repro.obs.trace import (
    CATEGORIES,
    EVENT_SCHEMA,
    TraceEvent,
    Tracer,
    active_tracer,
    validate_events,
    validate_jsonl,
)


class FakeClock:
    """A deterministic clock advancing a fixed step per reading."""

    def __init__(self, step: float = 0.001):
        self.now = 0.0
        self.step = step

    def __call__(self) -> float:
        self.now += self.step
        return self.now


class TestSpans:
    def test_nested_spans_record_depth_and_parent(self):
        tracer = Tracer(clock=FakeClock())
        outer = tracer.begin("star", "JoinRoot")
        inner = tracer.begin("star", "JMeth")
        tracer.end(inner, plans=2)
        tracer.end(outer, plans=3)
        events = tracer.events()
        assert [e.name for e in events] == ["JMeth", "JoinRoot"]
        assert events[0].depth == 1 and events[0].parent == outer
        assert events[1].depth == 0 and events[1].parent is None
        assert events[0].args == {"plans": 2}

    def test_completion_order_and_seq_are_monotone(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("glue", "resolve"):
            tracer.instant("plantable", "probe", hit=False)
            with tracer.span("star", "AccessRoot"):
                pass
        names = [e.name for e in tracer.events()]
        assert names == ["probe", "AccessRoot", "resolve"]
        seqs = [e.seq for e in tracer.events()]
        assert seqs == sorted(seqs) and len(set(seqs)) == len(seqs)

    def test_out_of_order_end_by_span_id(self):
        """Executor generators close in GC order, not stack order."""
        tracer = Tracer(clock=FakeClock())
        first = tracer.begin("executor", "JOIN(NL)")
        second = tracer.begin("executor", "ACCESS(heap)")
        tracer.end(first, rows=10)  # outer closes before inner
        tracer.end(second, rows=50)
        names = [e.name for e in tracer.events()]
        assert names == ["JOIN(NL)", "ACCESS(heap)"]
        assert tracer.open_spans == 0

    def test_end_unknown_or_empty_is_silent(self):
        tracer = Tracer()
        tracer.end()  # empty stack
        span = tracer.begin("star", "S")
        tracer.end(span + 999)  # unknown id
        assert tracer.open_spans == 1
        tracer.end(span)
        assert len(tracer) == 1

    def test_span_durations_cover_children(self):
        clock = FakeClock(step=1.0)
        tracer = Tracer(clock=clock)
        outer = tracer.begin("star", "outer")
        inner = tracer.begin("star", "inner")
        tracer.end(inner)
        tracer.end(outer)
        by_name = {e.name: e for e in tracer.events()}
        assert by_name["outer"].ts < by_name["inner"].ts
        assert by_name["outer"].dur > by_name["inner"].dur


class TestDisabled:
    def test_disabled_tracer_records_nothing(self):
        tracer = Tracer.disabled()
        span = tracer.begin("star", "S")
        tracer.instant("glue", "veneer")
        tracer.end(span)
        assert len(tracer) == 0 and tracer.open_spans == 0

    def test_active_tracer_normalizes(self):
        assert active_tracer(None) is None
        assert active_tracer(Tracer.disabled()) is None
        live = Tracer()
        assert active_tracer(live) is live


class TestRingBuffer:
    def test_eviction_counts_dropped_and_keeps_newest(self):
        tracer = Tracer(capacity=3)
        for i in range(10):
            tracer.instant("star", f"e{i}")
        assert len(tracer) == 3
        assert tracer.dropped == 7
        assert [e.name for e in tracer.events()] == ["e7", "e8", "e9"]

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            Tracer(capacity=0)


class TestExport:
    def _sample(self) -> Tracer:
        tracer = Tracer(clock=FakeClock())
        with tracer.span("optimizer", "optimize", query="Q"):
            tracer.instant("chaos", "site_killed", site="N.Y.")
        return tracer

    def test_jsonl_round_trips_and_validates(self):
        tracer = self._sample()
        text = tracer.to_jsonl()
        records = [json.loads(line) for line in text.splitlines()]
        assert len(records) == 2
        assert set(records[0]) == set(EVENT_SCHEMA)
        assert validate_jsonl(text) == []

    def test_chrome_export_is_loadable(self):
        tracer = self._sample()
        data = json.loads(tracer.to_chrome())
        events = data["traceEvents"]
        assert len(events) == 2
        instant = next(e for e in events if e["ph"] == "i")
        span = next(e for e in events if e["ph"] == "X")
        assert instant["s"] == "t" and "dur" not in instant
        assert span["dur"] > 0
        assert all(e["pid"] == 1 and e["tid"] == 1 for e in events)

    def test_args_coerced_to_scalars(self):
        tracer = Tracer()
        tracer.instant("star", "S", stream=frozenset({"EMP"}), n=3, ok=True)
        (event,) = tracer.events()
        assert isinstance(event.args["stream"], str)
        assert event.args["n"] == 3 and event.args["ok"] is True
        assert validate_jsonl(tracer.to_jsonl()) == []


class TestValidation:
    def test_bad_phase_category_and_extra_field_rejected(self):
        good = {
            "seq": 0, "ph": "i", "cat": "star", "name": "S", "ts": 0.0,
            "dur": 0.0, "depth": 0, "span": 0, "parent": None, "args": {},
        }
        assert validate_events([good]) == []
        bad = dict(good, ph="B", cat="nope", extra=1)
        errors = "\n".join(validate_events([bad]))
        assert "phase" in errors and "category" in errors and "extra" in errors

    def test_non_increasing_seq_rejected(self):
        base = {
            "ph": "i", "cat": "star", "name": "S", "ts": 0.0,
            "dur": 0.0, "depth": 0, "span": 0, "parent": None, "args": {},
        }
        stream = [dict(base, seq=1), dict(base, seq=1)]
        assert any("not increasing" in e for e in validate_events(stream))

    def test_invalid_json_line_reported(self):
        assert any("invalid JSON" in e for e in validate_jsonl("{nope"))

    def test_known_categories_cover_schema_table(self):
        assert {"star", "glue", "plantable", "propfunc", "executor",
                "ship", "chaos", "optimizer", "resilient", "robust",
                "serve", "telemetry"} == CATEGORIES


class TestSignature:
    def test_signature_excludes_wall_clock(self):
        fast, slow = Tracer(clock=FakeClock(0.001)), Tracer(clock=FakeClock(7.0))
        for tracer in (fast, slow):
            with tracer.span("star", "S", args="EMP"):
                tracer.instant("glue", "veneer", op="SORT")
        assert fast.signature() == slow.signature()
        assert fast.events()[0].ts != slow.events()[0].ts

    def test_signature_sensitive_to_args(self):
        a, b = Tracer(), Tracer()
        a.instant("star", "S", plans=1)
        b.instant("star", "S", plans=2)
        assert a.signature() != b.signature()

    def test_event_signature_matches_event_fields(self):
        event = TraceEvent(
            seq=0, ph="i", cat="star", name="S", ts=1.0, dur=0.0,
            depth=2, span=5, parent=4, args={"b": 1, "a": 2},
        )
        assert event.signature() == (
            "i", "star", "S", 2, 5, 4, (("a", 2), ("b", 1))
        )
