"""Unit tests for System-R-style selectivity estimation."""

import pytest

from repro.cost.selectivity import DEFAULT_RANGE, Selectivity
from repro.query.parser import parse_predicate

T = ("DEPT", "EMP")


@pytest.fixture()
def sel(catalog):
    return Selectivity(catalog)


def pred(catalog, text):
    return parse_predicate(text, catalog, T)


class TestPointEstimates:
    def test_equality_uses_n_distinct(self, catalog, sel):
        # DEPT.MGR has 50 distinct values.
        assert sel.predicate(pred(catalog, "MGR = 'Haas'")) == pytest.approx(1 / 50)

    def test_inequality_complement(self, catalog, sel):
        assert sel.predicate(pred(catalog, "MGR <> 'Haas'")) == pytest.approx(1 - 1 / 50)

    def test_range_interpolation(self, catalog, sel):
        # EMP.ENO ranges over [0, 9999].
        assert sel.predicate(pred(catalog, "ENO < 2500")) == pytest.approx(0.25, rel=1e-3)
        assert sel.predicate(pred(catalog, "ENO >= 7500")) == pytest.approx(0.25, rel=1e-3)

    def test_range_default_without_stats(self, catalog, sel):
        # MGR is a string column: no numeric range, fall back to 1/3.
        assert sel.predicate(pred(catalog, "MGR < 'M'")) == pytest.approx(DEFAULT_RANGE)

    def test_join_equality_max_distinct(self, catalog, sel):
        # Both DNO columns have 100 distinct values.
        assert sel.predicate(pred(catalog, "DEPT.DNO = EMP.DNO")) == pytest.approx(1 / 100)

    def test_join_inequality_default(self, catalog, sel):
        assert sel.predicate(pred(catalog, "DEPT.DNO < EMP.DNO")) == pytest.approx(
            DEFAULT_RANGE
        )

    def test_selectivity_clamped_to_unit_interval(self, catalog, sel):
        assert 0 < sel.predicate(pred(catalog, "ENO < -50")) <= 1


class TestCompound:
    def test_conjunction_multiplies(self, catalog, sel):
        p = pred(catalog, "MGR = 'Haas' AND DEPT.DNO = 3")
        assert sel.predicate(p) == pytest.approx((1 / 50) * (1 / 100))

    def test_disjunction_inclusion_exclusion(self, catalog, sel):
        p = pred(catalog, "MGR = 'a' OR MGR = 'b'")
        s = 1 / 50
        assert sel.predicate(p) == pytest.approx(s + s - s * s)

    def test_negation(self, catalog, sel):
        p = pred(catalog, "NOT MGR = 'Haas'")
        assert sel.predicate(p) == pytest.approx(1 - 1 / 50)

    def test_conjunct_set_independence(self, catalog, sel):
        preds = [pred(catalog, "MGR = 'Haas'"), pred(catalog, "DEPT.DNO = 3")]
        assert sel.conjunct_set(preds) == pytest.approx((1 / 50) * (1 / 100))

    def test_conjunct_set_empty_is_one(self, sel):
        assert sel.conjunct_set([]) == 1.0


class TestSidewaysBinding:
    def test_join_pred_with_outer_bound_behaves_like_point(self, catalog, sel):
        p = pred(catalog, "DEPT.DNO = EMP.DNO")
        got = sel.predicate(p, bound_tables=frozenset({"DEPT"}))
        # EMP.DNO has 100 distinct values: probing one value selects 1%.
        assert got == pytest.approx(1 / 100)

    def test_bound_side_reversed(self, catalog, sel):
        p = pred(catalog, "DEPT.DNO = EMP.DNO")
        got = sel.predicate(p, bound_tables=frozenset({"EMP"}))
        assert got == pytest.approx(1 / 100)

    def test_expression_against_bound_outer(self, catalog, sel):
        p = pred(catalog, "EMP.DNO = DEPT.DNO + 1")
        got = sel.predicate(p, bound_tables=frozenset({"DEPT"}))
        assert got == pytest.approx(1 / 100)
