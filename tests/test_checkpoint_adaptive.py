"""Cardinality checkpoints and the adaptive re-optimization loop."""

from __future__ import annotations

from types import SimpleNamespace

import pytest

from repro.catalog import Catalog, TableDef, TableStats
from repro.catalog.catalog import make_columns
from repro.cost.model import CostWeights
from repro.cost.propfuncs import PlanFactory
from repro.errors import CardinalityViolation
from repro.executor import QueryExecutor
from repro.obs import MetricsRegistry, Tracer
from repro.optimizer import StarburstOptimizer
from repro.query.expressions import ColumnRef
from repro.robust import (
    AdaptiveExecutor,
    CheckpointIterator,
    CheckpointPolicy,
    FeedbackCache,
)
from repro.robust.adaptive import executed_cost
from repro.stars.builtin_rules import extended_rules
from repro.storage import Database
from repro.workloads import skewed_workload


def fake_node(card: float, op: str = "SORT", tables=frozenset({"T"})):
    """The minimal node shape a checkpoint reads."""
    return SimpleNamespace(
        op=op,
        flavor=None,
        props=SimpleNamespace(card=card, tables=tables, preds=frozenset()),
    )


class TestCheckpointPolicy:
    def test_threshold_below_one_rejected(self):
        with pytest.raises(ValueError):
            CheckpointPolicy(qerror_threshold=0.5)

    def test_within_threshold_records_without_raising(self):
        policy = CheckpointPolicy(qerror_threshold=10.0)
        policy.observe(fake_node(card=50.0), actual=20)
        assert policy.checks == 1
        assert policy.violations == 0
        assert policy.feedback.lookup({"T"}, frozenset()) == 20.0

    def test_violation_raises_with_details(self):
        policy = CheckpointPolicy(qerror_threshold=10.0)
        with pytest.raises(CardinalityViolation) as excinfo:
            policy.observe(fake_node(card=1000.0), actual=3)
        violation = excinfo.value
        assert violation.estimated == 1000.0
        assert violation.actual == 3.0
        assert violation.q == pytest.approx(1000.0 / 3.0)
        assert violation.partial_stats is None  # runtime attaches it
        assert policy.violations == 1
        # The observation reached the cache before the abort.
        assert policy.feedback.lookup({"T"}, frozenset()) == 3.0

    def test_underestimates_violate_symmetrically(self):
        policy = CheckpointPolicy(qerror_threshold=10.0)
        with pytest.raises(CardinalityViolation):
            policy.observe(fake_node(card=2.0), actual=500)

    def test_disarmed_policy_never_raises(self):
        policy = CheckpointPolicy(qerror_threshold=10.0, armed=False)
        policy.observe(fake_node(card=1000.0), actual=1)
        assert policy.violations == 0
        assert policy.feedback.lookup({"T"}, frozenset()) == 1.0

    def test_observability(self):
        tracer = Tracer()
        metrics = MetricsRegistry()
        policy = CheckpointPolicy(
            qerror_threshold=10.0, tracer=tracer, metrics=metrics
        )
        policy.observe(fake_node(card=5.0), actual=5)
        (event,) = [e for e in tracer.events() if e.name == "checkpoint"]
        assert event.cat == "robust"
        assert event.args["violated"] is False
        assert metrics.snapshot()["checkpoint.checks"] == 1


class TestCheckpointIterator:
    def test_counts_and_checks_once_on_exhaustion(self):
        policy = CheckpointPolicy(qerror_threshold=10.0)
        wrapped = CheckpointIterator(iter(range(7)), fake_node(7.0), policy)
        assert list(wrapped) == list(range(7))
        assert wrapped.count == 7
        assert policy.checks == 1
        # Draining an exhausted iterator again must not double-check.
        assert list(wrapped) == []
        assert policy.checks == 1

    def test_abandoned_iterator_never_checks(self):
        policy = CheckpointPolicy(qerror_threshold=10.0)
        wrapped = CheckpointIterator(iter(range(100)), fake_node(5.0), policy)
        next(wrapped)
        del wrapped  # e.g. a LIMIT upstream stopped pulling
        assert policy.checks == 0

    def test_violation_surfaces_at_exhaustion(self):
        policy = CheckpointPolicy(qerror_threshold=10.0)
        wrapped = CheckpointIterator(iter(range(2)), fake_node(900.0), policy)
        with pytest.raises(CardinalityViolation):
            list(wrapped)


class TestStoreCheckpointAndTempReuse:
    """The STORE-side machinery, driven through the runtime directly."""

    def _build(self):
        cat = Catalog(query_site="local")
        # Statistics claim 1000 rows; only 3 are loaded (no analyze) —
        # exactly the staleness a STORE checkpoint catches.
        cat.add_table(TableDef("R", make_columns("K", "W")), TableStats(card=1000))
        db = Database(cat)
        db.create_storage("R")
        db.load("R", ({"K": i, "W": i * 10} for i in range(3)))
        factory = PlanFactory(cat)
        scan = factory.access_base(
            "R", {ColumnRef("R", "K"), ColumnRef("R", "W")}, set()
        )
        plan = factory.access_temp(factory.store(scan))
        return db, plan

    def test_store_checkpoint_fires_and_temp_survives(self):
        db, plan = self._build()
        policy = CheckpointPolicy(qerror_threshold=10.0)
        temp_cache: dict = {}
        executor = QueryExecutor(db, checkpoints=policy, temp_cache=temp_cache)
        with pytest.raises(CardinalityViolation) as excinfo:
            executor.run_plan(plan)
        # The runtime attached the partial stats of the aborted attempt.
        assert excinfo.value.partial_stats is not None
        # The temp was cached *before* the checkpoint raised, so a retry
        # can reuse the materialized subtree.
        assert len(temp_cache) == 1
        db.drop_temps()

    def test_second_run_reuses_inherited_temp(self):
        db, plan = self._build()
        temp_cache: dict = {}
        first = QueryExecutor(db, temp_cache=temp_cache)
        rows_first, stats_first = first.run_plan(plan)
        assert stats_first.temps_reused == 0
        second = QueryExecutor(db, temp_cache=temp_cache)
        rows_second, stats_second = second.run_plan(plan)
        assert stats_second.temps_reused == 1
        assert sorted(map(tuple, rows_first)) == sorted(map(tuple, rows_second))
        # Reuse must actually skip the store: no new temp materialized.
        assert len(temp_cache) == 1
        db.drop_temps()


@pytest.fixture(scope="module")
def skewed():
    """The E12 kernel at test scale, plus its static baseline."""
    wl = skewed_workload(n0=4000, n1=300, seed=3)
    rules = extended_rules(hash_join=False)
    weights = CostWeights()
    optimizer = StarburstOptimizer(wl.catalog, rules=rules, weights=weights)
    static = optimizer.optimize(wl.query)
    static_result = QueryExecutor(wl.database).run(
        static.query, static.best_plan
    )
    static_cost = executed_cost(static_result.stats, weights)
    return wl, rules, weights, static_result, static_cost


def _adaptive(skewed_fixture, **kwargs):
    wl, rules, weights, _, _ = skewed_fixture
    optimizer = StarburstOptimizer(wl.catalog, rules=rules, weights=weights)
    return AdaptiveExecutor(wl.database, optimizer, **kwargs)


class TestAdaptiveLoop:
    def test_violation_triggers_reoptimization_and_wins(self, skewed):
        _, _, _, static_result, static_cost = skewed
        report = _adaptive(skewed, qerror_threshold=10.0).run(skewed[0].query)
        assert report.succeeded
        assert report.checkpoint_violations >= 1
        assert report.reoptimizations >= 1
        assert report.attempts == report.reoptimizations + 1
        assert report.result.as_multiset() == static_result.as_multiset()
        # Total adaptive cost (aborted work included) beats the static
        # plan: the checkpoint fired before the expensive merge scan.
        assert report.executed_cost < static_cost

    def test_accurate_statistics_run_unperturbed(self):
        wl = skewed_workload(n0=4000, n1=300, seed=3, stats_high=None)
        rules = extended_rules(hash_join=False)
        weights = CostWeights()
        optimizer = StarburstOptimizer(wl.catalog, rules=rules, weights=weights)
        static = optimizer.optimize(wl.query)
        static_result = QueryExecutor(wl.database).run(
            static.query, static.best_plan
        )
        report = _adaptive(
            (wl, rules, weights, None, None), qerror_threshold=10.0
        ).run(wl.query)
        assert report.succeeded
        assert report.attempts == 1
        assert report.checkpoint_violations == 0
        assert report.executed_cost == pytest.approx(
            executed_cost(static_result.stats, weights)
        )

    def test_final_attempt_runs_disarmed(self, skewed):
        _, _, _, static_result, _ = skewed
        report = _adaptive(
            skewed, qerror_threshold=10.0, max_reoptimizations=0
        ).run(skewed[0].query)
        # With zero re-optimizations allowed, the only attempt runs with
        # checkpoints disarmed: the misestimate is observed, not fatal.
        assert report.succeeded
        assert report.attempts == 1
        assert report.checkpoint_violations == 0
        assert report.result.as_multiset() == static_result.as_multiset()

    def test_reoptimizations_are_bounded(self, skewed):
        report = _adaptive(
            skewed, qerror_threshold=1.0000001, max_reoptimizations=2
        ).run(skewed[0].query)
        # An absurdly tight threshold aborts every armed attempt; the
        # loop must still terminate via the disarmed final attempt.
        assert report.succeeded
        assert report.attempts <= 3

    def test_feedback_shared_across_attempts(self, skewed):
        executor = _adaptive(skewed, qerror_threshold=10.0)
        report = executor.run(skewed[0].query)
        assert report.succeeded
        assert len(executor.feedback) >= 1
        assert executor.optimizer.feedback is executor.feedback

    def test_observability_spans_balance(self, skewed):
        _, rules, weights, _, _ = skewed
        wl = skewed[0]
        tracer = Tracer()
        metrics = MetricsRegistry()
        optimizer = StarburstOptimizer(
            wl.catalog, rules=rules, weights=weights,
            tracer=tracer, metrics=metrics,
        )
        executor = AdaptiveExecutor(
            wl.database, optimizer, qerror_threshold=10.0,
            tracer=tracer, metrics=metrics,
        )
        report = executor.run(wl.query)
        assert report.succeeded
        assert tracer.open_spans == 0
        names = {e.name for e in tracer.events() if e.cat == "robust"}
        assert {"attempt", "checkpoint", "feedback_record"} <= names
        snapshot = metrics.snapshot()
        assert snapshot["adaptive.violations"] >= 1
        assert snapshot["checkpoint.violations"] >= 1

    def test_as_dict_is_flat_numeric(self, skewed):
        report = _adaptive(skewed, qerror_threshold=10.0).run(skewed[0].query)
        snapshot = report.as_dict()
        assert all(isinstance(v, (int, float)) for v in snapshot.values())
        assert snapshot["succeeded"] == 1.0
