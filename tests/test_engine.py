"""Unit tests for the STAR interpreter: expansion semantics."""

import pytest

from repro.config import OptimizerConfig
from repro.errors import ExpansionError, RuleError
from repro.plans.sap import Stream
from repro.query.expressions import ColumnRef
from repro.query.parser import parse_query
from repro.stars.dsl import parse_rules
from repro.stars.engine import StarEngine
from repro.stars.registry import default_registry

DNO = ColumnRef("DEPT", "DNO")
MGR = ColumnRef("DEPT", "MGR")


def make_engine(catalog, rule_text, query_sql="SELECT MGR FROM DEPT", config=None,
                registry=None):
    query = parse_query(query_sql, catalog)
    return StarEngine(
        parse_rules(rule_text),
        catalog,
        query,
        config=config,
        registry=registry,
    )


class TestAlternativeSemantics:
    def test_inclusive_takes_all_applicable(self, catalog):
        engine = make_engine(
            catalog,
            """
            star S(T, C) {
                alt -> ACCESS(T, C, {});
                alt -> SORT(ACCESS(T, C, {}), cols_to_order(C));
            }
            """,
            registry=_registry_with_order_helper(),
        )
        sap = engine.expand("S", ("DEPT", frozenset({DNO})))
        assert len(sap) == 2

    def test_exclusive_takes_first_applicable(self, catalog):
        engine = make_engine(
            catalog,
            """
            star S(T, C) exclusive {
                alt if nonempty(C) -> ACCESS(T, C, {});
                otherwise -> SORT(ACCESS(T, C, {}), cols_to_order(C));
            }
            """,
            registry=_registry_with_order_helper(),
        )
        sap = engine.expand("S", ("DEPT", frozenset({DNO})))
        assert len(sap) == 1
        assert next(iter(sap)).op == "ACCESS"

    def test_exclusive_falls_through_to_otherwise(self, catalog):
        engine = make_engine(
            catalog,
            """
            star S(T, C) exclusive {
                alt if empty(C) -> SORT(ACCESS(T, C, {}), cols_to_order(C));
                otherwise -> ACCESS(T, C, {});
            }
            """,
            registry=_registry_with_order_helper(),
        )
        sap = engine.expand("S", ("DEPT", frozenset({DNO})))
        assert next(iter(sap)).op == "ACCESS"

    def test_inclusive_condition_false_skips(self, catalog):
        engine = make_engine(
            catalog,
            """
            star S(T, C) {
                alt -> ACCESS(T, C, {});
                alt if empty(C) -> ACCESS(T, {}, {});
            }
            """,
        )
        sap = engine.expand("S", ("DEPT", frozenset({DNO})))
        assert len(sap) == 1

    def test_overlapping_conditions_multi_valued(self, catalog):
        """Overlapping inclusive conditions return multiple plans (the
        paper's OrderedStream example, section 2.1)."""
        engine = make_engine(
            catalog,
            """
            star S(T, C) {
                alt if nonempty(C) -> ACCESS(T, C, {});
                alt if nonempty(C) -> SORT(ACCESS(T, C, {}), cols_to_order(C));
            }
            """,
            registry=_registry_with_order_helper(),
        )
        assert len(engine.expand("S", ("DEPT", frozenset({DNO})))) == 2


class TestWhereBindings:
    def test_bindings_visible_in_alternatives(self, catalog):
        engine = make_engine(
            catalog,
            """
            star S(T) {
                where C = needed_cols(T);
                alt -> ACCESS(T, C, {});
            }
            """,
        )
        sap = engine.expand("S", (Stream(frozenset({"DEPT"})),))
        plan = next(iter(sap))
        assert MGR in plan.props.cols

    def test_bindings_chain(self, catalog):
        engine = make_engine(
            catalog,
            """
            star S(T) {
                where A = needed_cols(T);
                where B = A | cols_of(T);
                alt -> ACCESS(T, B, {});
            }
            """,
        )
        sap = engine.expand("S", (Stream(frozenset({"DEPT"})),))
        assert next(iter(sap)).props.cols == {DNO, MGR}


class TestForAll:
    def test_iterates_set(self, catalog):
        engine = make_engine(
            catalog,
            """
            star S(T) {
                alt -> forall i in matching_indexes(T): ACCESS(i, {}, {});
            }
            """,
        )
        sap = engine.expand("S", ("EMP",))
        assert len(sap) == 1  # one index on EMP
        assert engine.stats.forall_iterations == 1

    def test_empty_set_yields_no_plans(self, catalog):
        engine = make_engine(
            catalog,
            "star S(T) { alt -> forall i in matching_indexes(T): ACCESS(i, {}, {}); }",
        )
        assert len(engine.expand("S", ("DEPT",))) == 0


class TestMemoization:
    def test_repeated_reference_hits_memo(self, catalog):
        engine = make_engine(
            catalog,
            """
            star Root(T, C) {
                alt -> Sub(T, C);
                alt -> SORT(Sub(T, C), cols_to_order(C));
            }
            star Sub(T, C) { alt -> ACCESS(T, C, {}); }
            """,
            registry=_registry_with_order_helper(),
        )
        engine.expand("Root", ("DEPT", frozenset({DNO})))
        assert engine.stats.memo_hits == 1

    def test_different_args_not_shared(self, catalog):
        engine = make_engine(
            catalog,
            """
            star Root(T) {
                alt -> Sub(T, needed_cols(T));
                alt -> Sub(T, cols_of(T));
            }
            star Sub(T, C) { alt -> ACCESS(T, C, {}); }
            """,
            "SELECT MGR FROM DEPT",
        )
        engine.expand("Root", (Stream(frozenset({"DEPT"})),))
        assert engine.stats.memo_hits == 0


class TestInstrumentation:
    def test_counters(self, catalog):
        engine = make_engine(
            catalog,
            """
            star S(T, C) {
                alt if nonempty(C) -> ACCESS(T, C, {});
                alt if empty(C) -> ACCESS(T, {}, {});
            }
            """,
        )
        engine.expand("S", ("DEPT", frozenset({DNO})))
        stats = engine.stats
        assert stats.star_references == 1
        assert stats.alternatives_considered == 2
        assert stats.conditions_evaluated == 2
        assert stats.lolepop_calls == 1
        assert stats.plans_emitted == 1
        assert stats.as_dict()["star_references"] == 1


class TestErrorsAndLimits:
    def test_arity_mismatch(self, catalog):
        engine = make_engine(catalog, "star S(T, C) { alt -> ACCESS(T, C, {}); }")
        with pytest.raises(RuleError, match="argument"):
            engine.expand("S", ("DEPT",))

    def test_unknown_star(self, catalog):
        engine = make_engine(catalog, "star S(T) { alt -> ACCESS(T, {}, {}); }")
        with pytest.raises(RuleError, match="unknown STAR"):
            engine.expand("Nope", ())

    def test_unbound_parameter(self, catalog):
        engine = make_engine(catalog, "star S(T) { alt -> ACCESS(T, C, {}); }")
        with pytest.raises(RuleError, match="unbound"):
            engine.expand("S", ("DEPT",))

    def test_cycle_hits_depth_limit(self, catalog):
        engine = make_engine(
            catalog,
            """
            star A(T) { alt -> B(T); }
            star B(T) { alt -> A(T); }
            """,
            config=OptimizerConfig(max_depth=8),
        )
        with pytest.raises(ExpansionError, match="depth limit"):
            engine.expand("A", ("DEPT",))

    def test_unknown_function(self, catalog):
        engine = make_engine(catalog, "star S(T) { alt -> ACCESS(T, frob(T), {}); }")
        with pytest.raises(RuleError, match="unknown rule function"):
            engine.expand("S", ("DEPT",))


class TestTrace:
    def test_trace_collected_when_enabled(self, catalog):
        engine = make_engine(
            catalog,
            "star S(T) { alt -> ACCESS(T, {}, {}); }",
            config=OptimizerConfig(trace=True),
        )
        engine.expand("S", ("DEPT",))
        assert "S(" in engine.trace()

    def test_trace_empty_by_default(self, catalog):
        engine = make_engine(catalog, "star S(T) { alt -> ACCESS(T, {}, {}); }")
        engine.expand("S", ("DEPT",))
        assert engine.trace() == ""


class TestLolepopDispatch:
    def test_join_product_semantics(self, catalog, join_pred):
        """JOIN maps over the cartesian product of its input SAPs
        (section 2.2's LISP map)."""
        engine = make_engine(
            catalog,
            """
            star Two(T, C) {
                alt -> ACCESS(T, C, {});
                alt -> SORT(ACCESS(T, C, {}), cols_to_order(C));
            }
            star J(A, B, P) {
                alt -> JOIN(NL, Two('DEPT', needed_cols(A)), Two('EMP', needed_cols(B)), P, {});
            }
            """,
            "SELECT MGR FROM DEPT, EMP WHERE DEPT.DNO = EMP.DNO",
            registry=_registry_with_order_helper(),
        )
        sap = engine.expand(
            "J",
            (Stream(frozenset({"DEPT"})), Stream(frozenset({"EMP"})), frozenset({join_pred})),
        )
        assert len(sap) == 4  # 2 outer x 2 inner

    def test_ship_is_identity_at_same_site(self, catalog):
        engine = make_engine(
            catalog, "star S(T) { alt -> SHIP(ACCESS(T, {}, {}), 'local'); }"
        )
        plan = next(iter(engine.expand("S", ("DEPT",))))
        assert plan.op == "ACCESS"  # no SHIP inserted

    def test_access_star_means_all_columns(self, catalog):
        engine = make_engine(
            catalog,
            "star S(T) { alt -> ACCESS(STORE(ACCESS(T, cols_of(T), {})), *, {}); }",
        )
        sap = engine.expand("S", (Stream(frozenset({"DEPT"})),))
        plan = next(iter(sap))
        assert plan.op == "ACCESS" and plan.flavor == "temp"
        assert plan.props.cols == {DNO, MGR}

    def test_required_props_on_non_stream_rejected(self, catalog):
        engine = make_engine(
            catalog, "star S(T) { alt -> ACCESS(T [site = 'local'], {}, {}); }"
        )
        with pytest.raises(RuleError, match="non-stream"):
            engine.expand("S", ("DEPT",))


def _registry_with_order_helper():
    registry = default_registry()
    registry.register(
        "cols_to_order", lambda ctx, cols: tuple(sorted(cols, key=str))
    )
    return registry
