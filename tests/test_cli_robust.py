"""CLI coverage for the ``adaptive`` and ``validate`` subcommands."""

import re

import pytest

from repro.__main__ import main


class TestAdaptive:
    def test_adaptive_reoptimizes_and_verifies(self, capsys):
        assert main(
            ["adaptive", "--rows-big", "1500", "--rows-small", "200"]
        ) == 0
        out = capsys.readouterr().out
        assert "static plan:" in out
        assert "differential check vs static plan: PASS" in out
        assert "executed-cost ratio static/adaptive:" in out

    def test_accurate_statistics_single_attempt(self, capsys):
        assert main(
            [
                "adaptive", "--accurate",
                "--rows-big", "1200", "--rows-small", "150",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert re.search(r"attempts:\s+1\b", out)
        assert re.search(r"checkpoint violations:\s+0\b", out)

    def test_budget_flag_produces_anytime_plan(self, capsys):
        assert main(
            [
                "adaptive", "--budget", "5",
                "--rows-big", "1200", "--rows-small", "150",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "budget exhausted" in out

    @pytest.mark.parametrize("spec", ["", "x", "5:y", "1:2:3:4", "-1"])
    def test_malformed_budget_rejected(self, spec, capsys):
        with pytest.raises(SystemExit):
            main(["adaptive", "--budget", spec])

    def test_qerror_threshold_below_one_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["adaptive", "--qerror-threshold", "0.5"])


class TestValidate:
    def test_builtin_rules_pass_strict(self, capsys):
        assert main(["validate", "--strict"]) == 0
        out = capsys.readouterr().out
        assert "rule set is VALID" in out
        assert "0 error(s), 0 warning(s)" in out

    @pytest.mark.parametrize("rules", ["base", "extended", "all"])
    def test_every_builtin_set_validates(self, rules, capsys):
        assert main(["validate", "--rules", rules]) == 0

    def test_warning_file_passes_by_default(self, tmp_path, capsys):
        rules = tmp_path / "rules.star"
        rules.write_text(
            """
            star S(T) exclusive {
                alt if local_query() -> ACCESS(T, {}, {});
                alt if needs_temp(T) -> ACCESS(T, {}, {});
            }
            """
        )
        assert main(["validate", str(rules)]) == 0
        out = capsys.readouterr().out
        assert "warning:" in out
        assert "unconditional final alternative" in out

    def test_warning_file_fails_strict(self, tmp_path, capsys):
        rules = tmp_path / "rules.star"
        rules.write_text(
            """
            star S(T) exclusive {
                alt if local_query() -> ACCESS(T, {}, {});
                alt if needs_temp(T) -> ACCESS(T, {}, {});
            }
            """
        )
        assert main(["validate", str(rules), "--strict"]) == 1
        out = capsys.readouterr().out
        assert "rule set is VALID" in out  # warnings, not errors
        assert "strict" in out

    def test_error_file_fails(self, tmp_path, capsys):
        rules = tmp_path / "rules.star"
        rules.write_text("star S(T) { alt -> Missing(T); }")
        assert main(["validate", str(rules)]) == 1
        out = capsys.readouterr().out
        assert "rule set is INVALID" in out
