"""Tests for the index OR-ing strategy (the paper's omitted-for-brevity
"ANDing and ORing of multiple indexes for a single table"), shipped as
optional rule data with a DEDUP LOLEPOP merging TID streams."""

import pytest

from repro.catalog import AccessPath, Catalog, ColumnStats, TableDef, TableStats
from repro.catalog.catalog import make_columns
from repro.config import OptimizerConfig
from repro.executor import QueryExecutor, naive_evaluate
from repro.optimizer import StarburstOptimizer
from repro.plans.operators import DEDUP, GET, UNION
from repro.query.parser import parse_query
from repro.stars.builtin_rules import extended_rules
from repro.stars.engine import StarEngine
from repro.storage import Database


@pytest.fixture()
def env():
    cat = Catalog()
    rows = 8000
    cat.add_table(
        TableDef("T", make_columns("A", "B", ("PAY", "str"))), TableStats(card=rows)
    )
    cat.add_index(AccessPath("T_A", "T", ("A",)))
    cat.add_index(AccessPath("T_B", "T", ("B",)))
    db = Database(cat)
    db.create_storage("T")
    db.load("T", [(i, (i * 7) % rows, f"p{i}") for i in range(rows)])
    db.analyze("T")
    return cat, db


def or_plans(plans):
    return [
        p
        for p in plans
        if any(n.op == DEDUP for n in p.nodes())
        and any(n.op == UNION for n in p.nodes())
    ]


def expand(cat, sql, or_index=True):
    query = parse_query(sql, cat)
    engine = StarEngine(
        extended_rules(or_index=or_index),
        cat,
        query,
        config=OptimizerConfig(prune=False),
    )
    sap = engine.expand(
        "AccessRoot",
        ("T", query.columns_for_table("T"), query.single_table_predicates("T")),
    )
    return sap, query, engine


SQL = "SELECT PAY FROM T WHERE A = 3 OR B = 7"


class TestOrIndexRules:
    def test_alternative_generated(self, env):
        cat, _ = env
        sap, _, _ = expand(cat, SQL)
        plans = or_plans(sap)
        assert plans
        plan = plans[0]
        ops = [n.op for n in plan.nodes()]
        assert ops[0] == GET  # GET on top of DEDUP(UNION(...))

    def test_absent_without_extension(self, env):
        cat, _ = env
        sap, _, _ = expand(cat, SQL, or_index=False)
        assert not or_plans(sap)

    def test_requires_indexes_on_both_branches(self, env):
        cat, _ = env
        # PAY has no index: the disjunction is not splittable.
        sap, _, _ = expand(cat, "SELECT A FROM T WHERE A = 3 OR PAY = 'p1'")
        assert not or_plans(sap)

    def test_three_branch_or_not_split(self, env):
        cat, _ = env
        sap, _, _ = expand(cat, "SELECT PAY FROM T WHERE A = 1 OR A = 2 OR B = 3")
        assert not or_plans(sap)

    def test_or_plan_cheaper_than_scan_when_selective(self, env):
        cat, _ = env
        sap, _, engine = expand(cat, SQL)
        model = engine.ctx.model
        or_cost = min(model.total(p.props.cost) for p in or_plans(sap))
        scan_cost = min(
            model.total(p.props.cost)
            for p in sap
            if p.op == "ACCESS" and p.flavor == "heap"
        )
        assert or_cost < scan_cost

    def test_validates(self, env):
        from repro.stars.registry import default_registry
        from repro.stars.validate import validate_rules

        report = validate_rules(extended_rules(or_index=True), default_registry())
        assert report.ok, report.errors


class TestOrIndexExecution:
    def test_answers_match_reference(self, env):
        cat, db = env
        query = parse_query(SQL, cat)
        result = StarburstOptimizer(
            cat, rules=extended_rules(or_index=True)
        ).optimize(query)
        executor = QueryExecutor(db)
        reference = naive_evaluate(query, db).as_multiset()
        for plan in result.alternatives:
            assert executor.run(query, plan).as_multiset() == reference

    def test_overlapping_branches_deduplicated(self, env):
        cat, db = env
        # Row 0 has A=0 and B=0: both branches match the same row.
        query = parse_query("SELECT PAY FROM T WHERE A = 0 OR B = 0", cat)
        sap, _, engine = expand(cat, "SELECT PAY FROM T WHERE A = 0 OR B = 0")
        plans = or_plans(sap)
        assert plans
        executor = QueryExecutor(db)
        rows, _ = executor.run_plan(plans[0])
        reference = naive_evaluate(query, db)
        assert len(rows) == len(reference)

    def test_executes_via_both_indexes(self, env):
        cat, db = env
        sap, _, _ = expand(cat, SQL)
        plan = or_plans(sap)[0]
        executor = QueryExecutor(db)
        rows, stats = executor.run_plan(plan)
        assert stats.index_reads > 0
        # A=3 matches one row; B=7 matches rows with (i*7)%8000 == 7.
        expected = {r for r in range(8000) if r == 3 or (r * 7) % 8000 == 7}
        assert len(rows) == len(expected)
