"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import main


class TestDemo:
    def test_demo_runs_and_verifies(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "differential check vs naive evaluator: PASS" in out
        assert "JOIN" in out


class TestOptimize:
    def test_optimize_prints_plan(self, capsys):
        assert main(["optimize", "SELECT MGR FROM DEPT"]) == 0
        out = capsys.readouterr().out
        assert "estimated cost" in out
        assert "ACCESS" in out

    def test_execute_prints_rows(self, capsys):
        assert main(
            ["optimize", "SELECT NAME FROM EMP WHERE ENO = 3", "--execute"]
        ) == 0
        out = capsys.readouterr().out
        assert "executed:" in out

    def test_trace_flag(self, capsys):
        assert main(["optimize", "SELECT MGR FROM DEPT", "--trace"]) == 0
        out = capsys.readouterr().out
        assert "AccessRoot" in out

    def test_synthetic_workload(self, capsys):
        assert main(
            ["optimize", "SELECT R0.ID FROM R0 WHERE R0.VAL < 5", "--workload", "chain:2"]
        ) == 0

    def test_rule_set_selection(self, capsys):
        assert main(
            ["optimize", "SELECT MGR FROM DEPT", "--rules", "base"]
        ) == 0

    def test_unknown_workload_rejected(self):
        with pytest.raises(SystemExit):
            main(["optimize", "SELECT 1 FROM X", "--workload", "nope"])

    def test_unknown_rules_rejected(self):
        with pytest.raises(SystemExit):
            main(["optimize", "SELECT MGR FROM DEPT", "--rules", "nope"])


class TestRules:
    def test_print_rules(self, capsys):
        assert main(["rules", "--rules", "base"]) == 0
        out = capsys.readouterr().out
        assert "star JoinRoot" in out
        assert "star JMeth" in out

    def test_show_dsl(self, capsys):
        assert main(["rules", "--show-dsl"]) == 0
        out = capsys.readouterr().out
        assert "// ===== Single-table access" in out

    def test_validate_good_file(self, tmp_path, capsys):
        rule_file = tmp_path / "good.star"
        rule_file.write_text(
            "extend JMeth { alt if nonempty(SP) -> "
            "JOIN(MG, Glue(T1 [order = merge_cols(SP, T1)], {}), "
            "Glue(T2 [order = merge_cols(SP, T2)], IP), SP, P - (IP | SP)); }"
        )
        assert main(["rules", "--validate", str(rule_file), "--extend-builtin"]) == 0
        assert "VALID" in capsys.readouterr().out

    def test_validate_bad_file(self, tmp_path, capsys):
        rule_file = tmp_path / "bad.star"
        rule_file.write_text("star X(T) { alt -> Missing(T); }")
        assert main(["rules", "--validate", str(rule_file)]) == 1
        out = capsys.readouterr().out
        assert "INVALID" in out
        assert "Missing" in out


class TestTrace:
    def test_trace_writes_chrome_file(self, tmp_path, capsys):
        import json

        out_file = tmp_path / "trace.json"
        assert main(["trace", "--out", str(out_file)]) == 0
        out = capsys.readouterr().out
        assert "trace event(s)" in out
        assert "star" in out and "executor" in out
        data = json.loads(out_file.read_text())
        assert data["traceEvents"]
        assert {e["ph"] for e in data["traceEvents"]} <= {"X", "i"}

    def test_trace_jsonl_output_validates(self, tmp_path):
        from repro.obs import validate_jsonl

        out_file = tmp_path / "trace.json"
        jsonl_file = tmp_path / "trace.jsonl"
        assert main([
            "trace", "SELECT MGR FROM DEPT",
            "--out", str(out_file), "--jsonl", str(jsonl_file),
        ]) == 0
        assert validate_jsonl(jsonl_file.read_text()) == []

    def test_self_check_passes(self, capsys):
        assert main(["trace", "--self-check"]) == 0
        out = capsys.readouterr().out
        assert "trace self-check: PASS" in out


class TestAnalyze:
    def test_analyze_prints_operator_table(self, capsys):
        assert main(["analyze"]) == 0
        out = capsys.readouterr().out
        assert "operator" in out and "q-error" in out
        assert "est rows" in out and "act rows" in out
        assert "plan-level Q-error" in out

    def test_analyze_with_sql_and_json(self, capsys):
        assert main([
            "analyze", "SELECT NAME FROM EMP WHERE ENO = 3", "--json",
        ]) == 0
        out = capsys.readouterr().out
        assert '"plan_q_error"' in out

    def test_analyze_metrics_snapshot(self, capsys):
        assert main(["analyze", "--metrics"]) == 0
        out = capsys.readouterr().out
        assert "analyze.plan_q_error" in out


class TestChaosTraceOut:
    def test_chaos_writes_jsonl_artifact(self, tmp_path, capsys):
        from repro.obs import validate_jsonl

        out_file = tmp_path / "chaos.jsonl"
        assert main([
            "chaos", "--kill-site", "N.Y.", "--link-failure-prob", "0.1",
            "--trace-out", str(out_file),
        ]) == 0
        out = capsys.readouterr().out
        assert "JSONL event log" in out
        text = out_file.read_text()
        assert validate_jsonl(text) == []
        assert '"cat": "chaos"' in text
