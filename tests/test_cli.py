"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import main


class TestDemo:
    def test_demo_runs_and_verifies(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "differential check vs naive evaluator: PASS" in out
        assert "JOIN" in out


class TestOptimize:
    def test_optimize_prints_plan(self, capsys):
        assert main(["optimize", "SELECT MGR FROM DEPT"]) == 0
        out = capsys.readouterr().out
        assert "estimated cost" in out
        assert "ACCESS" in out

    def test_execute_prints_rows(self, capsys):
        assert main(
            ["optimize", "SELECT NAME FROM EMP WHERE ENO = 3", "--execute"]
        ) == 0
        out = capsys.readouterr().out
        assert "executed:" in out

    def test_trace_flag(self, capsys):
        assert main(["optimize", "SELECT MGR FROM DEPT", "--trace"]) == 0
        out = capsys.readouterr().out
        assert "AccessRoot" in out

    def test_synthetic_workload(self, capsys):
        assert main(
            ["optimize", "SELECT R0.ID FROM R0 WHERE R0.VAL < 5", "--workload", "chain:2"]
        ) == 0

    def test_rule_set_selection(self, capsys):
        assert main(
            ["optimize", "SELECT MGR FROM DEPT", "--rules", "base"]
        ) == 0

    def test_unknown_workload_rejected(self):
        with pytest.raises(SystemExit):
            main(["optimize", "SELECT 1 FROM X", "--workload", "nope"])

    def test_unknown_rules_rejected(self):
        with pytest.raises(SystemExit):
            main(["optimize", "SELECT MGR FROM DEPT", "--rules", "nope"])


class TestRules:
    def test_print_rules(self, capsys):
        assert main(["rules", "--rules", "base"]) == 0
        out = capsys.readouterr().out
        assert "star JoinRoot" in out
        assert "star JMeth" in out

    def test_show_dsl(self, capsys):
        assert main(["rules", "--show-dsl"]) == 0
        out = capsys.readouterr().out
        assert "// ===== Single-table access" in out

    def test_validate_good_file(self, tmp_path, capsys):
        rule_file = tmp_path / "good.star"
        rule_file.write_text(
            "extend JMeth { alt if nonempty(SP) -> "
            "JOIN(MG, Glue(T1 [order = merge_cols(SP, T1)], {}), "
            "Glue(T2 [order = merge_cols(SP, T2)], IP), SP, P - (IP | SP)); }"
        )
        assert main(["rules", "--validate", str(rule_file), "--extend-builtin"]) == 0
        assert "VALID" in capsys.readouterr().out

    def test_validate_bad_file(self, tmp_path, capsys):
        rule_file = tmp_path / "bad.star"
        rule_file.write_text("star X(T) { alt -> Missing(T); }")
        assert main(["rules", "--validate", str(rule_file)]) == 1
        out = capsys.readouterr().out
        assert "INVALID" in out
        assert "Missing" in out
