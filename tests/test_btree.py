"""Unit and property-based tests for the B+-tree."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import StorageError
from repro.storage import BTree, IOAccounting


def make_tree(order=4, unique=False):
    return BTree(IOAccounting(), order=order, unique=unique)


class TestBasics:
    def test_insert_and_search(self):
        tree = make_tree()
        tree.insert((5,), "a")
        tree.insert((3,), "b")
        assert tree.search((5,)) == ["a"]
        assert tree.search((3,)) == ["b"]
        assert tree.search((9,)) == []

    def test_len_counts_entries(self):
        tree = make_tree()
        for i in range(10):
            tree.insert((i,), i)
        assert len(tree) == 10

    def test_duplicates_aggregate(self):
        tree = make_tree()
        for i in range(6):
            tree.insert((1,), i)
        assert sorted(tree.search((1,))) == list(range(6))

    def test_unique_rejects_duplicates(self):
        tree = make_tree(unique=True)
        tree.insert((1,), "a")
        with pytest.raises(StorageError, match="duplicate"):
            tree.insert((1,), "b")

    def test_null_key_component_rejected(self):
        tree = make_tree()
        with pytest.raises(StorageError, match="NULL"):
            tree.insert((1, None), "a")

    def test_order_validated(self):
        with pytest.raises(StorageError):
            BTree(IOAccounting(), order=2)

    def test_height_grows(self):
        tree = make_tree(order=3)
        assert tree.height == 1
        for i in range(50):
            tree.insert((i,), i)
        assert tree.height >= 3

    def test_scan_all_sorted(self):
        tree = make_tree(order=4)
        keys = list(range(100))
        random.Random(3).shuffle(keys)
        for key in keys:
            tree.insert((key,), key)
        assert [k for k, _ in tree.scan_all()] == [(i,) for i in range(100)]


class TestRangeScans:
    @pytest.fixture()
    def tree(self):
        tree = make_tree(order=4)
        for i in range(0, 100, 2):  # even keys 0..98
            tree.insert((i,), i)
        return tree

    def test_inclusive_range(self, tree):
        got = [v for _, v in tree.scan_range(lo=(10,), hi=(20,))]
        assert got == [10, 12, 14, 16, 18, 20]

    def test_exclusive_bounds(self, tree):
        got = [
            v
            for _, v in tree.scan_range(
                lo=(10,), hi=(20,), lo_inclusive=False, hi_inclusive=False
            )
        ]
        assert got == [12, 14, 16, 18]

    def test_open_ended_low(self, tree):
        got = [v for _, v in tree.scan_range(hi=(6,))]
        assert got == [0, 2, 4, 6]

    def test_open_ended_high(self, tree):
        got = [v for _, v in tree.scan_range(lo=(94,))]
        assert got == [94, 96, 98]

    def test_absent_bounds_full_scan(self, tree):
        assert len(list(tree.scan_range())) == 50

    def test_bounds_between_keys(self, tree):
        got = [v for _, v in tree.scan_range(lo=(9,), hi=(15,))]
        assert got == [10, 12, 14]

    def test_empty_range(self, tree):
        assert list(tree.scan_range(lo=(13,), hi=(13,))) == []


class TestCompositeKeys:
    def test_prefix_scan(self):
        tree = make_tree(order=4)
        for dno in range(5):
            for name in ("a", "b", "c"):
                tree.insert((dno, name), f"{dno}{name}")
        got = [v for _, v in tree.scan_prefix((2,))]
        assert got == ["2a", "2b", "2c"]

    def test_full_key_search(self):
        tree = make_tree()
        tree.insert((1, "x"), "v1")
        tree.insert((1, "y"), "v2")
        assert tree.search((1, "x")) == ["v1"]

    def test_prefix_ordering_across_leaves(self):
        tree = make_tree(order=3)
        for i in range(40):
            tree.insert((i % 4, i), i)
        got = [v for _, v in tree.scan_prefix((1,))]
        assert got == sorted(got)
        assert all(v % 4 == 1 for v in got)


class TestAccounting:
    def test_reads_charged_on_descend(self):
        io = IOAccounting()
        tree = BTree(io, order=3)
        for i in range(30):
            tree.insert((i,), i)
        before = io.index_reads
        tree.search((17,))
        assert io.index_reads - before >= tree.height

    def test_writes_charged_on_insert(self):
        io = IOAccounting()
        tree = BTree(io, order=3)
        tree.insert((1,), 1)
        assert io.index_writes >= 1


# ---------------------------------------------------------------------------
# Property-based tests
# ---------------------------------------------------------------------------


@settings(max_examples=60, deadline=None)
@given(st.lists(st.integers(min_value=-1000, max_value=1000)))
def test_scan_all_matches_sorted_multiset(keys):
    tree = make_tree(order=4)
    for key in keys:
        tree.insert((key,), key)
    got = [v for _, v in tree.scan_all()]
    assert got == sorted(keys)


@settings(max_examples=60, deadline=None)
@given(
    st.lists(st.integers(min_value=0, max_value=200), min_size=1),
    st.integers(min_value=0, max_value=200),
    st.integers(min_value=0, max_value=200),
)
def test_range_scan_matches_filter(keys, a, b):
    lo, hi = min(a, b), max(a, b)
    tree = make_tree(order=5)
    for key in keys:
        tree.insert((key,), key)
    got = [v for _, v in tree.scan_range(lo=(lo,), hi=(hi,))]
    assert got == sorted(k for k in keys if lo <= k <= hi)


@settings(max_examples=40, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 20), st.integers(0, 20)), min_size=1))
def test_composite_prefix_scan_matches_filter(pairs):
    tree = make_tree(order=4)
    for pair in pairs:
        tree.insert(pair, pair)
    prefix = pairs[0][0]
    got = [v for _, v in tree.scan_prefix((prefix,))]
    assert got == sorted(p for p in pairs if p[0] == prefix)


@settings(max_examples=30, deadline=None)
@given(st.lists(st.integers(0, 100), min_size=1), st.integers(3, 16))
def test_search_finds_all_duplicates(keys, order):
    tree = BTree(IOAccounting(), order=order)
    for index, key in enumerate(keys):
        tree.insert((key,), index)
    target = keys[0]
    expected = sorted(i for i, k in enumerate(keys) if k == target)
    assert sorted(tree.search((target,))) == expected
