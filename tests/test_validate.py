"""Unit tests for the rule-set validator (the paper's open issue)."""

import pytest

from repro.errors import RuleError
from repro.stars.builtin_rules import default_rules, extended_rules
from repro.stars.dsl import parse_rules
from repro.stars.registry import default_registry
from repro.stars.validate import validate_rules


def validate(text, registry=None):
    return validate_rules(parse_rules(text), registry or default_registry())


class TestCleanRuleSets:
    def test_builtin_rules_valid(self):
        report = validate_rules(default_rules(), default_registry())
        assert report.ok
        assert report.warnings == []

    def test_extended_rules_valid(self):
        report = validate_rules(extended_rules(), default_registry())
        assert report.ok


class TestReferenceChecks:
    def test_undefined_star_reported(self):
        report = validate("star S(T) { alt -> Missing(T, T); }")
        assert not report.ok
        assert any("Missing" in e for e in report.errors)

    def test_arity_mismatch_reported(self):
        report = validate(
            """
            star S(T) { alt -> Sub(T, T); }
            star Sub(T) { alt -> ACCESS(T, {}, {}); }
            """
        )
        assert any("argument" in e for e in report.errors)

    def test_unknown_function_reported(self):
        report = validate("star S(T) { alt if frobnicate(T) -> ACCESS(T, {}, {}); }")
        assert any("frobnicate" in e for e in report.errors)

    def test_unbound_parameter_reported(self):
        report = validate("star S(T) { alt -> ACCESS(T, C, {}); }")
        assert any("unbound" in e for e in report.errors)

    def test_forall_variable_is_bound(self):
        report = validate(
            "star S(T) { alt -> forall i in matching_indexes(T): ACCESS(i, {}, {}); }"
        )
        assert report.ok

    def test_where_bindings_are_bound(self):
        report = validate(
            """
            star S(P) {
                where JP = join_preds(P);
                alt -> ACCESS('T', {}, JP);
            }
            """
        )
        assert report.ok

    def test_join_without_flavor_reported(self):
        from repro.stars.ast import Alternative, Argument, Param, RuleSet, StarDef, StarRef

        rules = RuleSet(
            (
                StarDef(
                    "S",
                    ("A", "B", "P"),
                    (
                        Alternative(
                            StarRef(
                                "JOIN",
                                (Argument(Param("A")), Argument(Param("B")),
                                 Argument(Param("P")), Argument(Param("P"))),
                                flavor=None,
                            )
                        ),
                    ),
                ),
            )
        )
        report = validate_rules(rules, default_registry())
        assert any("flavor" in e for e in report.errors)


class TestCycleDetection:
    def test_direct_cycle(self):
        report = validate(
            """
            star A(T) { alt -> B(T); }
            star B(T) { alt -> A(T); }
            """
        )
        assert any("cyclic" in e for e in report.errors)

    def test_self_cycle(self):
        report = validate("star A(T) { alt -> A(T); }")
        assert any("cyclic" in e for e in report.errors)

    def test_glue_access_root_edge_detected(self):
        # AccessRoot -> Glue would be a cycle through Glue's implicit
        # re-reference of AccessRoot.
        report = validate(
            """
            star AccessRoot(T, C, P) { alt -> Glue(T, P); }
            """
        )
        assert any("cyclic" in e for e in report.errors)

    def test_dag_is_fine(self):
        report = validate(
            """
            star A(T) { alt -> B(T); alt -> C(T); }
            star B(T) { alt -> C(T); }
            star C(T) { alt -> ACCESS(T, {}, {}); }
            """
        )
        assert report.ok


class TestWarningsAndRaise:
    def test_shadowing_warned(self):
        registry = default_registry()
        registry.register("S", lambda ctx: 1)
        report = validate("star S(T) { alt -> ACCESS(T, {}, {}); }", registry)
        assert report.ok
        assert any("shadows" in w for w in report.warnings)

    def test_raise_on_error(self):
        with pytest.raises(RuleError, match="invalid rule set"):
            validate_rules(
                parse_rules("star S(T) { alt -> Missing(T); }"),
                default_registry(),
                raise_on_error=True,
            )

    def test_optimizer_validates_at_construction(self, catalog):
        from repro.optimizer import StarburstOptimizer

        with pytest.raises(RuleError):
            StarburstOptimizer(
                catalog, rules=parse_rules("star S(T) { alt -> Missing(T); }")
            )


class TestExclusiveAlternatives:
    """An exclusive STAR whose alternatives are all conditional can
    produce NO plans when every condition is false — a silent dead end
    the validator must flag."""

    def test_all_conditional_exclusive_warned(self):
        report = validate(
            """
            star S(T) exclusive {
                alt if local_query() -> ACCESS(T, {}, {});
                alt if needs_temp(T) -> ACCESS(T, {}, {});
            }
            """
        )
        assert report.ok  # a warning, not an error
        assert any("unconditional final alternative" in w for w in report.warnings)

    def test_otherwise_clause_silences_warning(self):
        report = validate(
            """
            star S(T) exclusive {
                alt if local_query() -> ACCESS(T, {}, {});
                otherwise -> ACCESS(T, {}, {});
            }
            """
        )
        assert report.ok
        assert report.warnings == []

    def test_unconditional_final_alternative_silences_warning(self):
        report = validate(
            """
            star S(T) exclusive {
                alt if local_query() -> ACCESS(T, {}, {});
                alt -> ACCESS(T, {}, {});
            }
            """
        )
        assert report.warnings == []

    def test_inclusive_star_never_warned(self):
        # Inclusive STARs union their alternatives; an empty union is a
        # legitimate outcome, not a trap.
        report = validate(
            """
            star S(T) {
                alt if local_query() -> ACCESS(T, {}, {});
            }
            """
        )
        assert report.warnings == []

    def test_builtin_rule_sets_stay_clean(self):
        for rules in (default_rules(), extended_rules()):
            report = validate_rules(rules, default_registry())
            assert report.warnings == []
