"""Unit and property-based tests for property vectors and requirements."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.catalog import AccessPath
from repro.cost.model import Cost
from repro.errors import GlueError
from repro.plans.properties import (
    PropertyVector,
    Requirements,
    order_satisfies,
    requirements,
)
from repro.query.expressions import ColumnRef

A = ColumnRef("T", "A")
B = ColumnRef("T", "B")
C = ColumnRef("T", "C")


def vector(**kwargs) -> PropertyVector:
    defaults = dict(
        tables=frozenset(["T"]),
        cols=frozenset([A, B]),
        preds=frozenset(),
    )
    defaults.update(kwargs)
    return PropertyVector(**defaults)


class TestOrderSatisfies:
    def test_prefix_satisfies(self):
        assert order_satisfies((A, B), (A,))
        assert order_satisfies((A, B), (A, B))

    def test_non_prefix_fails(self):
        assert not order_satisfies((A, B), (B,))
        assert not order_satisfies((A,), (A, B))

    def test_empty_requirement_always_satisfied(self):
        assert order_satisfies((), ())
        assert order_satisfies((A,), ())


class TestSatisfies:
    def test_site_requirement(self):
        v = vector(site="N.Y.")
        assert v.satisfies(requirements(site="N.Y."))
        assert not v.satisfies(requirements(site="L.A."))

    def test_order_requirement(self):
        v = vector(order=(A, B))
        assert v.satisfies(requirements(order=[A]))
        assert not v.satisfies(requirements(order=[B]))

    def test_temp_requirement(self):
        assert not vector(temp=False).satisfies(requirements(temp=True))
        assert vector(temp=True).satisfies(requirements(temp=True))
        assert vector(temp=True).satisfies(Requirements.EMPTY)

    def test_paths_requirement(self):
        path = AccessPath("ix", "T", ("A", "B"))
        v = vector(paths=frozenset([path]))
        assert v.satisfies(requirements(paths=[A]))
        assert v.satisfies(requirements(paths=[A, B]))
        assert not v.satisfies(requirements(paths=[B]))
        assert not vector().satisfies(requirements(paths=[A]))

    def test_empty_requirements_always_satisfied(self):
        assert vector().satisfies(Requirements.EMPTY)

    def test_describe_mentions_all_figure2_properties(self):
        text = vector(card=5, cost=Cost(io=1)).describe()
        for name in ("TABLES", "COLS", "PREDS", "ORDER", "SITE", "TEMP", "PATHS", "CARD", "COST"):
            assert name in text


class TestRequirementsMerge:
    def test_accumulation(self):
        merged = requirements(site="x").merged(requirements(order=[A]))
        assert merged.site == "x"
        assert merged.order == (A,)

    def test_temp_is_sticky(self):
        merged = requirements(temp=True).merged(Requirements.EMPTY)
        assert merged.temp

    def test_same_value_is_fine(self):
        merged = requirements(site="x").merged(requirements(site="x"))
        assert merged.site == "x"

    def test_conflicting_sites_raise(self):
        with pytest.raises(GlueError, match="conflicting site"):
            requirements(site="x").merged(requirements(site="y"))

    def test_conflicting_orders_raise(self):
        with pytest.raises(GlueError, match="conflicting order"):
            requirements(order=[A]).merged(requirements(order=[B]))

    def test_extra_preds_union(self):
        from repro.query.predicates import equals_value

        p1, p2 = equals_value("T", "A", 1), equals_value("T", "A", 2)
        merged = requirements(extra_preds=[p1]).merged(requirements(extra_preds=[p2]))
        assert merged.extra_preds == {p1, p2}

    def test_is_empty(self):
        assert Requirements.EMPTY.is_empty()
        assert not requirements(site="x").is_empty()

    def test_str_rendering(self):
        text = str(requirements(order=[A], site="x", temp=True, paths=[B]))
        assert "order=" in text and "site=x" in text and "temp" in text and "paths>=" in text
        assert str(Requirements.EMPTY) == "[]"


# ---------------------------------------------------------------------------
# Property-based invariants
# ---------------------------------------------------------------------------

cols = st.sampled_from([A, B, C])
orders = st.lists(cols, max_size=3, unique=True).map(tuple)


@settings(max_examples=100, deadline=None)
@given(orders, orders)
def test_order_satisfies_is_prefix_relation(actual, required):
    got = order_satisfies(actual, required)
    assert got == (actual[: len(required)] == required)


@settings(max_examples=100, deadline=None)
@given(orders, orders, orders)
def test_order_satisfies_transitive(a, b, c):
    if order_satisfies(a, b) and order_satisfies(b, c):
        assert order_satisfies(a, c)


@settings(max_examples=60, deadline=None)
@given(orders)
def test_order_satisfies_reflexive(a):
    assert order_satisfies(a, a)


@settings(max_examples=60, deadline=None)
@given(st.sampled_from(["s1", "s2", None]), orders, st.booleans())
def test_merge_with_empty_is_identity(site, order, temp):
    req = requirements(site=site, order=order or None, temp=temp)
    assert req.merged(Requirements.EMPTY) == req
    assert Requirements.EMPTY.merged(req) == req
