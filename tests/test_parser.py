"""Unit tests for the SQL parser."""

import pytest

from repro.errors import CatalogError, ParseError
from repro.query.expressions import Arith, ColumnRef, FuncCall, Literal
from repro.query.parser import parse_expression, parse_predicate, parse_query
from repro.query.predicates import Comparison, Conjunction, Disjunction, Negation

T = ("DEPT", "EMP")


class TestExpressions:
    def test_literals(self, catalog):
        assert parse_expression("42", catalog, T) == Literal(42)
        assert parse_expression("4.5", catalog, T) == Literal(4.5)
        assert parse_expression("'Haas'", catalog, T) == Literal("Haas")

    def test_escaped_quote(self, catalog):
        assert parse_expression("'O''Brien'", catalog, T) == Literal("O'Brien")

    def test_qualified_column(self, catalog):
        assert parse_expression("DEPT.DNO", catalog, T) == ColumnRef("DEPT", "DNO")

    def test_unqualified_column_resolved(self, catalog):
        assert parse_expression("MGR", catalog, T) == ColumnRef("DEPT", "MGR")

    def test_ambiguous_column_rejected(self, catalog):
        with pytest.raises(CatalogError, match="ambiguous"):
            parse_expression("DNO", catalog, T)

    def test_unknown_column_rejected(self, catalog):
        with pytest.raises(CatalogError, match="not found"):
            parse_expression("NOPE", catalog, T)

    def test_precedence(self, catalog):
        expr = parse_expression("1 + 2 * 3", catalog, T)
        assert expr == Arith("+", Literal(1), Arith("*", Literal(2), Literal(3)))

    def test_parentheses(self, catalog):
        expr = parse_expression("(1 + 2) * 3", catalog, T)
        assert expr == Arith("*", Arith("+", Literal(1), Literal(2)), Literal(3))

    def test_unary_minus(self, catalog):
        assert parse_expression("-7", catalog, T) == Literal(-7)

    def test_unary_minus_on_column(self, catalog):
        expr = parse_expression("-ENO", catalog, T)
        assert expr == Arith("-", Literal(0), ColumnRef("EMP", "ENO"))

    def test_function_call(self, catalog):
        expr = parse_expression("upper(MGR)", catalog, T)
        assert expr == FuncCall("upper", (ColumnRef("DEPT", "MGR"),))

    def test_trailing_garbage_rejected(self, catalog):
        with pytest.raises(ParseError):
            parse_expression("1 + 2 extra", catalog, T)


class TestPredicates:
    def test_simple_comparison(self, catalog):
        pred = parse_predicate("DEPT.DNO = EMP.DNO", catalog, T)
        assert pred == Comparison(
            "=", ColumnRef("DEPT", "DNO"), ColumnRef("EMP", "DNO")
        )

    def test_neq_spelling_normalized(self, catalog):
        assert parse_predicate("ENO != 3", catalog, T).op == "<>"
        assert parse_predicate("ENO <> 3", catalog, T).op == "<>"

    def test_and_or_precedence(self, catalog):
        pred = parse_predicate("ENO = 1 OR ENO = 2 AND MGR = 'x'", catalog, T)
        assert isinstance(pred, Disjunction)
        assert isinstance(pred.parts[1], Conjunction)

    def test_not(self, catalog):
        pred = parse_predicate("NOT ENO = 1", catalog, T)
        assert isinstance(pred, Negation)

    def test_parenthesized_predicate(self, catalog):
        pred = parse_predicate("(ENO = 1 OR ENO = 2) AND MGR = 'x'", catalog, T)
        assert isinstance(pred, Conjunction)
        assert isinstance(pred.parts[0], Disjunction)

    def test_between(self, catalog):
        pred = parse_predicate("ENO BETWEEN 3 AND 7", catalog, T)
        assert isinstance(pred, Conjunction)
        ops = {p.op for p in pred.parts}
        assert ops == {">=", "<="}

    def test_comparison_against_expression(self, catalog):
        pred = parse_predicate("ENO > 2 + 3", catalog, T)
        assert pred.right == Arith("+", Literal(2), Literal(3))

    def test_missing_operator_rejected(self, catalog):
        with pytest.raises(ParseError, match="comparison"):
            parse_predicate("ENO 5", catalog, T)


class TestQueries:
    def test_basic_query(self, catalog, fig1_query):
        assert fig1_query.tables == ("DEPT", "EMP")
        assert len(fig1_query.select) == 3
        assert len(fig1_query.predicates) == 2

    def test_star_expands_all_columns(self, catalog):
        q = parse_query("SELECT * FROM EMP", catalog)
        assert [s.alias for s in q.select] == ["ENO", "DNO", "NAME", "ADDRESS"]

    def test_star_multi_table(self, catalog):
        q = parse_query("SELECT * FROM DEPT, EMP", catalog)
        assert len(q.select) == 2 + 4

    def test_aliases(self, catalog):
        q = parse_query("SELECT ENO AS employee FROM EMP", catalog)
        assert q.select[0].alias == "employee"

    def test_expression_in_select(self, catalog):
        q = parse_query("SELECT ENO + 1 AS next FROM EMP", catalog)
        assert isinstance(q.select[0].expr, Arith)

    def test_where_conjuncts_flattened(self, catalog):
        q = parse_query(
            "SELECT ENO FROM EMP WHERE ENO > 1 AND ENO < 9 AND DNO = 2", catalog
        )
        assert len(q.predicates) == 3

    def test_or_stays_single_conjunct(self, catalog):
        q = parse_query("SELECT ENO FROM EMP WHERE ENO = 1 OR ENO = 2", catalog)
        assert len(q.predicates) == 1
        assert isinstance(q.predicates[0], Disjunction)

    def test_order_by(self, catalog):
        q = parse_query("SELECT NAME FROM EMP ORDER BY NAME, ENO DESC", catalog)
        assert [o.column.column for o in q.order_by] == ["NAME", "ENO"]
        assert [o.descending for o in q.order_by] == [False, True]

    def test_order_by_asc_keyword(self, catalog):
        q = parse_query("SELECT NAME FROM EMP ORDER BY NAME ASC", catalog)
        assert not q.order_by[0].descending

    def test_keywords_case_insensitive(self, catalog):
        q = parse_query("select NAME from EMP where ENO = 1 order by NAME", catalog)
        assert q.tables == ("EMP",)

    def test_trailing_tokens_rejected(self, catalog):
        with pytest.raises(ParseError):
            parse_query("SELECT NAME FROM EMP garbage here", catalog)

    def test_missing_from_rejected(self, catalog):
        with pytest.raises(ParseError):
            parse_query("SELECT NAME", catalog)

    def test_error_carries_position(self, catalog):
        with pytest.raises(ParseError) as info:
            parse_query("SELECT NAME\nFROM EMP WHERE ???", catalog)
        assert info.value.line == 2

    def test_roundtrip_str_reparses(self, catalog, fig1_query):
        again = parse_query(str(fig1_query), catalog)
        assert again.tables == fig1_query.tables
        assert set(again.predicates) == set(fig1_query.predicates)
