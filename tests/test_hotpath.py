"""PR 4 hot-path layers: lazy digests, interning, incremental pruning,
STAR/Glue memoization, and the parallel batch driver.

The load-bearing invariant everywhere: the performance layers must be
*invisible* in the optimizer's answers — same best plan, same cost, with
every layer toggled on or off.
"""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro import OptimizerConfig, StarburstOptimizer
from repro.__main__ import main as cli_main
from repro.optimizer import optimize_many
from repro.plans.intern import PlanInterner
from repro.plans.sap import SAP, merge_pruned
from repro.robust.feedback import FeedbackCache
from repro.workloads import (
    chain_workload,
    clique_workload,
    figure1_query,
    paper_catalog,
    star_workload,
)


def _workloads():
    """Small paper-workload suite: every shape, exhaustible sizes."""
    local = paper_catalog()
    distributed = paper_catalog(distributed=True)
    chain = chain_workload(3, rows=30, seed=31)
    star = star_workload(3, rows=30, seed=31)
    clique = clique_workload(3, rows=30, seed=31)
    return [
        ("paper", local, figure1_query(local)),
        ("paper-distributed", distributed, figure1_query(distributed)),
        ("chain:3", chain.catalog, chain.query),
        ("star:3", star.catalog, star.query),
        ("clique:3", clique.catalog, clique.query),
    ]


#: Layer toggles: every single layer off, and everything off at once.
_CONFIGS = {
    "memo-off": OptimizerConfig(memo_stars=False),
    "intern-off": OptimizerConfig(intern_plans=False),
    "prune-off": OptimizerConfig(prune=False),
    "all-off": OptimizerConfig(
        memo_stars=False, intern_plans=False, prune=False
    ),
}


def _best(catalog, query, config=None):
    return StarburstOptimizer(catalog, config=config).optimize(query)


class TestLazyDigest:
    def test_digest_not_computed_at_construction(self):
        wl = chain_workload(3, rows=30, seed=31)
        plan = _best(wl.catalog, wl.query).best_plan
        fresh = dataclasses.replace(plan)
        assert object.__getattribute__(fresh, "_digest") is None
        assert fresh.digest == plan.digest
        assert object.__getattribute__(fresh, "_digest") == plan.digest

    def test_hash_and_eq_use_cached_digest(self):
        wl = chain_workload(3, rows=30, seed=31)
        plan = _best(wl.catalog, wl.query).best_plan
        fresh = dataclasses.replace(plan)
        assert hash(fresh) == hash(plan)
        assert fresh == plan
        assert fresh is not plan


class TestPlanInterner:
    def test_structural_duplicates_share_one_node(self):
        wl = chain_workload(3, rows=30, seed=31)
        plan = _best(wl.catalog, wl.query).best_plan
        twin = dataclasses.replace(plan)
        interner = PlanInterner()
        assert interner.intern(plan) is plan
        assert interner.intern(twin) is plan
        assert len(interner) == 1
        assert interner.stats.requests == 2
        assert interner.stats.hits == 1
        assert interner.stats.unique == 1
        assert interner.get(plan.digest) is plan

    def test_engine_interner_dedupes_during_optimization(self):
        wl = chain_workload(4, rows=30, seed=31)
        result = _best(wl.catalog, wl.query)
        stats = result.engine.ctx.factory.interner.stats
        assert stats.hits > 0
        assert stats.unique + stats.hits == stats.requests


class TestMergePruned:
    def test_incremental_merge_matches_full_reprune(self):
        """merge_pruned on any split of a real SAP == pruning the union."""
        wl = chain_workload(4, rows=30, seed=31)
        result = _best(
            wl.catalog, wl.query, OptimizerConfig(prune=False)
        )
        model = result.engine.ctx.model
        checked = 0
        for sap in result.engine.ctx.plan_table._entries.values():
            if len(sap) < 2:
                continue
            plans = list(sap)
            existing = SAP(plans[::2]).pruned(model)
            incoming = SAP(plans[1::2])
            merged = merge_pruned(existing, incoming, model)
            full = existing.union(incoming).pruned(model)
            assert {p.digest for p in merged} == {p.digest for p in full}
            checked += 1
        assert checked > 0


class TestLayerEquivalence:
    """Layers on or off, the optimizer's answer must not move."""

    @pytest.mark.parametrize(
        "name,catalog,query", _workloads(), ids=lambda v: str(v)[:20]
    )
    def test_same_best_plan_and_cost_under_every_toggle(
        self, name, catalog, query
    ):
        baseline = _best(catalog, query)
        assert baseline.engine.memo is not None  # default-on
        assert baseline.engine.ctx.factory.interner is not None
        for label, config in _CONFIGS.items():
            variant = _best(catalog, query, config)
            assert variant.best_plan.digest == baseline.best_plan.digest, (
                f"{name}/{label}: best plan changed"
            )
            assert variant.best_cost == pytest.approx(baseline.best_cost), (
                f"{name}/{label}: best cost changed"
            )

    def test_memo_hits_on_shared_subplan_workload(self):
        wl = chain_workload(4, rows=30, seed=31)
        result = _best(wl.catalog, wl.query)
        stats = result.engine.memo.stats
        assert stats.hits > 0
        assert stats.lookups == stats.hits + stats.misses
        assert result.stats.memo_hits == stats.hits


class TestMemoIsolation:
    """The memo is per-optimization — never shared across re-plans."""

    def test_fresh_engine_and_memo_per_optimize(self):
        wl = chain_workload(3, rows=30, seed=31)
        optimizer = StarburstOptimizer(wl.catalog)
        first = optimizer.optimize(wl.query)
        second = optimizer.optimize(wl.query)
        assert first.engine is not second.engine
        assert first.engine.memo is not second.engine.memo

    def test_feedback_adjusted_reoptimization_sees_new_estimates(self):
        """A FeedbackCache observation recorded between two optimizations
        must change the second one's cost — a shared memo would serve the
        stale pre-feedback plans instead."""
        wl = chain_workload(3, rows=30, seed=31)
        feedback = FeedbackCache()
        optimizer = StarburstOptimizer(wl.catalog, feedback=feedback)
        before = optimizer.optimize(wl.query)
        table = sorted(before.query.tables)[0]
        feedback.record([table], frozenset(), actual=50_000)
        after = optimizer.optimize(wl.query)
        assert after.best_cost != pytest.approx(before.best_cost)


class TestBatchDriver:
    def test_serial_and_parallel_agree_in_order(self):
        wl = chain_workload(3, rows=30, seed=31)
        queries = [wl.query] * 3
        serial = optimize_many(wl.catalog, queries, workers=1)
        pooled = optimize_many(wl.catalog, queries, workers=2)
        assert [r.index for r in pooled] == [0, 1, 2]
        for left, right in zip(serial, pooled):
            assert left.ok and right.ok
            assert left.plan_digest == right.plan_digest
            assert left.best_cost == pytest.approx(right.best_cost)

    def test_failed_query_is_isolated(self):
        wl = chain_workload(3, rows=30, seed=31)
        results = optimize_many(
            wl.catalog, ["SELECT X FROM NO_SUCH_TABLE", wl.query]
        )
        assert [r.ok for r in results] == [False, True]
        assert results[0].error
        assert results[0].best_plan is None
        assert results[1].plan_digest

    def test_per_query_stats_are_isolated(self):
        """Identical queries report identical memo stats — a memo shared
        across the batch would make later queries all-hits."""
        wl = chain_workload(3, rows=30, seed=31)
        results = optimize_many(wl.catalog, [wl.query] * 3)
        first = results[0].memo_stats
        assert first["lookups"] > 0
        for other in results[1:]:
            assert other.memo_stats == first


class TestCli:
    def test_bench_opt_writes_json(self, tmp_path, capsys):
        out = tmp_path / "bench.json"
        rc = cli_main([
            "bench-opt", "--workload", "chain:3", "--queries", "2",
            "--json", str(out),
        ])
        assert rc == 0
        captured = capsys.readouterr().out
        assert "throughput" in captured
        payload = json.loads(out.read_text())
        assert payload["queries"] == 2
        assert len(payload["results"]) == 2
        assert payload["results"][0]["ok"] is True

    def test_bench_opt_profile_prints_top_functions(self, capsys):
        rc = cli_main([
            "bench-opt", "--workload", "chain:3", "--queries", "1",
            "--profile",
        ])
        assert rc == 0
        assert "profile (top 20 by cumulative time)" in capsys.readouterr().out

    def test_optimize_profile_prints_top_functions(self, capsys):
        rc = cli_main([
            "optimize", "SELECT NAME FROM EMP", "--profile",
        ])
        assert rc == 0
        assert "profile (top 20 by cumulative time)" in capsys.readouterr().out
