"""Unit tests for the STAR rule DSL parser."""

import pytest

from repro.errors import ParseError, RuleError
from repro.stars.ast import (
    Call,
    Compare,
    Const,
    ForAll,
    Logical,
    Negate,
    Param,
    SetExpr,
    SetLiteral,
    StarRef,
)
from repro.stars.dsl import parse_rules


def star(text: str, name: str):
    return parse_rules(text).get(name)


class TestStructure:
    def test_minimal_star(self):
        s = star("star S(T) { alt -> ACCESS(T, {}, {}); }", "S")
        assert s.params == ("T",)
        assert len(s.alternatives) == 1
        assert not s.exclusive

    def test_exclusive_keyword(self):
        s = star("star S(T) exclusive { alt -> ACCESS(T, {}, {}); }", "S")
        assert s.exclusive

    def test_inclusive_keyword(self):
        s = star("star S(T) inclusive { alt -> ACCESS(T, {}, {}); }", "S")
        assert not s.exclusive

    def test_multiple_alternatives(self):
        s = star(
            """
            star S(T, P) {
                alt -> ACCESS(T, {}, P);
                alt if nonempty(P) -> FILTER(ACCESS(T, {}, {}), P);
            }
            """,
            "S",
        )
        assert len(s.alternatives) == 2
        assert s.alternatives[0].condition is None
        assert isinstance(s.alternatives[1].condition, Call)

    def test_otherwise(self):
        s = star(
            """
            star S(T) exclusive {
                alt if local_query() -> ACCESS(T, {}, {});
                otherwise -> STORE(ACCESS(T, {}, {}));
            }
            """,
            "S",
        )
        assert s.alternatives[1].otherwise

    def test_where_bindings_ordered(self):
        s = star(
            """
            star S(P) {
                where A = join_preds(P);
                where B = A | P;
                alt -> ACCESS('T', {}, B);
            }
            """,
            "S",
        )
        assert [name for name, _ in s.bindings] == ["A", "B"]
        assert isinstance(s.bindings[1][1], SetExpr)

    def test_extend_adds_alternatives(self):
        rules = parse_rules("star S(T) { alt -> ACCESS(T, {}, {}); }")
        parse_rules("extend S { alt -> STORE(ACCESS(T, {}, {})); }", base=rules)
        assert len(rules.get("S").alternatives) == 2

    def test_extend_unknown_star_rejected(self):
        with pytest.raises(RuleError, match="unknown STAR"):
            parse_rules("extend Nope { alt -> ACCESS('T', {}, {}); }")

    def test_duplicate_star_rejected(self):
        with pytest.raises(RuleError, match="already defined"):
            parse_rules(
                "star S(T) { alt -> ACCESS(T, {}, {}); }"
                "star S(T) { alt -> ACCESS(T, {}, {}); }"
            )

    def test_comments_ignored(self):
        s = star(
            """
            // a line comment
            star S(T) {  # another comment
                alt -> ACCESS(T, {}, {});  // trailing
            }
            """,
            "S",
        )
        assert s.params == ("T",)

    def test_empty_body_rejected(self):
        with pytest.raises(RuleError, match="no alternative"):
            parse_rules("star S(T) { }")


class TestTerms:
    def test_lolepop_flavor_parsed(self):
        s = star(
            "star S(A, B, P) { alt -> JOIN(MG, Glue(A, {}), Glue(B, {}), P, {}); }",
            "S",
        )
        ref = s.alternatives[0].term
        assert isinstance(ref, StarRef)
        assert ref.name == "JOIN" and ref.flavor == "MG"
        assert len(ref.args) == 4

    def test_nested_terms(self):
        s = star(
            "star S(T, C, P) { alt -> GET(ACCESS(T, C, P), T, C, {}); }", "S"
        )
        outer = s.alternatives[0].term
        assert outer.name == "GET"
        inner = outer.args[0].value
        assert isinstance(inner, StarRef) and inner.name == "ACCESS"

    def test_forall(self):
        s = star(
            "star S(T) { alt -> forall i in matching_indexes(T): ACCESS(i, {}, {}); }",
            "S",
        )
        term = s.alternatives[0].term
        assert isinstance(term, ForAll)
        assert term.var == "i"
        assert isinstance(term.term, StarRef)

    def test_unknown_name_stays_call(self):
        s = star("star S(T, C, P) { alt -> SomeOther(T, C, P); }", "S")
        term = s.alternatives[0].term
        assert isinstance(term, Call)
        assert term.name == "SomeOther"

    def test_star_literal_argument(self):
        s = star("star S(T, P) { alt -> ACCESS(Glue(T [temp], {}), *, P); }", "S")
        ref = s.alternatives[0].term
        assert ref.args[1].value == Const("*")


class TestRequiredProperties:
    def test_site_requirement(self):
        s = star("star S(A, B, P, s) { alt -> Other(A [site = s], B, P); }", "S")
        term = s.alternatives[0].term
        req = term.args[0].required
        assert req.site == Param("s")
        assert term.args[1].required is None

    def test_order_requirement_with_call(self):
        s = star(
            "star S(A, SP) { alt -> Glue(A [order = merge_cols(SP, A)], {}); }", "S"
        )
        req = s.alternatives[0].term.args[0].required
        assert isinstance(req.order, Call)

    def test_temp_flag(self):
        s = star("star S(A, P) { alt -> Glue(A [temp], P); }", "S")
        assert s.alternatives[0].term.args[0].required.temp

    def test_paths_requirement(self):
        s = star("star S(A, IX, P) { alt -> Glue(A [paths >= IX], P); }", "S")
        assert s.alternatives[0].term.args[0].required.paths == Param("IX")

    def test_combined_requirements(self):
        s = star("star S(A, s, o) { alt -> Glue(A [site = s, order = o, temp], {}); }", "S")
        req = s.alternatives[0].term.args[0].required
        assert req.site == Param("s") and req.order == Param("o") and req.temp


class TestExpressions:
    def parse_cond(self, text):
        s = star(f"star S(P, T1, T2) {{ alt if {text} -> ACCESS('T', {{}}, {{}}); }}", "S")
        return s.alternatives[0].condition

    def test_set_literal_and_empty_set(self):
        assert self.parse_cond("P != {}") == Compare("!=", Param("P"), Const(frozenset()))
        cond = self.parse_cond("P == {1, 2}")
        assert isinstance(cond.right, SetLiteral)

    def test_set_algebra_left_assoc(self):
        cond = self.parse_cond("(P - T1 | T2) != {}")
        left = cond.left
        assert isinstance(left, SetExpr) and left.op == "|"
        assert isinstance(left.left, SetExpr) and left.left.op == "-"

    def test_boolean_connectives(self):
        cond = self.parse_cond("nonempty(P) and not empty(T1) or local_query()")
        assert isinstance(cond, Logical) and cond.op == "or"
        assert isinstance(cond.parts[0], Logical) and cond.parts[0].op == "and"
        assert isinstance(cond.parts[0].parts[1], Negate)

    def test_comparisons(self):
        for op in ("==", "!=", "<=", ">=", "<", ">", "in"):
            cond = self.parse_cond(f"T1 {op} T2")
            assert cond.op == op

    def test_string_and_number_literals(self):
        cond = self.parse_cond("query_site() == 'L.A.'")
        assert cond.right == Const("L.A.")
        cond = self.parse_cond("nonempty(P) == true")
        assert cond.right == Const(True)


class TestErrors:
    def test_position_reported(self):
        with pytest.raises(ParseError) as info:
            parse_rules("star S(T) {\n  alt -> ;\n}")
        assert info.value.line == 2

    def test_missing_semicolon(self):
        with pytest.raises(ParseError):
            parse_rules("star S(T) { alt -> ACCESS(T, {}, {}) }")

    def test_bad_top_level(self):
        with pytest.raises(ParseError, match="expected 'star' or 'extend'"):
            parse_rules("banana")

    def test_unclosed_paren(self):
        with pytest.raises(ParseError):
            parse_rules("star S(T { alt -> ACCESS(T, {}, {}); }")

    def test_bad_required_property(self):
        with pytest.raises(ParseError, match="required property"):
            parse_rules("star S(A) { alt -> Glue(A [frobnicate], {}); }")

    def test_unexpected_character(self):
        with pytest.raises(ParseError, match="unexpected character"):
            parse_rules("star S(T) { alt -> ACCESS(T, {}, {}); } @")


class TestRoundtrip:
    def test_builtin_rules_str_reparse(self):
        """StarDef.__str__ emits valid DSL text (modulo name resolution)."""
        from repro.stars.builtin_rules import default_rules

        rules = default_rules()
        text = "\n".join(str(s) for s in rules)
        reparsed = parse_rules(text)
        assert set(reparsed.names()) == set(rules.names())
        for name in rules.names():
            assert len(reparsed.get(name).alternatives) == len(
                rules.get(name).alternatives
            )
