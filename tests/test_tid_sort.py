"""Tests for the TID-sort strategy (the paper's omitted-for-brevity
"sorting TIDs taken from an unordered index in order to order I/O
accesses to data pages"), shipped as optional rule data."""

import pytest

from repro.config import OptimizerConfig
from repro.cost.propfuncs import PlanFactory
from repro.executor import QueryExecutor, naive_evaluate
from repro.optimizer import StarburstOptimizer
from repro.plans.operators import ACCESS, GET, SORT
from repro.query.expressions import ColumnRef
from repro.query.parser import parse_predicate, parse_query
from repro.stars.builtin_rules import extended_rules
from repro.stars.engine import StarEngine
from repro.storage.table import tid_column
from repro.workloads.paper import paper_catalog, paper_database

E_DNO = ColumnRef("EMP", "DNO")
E_NAME = ColumnRef("EMP", "NAME")


def tid_sorted(plans):
    """Plans containing GET(SORT-on-TID(...))."""
    found = []
    for plan in plans:
        for node in plan.nodes():
            if (
                node.op == GET
                and node.inputs[0].op == SORT
                and node.inputs[0].param("order")[0].column.startswith("#")
            ):
                found.append(plan)
                break
    return found


def expand_access(catalog, sql, tid_sort=True, prune=False):
    query = parse_query(sql, catalog)
    engine = StarEngine(
        extended_rules(tid_sort=tid_sort),
        catalog,
        query,
        config=OptimizerConfig(prune=prune),
    )
    sap = engine.expand(
        "AccessRoot",
        (
            "EMP",
            query.columns_for_table("EMP"),
            query.single_table_predicates("EMP"),
        ),
    )
    return sap, engine


class TestTidSortRules:
    def test_alternative_generated(self):
        cat = paper_catalog()
        paper_database(cat)
        sap, _ = expand_access(cat, "SELECT NAME FROM EMP WHERE DNO < 10")
        assert tid_sorted(sap)

    def test_absent_without_extension(self):
        cat = paper_catalog()
        paper_database(cat)
        sap, _ = expand_access(
            cat, "SELECT NAME FROM EMP WHERE DNO < 10", tid_sort=False
        )
        assert not tid_sorted(sap)

    def test_tid_sorted_plan_orders_by_tid(self):
        cat = paper_catalog()
        paper_database(cat)
        sap, _ = expand_access(cat, "SELECT NAME FROM EMP WHERE DNO < 10")
        for plan in tid_sorted(sap):
            assert plan.props.order == (tid_column("EMP"),)

    def test_covering_index_needs_no_tid_sort(self):
        cat = paper_catalog()
        paper_database(cat)
        sap, _ = expand_access(cat, "SELECT DNO FROM EMP WHERE DNO = 3")
        # The TidSortedAccess STAR's exclusive first alternative fires:
        # covering access, no GET/SORT.
        assert not tid_sorted(sap)


class TestTidSortCostModel:
    def test_tid_order_cheaper_than_random_fetch(self):
        """For fetches of many more rows than the table has pages, the
        TID-ordered GET is estimated cheaper than random fetches."""
        cat = paper_catalog(emp_rows=5000)
        paper_database(cat)
        factory = PlanFactory(cat)
        pred = parse_predicate("EMP.DNO < 25", cat, ("EMP",))
        path = cat.path("EMP", "EMP_DNO")
        probe = factory.access_index("EMP", path, preds={pred})
        random_get = factory.get(probe, "EMP", {E_NAME})
        tid_get = factory.get(
            factory.sort(probe, (tid_column("EMP"),)), "EMP", {E_NAME}
        )
        assert tid_get.props.cost.io < random_get.props.cost.io

    def test_random_fetch_costs_one_io_per_row(self):
        cat = paper_catalog(emp_rows=5000)
        paper_database(cat)
        factory = PlanFactory(cat)
        path = cat.path("EMP", "EMP_DNO")
        probe = factory.access_index("EMP", path)
        plan = factory.get(probe, "EMP", {E_NAME})
        fetch_io = plan.props.cost.io - probe.props.cost.io
        assert fetch_io == pytest.approx(probe.props.card)

    def test_tid_fetch_bounded_by_pages(self):
        cat = paper_catalog(emp_rows=5000)
        db = paper_database(cat)
        factory = PlanFactory(cat)
        path = cat.path("EMP", "EMP_DNO")
        probe = factory.access_index("EMP", path)
        sorted_probe = factory.sort(probe, (tid_column("EMP"),))
        plan = factory.get(sorted_probe, "EMP", {E_NAME})
        fetch_io = plan.props.cost.io - sorted_probe.props.cost.io
        assert fetch_io <= cat.page_count("EMP") + 1


class TestTidSortExecution:
    def test_answers_unchanged(self):
        cat = paper_catalog(emp_rows=800)
        db = paper_database(cat)
        query = parse_query(
            "SELECT NAME, MGR FROM DEPT, EMP "
            "WHERE DEPT.DNO = EMP.DNO AND MGR = 'Haas' AND SALARY > 50000",
            cat,
        )
        result = StarburstOptimizer(
            cat, rules=extended_rules(tid_sort=True)
        ).optimize(query)
        executor = QueryExecutor(db)
        reference = naive_evaluate(query, db).as_multiset()
        for plan in result.alternatives:
            assert executor.run(query, plan).as_multiset() == reference

    def test_fetches_happen_in_page_order(self):
        """Executing a TID-sorted plan touches each heap page at most
        once per contiguous run (bounded by page count, not row count)."""
        cat = paper_catalog(emp_rows=2000)
        db = paper_database(cat)
        factory = PlanFactory(cat)
        pred = parse_predicate("EMP.DNO < 25", cat, ("EMP",))
        path = cat.path("EMP", "EMP_DNO")
        probe = factory.access_index("EMP", path, preds={pred})
        plan = factory.get(
            factory.sort(probe, (tid_column("EMP"),)), "EMP", {E_NAME}
        )
        executor = QueryExecutor(db)
        rows, stats = executor.run_plan(plan)
        assert rows
        # Our executor charges one read per fetch regardless of order, so
        # page_reads equals the matching rows — but the rows arrive in
        # strictly non-decreasing TID order, the physical property the
        # strategy establishes.
        tids = [row[tid_column("EMP")] for row in rows]
        assert tids == sorted(tids)
