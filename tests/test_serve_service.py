"""The asyncio serving front end: admission, tiers, tenants, deadlines."""

from __future__ import annotations

import pytest

from repro.obs import MetricsRegistry
from repro.serve import (
    OptimizerService,
    Request,
    ServiceConfig,
    TIER_ANYTIME,
    TIER_CACHED,
    TIER_FULL,
    TIER_HEURISTIC,
    TIER_REJECTED,
)
from repro.workloads import chain_workload

SQL = "SELECT R0.ID, R2.ID FROM R0, R1, R2 WHERE R0.ID = R1.FK AND R1.ID = R2.FK"
SQL_B = "SELECT R0.ID FROM R0, R1 WHERE R0.ID = R1.FK AND R0.VAL < 20"


@pytest.fixture(scope="module")
def workload():
    return chain_workload(3, rows=40)


def _service(workload, **overrides) -> OptimizerService:
    defaults = dict(workers=2, queue_limit=8)
    defaults.update(overrides)
    return OptimizerService(
        workload.catalog, service=ServiceConfig(**defaults)
    )


class TestBasicServing:
    def test_single_request_full_tier(self, workload):
        service = _service(workload)
        [response] = service.serve_all([Request(SQL)])
        assert response.ok
        assert response.tier == TIER_FULL
        assert response.plan_digest
        assert response.best_cost > 0
        assert not response.degraded

    def test_repeat_requests_hit_the_cache(self, workload):
        service = _service(workload)
        responses = service.serve_all([Request(SQL)] * 4, burst=1)
        assert [r.tier for r in responses] == [
            TIER_FULL, TIER_CACHED, TIER_CACHED, TIER_CACHED
        ]
        assert all(r.ok for r in responses)
        assert responses[1].cache_hit
        # Cached responses carry the optimized plan's digest and cost.
        assert responses[1].plan_digest == responses[0].plan_digest
        assert responses[1].best_cost == pytest.approx(responses[0].best_cost)

    def test_cache_disabled_always_optimizes(self, workload):
        service = _service(workload, cache_capacity=0)
        responses = service.serve_all([Request(SQL)] * 3, burst=1)
        assert all(r.tier == TIER_FULL for r in responses)

    def test_matches_direct_optimizer(self, workload):
        from repro.optimizer import StarburstOptimizer

        direct = StarburstOptimizer(workload.catalog).optimize(SQL)
        service = _service(workload)
        [response] = service.serve_all([Request(SQL)])
        assert response.plan_digest == direct.best_plan.digest
        assert response.best_cost == pytest.approx(direct.best_cost)


class TestAdmissionControl:
    def test_burst_beyond_queue_limit_is_shed(self, workload):
        service = _service(workload, queue_limit=2)
        responses = service.serve_all([Request(SQL)] * 6, burst=6)
        rejected = [r for r in responses if r.rejected]
        served = [r for r in responses if r.ok]
        assert len(rejected) == 4  # deterministic: queue holds exactly 2
        assert len(served) == 2
        assert all(r.tier == TIER_REJECTED for r in rejected)
        assert service.max_queue_depth <= 2

    def test_every_request_resolves(self, workload):
        service = _service(workload, queue_limit=3)
        responses = service.serve_all(
            [Request(SQL), Request(SQL_B)] * 5, burst=10
        )
        assert len(responses) == 10
        for r in responses:
            assert r.ok or r.rejected or r.tier == "error"
        assert not any(r.tier == "error" for r in responses)

    def test_rejections_counted_and_metered(self, workload):
        metrics = MetricsRegistry()
        service = OptimizerService(
            workload.catalog,
            service=ServiceConfig(workers=1, queue_limit=1),
            metrics=metrics,
        )
        service.serve_all([Request(SQL)] * 4, burst=4)
        report = service.report()
        assert report.rejections == 3
        assert metrics.snapshot()["serve.rejected"] == 3


class TestDegradationTiers:
    def test_tight_deadline_forces_heuristic(self, workload):
        service = _service(workload)
        [response] = service.serve_all([Request(SQL, deadline_ticks=10)])
        assert response.ok
        assert response.tier == TIER_HEURISTIC
        assert response.degraded
        assert response.plan_digest

    def test_moderate_deadline_forces_anytime(self, workload):
        service = _service(workload)
        [response] = service.serve_all([Request(SQL, deadline_ticks=1500)])
        assert response.ok
        assert response.tier in (TIER_ANYTIME, TIER_FULL)
        # The tier label is anytime even when the budget happened to
        # suffice — admission picked the capped path.
        assert response.tier == TIER_ANYTIME or not response.budget_exhausted

    def test_heuristic_tier_is_a_runnable_plan(self, workload):
        from repro.executor import QueryExecutor, naive_evaluate
        from repro.query.parser import parse_query

        service = _service(workload)
        [response] = service.serve_all([Request(SQL, deadline_ticks=10)])
        query = parse_query(SQL, workload.catalog)
        result = service.optimizer.optimize_heuristic(query)
        assert result.best_plan.digest == response.plan_digest
        rows = QueryExecutor(workload.database).run(query, result.best_plan)
        assert rows.as_multiset() == naive_evaluate(
            query, workload.database
        ).as_multiset()

    def test_load_shifts_tiers_under_pressure(self, workload):
        """With a saturated queue the workers must degrade: nothing but
        the first (empty-queue) request may be served full."""
        service = _service(
            workload, workers=1, queue_limit=8, cache_capacity=0,
            anytime_load=0.25, heuristic_load=0.5, stale_load=2.0,
        )
        responses = service.serve_all([Request(SQL)] * 8, burst=8)
        tiers = [r.tier for r in responses]
        assert all(r.ok for r in responses)
        assert any(t in (TIER_ANYTIME, TIER_HEURISTIC) for t in tiers)

    def test_report_labels_every_tier(self, workload):
        service = _service(workload, queue_limit=2)
        service.serve_all(
            [Request(SQL), Request(SQL, deadline_ticks=10)] * 3, burst=6
        )
        report = service.report()
        assert report.requests == 6
        assert sum(report.tiers.values()) == 6
        assert "tiers:" in report.summary()


class TestTenantBudgets:
    def test_budgets_are_per_tenant_and_reused(self, workload):
        service = _service(workload)
        service.serve_all([
            Request(SQL, tenant="a", deadline_ticks=1500),
            Request(SQL_B, tenant="b", deadline_ticks=1500),
        ], burst=1)
        budget_a = service.tenant_budget("a")
        budget_b = service.tenant_budget("b")
        assert budget_a is not None and budget_b is not None
        assert budget_a is not budget_b
        before = service.tenant_budget("a")
        service.serve_all([Request(SQL, tenant="a", deadline_ticks=1500)])
        assert service.tenant_budget("a") is before

    def test_exhaustion_never_leaks_between_requests(self, workload):
        """A request that exhausts its tenant's budget must not poison
        the next request on the same (reused) budget object."""
        service = _service(workload, anytime_ticks=30)
        [starved] = service.serve_all([Request(SQL, deadline_ticks=1500)])
        assert starved.ok
        assert starved.budget_exhausted
        assert starved.tier == TIER_ANYTIME
        # Same tenant, no deadline: the full search must run unimpeded.
        service.cache = type(service.cache)(workload.catalog, capacity=0)
        [fresh] = service.serve_all([Request(SQL)])
        assert fresh.ok
        assert fresh.tier == TIER_FULL
        assert not fresh.budget_exhausted

    def test_unbudgeted_full_tier_has_no_budget(self, workload):
        service = _service(workload)
        service.serve_all([Request(SQL, tenant="t")])
        budget = service.tenant_budget("t")
        assert budget is not None
        assert budget.deadline_ticks is None
        assert service.optimizer.budget is None  # always detached after


class TestErrorHandling:
    def test_invalid_query_yields_error_response(self, workload):
        service = _service(workload)
        [response] = service.serve_all([Request("SELECT 1 FROM NOPE")])
        assert not response.ok
        assert response.tier == "error"
        assert response.error
        report = service.report()
        assert report.errors == 1

    def test_error_does_not_poison_subsequent_requests(self, workload):
        service = _service(workload)
        responses = service.serve_all(
            [Request("SELECT 1 FROM NOPE"), Request(SQL)], burst=1
        )
        assert responses[0].tier == "error"
        assert responses[1].ok

    def test_submit_before_start_raises(self, workload):
        service = _service(workload)
        with pytest.raises(RuntimeError):
            service.submit_nowait(Request(SQL))


class TestCrashSafety:
    """E17 integration: expired shedding, fast shutdown, pool routing."""

    def test_expired_in_queue_is_shed_distinctly(self, workload):
        import asyncio

        from repro.serve import TIER_EXPIRED

        async def drive():
            service = _service(workload, workers=1)
            async with service:
                future = service.submit_nowait(
                    Request(SQL, deadline_seconds=0.0)
                )
                return service, await future

        service, response = asyncio.run(drive())
        assert not response.ok
        assert response.rejected
        assert response.tier == TIER_EXPIRED
        assert service.metrics.snapshot()["serve.expired"] == 1

    def test_fast_stop_resolves_queued_with_shutdown(self, workload):
        import asyncio

        from repro.serve import TIER_SHUTDOWN

        async def drive():
            service = _service(workload, workers=1)
            await service.start()
            futures = [service.submit_nowait(Request(SQL)) for _ in range(5)]
            await service.stop(drain=False)
            return service, await asyncio.gather(*futures)

        service, responses = asyncio.run(drive())
        shed = [r for r in responses if r.tier == TIER_SHUTDOWN]
        assert shed, "fast stop should shed still-queued requests"
        for response in shed:
            assert not response.ok
            assert response.rejected
        # Accounting invariant: every response is ok, rejected, or error.
        assert all(r.ok or r.rejected or r.tier == "error" for r in responses)

    def test_submit_after_stop_returns_shutdown_response(self, workload):
        import asyncio

        from repro.serve import TIER_SHUTDOWN

        async def drive():
            service = _service(workload)
            async with service:
                pass  # started, drained, stopped
            return await service.submit_nowait(Request(SQL))

        response = asyncio.run(drive())
        assert not response.ok
        assert response.rejected
        assert response.tier == TIER_SHUTDOWN

    def test_pooled_full_tier_round_trips(self, workload):
        service = _service(workload, pool_workers=1)
        try:
            responses = service.serve_all([Request(SQL), Request(SQL)])
            assert [r.tier for r in responses] == [TIER_FULL, TIER_CACHED]
            assert responses[0].pooled
            assert not responses[1].pooled  # cache hits skip the pool
            assert responses[0].plan_digest == responses[1].plan_digest
        finally:
            service.close()

    def test_pool_matches_inline_plans(self, workload):
        inline = _service(workload)
        [inline_response] = inline.serve_all([Request(SQL)])
        pooled = _service(workload, pool_workers=1)
        try:
            [pooled_response] = pooled.serve_all([Request(SQL)])
        finally:
            pooled.close()
        assert pooled_response.plan_digest == inline_response.plan_digest
        assert pooled_response.best_cost == pytest.approx(
            inline_response.best_cost
        )

    def test_crash_fails_over_and_quarantines(self, workload):
        from repro.serve import PoolChaos

        chaos = PoolChaos(
            seed=11, poison_templates=frozenset({"poison"}),
            poison_action="crash",
        )
        service = OptimizerService(
            workload.catalog,
            service=ServiceConfig(
                workers=1, queue_limit=8, pool_workers=1,
                pool_respawn_budget=8, quarantine_strikes=2,
                cache_capacity=0,
            ),
            pool_chaos=chaos,
        )
        try:
            responses = service.serve_all(
                [Request(SQL, template="poison") for _ in range(4)], burst=1
            )
            # Every request still resolves with a plan.
            assert all(r.ok and r.tier == TIER_HEURISTIC for r in responses)
            assert [r.pool_failure for r in responses] == [
                "crash", "crash", None, None
            ]
            assert [r.quarantined for r in responses] == [
                False, False, True, True
            ]
            # Quarantined requests never touched the pool.
            assert service.pool.stats.dispatched == 2
            assert service.metrics.snapshot()["serve.quarantined"] == 1
        finally:
            service.close()

    def test_pool_survives_serve_all_restarts(self, workload):
        service = _service(workload, pool_workers=1)
        try:
            [first] = service.serve_all([Request(SQL)])
            pool = service.pool
            [second] = service.serve_all([Request(SQL_B)])
            assert service.pool is pool  # same pool across stop/start
            assert first.ok and second.ok
        finally:
            service.close()

    def test_periodic_snapshots(self, workload, tmp_path):
        path = str(tmp_path / "periodic.jsonl")
        service = _service(
            workload, workers=1, snapshot_path=path, snapshot_every=2
        )
        service.serve_all(
            [Request(SQL), Request(SQL_B), Request(SQL), Request(SQL_B)],
            burst=1,
        )
        # 4 handled requests / every 2 = 2 periodic + 1 on stop.
        assert service.snapshot_saves == 3
        assert service.metrics.snapshot()["snapshot.saves"] == 3
