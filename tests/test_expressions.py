"""Unit tests for the scalar expression AST."""

import pytest

from repro.errors import ExecutionError, QueryError
from repro.query.expressions import (
    Arith,
    ColumnRef,
    FuncCall,
    Literal,
    RowContext,
)

DNO = ColumnRef("DEPT", "DNO")
MGR = ColumnRef("DEPT", "MGR")
SAL = ColumnRef("EMP", "SALARY")


class TestColumnRef:
    def test_evaluate_looks_up_value(self):
        ctx = RowContext({DNO: 7})
        assert DNO.evaluate(ctx) == 7

    def test_unbound_column_raises(self):
        ctx = RowContext({})
        with pytest.raises(ExecutionError, match="unbound column"):
            DNO.evaluate(ctx)

    def test_outer_context_chain(self):
        outer = RowContext({DNO: 3})
        inner = outer.child({SAL: 100})
        assert DNO.evaluate(inner) == 3
        assert SAL.evaluate(inner) == 100

    def test_inner_shadows_outer(self):
        outer = RowContext({DNO: 3})
        inner = outer.child({DNO: 9})
        assert DNO.evaluate(inner) == 9

    def test_columns_and_tables(self):
        assert DNO.columns() == frozenset([DNO])
        assert DNO.tables() == frozenset(["DEPT"])

    def test_str(self):
        assert str(DNO) == "DEPT.DNO"

    def test_hashable_and_eq(self):
        assert ColumnRef("DEPT", "DNO") == DNO
        assert hash(ColumnRef("DEPT", "DNO")) == hash(DNO)
        assert ColumnRef("EMP", "DNO") != DNO


class TestLiteral:
    def test_evaluate(self):
        assert Literal(42).evaluate(RowContext({})) == 42

    def test_no_columns(self):
        assert Literal("x").columns() == frozenset()

    def test_str_quotes_strings(self):
        assert str(Literal("Haas")) == "'Haas'"
        assert str(Literal(5)) == "5"


class TestArith:
    def test_arithmetic_ops(self):
        ctx = RowContext({SAL: 10})
        assert Arith("+", SAL, Literal(5)).evaluate(ctx) == 15
        assert Arith("-", SAL, Literal(5)).evaluate(ctx) == 5
        assert Arith("*", SAL, Literal(5)).evaluate(ctx) == 50
        assert Arith("/", SAL, Literal(5)).evaluate(ctx) == 2
        assert Arith("%", SAL, Literal(3)).evaluate(ctx) == 1

    def test_unknown_operator_rejected(self):
        with pytest.raises(QueryError):
            Arith("**", SAL, Literal(2))

    def test_nested_columns_collected(self):
        expr = Arith("+", Arith("*", SAL, Literal(2)), DNO)
        assert expr.columns() == frozenset([SAL, DNO])
        assert expr.tables() == frozenset(["EMP", "DEPT"])

    def test_division_by_zero_raises_execution_error(self):
        ctx = RowContext({SAL: 1})
        with pytest.raises(ExecutionError, match="arithmetic failed"):
            Arith("/", SAL, Literal(0)).evaluate(ctx)

    def test_type_error_wrapped(self):
        ctx = RowContext({MGR: "Haas"})
        with pytest.raises(ExecutionError):
            Arith("-", MGR, Literal(1)).evaluate(ctx)


class TestFuncCall:
    def test_builtin_functions(self):
        ctx = RowContext({MGR: "Haas", SAL: -3})
        assert FuncCall("upper", (MGR,)).evaluate(ctx) == "HAAS"
        assert FuncCall("lower", (MGR,)).evaluate(ctx) == "haas"
        assert FuncCall("length", (MGR,)).evaluate(ctx) == 4
        assert FuncCall("abs", (SAL,)).evaluate(ctx) == 3
        assert FuncCall("mod", (Literal(7), Literal(3))).evaluate(ctx) == 1

    def test_unknown_function_rejected(self):
        with pytest.raises(QueryError, match="unknown scalar function"):
            FuncCall("median", (SAL,))

    def test_bad_argument_type_wrapped(self):
        ctx = RowContext({SAL: 5})
        with pytest.raises(ExecutionError):
            FuncCall("upper", (SAL,)).evaluate(ctx)

    def test_str(self):
        assert str(FuncCall("upper", (MGR,))) == "upper(DEPT.MGR)"


class TestRowContext:
    def test_bound(self):
        outer = RowContext({DNO: 1})
        inner = outer.child({SAL: 2})
        assert inner.bound(DNO)
        assert inner.bound(SAL)
        assert not inner.bound(MGR)
        assert not outer.bound(SAL)
