"""The supervised optimizer pool: dispatch, crashes, hangs, respawns."""

from __future__ import annotations

import pytest

from repro.obs import MetricsRegistry
from repro.optimizer.batch import BatchSpec
from repro.serve.pool import OptimizerPool, PoolChaos, PoolConfig
from repro.workloads import chain_workload

SQL = "SELECT R0.ID, R2.ID FROM R0, R1, R2 WHERE R0.ID = R1.FK AND R1.ID = R2.FK"
SQL_BAD = "SELECT NOPE.ID FROM NOPE"


@pytest.fixture(scope="module")
def spec():
    return BatchSpec(catalog=chain_workload(3, rows=40).catalog)


def _pool(spec, chaos=None, **overrides) -> OptimizerPool:
    defaults = dict(workers=1, request_timeout=30.0, respawn_budget=3)
    defaults.update(overrides)
    return OptimizerPool(spec, PoolConfig(**defaults), chaos=chaos)


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            PoolConfig(workers=0)
        with pytest.raises(ValueError):
            PoolConfig(request_timeout=0)
        with pytest.raises(ValueError):
            PoolConfig(respawn_budget=-1)

    def test_chaos_validation(self):
        with pytest.raises(ValueError):
            PoolChaos(crash_prob=1.5)
        with pytest.raises(ValueError):
            PoolChaos(poison_action="explode")

    def test_chaos_decide_is_deterministic(self):
        chaos = PoolChaos(seed=7, crash_prob=0.3, hang_prob=0.2)
        first = [chaos.decide(seq, None) for seq in range(50)]
        second = [chaos.decide(seq, None) for seq in range(50)]
        assert first == second
        assert "crash" in first  # the probabilities actually fire

    def test_poison_template_always_takes_its_action(self):
        chaos = PoolChaos(
            seed=7, poison_templates=frozenset({"T9"}), poison_action="hang"
        )
        assert all(chaos.decide(seq, "T9") == "hang" for seq in range(20))
        assert all(chaos.decide(seq, "T0") is None for seq in range(20))


class TestDispatch:
    def test_plain_optimization_round_trips(self, spec):
        with _pool(spec) as pool:
            result = pool.optimize(SQL, seq=0)
        assert result.ok
        assert result.failure is None
        assert result.plan is not None
        assert result.best_cost > 0
        assert result.plan.digest  # the plan crossed the pipe whole

    def test_budget_limits_travel_as_shapes(self, spec):
        with _pool(spec) as pool:
            result = pool.optimize(SQL, seq=0, limits=(5, None, None))
        assert result.ok
        assert result.budget_exhausted
        assert result.expansions > 0

    def test_optimizer_error_is_data_not_exception(self, spec):
        with _pool(spec) as pool:
            result = pool.optimize(SQL_BAD, seq=0)
            after = pool.optimize(SQL, seq=1)
        assert not result.ok
        assert result.failure == "error"
        assert result.error
        # An in-worker error neither kills the worker nor costs a respawn.
        assert after.ok
        assert pool.stats.respawns == 0

    def test_close_is_idempotent(self, spec):
        pool = _pool(spec)
        pool.close()
        pool.close()
        assert pool.degraded


class TestCrashRecovery:
    def test_crash_detected_and_respawned(self, spec):
        chaos = PoolChaos(
            seed=1, poison_templates=frozenset({"boom"}),
            poison_action="crash",
        )
        with _pool(spec, chaos=chaos) as pool:
            crashed = pool.optimize(SQL, seq=0, template="boom")
            recovered = pool.optimize(SQL, seq=1, template="fine")
            assert not crashed.ok
            assert crashed.failure == "crash"
            assert crashed.respawned
            assert recovered.ok
            assert pool.stats.crashes == 1
            assert pool.stats.respawns == 1

    def test_hang_killed_on_timeout(self, spec):
        chaos = PoolChaos(
            seed=1, poison_templates=frozenset({"zzz"}),
            poison_action="hang", hang_seconds=60.0,
        )
        with _pool(spec, chaos=chaos, request_timeout=0.5) as pool:
            hung = pool.optimize(SQL, seq=0, template="zzz")
            recovered = pool.optimize(SQL, seq=1)
            assert not hung.ok
            assert hung.failure == "timeout"
            assert recovered.ok
            assert pool.stats.timeouts == 1

    def test_exhausted_respawn_budget_degrades(self, spec):
        chaos = PoolChaos(
            seed=1, poison_templates=frozenset({"boom"}),
            poison_action="crash",
        )
        with _pool(spec, chaos=chaos, respawn_budget=1) as pool:
            assert pool.optimize(SQL, seq=0, template="boom").failure == "crash"
            assert pool.optimize(SQL, seq=1, template="boom").failure == "crash"
            assert not pool.available
            degraded = pool.optimize(SQL, seq=2)
            assert degraded.failure == "degraded"
            # Degraded dispatches are cheap: nothing was sent anywhere.
            assert pool.stats.completed == 0

    def test_metrics_emitted(self, spec):
        metrics = MetricsRegistry()
        chaos = PoolChaos(
            seed=1, poison_templates=frozenset({"boom"}),
            poison_action="crash",
        )
        pool = OptimizerPool(
            spec, PoolConfig(workers=1, respawn_budget=2), chaos=chaos,
            metrics=metrics,
        )
        try:
            pool.optimize(SQL, seq=0, template="boom")
            pool.optimize(SQL, seq=1)
        finally:
            pool.close()
        snapshot = metrics.snapshot()
        assert snapshot["pool.dispatched"] == 2
        assert snapshot["pool.completed"] == 1
        assert snapshot["pool.crashes"] == 1
        assert snapshot["pool.respawns"] == 1
