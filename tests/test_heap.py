"""Unit tests for the page-structured heap file."""

import pytest

from repro.errors import StorageError
from repro.storage import HeapFile, IOAccounting, RID


@pytest.fixture()
def io():
    return IOAccounting()


@pytest.fixture()
def heap(io):
    return HeapFile(io, rows_per_page=4)


class TestHeapBasics:
    def test_insert_returns_sequential_rids(self, heap):
        rids = [heap.insert((i,)) for i in range(6)]
        assert rids[0] == RID(0, 0)
        assert rids[3] == RID(0, 3)
        assert rids[4] == RID(1, 0)

    def test_len_and_pages(self, heap):
        for i in range(9):
            heap.insert((i,))
        assert len(heap) == 9
        assert heap.page_count == 3

    def test_fetch(self, heap):
        rid = heap.insert((7, "x"))
        assert heap.fetch(rid) == (7, "x")

    def test_fetch_bad_rid(self, heap):
        with pytest.raises(StorageError, match="bad RID"):
            heap.fetch(RID(5, 0))

    def test_scan_order_and_completeness(self, heap):
        rows = [(i,) for i in range(10)]
        for row in rows:
            heap.insert(row)
        assert [row for _, row in heap.scan()] == rows

    def test_delete_tombstones(self, heap):
        rids = [heap.insert((i,)) for i in range(4)]
        heap.delete(rids[1])
        assert len(heap) == 3
        assert [row for _, row in heap.scan()] == [(0,), (2,), (3,)]
        with pytest.raises(StorageError, match="deleted"):
            heap.fetch(rids[1])
        with pytest.raises(StorageError, match="already deleted"):
            heap.delete(rids[1])

    def test_rows_per_page_validated(self, io):
        with pytest.raises(StorageError):
            HeapFile(io, rows_per_page=0)


class TestHeapAccounting:
    def test_bulk_load_writes_one_per_page(self, io, heap):
        for i in range(8):
            heap.insert((i,))
        assert io.page_writes == 2

    def test_scan_reads_one_per_page(self, io, heap):
        for i in range(8):
            heap.insert((i,))
        before = io.page_reads
        list(heap.scan())
        assert io.page_reads - before == 2

    def test_partial_scan_charges_visited_pages_only(self, io, heap):
        for i in range(12):
            heap.insert((i,))
        before = io.page_reads
        scan = heap.scan()
        next(scan)  # only the first page is entered
        assert io.page_reads - before == 1

    def test_fetch_charges_one_read(self, io, heap):
        rid = heap.insert((1,))
        before = io.page_reads
        heap.fetch(rid)
        assert io.page_reads - before == 1

    def test_snapshot_delta(self, io, heap):
        heap.insert((1,))
        snap = io.snapshot()
        heap.insert((2,))
        list(heap.scan())
        delta = io.since(snap)
        assert delta.page_reads == 1
        assert delta.total_reads == 1
        assert delta.total >= 1
