"""Unit tests for the engine's internal helpers (memo keys, rule-level
comparison semantics, coercions)."""

import pytest

from repro.errors import RuleError
from repro.plans.properties import requirements
from repro.plans.sap import SAP, Stream
from repro.query.expressions import ColumnRef
from repro.stars.engine import _as_sap, _as_set, _canonical, _compare, _short

DNO = ColumnRef("DEPT", "DNO")


class TestCanonical:
    def test_streams_by_content(self):
        a = Stream(frozenset({"DEPT"}), requirements(site="x"))
        b = Stream(frozenset({"DEPT"}), requirements(site="x"))
        c = Stream(frozenset({"DEPT"}), requirements(site="y"))
        assert _canonical(a) == _canonical(b)
        assert _canonical(a) != _canonical(c)

    def test_saps_by_digest_order_independent(self, factory):
        p1 = factory.access_base("DEPT", {DNO}, set())
        p2 = factory.sort(p1, (DNO,))
        assert _canonical(SAP([p1, p2])) == _canonical(SAP([p2, p1]))

    def test_plans_by_digest(self, factory):
        p1 = factory.access_base("DEPT", {DNO}, set())
        p2 = factory.access_base("DEPT", {DNO}, set())
        assert _canonical(p1) == _canonical(p2)

    def test_nested_collections(self):
        assert _canonical((1, [2, 3])) == (1, (2, 3))
        assert _canonical({1, 2}) == frozenset({1, 2})

    def test_scalars_pass_through(self):
        assert _canonical("x") == "x"
        assert _canonical(7) == 7


class TestCompare:
    def test_equality(self):
        assert _compare("==", frozenset({1}), frozenset({1}))
        assert _compare("!=", 1, 2)

    def test_membership(self):
        assert _compare("in", 1, (1, 2))
        assert not _compare("in", 3, (1, 2))

    def test_subset_semantics_for_sets(self):
        assert _compare("<=", frozenset({1}), frozenset({1, 2}))
        assert _compare("<", frozenset({1}), frozenset({1, 2}))
        assert not _compare("<", frozenset({1, 2}), frozenset({1, 2}))
        assert _compare(">=", frozenset({1, 2}), frozenset({1}))

    def test_numeric_semantics_for_scalars(self):
        assert _compare("<=", 1, 2)
        assert _compare(">", 3, 2)

    def test_mixed_set_and_tuple(self):
        assert _compare("<=", (1,), frozenset({1, 2}))


class TestCoercions:
    def test_as_set(self):
        assert _as_set((1, 2)) == frozenset({1, 2})
        assert _as_set([1]) == frozenset({1})
        assert _as_set(frozenset({1})) == frozenset({1})
        with pytest.raises(RuleError):
            _as_set(42)

    def test_as_sap(self, factory):
        plan = factory.access_base("DEPT", {DNO}, set())
        assert len(_as_sap(plan)) == 1
        assert _as_sap(SAP([plan])).plans == (plan,)
        with pytest.raises(RuleError):
            _as_sap("not a plan")

    def test_short_truncates(self):
        assert _short("x" * 100).endswith("…")
        assert _short("short") == "short"
        text = _short(frozenset({f"item{i}" for i in range(10)}))
        assert text.endswith("…}")
