"""Unit and property-based tests for the SAP ADT and dominance pruning."""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.cost.model import CostModel
from repro.plans.sap import SAP, Stream, _effective_order
from repro.plans.properties import Requirements, requirements
from repro.query.expressions import ColumnRef

DNO = ColumnRef("DEPT", "DNO")
MGR = ColumnRef("DEPT", "MGR")
E_DNO = ColumnRef("EMP", "DNO")


@pytest.fixture()
def model(catalog):
    return CostModel(catalog)


def dept_scan(factory, preds=frozenset()):
    return factory.access_base("DEPT", {DNO, MGR}, preds)


class TestSAPBasics:
    def test_deduplicates_structurally_identical(self, factory):
        sap = SAP([dept_scan(factory), dept_scan(factory)])
        assert len(sap) == 1

    def test_union(self, factory):
        a = SAP([dept_scan(factory)])
        b = SAP([factory.sort(dept_scan(factory), (DNO,))])
        assert len(a.union(b)) == 2

    def test_union_deduplicates(self, factory):
        a = SAP([dept_scan(factory)])
        assert len(a.union(a)) == 1

    def test_bool_and_len(self, factory):
        assert not SAP()
        assert SAP([dept_scan(factory)])

    def test_map_drops_none(self, factory):
        sap = SAP([dept_scan(factory)])
        assert len(sap.map(lambda p: None)) == 0
        assert len(sap.map(lambda p: p)) == 1

    def test_cheapest(self, factory, model):
        cheap = dept_scan(factory)
        pricey = factory.sort(cheap, (DNO,))
        sap = SAP([pricey, cheap])
        assert sap.cheapest(model) == cheap

    def test_cheapest_empty(self, model):
        assert SAP().cheapest(model) is None

    def test_satisfying_filters(self, factory):
        unsorted = dept_scan(factory)
        sorted_plan = factory.sort(unsorted, (DNO,))
        sap = SAP([unsorted, sorted_plan])
        got = sap.satisfying(requirements(order=[DNO]))
        assert list(got) == [sorted_plan]


class TestDominance:
    def test_cheaper_same_properties_dominates(self, factory, model):
        once = factory.sort(dept_scan(factory), (DNO,))
        twice = factory.sort(once, (DNO,))  # same order, strictly pricier
        pruned = SAP([once, twice]).pruned(model)
        assert list(pruned) == [once]

    def test_order_protects_plan(self, factory, model):
        unsorted = dept_scan(factory)
        sorted_plan = factory.sort(unsorted, (DNO,))
        pruned = SAP([unsorted, sorted_plan]).pruned(model)
        assert len(pruned) == 2  # sorted is pricier but provides an order

    def test_uninteresting_order_does_not_protect(self, factory, model):
        unsorted = dept_scan(factory)
        sorted_plan = factory.sort(unsorted, (MGR,))
        pruned = SAP([unsorted, sorted_plan]).pruned(model, interesting=frozenset([DNO]))
        assert list(pruned) == [unsorted]

    def test_interesting_order_protects(self, factory, model):
        unsorted = dept_scan(factory)
        sorted_plan = factory.sort(unsorted, (DNO,))
        pruned = SAP([unsorted, sorted_plan]).pruned(model, interesting=frozenset([DNO]))
        assert len(pruned) == 2

    def test_different_sites_both_kept(self, distributed_catalog, model):
        from repro.cost.propfuncs import PlanFactory

        f = PlanFactory(distributed_catalog)
        ny = f.access_base("DEPT", {DNO, MGR}, set())
        la = f.ship(ny, "L.A.")
        pruned = SAP([ny, la]).pruned(f.model)
        assert len(pruned) == 2

    def test_temp_plan_survives_when_pricier(self, factory, model):
        scan = dept_scan(factory)
        temp = factory.access_temp(factory.store(scan))
        pruned = SAP([scan, temp]).pruned(model)
        assert len(pruned) == 2  # temp satisfies [temp], the scan does not

    def test_tid_noise_does_not_protect(self, catalog, factory, model):
        # Index+GET plan carries #TID; if it is costlier than the heap
        # scan and no order is interesting, it must be pruned.
        path = catalog.path("EMP", "EMP_DNO")
        cols = {E_DNO, ColumnRef("EMP", "NAME")}
        via_index = factory.get(
            factory.access_index("EMP", path), "EMP", cols
        )
        heap = factory.access_base("EMP", cols, set())
        pruned = SAP([heap, via_index]).pruned(model, interesting=frozenset())
        assert list(pruned) == [heap]


class TestStream:
    def test_require_accumulates(self):
        s = Stream(frozenset({"DEPT"}))
        s2 = s.require(requirements(site="x"))
        s3 = s2.require(requirements(temp=True))
        assert s3.requirements.site == "x"
        assert s3.requirements.temp
        assert s.requirements == Requirements.EMPTY  # original untouched

    def test_bare_strips_requirements(self):
        s = Stream(frozenset({"DEPT"}), requirements(site="x"))
        assert s.bare().requirements == Requirements.EMPTY

    def test_str(self):
        s = Stream(frozenset({"DEPT"}), requirements(site="x"))
        assert "DEPT" in str(s) and "site=x" in str(s)


class TestEffectiveOrder:
    def test_no_interesting_set_keeps_order(self):
        assert _effective_order((DNO, MGR), None) == (DNO, MGR)

    def test_cuts_at_first_uninteresting(self):
        assert _effective_order((DNO, MGR), frozenset([DNO])) == (DNO,)
        assert _effective_order((MGR, DNO), frozenset([DNO])) == ()


# ---------------------------------------------------------------------------
# Property-based invariants of pruning
# ---------------------------------------------------------------------------


@st.composite
def plan_sets(draw, factory_and_model):
    factory, model = factory_and_model
    base = factory.access_base("DEPT", {DNO, MGR}, frozenset())
    options = [
        base,
        factory.sort(base, (DNO,)),
        factory.sort(base, (MGR,)),
        factory.sort(base, (DNO, MGR)),
        factory.access_temp(factory.store(base)),
        factory.filter(base, frozenset([_dummy_pred()])),
    ]
    picks = draw(st.lists(st.sampled_from(options), min_size=1, max_size=6))
    return picks


def _dummy_pred():
    from repro.query.predicates import equals_value

    return equals_value("DEPT", "DNO", 1)


@settings(
    max_examples=50,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(data=st.data())
def test_pruning_invariants(catalog_factory_model, data):
    factory, model = catalog_factory_model
    picks = data.draw(plan_sets((factory, model)))
    sap = SAP(picks)
    pruned = sap.pruned(model)
    # 1. Pruning never grows the set and never empties a non-empty set.
    assert 0 < len(pruned) <= len(sap)
    # 2. The overall cheapest plan always survives.
    cheapest = sap.cheapest(model)
    assert any(p.digest == cheapest.digest for p in pruned)
    # 3. Idempotence.
    assert {p.digest for p in pruned.pruned(model)} == {p.digest for p in pruned}
    # 4. Every pruned-away plan is dominated on cost by some survivor
    #    with the same site.
    for plan in sap:
        if any(p.digest == plan.digest for p in pruned):
            continue
        assert any(
            model.total(p.props.cost) <= model.total(plan.props.cost)
            and p.props.site == plan.props.site
            for p in pruned
        )


@pytest.fixture()
def catalog_factory_model(catalog, factory):
    return factory, CostModel(catalog)
