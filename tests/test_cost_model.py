"""Unit tests for cost vectors and the cost model."""

import pytest

from repro.cost.model import Cost, CostModel, CostWeights, MESSAGE_SIZE
from repro.query.expressions import ColumnRef
from repro.storage.table import tid_column


class TestCost:
    def test_addition(self):
        total = Cost(io=1, cpu=2) + Cost(io=3, msgs=4)
        assert total == Cost(io=4, cpu=2, msgs=4)

    def test_scaled(self):
        assert Cost(io=2, cpu=4).scaled(0.5) == Cost(io=1, cpu=2)

    def test_zero_constant(self):
        assert Cost.ZERO + Cost(io=1) == Cost(io=1)

    def test_str(self):
        assert "io=1.0" in str(Cost(io=1))


class TestWeights:
    def test_linear_combination(self):
        weights = CostWeights(w_io=2, w_cpu=1, w_msg=10, w_byte=0.5)
        cost = Cost(io=3, cpu=4, msgs=1, bytes_sent=2)
        assert weights.total(cost) == pytest.approx(2 * 3 + 4 + 10 + 1)

    def test_defaults_make_io_dominant_over_cpu(self):
        weights = CostWeights()
        assert weights.total(Cost(io=1)) > weights.total(Cost(cpu=100))


class TestCostModel:
    def test_row_width_from_catalog(self, catalog):
        model = CostModel(catalog)
        width = model.row_width(frozenset({ColumnRef("DEPT", "DNO"), ColumnRef("DEPT", "MGR")}))
        assert width == 4 + 16

    def test_tid_width(self, catalog):
        model = CostModel(catalog)
        assert model.column_width(tid_column("DEPT")) == 8

    def test_unknown_table_width_falls_back(self, catalog):
        model = CostModel(catalog)
        assert model.column_width(ColumnRef("#temp1", "X")) > 0

    def test_stream_pages_floor_one(self, catalog):
        model = CostModel(catalog)
        assert model.stream_pages(1, frozenset({ColumnRef("DEPT", "DNO")})) == 1.0

    def test_stream_pages_scale_with_card(self, catalog):
        model = CostModel(catalog)
        cols = frozenset({ColumnRef("DEPT", "MGR")})
        assert model.stream_pages(10_000, cols) > model.stream_pages(100, cols)

    def test_sort_cpu_superlinear(self):
        assert CostModel.sort_cpu(1000) > 2 * CostModel.sort_cpu(500)

    def test_sort_cpu_minimum(self):
        assert CostModel.sort_cpu(0) >= 1.0

    def test_btree_height_grows_logarithmically(self):
        assert CostModel.btree_height(10) == 1
        assert CostModel.btree_height(64**2) == 2
        assert CostModel.btree_height(64**3) == 3

    def test_ship_cost_counts_messages_and_bytes(self, catalog):
        model = CostModel(catalog)
        cols = frozenset({ColumnRef("DEPT", "MGR")})
        cost = model.ship_cost(1000, cols)
        assert cost.bytes_sent == 1000 * 16
        assert cost.msgs == pytest.approx(1000 * 16 / MESSAGE_SIZE + 1, abs=1)

    def test_table_pages_and_card(self, catalog):
        model = CostModel(catalog)
        assert model.table_card("EMP") == 10_000
        assert model.table_pages("EMP") >= 1
