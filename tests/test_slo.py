"""SLO objectives, burn-rate math, and SLO-driven tier degradation."""

from __future__ import annotations

import pytest

from repro.obs import MetricsRegistry, SLObjective, SLOMonitor, TelemetryConfig
from repro.serve import (
    OptimizerService,
    Request,
    ServiceConfig,
    TIER_FULL,
    TIER_HEURISTIC,
)
from repro.workloads import chain_workload

SQL = "SELECT R0.ID, R2.ID FROM R0, R1, R2 WHERE R0.ID = R1.FK AND R1.ID = R2.FK"


class TestSLObjective:
    def test_latency_objective_judges_speed_and_success(self):
        slo = SLObjective.latency("lat", 0.1)
        assert slo.good(0.05, ok=True)
        assert not slo.good(0.5, ok=True)
        assert not slo.good(0.05, ok=False)

    def test_error_objective_judges_success_only(self):
        slo = SLObjective.errors("err")
        assert slo.good(99.0, ok=True)
        assert not slo.good(0.0, ok=False)

    def test_error_budget_is_one_minus_target(self):
        assert SLObjective("x", target=0.99).error_budget == pytest.approx(0.01)
        assert SLObjective("x", target=0.9).error_budget == pytest.approx(0.1)

    def test_invalid_objectives_rejected(self):
        with pytest.raises(ValueError):
            SLObjective("")
        with pytest.raises(ValueError):
            SLObjective("x", target=1.0)
        with pytest.raises(ValueError):
            SLObjective("x", target=0.0)
        with pytest.raises(ValueError):
            SLObjective.latency("x", -1.0)
        with pytest.raises(ValueError):
            SLObjective("x", window=0)


class TestBurnMath:
    def _monitor(self, target=0.9, window=10, min_samples=4):
        slo = SLObjective(
            name="lat", target=target, latency_threshold=0.1,
            window=window, min_samples=min_samples,
        )
        return SLOMonitor([slo])

    def test_all_good_burns_nothing(self):
        monitor = self._monitor()
        for _ in range(10):
            monitor.observe(0.01, ok=True)
        assert monitor.burn_rate("lat") == 0.0
        assert monitor.budget_remaining("lat") == 1.0

    def test_burn_one_at_exactly_the_budget(self):
        # target 0.9 → budget 0.1; 1 bad in 10 = bad fraction 0.1 → burn 1
        monitor = self._monitor()
        for i in range(10):
            monitor.observe(0.5 if i == 0 else 0.01, ok=True)
        assert monitor.burn_rate("lat") == pytest.approx(1.0)

    def test_burn_scales_with_bad_fraction(self):
        monitor = self._monitor()
        for i in range(10):
            monitor.observe(0.5 if i < 3 else 0.01, ok=True)
        assert monitor.burn_rate("lat") == pytest.approx(3.0)
        assert monitor.budget_remaining("lat") == 0.0

    def test_window_rolls_old_samples_out(self):
        monitor = self._monitor(window=4, min_samples=2)
        for _ in range(4):
            monitor.observe(0.5, ok=True)  # all bad
        assert monitor.burn_rate("lat") > 1.0
        for _ in range(4):
            monitor.observe(0.01, ok=True)  # all good; bad ones rolled out
        assert monitor.burn_rate("lat") == 0.0

    def test_violation_reported_once_per_incident(self):
        monitor = self._monitor(window=10, min_samples=2)
        transitions = []
        for _ in range(6):
            transitions.append(monitor.observe(0.5, ok=True))
        flat = [name for batch in transitions for name in batch]
        assert flat == ["lat"]  # one transition, not six
        assert monitor.violated("lat")

    def test_recovery_rearms_the_transition(self):
        monitor = self._monitor(window=4, min_samples=2)
        for _ in range(4):
            monitor.observe(0.5, ok=True)
        assert monitor.violated("lat")
        for _ in range(4):
            monitor.observe(0.01, ok=True)
        assert not monitor.violated("lat")
        newly = []
        for _ in range(4):
            newly.extend(monitor.observe(0.5, ok=True))
        assert newly == ["lat"]  # second incident reports again

    def test_min_samples_gates_violation(self):
        monitor = self._monitor(window=10, min_samples=8)
        for _ in range(4):
            assert monitor.observe(0.5, ok=True) == []
        assert not monitor.violated("lat")

    def test_gauges_published_on_observe(self):
        metrics = MetricsRegistry()
        slo = SLObjective(name="lat", target=0.9, latency_threshold=0.1,
                          window=10, min_samples=2)
        monitor = SLOMonitor([slo], metrics=metrics)
        monitor.observe(0.5, ok=True)
        snap = metrics.snapshot()
        assert snap["slo.lat.burn_rate"] == pytest.approx(10.0)
        assert snap["slo.lat.budget_remaining"] == 0.0

    def test_max_burn_over_objectives(self):
        monitor = SLOMonitor([
            SLObjective(name="a", target=0.9, latency_threshold=0.1),
            SLObjective.errors("b", target=0.9),
        ])
        monitor.observe(0.5, ok=True)  # bad for a, good for b
        assert monitor.max_burn() == pytest.approx(monitor.burn_rate("a"))
        assert SLOMonitor([]).max_burn() == 0.0

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            SLOMonitor([SLObjective.errors("x"), SLObjective.errors("x")])

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            SLOMonitor([]).burn_rate("ghost")

    def test_status_snapshot_shape(self):
        monitor = self._monitor()
        monitor.observe(0.01, ok=True)
        status = monitor.status()
        assert set(status) == {"lat"}
        assert set(status["lat"]) == {
            "burn_rate", "budget_remaining", "samples", "violated",
        }


class TestSLODrivenDegradation:
    """Burn rate feeds ``_choose_tier``: sustained violation degrades."""

    @pytest.fixture(scope="class")
    def workload(self):
        return chain_workload(3, rows=40)

    def _service(self, workload, threshold) -> OptimizerService:
        # An impossible latency SLO burns immediately; a generous one never.
        telemetry = TelemetryConfig(
            sample_every=0,
            slos=(SLObjective(
                name="lat", target=0.9, latency_threshold=threshold,
                window=8, min_samples=2,
            ),),
        )
        return OptimizerService(
            workload.catalog,
            service=ServiceConfig(workers=1, queue_limit=32,
                                  cache_capacity=0),
            telemetry=telemetry,
        )

    def test_hot_burn_forces_heuristic_tier(self, workload):
        service = self._service(workload, threshold=1e-9)
        responses = service.serve_all([Request(SQL)] * 8, burst=1)
        # The first responses optimize at full tier; once burn crosses
        # the heuristic threshold, the ladder degrades.
        assert responses[0].tier == TIER_FULL
        assert responses[-1].tier == TIER_HEURISTIC
        assert any(r.degraded for r in responses)

    def test_cool_burn_stays_full_tier(self, workload):
        service = self._service(workload, threshold=60.0)
        responses = service.serve_all([Request(SQL)] * 8, burst=1)
        assert all(r.tier == TIER_FULL for r in responses)

    def test_report_carries_slo_status(self, workload):
        service = self._service(workload, threshold=1e-9)
        service.serve_all([Request(SQL)] * 8, burst=1)
        report = service.report()
        assert report.slo["lat"]["violated"] == 1.0
        assert report.slo["lat"]["burn_rate"] > 1.0
        assert "slo lat" in report.summary() or "slo" in report.summary()
