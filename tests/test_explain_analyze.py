"""Tests for EXPLAIN ANALYZE (repro.obs.analyze) and trace determinism."""

import math

import pytest

from repro.executor.chaos import ChaosConfig, ChaosEngine, RetryPolicy
from repro.executor.resilient import ResilientExecutor
from repro.obs import MetricsRegistry, Tracer, explain_analyze, q_error
from repro.obs.analyze import plan_walk
from repro.optimizer import StarburstOptimizer
from repro.config import OptimizerConfig
from repro.workloads.paper import (
    figure1_query,
    paper_catalog,
    paper_database,
    paper_three_table_query,
    with_proj,
)


class TestQErrorMath:
    def test_perfect_estimate_is_one(self):
        assert q_error(10, 10) == 1.0

    def test_symmetric_over_and_under(self):
        assert q_error(100, 50) == 2.0
        assert q_error(50, 100) == 2.0

    def test_floor_prevents_division_by_zero(self):
        assert q_error(0.3, 0) == 1.0  # both sides floored to 1.0
        assert q_error(0, 0) == 1.0

    def test_small_estimate_vs_real_rows(self):
        assert q_error(0.5, 4) == 4.0  # est floored to 1, act 4


@pytest.fixture(scope="module")
def three_table():
    """The paper workload with PROJ: a two-join query, optimized."""
    catalog = paper_catalog()
    database = paper_database(catalog)
    with_proj(catalog, database)
    query = paper_three_table_query(catalog)
    result = StarburstOptimizer(catalog).optimize(query)
    return database, result


class TestExplainAnalyze:
    def test_two_join_plan_q_errors_recompute_by_hand(self, three_table):
        """Every reported per-operator Q-error equals the hand formula
        q = max(est, act/loops)/min(est, act/loops), floored at 1."""
        database, result = three_table
        report = explain_analyze(result, database)
        assert len(report.operators) >= 5  # two joins plus their inputs
        executed = [m for m in report.operators if m.loops > 0]
        assert executed, "at least the root must have executed"
        for measure in executed:
            est = max(measure.estimated_rows, 1.0)
            act = max(measure.actual_rows / measure.loops, 1.0)
            assert measure.q_error == pytest.approx(max(est / act, act / est))

    def test_plan_level_q_error_is_root_card_vs_output_rows(self, three_table):
        database, result = three_table
        report = explain_analyze(result, database)
        expected = q_error(
            result.best_plan.props.card, report.result.stats.output_rows
        )
        assert report.plan_q_error == pytest.approx(expected)

    def test_aggregates_recompute(self, three_table):
        database, result = three_table
        report = explain_analyze(result, database)
        qs = [m.q_error for m in report.operators if m.q_error is not None]
        assert report.max_q_error == pytest.approx(max(qs))
        geo = math.exp(sum(math.log(q) for q in qs) / len(qs))
        assert report.mean_q_error == pytest.approx(geo)

    def test_operators_cover_the_plan(self, three_table):
        database, result = three_table
        report = explain_analyze(result, database)
        walked = [node for node, _ in plan_walk(result.best_plan)]
        assert [m.node for m in report.operators] == walked
        assert report.operators[0].node is result.best_plan
        assert report.operators[0].depth == 0

    def test_root_actuals_match_result(self, three_table):
        database, result = three_table
        report = explain_analyze(result, database)
        root = report.operators[0]
        assert root.loops == 1
        assert root.actual_rows == len(report.result.rows)

    def test_render_contains_table_and_summary(self, three_table):
        database, result = three_table
        report = explain_analyze(result, database)
        text = report.render()
        assert "operator" in text and "q-error" in text
        assert "plan-level Q-error" in text
        assert "JOIN" in text

    def test_as_dict_is_flat_numeric(self, three_table):
        database, result = three_table
        report = explain_analyze(result, database)
        snap = report.as_dict()
        assert snap["operators"] == len(report.operators)
        assert all(isinstance(v, (int, float)) for v in snap.values())

    def test_metrics_ingested(self, three_table):
        database, result = three_table
        metrics = MetricsRegistry()
        explain_analyze(result, database, metrics=metrics)
        snap = metrics.snapshot()
        assert "analyze.plan_q_error" in snap
        assert "executor.output_rows" in snap
        assert any(key.startswith("executor.op.JOIN.") for key in snap)

    def test_tracer_captures_executor_spans(self, three_table):
        database, result = three_table
        tracer = Tracer()
        explain_analyze(result, database, tracer=tracer)
        counts = tracer.category_counts()
        assert counts.get("executor", 0) >= len(
            [m for m in plan_walk(result.best_plan)]
        ) - 1  # every operator opened at least once (loops may share spans)

    def test_nl_inner_loops_hand_computed(self):
        """An NL-join inner stream opens once per outer row; node_counts
        records [total rows, opens] so rows/loop matches per-probe CARD.

        L has keys 0..9 (one row each); R has keys 0..4 twice.  The inner
        scan of R under the pushed join predicate therefore opens 10
        times and yields 2 rows for 5 of the probes: [20, 10]."""
        from repro.catalog import AccessPath, Catalog, TableDef
        from repro.catalog.catalog import make_columns
        from repro.cost.propfuncs import PlanFactory
        from repro.executor import QueryExecutor
        from repro.query.expressions import ColumnRef
        from repro.query.parser import parse_predicate
        from repro.storage import Database

        catalog = Catalog()
        catalog.add_table(TableDef("L", make_columns("K", "V")))
        catalog.add_table(TableDef("R", make_columns("K", "W")))
        database = Database(catalog)
        database.create_storage("L")
        database.create_storage("R")
        database.load("L", [(k, k * 10) for k in range(10)])
        database.load("R", [(k % 5, k) for k in range(10)])
        database.analyze_all()

        factory = PlanFactory(catalog)
        pred = parse_predicate("L.K = R.K", catalog, ("L", "R"))
        l_cols = {ColumnRef("L", "K"), ColumnRef("L", "V")}
        r_cols = {ColumnRef("R", "K"), ColumnRef("R", "W")}
        outer = factory.access_base("L", l_cols, set())
        inner = factory.access_base("R", r_cols, {pred})
        join = factory.join("NL", outer, inner, {pred})

        counts: dict[int, list[int]] = {}
        rows, _ = QueryExecutor(database).run_plan(join, node_counts=counts)
        assert counts[id(outer)] == [10, 1]
        assert counts[id(inner)] == [10, 10]  # 2 rows x 5 probes, 0 x 5
        assert counts[id(join)] == [len(rows), 1] == [10, 1]
        # rows-per-loop is what CARD estimates for the inner.
        inner_rows, inner_loops = counts[id(inner)]
        assert inner_rows / inner_loops == 1.0


class TestDeterministicEventStreams:
    def _traced_chaos_run(self, seed: int):
        catalog = paper_catalog(distributed=True, replicate_dept=True)
        database = paper_database(catalog)
        tracer = Tracer()
        optimizer = StarburstOptimizer(
            catalog,
            config=OptimizerConfig(retain_site_diversity=True),
            tracer=tracer,
        )
        result = optimizer.optimize(figure1_query(catalog))
        chaos = ChaosEngine(ChaosConfig(
            seed=seed,
            link_failure_prob=0.25,
            site_outages=(("N.Y.", 1),),
            protected_sites=frozenset({catalog.query_site}),
        ))
        executor = ResilientExecutor(
            database, optimizer, chaos=chaos, retry=RetryPolicy(),
            tracer=tracer,
        )
        report = executor.run(result)
        return tracer, report

    def test_same_seed_same_signature(self):
        first, report_a = self._traced_chaos_run(seed=11)
        second, report_b = self._traced_chaos_run(seed=11)
        assert len(first) > 0
        assert first.signature() == second.signature()
        assert report_a.succeeded == report_b.succeeded

    def test_chaos_and_ship_events_present(self):
        tracer, report = self._traced_chaos_run(seed=11)
        counts = tracer.category_counts()
        assert counts.get("chaos", 0) >= 1  # the scheduled N.Y. outage
        assert counts.get("ship", 0) >= 1
        assert counts.get("resilient", 0) >= 1
        assert counts.get("optimizer", 0) >= 1

    def test_failover_reflected_in_report_dict(self):
        tracer, report = self._traced_chaos_run(seed=11)
        snap = report.as_dict()
        assert snap["executions"] == report.executions
        assert snap["downed_sites"] >= 1
