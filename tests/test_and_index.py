"""Tests for the index AND-ing strategy (the second half of the paper's
omitted "ANDing and ORing of multiple indexes"), built on the INTERSECT
LOLEPOP over TID streams."""

import pytest

from repro.catalog import AccessPath, Catalog, TableDef
from repro.catalog.catalog import make_columns
from repro.config import OptimizerConfig
from repro.errors import ReproError
from repro.cost.propfuncs import PlanFactory
from repro.executor import QueryExecutor, naive_evaluate
from repro.optimizer import StarburstOptimizer
from repro.plans.operators import GET, INTERSECT
from repro.query.expressions import ColumnRef
from repro.query.parser import parse_predicate, parse_query
from repro.stars.builtin_rules import extended_rules
from repro.stars.engine import StarEngine
from repro.storage import Database

A = ColumnRef("T", "A")
B = ColumnRef("T", "B")


@pytest.fixture()
def env():
    cat = Catalog()
    rows = 4000
    cat.add_table(TableDef("T", make_columns("A", "B", ("PAY", "str"))))
    cat.add_index(AccessPath("T_A", "T", ("A",)))
    cat.add_index(AccessPath("T_B", "T", ("B",)))
    db = Database(cat)
    db.create_storage("T")
    # A cycles mod 40, B cycles mod 50: A=3 AND B=7 matches few rows.
    db.load("T", [(i % 40, i % 50, f"p{i}") for i in range(rows)])
    db.analyze("T")
    return cat, db


def and_plans(plans):
    return [p for p in plans if any(n.op == INTERSECT for n in p.nodes())]


def expand(cat, sql, and_index=True):
    query = parse_query(sql, cat)
    engine = StarEngine(
        extended_rules(and_index=and_index),
        cat,
        query,
        config=OptimizerConfig(prune=False),
    )
    sap = engine.expand(
        "AccessRoot",
        ("T", query.columns_for_table("T"), query.single_table_predicates("T")),
    )
    return sap, engine


SQL = "SELECT PAY FROM T WHERE A = 3 AND B = 13"


class TestIntersectOperator:
    def test_keeps_matching_keys_only(self, env):
        cat, db = env
        factory = PlanFactory(cat)
        pa = parse_predicate("T.A = 3", cat, ("T",))
        pb = parse_predicate("T.B = 13", cat, ("T",))
        left = factory.access_index("T", cat.path("T", "T_A"), preds={pa})
        right = factory.access_index("T", cat.path("T", "T_B"), preds={pb})
        tid = ColumnRef("T", "#TID")
        plan = factory.intersect(left, right, (tid,))
        rows, _ = QueryExecutor(db).run_plan(plan)
        expected = sum(1 for i in range(4000) if i % 40 == 3 and i % 50 == 13)
        assert len(rows) == expected
        assert expected > 0

    def test_preds_union(self, env):
        cat, _ = env
        factory = PlanFactory(cat)
        pa = parse_predicate("T.A = 3", cat, ("T",))
        pb = parse_predicate("T.B = 13", cat, ("T",))
        left = factory.access_index("T", cat.path("T", "T_A"), preds={pa})
        right = factory.access_index("T", cat.path("T", "T_B"), preds={pb})
        plan = factory.intersect(left, right, (ColumnRef("T", "#TID"),))
        assert plan.props.preds == {pa, pb}
        assert plan.props.card < left.props.card

    def test_key_must_be_common(self, env):
        cat, _ = env
        factory = PlanFactory(cat)
        left = factory.access_base("T", {A}, set())
        right = factory.access_base("T", {B}, set())
        with pytest.raises(ReproError, match="key not in both"):
            factory.intersect(left, right, (A,))


class TestAndIndexRules:
    def test_alternative_generated(self, env):
        cat, _ = env
        sap, _ = expand(cat, SQL)
        plans = and_plans(sap)
        assert plans
        assert plans[0].op == GET

    def test_absent_without_extension(self, env):
        cat, _ = env
        sap, _ = expand(cat, SQL, and_index=False)
        assert not and_plans(sap)

    def test_requires_two_indexed_columns(self, env):
        cat, _ = env
        sap, _ = expand(cat, "SELECT A FROM T WHERE A = 3 AND PAY = 'p1'")
        assert not and_plans(sap)

    def test_same_column_not_paired(self, env):
        cat, _ = env
        sap, _ = expand(cat, "SELECT PAY FROM T WHERE A = 3 AND A = 7")
        assert not and_plans(sap)

    def test_cheaper_than_single_index_when_both_selective(self, env):
        cat, _ = env
        sap, engine = expand(cat, SQL)
        model = engine.ctx.model
        and_cost = min(model.total(p.props.cost) for p in and_plans(sap))
        single_index = [
            p
            for p in sap
            if p.op == GET and p.inputs[0].op == "ACCESS"
        ]
        assert single_index
        assert and_cost < min(model.total(p.props.cost) for p in single_index)


class TestAndIndexExecution:
    def test_answers_match_reference(self, env):
        cat, db = env
        query = parse_query(SQL, cat)
        result = StarburstOptimizer(
            cat, rules=extended_rules(and_index=True)
        ).optimize(query)
        executor = QueryExecutor(db)
        reference = naive_evaluate(query, db).as_multiset()
        for plan in result.alternatives:
            assert executor.run(query, plan).as_multiset() == reference

    def test_combined_with_or_index(self, env):
        """Both index-combination strategies loaded at once."""
        cat, db = env
        rules = extended_rules(and_index=True, or_index=True)
        query = parse_query(
            "SELECT PAY FROM T WHERE (A = 1 OR B = 2) AND A = 1", cat
        )
        result = StarburstOptimizer(cat, rules=rules).optimize(query)
        executor = QueryExecutor(db)
        reference = naive_evaluate(query, db).as_multiset()
        assert executor.run(query, result.best_plan).as_multiset() == reference
