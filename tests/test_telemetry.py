"""Request-scoped telemetry: trace contexts, sampling, span trees (E16)."""

from __future__ import annotations

import asyncio

import pytest

from repro.obs import (
    MetricsRegistry,
    SpanNode,
    TelemetryConfig,
    TraceContext,
    TraceSampler,
    Tracer,
    request_events,
    span_tree,
    validate_request_tree,
)
from repro.serve import OptimizerService, Request, ServiceConfig, percentile
from repro.workloads import chain_workload

SQL = "SELECT R0.ID, R2.ID FROM R0, R1, R2 WHERE R0.ID = R1.FK AND R1.ID = R2.FK"
SQL_B = "SELECT R0.ID FROM R0, R1 WHERE R0.ID = R1.FK AND R0.VAL < 20"


@pytest.fixture(scope="module")
def workload():
    return chain_workload(3, rows=40)


def _service(workload, **kwargs) -> OptimizerService:
    service = dict(workers=2, queue_limit=8)
    for key in ("workers", "queue_limit", "cache_capacity"):
        if key in kwargs:
            service[key] = kwargs.pop(key)
    kwargs.setdefault("tracer", Tracer())
    kwargs.setdefault("telemetry", TelemetryConfig(sample_every=1))
    return OptimizerService(
        workload.catalog, service=ServiceConfig(**service), **kwargs
    )


class TestTraceContext:
    def test_trace_args_stamp_rid_and_tenant(self):
        ctx = TraceContext("req-000007", seq=7, tenant="t1")
        assert ctx.trace_args() == {"rid": "req-000007", "tenant": "t1"}

    def test_template_included_when_known(self):
        ctx = TraceContext("req-000001", tenant="t0", template="T3")
        assert ctx.trace_args()["template"] == "T3"

    def test_tier_defaults_unknown(self):
        assert TraceContext("req-000000").tier == "?"


class TestTraceSampler:
    def test_every_one_samples_everything(self):
        sampler = TraceSampler(1)
        assert all(sampler.sample(i) for i in range(10))

    def test_zero_samples_nothing(self):
        sampler = TraceSampler(0)
        assert not any(sampler.sample(i) for i in range(10))

    def test_one_in_n_is_deterministic(self):
        sampler = TraceSampler(4)
        picked = [i for i in range(12) if sampler.sample(i)]
        assert picked == [0, 4, 8]

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            TraceSampler(-1)


class TestTelemetryConfig:
    def test_disabled_switches_everything_off(self):
        cfg = TelemetryConfig.disabled()
        assert not cfg.enabled
        assert cfg.sample_every == 0
        assert cfg.flight_capacity == 0

    def test_invalid_knobs_rejected(self):
        with pytest.raises(ValueError):
            TelemetryConfig(sample_every=-1)
        with pytest.raises(ValueError):
            TelemetryConfig(flight_capacity=-1)
        with pytest.raises(ValueError):
            TelemetryConfig(slo_anytime_burn=0.0)


class TestRequestTree:
    def test_single_request_is_one_contiguous_tree(self, workload):
        service = _service(workload)
        [response] = service.serve_all([Request(SQL, tenant="t0")])
        assert response.request_id == "req-000000"
        assert response.sampled
        events = service.tracer.events()
        root = span_tree(events, "req-000000")
        assert isinstance(root, SpanNode)
        assert (root.event.cat, root.event.name) == ("serve", "request")
        assert validate_request_tree(
            events, "req-000000",
            required=("admitted", "tier", "cache_miss", "optimize"),
        ) == []

    def test_cached_request_tree_has_cache_hit(self, workload):
        service = _service(workload)
        service.serve_all([Request(SQL)] * 2, burst=1)
        events = service.tracer.events()
        assert validate_request_tree(
            events, "req-000001", required=("admitted", "tier", "cache_hit")
        ) == []

    def test_unsampled_requests_leave_no_stamped_events(self, workload):
        service = _service(
            workload, telemetry=TelemetryConfig(sample_every=2)
        )
        service.serve_all([Request(SQL)] * 4, burst=1)
        events = service.tracer.events()
        assert request_events(events, "req-000000")
        assert request_events(events, "req-000002")
        assert not request_events(events, "req-000001")
        assert not request_events(events, "req-000003")

    def test_sampling_meters_sampled_count(self, workload):
        metrics = MetricsRegistry()
        service = _service(
            workload, metrics=metrics,
            telemetry=TelemetryConfig(sample_every=2),
        )
        service.serve_all([Request(SQL)] * 4, burst=1)
        assert metrics.snapshot()["serve.sampled"] == 2

    def test_error_instant_emitted_even_unsampled(self, workload):
        service = _service(
            workload, telemetry=TelemetryConfig(sample_every=0)
        )
        [response] = service.serve_all([Request("not sql at all")])
        assert not response.ok
        events = request_events(service.tracer.events(), "req-000000")
        assert [e.name for e in events] == ["error"]

    def test_missing_request_id_raises(self, workload):
        service = _service(workload)
        service.serve_all([Request(SQL)])
        with pytest.raises(ValueError, match="no events"):
            span_tree(service.tracer.events(), "req-999999")

    def test_rejected_request_emits_single_stamped_instant(self, workload):
        service = _service(workload, workers=1, queue_limit=1)
        responses = service.serve_all([Request(SQL)] * 8, burst=8)
        rejected = [r for r in responses if r.rejected]
        assert rejected
        events = request_events(
            service.tracer.events(), rejected[0].request_id
        )
        assert [e.name for e in events] == ["rejected"]


class TestConcurrentRequests:
    def test_two_concurrent_traces_are_disjoint_trees(self, workload):
        """Two in-flight sampled requests must not corrupt each other's
        trees: every stamped event belongs to exactly one rid and each
        rid's events reassemble into a well-formed tree."""
        service = _service(workload, workers=2)

        async def run():
            async with service:
                futures = [
                    service.submit_nowait(Request(SQL, tenant="t0")),
                    service.submit_nowait(Request(SQL_B, tenant="t1")),
                ]
                return await asyncio.gather(*futures)

        responses = asyncio.run(run())
        assert [r.request_id for r in responses] == [
            "req-000000", "req-000001"
        ]
        events = service.tracer.events()
        seen: set[int] = set()
        for response in responses:
            mine = request_events(events, response.request_id)
            assert mine
            spans = {e.span for e in mine}
            assert not spans & seen, "span leaked between request trees"
            seen |= spans
            assert validate_request_tree(
                events, response.request_id,
                required=("admitted", "tier", "optimize"),
            ) == []

    def test_concurrent_tenants_stay_uniform_per_tree(self, workload):
        service = _service(workload, workers=2)

        async def run():
            async with service:
                futures = [
                    service.submit_nowait(
                        Request(SQL, tenant=f"tenant{i % 2}")
                    )
                    for i in range(6)
                ]
                return await asyncio.gather(*futures)

        responses = asyncio.run(run())
        events = service.tracer.events()
        tenants_seen = set()
        for response in responses:
            root = span_tree(events, response.request_id)
            tenants = {n.event.args.get("tenant") for n in root.walk()}
            assert len(tenants) == 1
            tenants_seen |= tenants
        assert tenants_seen == {"tenant0", "tenant1"}


class TestTelemetryDisabled:
    def test_disabled_keeps_legacy_untagged_span(self, workload):
        """telemetry=disabled + a tracer must behave like PR 6: one
        serve/request span per request, no rid stamps."""
        service = _service(workload, telemetry=TelemetryConfig.disabled())
        service.serve_all([Request(SQL)] * 2, burst=1)
        events = service.tracer.events()
        spans = [e for e in events if (e.cat, e.name) == ("serve", "request")]
        assert len(spans) == 2
        assert all("rid" not in e.args for e in events)

    def test_disabled_has_no_flight_recorder(self, workload):
        service = _service(workload, telemetry=TelemetryConfig.disabled())
        assert service.flight is None
        service.serve_all([Request(SQL)])
        assert service.last_flight_dump is None

    def test_report_still_has_latency_quantiles(self, workload):
        service = _service(workload, telemetry=TelemetryConfig.disabled())
        service.serve_all([Request(SQL)] * 3, burst=1)
        report = service.report()
        assert report.latency_p50 > 0.0
        assert report.latency_p99 >= report.latency_p50


class TestPercentileWrapper:
    """``percentile`` is a thin wrapper over ``Histogram.quantile``."""

    def test_empty_returns_zero(self):
        assert percentile([], 0.5) == 0.0

    def test_single_sample_is_exact_everywhere(self):
        for q in (0.0, 0.5, 0.99, 1.0):
            assert percentile([0.25], q) == pytest.approx(0.25)

    def test_q0_and_q1_are_exact_extremes(self):
        values = [0.001, 0.004, 0.016, 0.064, 0.256]
        assert percentile(values, 0.0) == pytest.approx(0.001)
        assert percentile(values, 1.0) == pytest.approx(0.256)

    def test_median_within_one_bucket(self):
        from repro.obs.metrics import BUCKET_BASE

        values = [float(i) / 100 for i in range(1, 101)]
        estimate = percentile(values, 0.50)
        exact = 0.50
        ratio = max(estimate, exact) / min(estimate, exact)
        assert ratio <= BUCKET_BASE ** 1.5
