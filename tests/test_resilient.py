"""SAP-driven plan failover, replicas, and optimizer failure diagnostics."""

from __future__ import annotations

import pytest

from repro import (
    ChaosConfig,
    ChaosEngine,
    OptimizerConfig,
    QueryExecutor,
    ResilientExecutor,
    RetryPolicy,
    StarburstOptimizer,
    naive_evaluate,
)
from repro.errors import CatalogError, NetworkError, OptimizationError
from repro.plans.plan import plan_links, plan_sites
from repro.workloads.paper import figure1_query, paper_catalog, paper_database


@pytest.fixture(scope="module")
def replicated_setup():
    """Figure-3 placement with DEPT replicated at S.F., optimized with
    site-diversity pruning so the SAP keeps the replica alternatives."""
    catalog = paper_catalog(distributed=True, replicate_dept=True)
    database = paper_database(catalog)
    query = figure1_query(catalog)
    optimizer = StarburstOptimizer(
        catalog, config=OptimizerConfig(retain_site_diversity=True)
    )
    result = optimizer.optimize(query)
    return catalog, database, query, optimizer, result


class TestReplicaCatalog:
    def test_storage_sites_primary_first(self, replicated_setup):
        catalog = replicated_setup[0]
        assert catalog.storage_sites("DEPT") == ("N.Y.", "S.F.")
        assert catalog.storage_sites("EMP") == ("L.A.",)

    def test_replica_at_primary_site_rejected(self):
        catalog = paper_catalog(distributed=True)
        with pytest.raises(CatalogError, match="primary"):
            catalog.add_replica("DEPT", "N.Y.")

    def test_down_site_excluded_from_reachable(self, replicated_setup):
        catalog = replicated_setup[0]
        catalog.mark_site_down("N.Y.")
        try:
            assert catalog.reachable_storage_sites("DEPT") == ("S.F.",)
            assert not catalog.site_is_up("N.Y.")
            assert "N.Y." in catalog.down_sites()
        finally:
            catalog.mark_site_up("N.Y.")
        assert catalog.reachable_storage_sites("DEPT") == ("N.Y.", "S.F.")


class TestSiteDiverseSAP:
    def test_sap_contains_replica_alternative(self, replicated_setup):
        result = replicated_setup[4]
        footprints = {frozenset(plan_sites(p)) for p in result.alternatives}
        assert frozenset({"L.A.", "N.Y."}) in footprints
        assert frozenset({"L.A.", "S.F."}) in footprints

    def test_best_plan_reads_primary(self, replicated_setup):
        result = replicated_setup[4]
        assert "N.Y." in plan_sites(result.best_plan)

    def test_default_pruning_unchanged_without_flag(self):
        """Without retain_site_diversity, equal-cost replica plans
        collapse to one representative — default behaviour is untouched."""
        catalog = paper_catalog(distributed=True, replicate_dept=True)
        result = StarburstOptimizer(catalog).optimize(figure1_query(catalog))
        diverse_catalog = paper_catalog(distributed=True, replicate_dept=True)
        diverse = StarburstOptimizer(
            diverse_catalog, config=OptimizerConfig(retain_site_diversity=True)
        ).optimize(figure1_query(diverse_catalog))
        assert len(diverse.alternatives) >= len(result.alternatives)


class TestSapFailover:
    def test_site_lost_mid_execution_completes_via_sap(self, replicated_setup):
        """The acceptance scenario: the site holding DEPT's primary dies
        on the very first transfer; the query still completes through the
        SAP's replica alternative with NO re-optimization (and so no
        re-parse)."""
        _, database, query, optimizer, result = replicated_setup
        chaos = ChaosEngine(ChaosConfig(
            seed=42,
            site_outages=(("N.Y.", 1),),
            protected_sites=frozenset({"L.A."}),
        ))
        executor = ResilientExecutor(database, optimizer, chaos=chaos)
        report = executor.run(result)
        assert report.succeeded
        assert report.sap_failovers == 1
        assert report.replans == 0
        assert report.executions == 2
        assert "N.Y." in report.downed_sites
        assert report.final_plan is not None
        assert "N.Y." not in plan_sites(report.final_plan)
        reference = naive_evaluate(query, database)
        assert report.result.as_multiset() == reference.as_multiset()

    def test_failover_deterministic_under_seed(self, replicated_setup):
        _, database, _, optimizer, result = replicated_setup
        def run():
            chaos = ChaosEngine(ChaosConfig(
                seed=42,
                site_outages=(("N.Y.", 1),),
                link_failure_prob=0.2,
                protected_sites=frozenset({"L.A."}),
            ))
            executor = ResilientExecutor(database, optimizer, chaos=chaos)
            report = executor.run(result)
            return (
                report.succeeded, report.executions, report.sap_failovers,
                report.ship_attempts, report.ship_retries,
                report.backoff_seconds,
                report.final_plan.digest if report.final_plan else None,
            )
        assert run() == run()

    def test_link_outage_fails_over_to_other_link(self, replicated_setup):
        _, database, query, optimizer, result = replicated_setup
        chaos = ChaosEngine(ChaosConfig(
            link_outages=((("N.Y.", "L.A."), 1),),
        ))
        executor = ResilientExecutor(database, optimizer, chaos=chaos)
        report = executor.run(result)
        assert report.succeeded
        assert report.sap_failovers == 1
        assert ("N.Y.", "L.A.") not in plan_links(report.final_plan)

    def test_replan_when_sap_has_no_survivor(self):
        """Without site-diversity pruning the SAP keeps only N.Y. plans;
        killing N.Y. forces the re-optimization fallback, which plans
        against the degraded catalog (replica at S.F.)."""
        catalog = paper_catalog(distributed=True, replicate_dept=True)
        database = paper_database(catalog)
        query = figure1_query(catalog)
        optimizer = StarburstOptimizer(catalog)  # default pruning
        result = optimizer.optimize(query)
        footprints = {frozenset(plan_sites(p)) for p in result.alternatives}
        assert all("N.Y." in f for f in footprints)  # no survivor in SAP
        chaos = ChaosEngine(ChaosConfig(
            site_outages=(("N.Y.", 1),),
            protected_sites=frozenset({"L.A."}),
        ))
        executor = ResilientExecutor(database, optimizer, chaos=chaos)
        report = executor.run(result)
        assert report.succeeded
        assert report.replans == 1
        assert "N.Y." not in plan_sites(report.final_plan)
        assert not catalog.down_sites()  # catalog health restored after replan
        reference = naive_evaluate(query, database)
        assert report.result.as_multiset() == reference.as_multiset()

    def test_unrecoverable_when_all_copies_dead(self):
        """Killing every site holding DEPT leaves nothing to fail over
        to; the report says so instead of raising."""
        catalog = paper_catalog(distributed=True, replicate_dept=True)
        database = paper_database(catalog)
        query = figure1_query(catalog)
        optimizer = StarburstOptimizer(
            catalog, config=OptimizerConfig(retain_site_diversity=True)
        )
        result = optimizer.optimize(query)
        chaos = ChaosEngine(ChaosConfig(
            site_outages=(("N.Y.", 1), ("S.F.", 1)),
            protected_sites=frozenset({"L.A."}),
        ))
        executor = ResilientExecutor(database, optimizer, chaos=chaos)
        report = executor.run(result)
        assert not report.succeeded
        assert report.error is not None
        assert not catalog.down_sites()  # health restored even on failure

    def test_transient_failures_retried_within_one_execution(self):
        catalog = paper_catalog(distributed=True)
        database = paper_database(catalog)
        query = figure1_query(catalog)
        optimizer = StarburstOptimizer(catalog)
        result = optimizer.optimize(query)
        chaos = ChaosEngine(ChaosConfig(seed=3, link_failure_prob=0.5))
        executor = ResilientExecutor(
            database, optimizer, chaos=chaos, retry=RetryPolicy()
        )
        report = executor.run(result)
        assert report.succeeded
        # Retries, not failover, absorbed the transient failures.
        assert report.executions == 1


class TestExecutorChaosIntegration:
    def test_access_at_downed_site_raises(self, replicated_setup):
        _, database, query, _, result = replicated_setup
        chaos = ChaosEngine(ChaosConfig(down_sites=frozenset({"N.Y."})))
        executor = QueryExecutor(database, chaos=chaos)
        with pytest.raises(NetworkError):
            executor.run(query, result.best_plan)

    def test_stats_carry_retry_accounting(self):
        catalog = paper_catalog(distributed=True)
        database = paper_database(catalog)
        query = figure1_query(catalog)
        result = StarburstOptimizer(catalog).optimize(query)
        chaos = ChaosEngine(ChaosConfig(seed=11, link_failure_prob=0.9))
        executor = QueryExecutor(database, chaos=chaos, retry=RetryPolicy(max_attempts=10))
        answer = executor.run(query, result.best_plan)
        assert answer.stats.ship_attempts > 1
        assert answer.stats.ship_retries == answer.stats.ship_attempts - 1
        assert answer.stats.transient_failures == answer.stats.ship_retries
        assert answer.stats.backoff_seconds > 0


class TestOptimizationErrorDiagnostics:
    """Satellite: OptimizationError must carry expansion + plan-table
    statistics so "no plan produced" failures are debuggable."""

    def test_no_plan_error_carries_stats(self):
        catalog = paper_catalog(distributed=True)
        with pytest.raises(OptimizationError) as exc:
            StarburstOptimizer(
                catalog,
                config=OptimizerConfig(avoid_sites=frozenset({"N.Y."})),
            ).optimize(figure1_query(catalog))
        err = exc.value
        assert err.expansion_stats is not None
        assert err.plan_table_stats is not None
        assert err.expansion_stats["star_references"] > 0
        assert "expansion" in str(err)
        assert "plan table" in str(err)

    def test_result_site_down_is_early_error(self):
        catalog = paper_catalog(distributed=True)
        catalog.mark_site_down("L.A.")
        try:
            with pytest.raises(OptimizationError, match="result site"):
                StarburstOptimizer(catalog).optimize(figure1_query(catalog))
        finally:
            catalog.mark_site_up("L.A.")

    def test_avoid_sites_reroutes_through_replica(self):
        """Avoiding N.Y. with a replica available plans around it
        instead of failing."""
        catalog = paper_catalog(distributed=True, replicate_dept=True)
        result = StarburstOptimizer(
            catalog, config=OptimizerConfig(avoid_sites=frozenset({"N.Y."}))
        ).optimize(figure1_query(catalog))
        assert "N.Y." not in plan_sites(result.best_plan)
