"""The deterministic load generator and its phase driver, plus the
``serve``/``loadgen`` CLI subcommands."""

from __future__ import annotations

import json

import pytest

from repro.__main__ import main
from repro.serve import (
    LoadSpec,
    OptimizerService,
    ServiceConfig,
    build_templates,
    default_phases,
    drive,
    generate,
)


class TestGenerate:
    def test_same_seed_same_stream(self):
        spec = LoadSpec(seed=11)
        _, a = generate(spec, 30)
        _, b = generate(spec, 30)
        assert [(r.query, r.tenant, r.deadline_ticks) for r in a] == [
            (r.query, r.tenant, r.deadline_ticks) for r in b
        ]

    def test_different_seed_different_stream(self):
        _, a = generate(LoadSpec(seed=1), 30)
        _, b = generate(LoadSpec(seed=2), 30)
        assert [r.query for r in a] != [r.query for r in b]

    def test_requests_parse_against_the_workload(self):
        from repro.query.parser import parse_query

        workload, requests = generate(LoadSpec(), 20)
        for request in requests:
            parse_query(request.query, workload.catalog)

    def test_zipf_mix_is_skewed(self):
        _, requests = generate(LoadSpec(zipf_s=1.5, templates=6), 120)
        counts: dict[str, int] = {}
        for r in requests:
            name = (r.template or "").rstrip("!")
            counts[name] = counts.get(name, 0) + 1
        assert counts["T0"] > counts.get("T5", 0)

    def test_tenants_round_robin(self):
        _, requests = generate(LoadSpec(tenants=3), 9)
        assert [r.tenant for r in requests[:4]] == [
            "tenant0", "tenant1", "tenant2", "tenant0"
        ]

    def test_wild_requests_marked(self):
        _, requests = generate(LoadSpec(wild_fraction=1.0), 10)
        assert all(r.template.endswith("!") for r in requests)

    def test_template_pool_size(self):
        assert len(build_templates(LoadSpec(templates=4))) == 4
        assert len(build_templates(LoadSpec(templates=9))) == 9

    def test_bad_specs_rejected(self):
        with pytest.raises(ValueError):
            LoadSpec(templates=0)
        with pytest.raises(ValueError):
            LoadSpec(n_tables=1)
        with pytest.raises(ValueError):
            LoadSpec(wild_fraction=1.5)


class TestPhases:
    def test_default_phases_cover_every_request(self):
        _, requests = generate(LoadSpec(), 50)
        phases = default_phases(requests, queue_limit=8)
        assert [p.name for p in phases] == ["warmup", "steady", "overload"]
        assert sum(len(p.requests) for p in phases) == len(requests)
        assert phases[-1].burst > 8  # overload bursts past the queue

    def test_drive_accounts_for_every_request(self):
        workload, requests = generate(LoadSpec(), 36)
        service = OptimizerService(
            workload.catalog,
            service=ServiceConfig(workers=2, queue_limit=4),
        )
        report = drive(service, default_phases(requests, 4))
        assert report.unhandled == 0
        total = sum(p.submitted for p in report.phases)
        assert total == 36
        assert len(report.responses) == 36
        for phase in report.phases:
            assert phase.admitted + phase.rejected + phase.unhandled == (
                phase.submitted
            )
        overload = report.phase("overload")
        assert overload.rejected > 0

    def test_report_shapes(self):
        workload, requests = generate(LoadSpec(), 12)
        service = OptimizerService(
            workload.catalog,
            service=ServiceConfig(workers=1, queue_limit=4),
        )
        report = drive(service, default_phases(requests, 4))
        payload = report.as_dict()
        assert {p["name"] for p in payload["phases"]} == {
            "warmup", "steady", "overload"
        }
        assert "phase warmup:" in report.summary()
        with pytest.raises(KeyError):
            report.phase("nope")


class TestServeCLI:
    def test_serve_repeats_show_cache_hits(self, capsys):
        assert main(["serve", "--workload", "chain:3", "--repeat", "3"]) == 0
        out = capsys.readouterr().out
        assert "cached" in out
        assert "tiers:" in out

    def test_serve_explicit_sql_and_json(self, tmp_path, capsys):
        out_file = tmp_path / "serve.json"
        assert main([
            "serve", "SELECT R0.ID FROM R0 WHERE R0.VAL < 9",
            "--workload", "chain:3", "--repeat", "2",
            "--json", str(out_file),
        ]) == 0
        payload = json.loads(out_file.read_text())
        assert payload["requests"] == 2
        assert payload["tiers"].get("cached", 0) >= 1

    def test_loadgen_runs_phases(self, capsys):
        assert main([
            "loadgen", "--requests", "24", "--queue-limit", "4",
        ]) == 0
        out = capsys.readouterr().out
        assert "phase warmup:" in out
        assert "phase overload:" in out
        assert "0 unhandled" in out

    def test_loadgen_json_report(self, tmp_path, capsys):
        out_file = tmp_path / "load.json"
        assert main([
            "loadgen", "--requests", "20", "--queue-limit", "4",
            "--json", str(out_file),
        ]) == 0
        payload = json.loads(out_file.read_text())
        assert {p["name"] for p in payload["load"]["phases"]} == {
            "warmup", "steady", "overload"
        }
        assert payload["service"]["requests"] == 20
