"""Unit tests for stored tables and the database binding."""

import pytest

from repro.catalog import AccessPath, Catalog, TableDef
from repro.catalog.catalog import make_columns
from repro.errors import StorageError
from repro.query.expressions import ColumnRef
from repro.storage import Database, IOAccounting, TableData, tid_column


@pytest.fixture()
def cat():
    cat = Catalog()
    cat.add_table(TableDef("T", make_columns("A", "B", ("S", "str"))))
    cat.add_index(AccessPath("T_A", "T", ("A",)))
    return cat


@pytest.fixture()
def db(cat):
    db = Database(cat)
    db.create_storage("T")
    return db


class TestTableData:
    def test_insert_and_scan(self, db):
        db.load("T", [(1, 10, "x"), (2, 20, "y")])
        rows = [row for _, row in db.table("T").scan()]
        assert rows == [(1, 10, "x"), (2, 20, "y")]

    def test_insert_mapping(self, db):
        db.load("T", [{"A": 1, "B": 2, "S": "z"}])
        assert next(iter(db.table("T").scan()))[1] == (1, 2, "z")

    def test_arity_checked(self, db):
        with pytest.raises(StorageError, match="arity"):
            db.table("T").insert((1,))

    def test_indexes_maintained_on_insert(self, db):
        db.load("T", [(5, 1, "a"), (3, 2, "b"), (5, 3, "c")])
        index = db.table("T").index("T_A")
        rids = [rid for rid, _ in index.tree.search((5,))]
        assert len(rids) == 2

    def test_index_added_after_load_backfills(self, db, cat):
        db.load("T", [(1, 10, "x"), (2, 20, "y")])
        data = db.table("T")
        path = AccessPath("T_B", "T", ("B",))
        data.add_index(path, (ColumnRef("T", "B"),))
        assert len(data.index("T_B").tree.search((20,))) == 1

    def test_duplicate_index_rejected(self, db):
        data = db.table("T")
        with pytest.raises(StorageError, match="already exists"):
            data.add_index(AccessPath("T_A", "T", ("A",)), (ColumnRef("T", "A"),))

    def test_fetch_by_rid(self, db):
        db.load("T", [(1, 10, "x")])
        data = db.table("T")
        rid, row = next(iter(data.scan()))
        assert data.fetch(rid) == row

    def test_position_and_missing_column(self, db):
        data = db.table("T")
        assert data.position(ColumnRef("T", "B")) == 1
        with pytest.raises(StorageError):
            data.position(ColumnRef("T", "NOPE"))

    def test_column_values(self, db):
        db.load("T", [(1, 10, "x"), (2, 20, "y")])
        assert list(db.table("T").column_values(ColumnRef("T", "B"))) == [10, 20]

    def test_empty_schema_rejected(self):
        with pytest.raises(StorageError):
            TableData("X", (), "local", IOAccounting())

    def test_tid_column_helper(self):
        assert tid_column("EMP") == ColumnRef("EMP", "#TID")


class TestDatabase:
    def test_create_storage_twice_rejected(self, db):
        with pytest.raises(StorageError, match="already exists"):
            db.create_storage("T")

    def test_unknown_storage(self, db):
        with pytest.raises(StorageError, match="no storage"):
            db.table("NOPE")

    def test_analyze_updates_catalog(self, db, cat):
        db.load("T", [(i, i % 3, "s") for i in range(30)])
        db.analyze("T")
        assert cat.table_stats("T").card == 30
        assert cat.column_stats("T", "B").n_distinct == 3
        assert cat.column_stats("T", "A").low == 0
        assert cat.column_stats("T", "A").high == 29

    def test_temp_tables(self, db):
        schema = (ColumnRef("T", "A"), ColumnRef("U", "B"))
        temp = db.make_temp(schema, site="local")
        assert temp.is_temp
        temp.insert((1, 2))
        assert db.table(temp.name) is temp
        assert db.drop_temps() == 1
        with pytest.raises(StorageError):
            db.table(temp.name)

    def test_temp_names_unique(self, db):
        a = db.make_temp((ColumnRef("T", "A"),), site="local")
        b = db.make_temp((ColumnRef("T", "A"),), site="local")
        assert a.name != b.name

    def test_named_temp_collision_rejected(self, db):
        db.make_temp((ColumnRef("T", "A"),), site="local", name="#x")
        with pytest.raises(StorageError):
            db.make_temp((ColumnRef("T", "A"),), site="local", name="#x")

    def test_base_table_names(self, db):
        assert db.base_table_names() == ("T",)

    def test_btree_storage_has_clustered_primary(self):
        cat = Catalog()
        cat.add_table(
            TableDef("B", make_columns("K", "V"), storage="btree", key=("K",))
        )
        db = Database(cat)
        data = db.create_storage("B")
        db.load("B", [(3, 30), (1, 10), (2, 20)])
        primary = next(ix for ix in data.indexes.values() if ix.clustered)
        keys = [k for k, _ in primary.tree.scan_all()]
        assert keys == [(1,), (2,), (3,)]
        # Clustered leaves carry the full row.
        _, (rid, row) = next(primary.tree.scan_all())
        assert row == (1, 10)
