"""Unit tests for the Glue mechanism (paper section 3.2 and Figure 3)."""

import pytest

from repro.cost.propfuncs import PlanFactory
from repro.errors import GlueError
from repro.plans.operators import ACCESS, BUILDIX, SHIP, SORT, STORE
from repro.plans.properties import requirements
from repro.plans.sap import SAP, Stream
from repro.query.expressions import ColumnRef
from repro.query.parser import parse_query
from repro.stars.builtin_rules import default_rules
from repro.stars.engine import StarEngine

DNO = ColumnRef("DEPT", "DNO")
MGR = ColumnRef("DEPT", "MGR")
E_DNO = ColumnRef("EMP", "DNO")


def glue_for(catalog, sql="SELECT NAME, MGR FROM DEPT, EMP WHERE DEPT.DNO = EMP.DNO"):
    engine = StarEngine(default_rules(), catalog, parse_query(sql, catalog))
    return engine.ctx.glue, engine


class TestCandidateGeneration:
    def test_single_table_built_via_access_root(self, catalog):
        glue, engine = glue_for(catalog)
        sap = glue.resolve(Stream(frozenset({"DEPT"})))
        assert len(sap) >= 1
        assert engine.plan_table.stats.inserts >= 1

    def test_plan_table_reused_on_second_call(self, catalog):
        glue, engine = glue_for(catalog)
        glue.resolve(Stream(frozenset({"DEPT"})))
        misses = engine.plan_table.stats.misses
        glue.resolve(Stream(frozenset({"DEPT"})))
        assert engine.plan_table.stats.misses == misses  # pure hit

    def test_composite_without_plans_raises(self, catalog):
        glue, _ = glue_for(catalog)
        with pytest.raises(GlueError, match="composite"):
            glue.resolve(Stream(frozenset({"DEPT", "EMP"})))

    def test_pushed_preds_reexpand_single_table(self, catalog, join_pred):
        glue, _ = glue_for(catalog)
        sap = glue.resolve(Stream(frozenset({"EMP"})), extra_preds={join_pred})
        # One of the plans must exploit the EMP_DNO index with the
        # converted join predicate (not a retrofitted FILTER).
        assert any(
            node.op == ACCESS and node.flavor == "index" and join_pred in (node.param("preds") or ())
            for plan in sap
            for node in plan.nodes()
        )
        assert all(
            not any(n.op == "FILTER" for n in plan.nodes()) for plan in sap
        )


class TestStreamVeneers:
    def test_sort_veneer_added(self, catalog):
        glue, engine = glue_for(catalog)
        sap = glue.resolve(Stream(frozenset({"DEPT"}), requirements(order=[DNO])))
        assert all(plan.props.satisfies(requirements(order=[DNO])) for plan in sap)
        assert any(any(n.op == SORT for n in p.nodes()) for p in sap)

    def test_ship_veneer_added(self, distributed_catalog):
        glue, _ = glue_for(distributed_catalog)
        sap = glue.resolve(Stream(frozenset({"DEPT"}), requirements(site="L.A.")))
        for plan in sap:
            assert plan.props.site == "L.A."
            assert any(n.op == SHIP for n in plan.nodes())

    def test_no_veneer_when_already_satisfied(self, catalog):
        glue, _ = glue_for(catalog)
        sap = glue.resolve(Stream(frozenset({"DEPT"}), requirements(site="local")))
        assert all(not any(n.op == SHIP for n in p.nodes()) for p in sap)

    def test_both_ship_and_sort_orderings_generated(self, distributed_catalog):
        """Figure 3 shows both SORT-then-SHIP and SHIP-then-SORT."""
        glue, _ = glue_for(distributed_catalog)
        stream = Stream(
            frozenset({"DEPT"}), requirements(order=[DNO], site="L.A.")
        )
        plans = glue.resolve(stream)
        for plan in plans:
            assert plan.props.site == "L.A."
            assert plan.props.satisfies(requirements(order=[DNO]))

    def test_unsortable_stream_skipped(self, catalog):
        glue, _ = glue_for(catalog, "SELECT MGR FROM DEPT, EMP WHERE DEPT.DNO = EMP.DNO")
        # Require an order on a column of EMP that EMP plans do carry —
        # then one on a column they do not: ENO is not referenced by the
        # query so it is not in the stream.
        with pytest.raises(GlueError):
            glue.resolve(
                Stream(
                    frozenset({"EMP"}),
                    requirements(order=[ColumnRef("EMP", "ENO")]),
                )
            )

    def test_cheapest_mode_returns_single_plan(self, catalog):
        glue, _ = glue_for(catalog)
        sap = glue.resolve(Stream(frozenset({"DEPT"})), mode="cheapest")
        assert len(sap) == 1


class TestMaterializeVeneers:
    def test_temp_requirement_stores_and_reaccesses(self, catalog):
        glue, _ = glue_for(catalog)
        sap = glue.resolve(Stream(frozenset({"DEPT"}), requirements(temp=True)))
        for plan in sap:
            assert plan.props.temp
            ops = [n.op for n in plan.nodes()]
            assert plan.op == ACCESS and plan.flavor == "temp"
            assert STORE in ops

    def test_sideways_preds_not_baked_into_temp(self, catalog, join_pred):
        glue, _ = glue_for(catalog)
        sap = glue.resolve(
            Stream(frozenset({"EMP"}), requirements(temp=True)),
            extra_preds={join_pred},
        )
        for plan in sap:
            store = next(n for n in plan.nodes() if n.op == STORE)
            # The STORE subtree must not apply the converted join pred...
            assert join_pred not in store.props.preds
            # ...but the final re-ACCESS must.
            assert join_pred in plan.props.preds

    def test_paths_requirement_builds_index(self, catalog, join_pred):
        glue, _ = glue_for(catalog)
        sap = glue.resolve(
            Stream(frozenset({"DEPT"}), requirements(paths=[DNO])),
            extra_preds={join_pred},
        )
        for plan in sap:
            ops = [n.op for n in plan.nodes()]
            assert BUILDIX in ops
            assert plan.op == ACCESS and plan.flavor == "index"
            assert plan.props.has_path_on((DNO,))

    def test_paths_with_site_ships_first(self, distributed_catalog, join_pred):
        glue, _ = glue_for(distributed_catalog)
        sap = glue.resolve(
            Stream(
                frozenset({"DEPT"}),
                requirements(paths=[DNO], site="L.A."),
            ),
            extra_preds={join_pred},
        )
        for plan in sap:
            assert plan.props.site == "L.A."
            ops = [n.op for n in plan.nodes()]
            # SHIP must happen below STORE (ship the stream, then store).
            assert ops.index(STORE) < ops.index(SHIP)


class TestAugment:
    def test_augment_applies_veneer_to_given_plans(self, catalog):
        _, engine = glue_for(catalog)
        factory: PlanFactory = engine.ctx.factory
        scan = factory.access_base("DEPT", {DNO, MGR}, set())
        out = engine.ctx.glue.augment(SAP([scan]), requirements(order=[DNO]))
        assert all(p.props.order[:1] == (DNO,) for p in out)

    def test_augment_filters_missing_preds(self, catalog, mgr_pred):
        _, engine = glue_for(catalog)
        factory = engine.ctx.factory
        scan = factory.access_base("DEPT", {DNO, MGR}, set())
        out = engine.ctx.glue.augment(
            SAP([scan]), requirements(extra_preds=[mgr_pred])
        )
        assert all(mgr_pred in p.props.preds for p in out)

    def test_augment_unsatisfiable_raises(self, catalog):
        _, engine = glue_for(catalog)
        factory = engine.ctx.factory
        scan = factory.access_base("DEPT", {MGR}, set())
        with pytest.raises(GlueError):
            engine.ctx.glue.augment(SAP([scan]), requirements(order=[DNO]))


class TestFixedPlans:
    def test_fixed_plans_used_as_candidates(self, catalog):
        _, engine = glue_for(catalog)
        factory = engine.ctx.factory
        scan = factory.access_base("DEPT", {DNO, MGR}, set())
        stream = Stream(
            frozenset({"DEPT"}),
            requirements(order=[DNO]),
            fixed_plans=(scan,),
        )
        sap = engine.ctx.glue.resolve(stream)
        # The only candidate was our scan; a SORT veneer was added to it.
        assert len(sap) == 1
        plan = next(iter(sap))
        assert plan.op == SORT and plan.inputs[0] == scan
