"""Tests for the error hierarchy, OptimizerConfig, and bench reporting."""

import pytest

from repro.bench import Table, banner, series
from repro.config import OptimizerConfig
from repro.errors import (
    CatalogError,
    ExecutionError,
    ExpansionError,
    GlueError,
    OptimizationError,
    ParseError,
    QueryError,
    ReproError,
    RuleError,
    StorageError,
)


class TestErrorHierarchy:
    def test_all_derive_from_repro_error(self):
        for exc_type in (
            CatalogError, ExecutionError, ExpansionError, GlueError,
            OptimizationError, ParseError, QueryError, RuleError, StorageError,
        ):
            assert issubclass(exc_type, ReproError)

    def test_parse_error_is_query_error(self):
        assert issubclass(ParseError, QueryError)

    def test_parse_error_position_formatting(self):
        err = ParseError("bad token", line=3, column=7)
        assert "line 3" in str(err)
        assert err.line == 3 and err.column == 7

    def test_parse_error_without_position(self):
        err = ParseError("bad token")
        assert str(err) == "bad token"
        assert err.line is None

    def test_single_except_catches_everything(self):
        caught = []
        for exc_type in (CatalogError, GlueError, StorageError):
            try:
                raise exc_type("boom")
            except ReproError as exc:
                caught.append(exc)
        assert len(caught) == 3


class TestOptimizerConfig:
    def test_defaults(self):
        config = OptimizerConfig()
        assert config.glue_mode == "all"
        assert not config.cartesian_products
        assert config.composite_inners
        assert config.prune

    def test_with_options(self):
        config = OptimizerConfig().with_options(trace=True, max_depth=10)
        assert config.trace and config.max_depth == 10
        assert not OptimizerConfig().trace  # original untouched

    def test_bad_glue_mode_rejected(self):
        with pytest.raises(ValueError):
            OptimizerConfig(glue_mode="fastest")

    def test_bad_depth_rejected(self):
        with pytest.raises(ValueError):
            OptimizerConfig(max_depth=1)

    def test_frozen(self):
        with pytest.raises(Exception):
            OptimizerConfig().trace = True  # type: ignore[misc]


class TestBenchReporting:
    def test_table_renders_aligned(self):
        table = Table(["name", "value"])
        table.add("alpha", 1)
        table.add("b", 123456.0)
        text = table.render()
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert len(lines) == 4
        assert "123,456" in text

    def test_table_arity_checked(self):
        table = Table(["a", "b"])
        with pytest.raises(ValueError):
            table.add(1)

    def test_banner(self):
        text = banner("E1", "a claim")
        assert "E1" in text and "a claim" in text

    def test_series(self):
        text = series("work", [(2, 10), (3, 100)])
        assert text == "work: 2:10  3:100"

    def test_float_formatting(self):
        table = Table(["x"])
        table.add(0.0)
        table.add(3.14159)
        text = table.render()
        assert "0" in text and "3.14" in text
