"""Scale and end-to-end integration: bigger queries stay fast and correct."""

import pytest

from repro.baseline import TransformationalOptimizer
from repro.executor import QueryExecutor, naive_evaluate
from repro.optimizer import StarburstOptimizer
from repro.stars.builtin_rules import extended_rules
from repro.workloads.generator import chain_workload, star_workload


class TestScale:
    def test_seven_table_chain_under_time_bound(self):
        wl = chain_workload(7, rows=40, seed=71)
        result = StarburstOptimizer(wl.catalog, rules=extended_rules()).optimize(
            wl.query
        )
        assert result.best_plan.props.tables == set(wl.query.tables)
        # ~1 s on the development machine; generous bound for CI noise.
        assert result.elapsed_seconds < 20

    def test_six_table_star_under_time_bound(self):
        wl = star_workload(6, rows=30, seed=72)
        result = StarburstOptimizer(wl.catalog, rules=extended_rules()).optimize(
            wl.query
        )
        assert result.best_plan.props.tables == set(wl.query.tables)
        assert result.elapsed_seconds < 30

    def test_rule_work_scales_gently(self):
        """The E6 claim as a regression test: STAR rule work grows by
        less than 2.5x per added table on chains."""
        works = []
        for n in (3, 4, 5, 6):
            wl = chain_workload(n, rows=30, seed=73)
            result = StarburstOptimizer(wl.catalog, rules=extended_rules()).optimize(
                wl.query
            )
            works.append(
                result.stats.star_references
                + result.stats.alternatives_considered
                + result.stats.conditions_evaluated
            )
        for smaller, bigger in zip(works, works[1:]):
            assert bigger < 2.5 * smaller


class TestEndToEndDistributed:
    def test_three_site_chain_all_plans_correct(self):
        wl = chain_workload(3, rows=40, seed=74, n_sites=3)
        result = StarburstOptimizer(wl.catalog, rules=extended_rules()).optimize(
            wl.query
        )
        executor = QueryExecutor(wl.database)
        reference = naive_evaluate(wl.query, wl.database).as_multiset()
        for plan in result.alternatives:
            assert executor.run(wl.query, plan).as_multiset() == reference

    def test_full_repertoire_distributed(self):
        """Every optional strategy enabled at once, on a distributed
        workload: plans still correct."""
        wl = chain_workload(3, rows=40, seed=75, n_sites=2)
        rules = extended_rules(tid_sort=True, or_index=True, semijoin=True)
        result = StarburstOptimizer(wl.catalog, rules=rules).optimize(wl.query)
        executor = QueryExecutor(wl.database)
        reference = naive_evaluate(wl.query, wl.database).as_multiset()
        for plan in result.alternatives:
            assert executor.run(wl.query, plan).as_multiset() == reference

    def test_star_and_baseline_agree_on_distributed(self):
        wl = chain_workload(3, rows=40, seed=76, n_sites=2)
        star = StarburstOptimizer(wl.catalog, rules=extended_rules()).optimize(
            wl.query
        )
        base = TransformationalOptimizer(wl.catalog).optimize(wl.query)
        executor = QueryExecutor(wl.database)
        assert (
            executor.run(wl.query, star.best_plan).as_multiset()
            == executor.run(wl.query, base.best_plan).as_multiset()
        )
