"""q_error edge cases: zero/negative inputs and the clamp floor."""

from __future__ import annotations

import pytest

from repro.obs import q_error


class TestDegenerateEstimates:
    def test_zero_estimate_clamps_to_floor(self):
        # An estimator may legally predict 0 rows; the ratio must stay
        # finite instead of dividing by zero.
        assert q_error(0.0, 100.0) == pytest.approx(100.0)

    def test_zero_actual_clamps_to_floor(self):
        assert q_error(100.0, 0.0) == pytest.approx(100.0)

    def test_both_zero_is_perfect(self):
        assert q_error(0.0, 0.0) == 1.0

    def test_negative_estimate_clamps_to_floor(self):
        assert q_error(-5.0, 10.0) == pytest.approx(10.0)
        assert q_error(10.0, -5.0) == pytest.approx(10.0)

    def test_custom_floor_changes_clamp(self):
        # With floor=10, an estimate of 2 and an actual of 0 both read
        # as 10 — a coarse floor deliberately forgives small absolute
        # errors on tiny streams.
        assert q_error(2.0, 0.0, floor=10.0) == 1.0

    def test_symmetry(self):
        assert q_error(5.0, 50.0) == q_error(50.0, 5.0)

    def test_always_at_least_one(self):
        assert q_error(7.0, 7.0) == 1.0
        assert q_error(0.0, 0.5) >= 1.0


class TestFloorValidation:
    @pytest.mark.parametrize("floor", [0.0, -1.0, -0.001])
    def test_non_positive_floor_rejected(self, floor):
        with pytest.raises(ValueError, match="floor must be positive"):
            q_error(10.0, 10.0, floor=floor)

    def test_tiny_positive_floor_accepted(self):
        assert q_error(0.0, 1.0, floor=1e-9) == pytest.approx(1e9)
