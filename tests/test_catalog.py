"""Unit tests for the catalog and schema descriptors."""

import pytest

from repro.catalog import AccessPath, Catalog, ColumnDef, ColumnStats, SiteDef, TableDef, TableStats
from repro.catalog.catalog import make_columns
from repro.errors import CatalogError
from repro.query.expressions import ColumnRef


class TestSchemaDescriptors:
    def test_column_widths(self):
        assert ColumnDef("A", "int").byte_width == 4
        assert ColumnDef("B", "float").byte_width == 8
        assert ColumnDef("C", "str").byte_width == 16
        assert ColumnDef("D", "str", width=40).byte_width == 40

    def test_unknown_column_type_rejected(self):
        with pytest.raises(CatalogError):
            ColumnDef("A", "blob")

    def test_table_duplicate_columns_rejected(self):
        with pytest.raises(CatalogError, match="duplicate"):
            TableDef("T", make_columns("A", "A"))

    def test_btree_table_needs_key(self):
        with pytest.raises(CatalogError, match="needs a key"):
            TableDef("T", make_columns("A"), storage="btree")

    def test_btree_key_must_exist(self):
        with pytest.raises(CatalogError):
            TableDef("T", make_columns("A"), storage="btree", key=("B",))

    def test_row_width_subset(self):
        t = TableDef("T", make_columns("A", ("B", "str")))
        assert t.row_width() == 20
        assert t.row_width(("A",)) == 4

    def test_access_path_prefix_test(self):
        path = AccessPath("ix", "T", ("A", "B", "C"))
        assert path.provides_order_prefix(("A",))
        assert path.provides_order_prefix(("A", "B"))
        assert not path.provides_order_prefix(("B",))
        assert not path.provides_order_prefix(("A", "C"))
        assert not path.provides_order_prefix(("A", "B", "C", "D"))

    def test_access_path_needs_columns(self):
        with pytest.raises(CatalogError):
            AccessPath("ix", "T", ())

    def test_site_cpu_factor_positive(self):
        with pytest.raises(CatalogError):
            SiteDef("s", cpu_factor=0)


class TestCatalog:
    def test_duplicate_table_rejected(self, catalog):
        with pytest.raises(CatalogError, match="already defined"):
            catalog.add_table(TableDef("EMP", make_columns("X")))

    def test_unknown_table_lookup(self, catalog):
        with pytest.raises(CatalogError, match="unknown table"):
            catalog.table("NOPE")

    def test_index_on_unknown_column_rejected(self, catalog):
        with pytest.raises(CatalogError, match="not in table"):
            catalog.add_index(AccessPath("bad", "EMP", ("NOPE",)))

    def test_duplicate_index_rejected(self, catalog):
        with pytest.raises(CatalogError, match="already defined"):
            catalog.add_index(AccessPath("EMP_DNO", "EMP", ("DNO",)))

    def test_drop_index(self, catalog):
        catalog.drop_index("EMP", "EMP_DNO")
        assert catalog.paths_for("EMP") == ()
        with pytest.raises(CatalogError):
            catalog.drop_index("EMP", "EMP_DNO")

    def test_btree_table_gets_primary_path(self):
        cat = Catalog()
        cat.add_table(
            TableDef("T", make_columns("A", "B"), storage="btree", key=("A",))
        )
        paths = cat.paths_for("T")
        assert len(paths) == 1
        assert paths[0].clustered and paths[0].unique
        assert paths[0].columns == ("A",)

    def test_adding_table_registers_site(self):
        cat = Catalog(query_site="here")
        cat.add_table(TableDef("T", make_columns("A"), site="there"))
        assert {s.name for s in cat.sites()} == {"here", "there"}

    def test_columns_of(self, catalog):
        cols = catalog.columns_of(["DEPT"])
        assert cols == {ColumnRef("DEPT", "DNO"), ColumnRef("DEPT", "MGR")}

    def test_resolve_column(self, catalog):
        assert catalog.resolve_column("MGR", ["DEPT", "EMP"]) == ColumnRef("DEPT", "MGR")

    def test_default_column_stats_bounded_by_card(self):
        cat = Catalog()
        cat.add_table(TableDef("T", make_columns("A")), TableStats(card=3))
        assert cat.column_stats("T", "A").n_distinct == 3

    def test_page_count_from_width(self):
        cat = Catalog(page_size=400)
        cat.add_table(TableDef("T", make_columns("A")), TableStats(card=1000))
        # 100 rows of 4 bytes per 400-byte page => 10 pages.
        assert cat.page_count("T") == 10

    def test_declared_pages_win(self):
        cat = Catalog()
        cat.add_table(TableDef("T", make_columns("A")), TableStats(card=10, pages=99))
        assert cat.page_count("T") == 99


class TestStatistics:
    def test_value_fraction(self):
        stats = ColumnStats(n_distinct=20)
        assert stats.value_fraction("anything") == pytest.approx(0.05)

    def test_range_fraction_interpolates(self):
        stats = ColumnStats(n_distinct=100, low=0, high=100)
        assert stats.range_fraction("<", 25) == pytest.approx(0.25)
        assert stats.range_fraction(">", 25) == pytest.approx(0.75)

    def test_range_fraction_clamped(self):
        stats = ColumnStats(n_distinct=10, low=0, high=10)
        assert stats.range_fraction("<", -5) == 0.0
        assert stats.range_fraction("<", 50) == 1.0

    def test_range_fraction_unknown_bounds(self):
        assert ColumnStats(n_distinct=10).range_fraction("<", 5) is None

    def test_range_fraction_non_numeric(self):
        stats = ColumnStats(n_distinct=5, low="a", high="z")
        assert stats.range_fraction("<", "m") is None

    def test_n_distinct_floor(self):
        assert ColumnStats(n_distinct=0).n_distinct == 1.0

    def test_collect_column_stats(self):
        from repro.catalog.statistics import collect_column_stats

        stats = collect_column_stats([3, 1, None, 3, 7])
        assert stats.n_distinct == 3
        assert stats.low == 1 and stats.high == 7
        assert stats.null_fraction == pytest.approx(0.2)

    def test_table_stats_with_card(self):
        stats = TableStats(card=10, pages=5).with_card(100)
        assert stats.card == 100 and stats.pages is None
