"""Unit tests for the property functions (one per LOLEPOP flavor).

These are the paper's section-3.1 contracts: each LOLEPOP changes
selected properties and adds cost; everything else is carried through.
"""

import pytest

from repro.catalog import Catalog, TableDef, TableStats
from repro.catalog.catalog import make_columns
from repro.cost.propfuncs import PlanFactory, index_matching_predicates
from repro.errors import ReproError
from repro.query.expressions import ColumnRef
from repro.query.parser import parse_predicate
from repro.storage.table import tid_column

DNO = ColumnRef("DEPT", "DNO")
MGR = ColumnRef("DEPT", "MGR")
E_DNO = ColumnRef("EMP", "DNO")
E_NAME = ColumnRef("EMP", "NAME")


class TestAccessBase:
    def test_heap_access_properties(self, factory, mgr_pred):
        plan = factory.access_base("DEPT", {DNO, MGR}, {mgr_pred})
        props = plan.props
        assert props.tables == {"DEPT"}
        assert props.cols == {DNO, MGR}
        assert props.preds == {mgr_pred}
        assert props.order == ()
        assert not props.temp
        assert props.card == pytest.approx(100 / 50)
        assert props.cost.io >= 1

    def test_heap_rescan_equals_scan(self, factory):
        plan = factory.access_base("DEPT", {DNO}, set())
        assert plan.props.rescan_cost == plan.props.cost

    def test_btree_table_scan_is_ordered(self):
        cat = Catalog()
        cat.add_table(
            TableDef("B", make_columns("K", "V"), storage="btree", key=("K",)),
            TableStats(card=100),
        )
        plan = PlanFactory(cat).access_base("B", {ColumnRef("B", "K")}, set())
        assert plan.flavor == "btree"
        assert plan.props.order == (ColumnRef("B", "K"),)


class TestAccessIndex:
    def test_delivers_key_and_tid_in_order(self, catalog, factory):
        path = catalog.path("EMP", "EMP_DNO")
        plan = factory.access_index("EMP", path)
        assert tid_column("EMP") in plan.props.cols
        assert plan.props.order == (E_DNO,)

    def test_rejects_uncovered_columns(self, catalog, factory):
        path = catalog.path("EMP", "EMP_DNO")
        with pytest.raises(ReproError, match="cannot deliver"):
            factory.access_index("EMP", path, {E_NAME})

    def test_rejects_inapplicable_predicate(self, catalog, factory):
        path = catalog.path("EMP", "EMP_DNO")
        pred = parse_predicate("EMP.NAME = 'x'", catalog, ("EMP",))
        with pytest.raises(ReproError, match="cannot apply"):
            factory.access_index("EMP", path, preds={pred})

    def test_matched_predicate_narrows_io(self, catalog, factory):
        path = catalog.path("EMP", "EMP_DNO")
        full = factory.access_index("EMP", path)
        pred = parse_predicate("EMP.DNO = 7", catalog, ("EMP",))
        narrowed = factory.access_index("EMP", path, preds={pred})
        assert narrowed.props.cost.io < full.props.cost.io
        assert narrowed.props.card == pytest.approx(10_000 / 100)

    def test_sideways_join_pred_estimated_as_probe(self, catalog, factory, join_pred):
        path = catalog.path("EMP", "EMP_DNO")
        probe = factory.access_index("EMP", path, preds={join_pred})
        assert probe.props.card == pytest.approx(100)  # 10000 / 100 distinct
        full = factory.access_index("EMP", path)
        assert probe.props.cost.io < full.props.cost.io


class TestGet:
    def test_requires_tid(self, factory):
        scan = factory.access_base("EMP", {E_DNO}, set())
        with pytest.raises(ReproError, match="TID"):
            factory.get(scan, "EMP", {E_NAME})

    def test_adds_columns_and_preds(self, catalog, factory):
        path = catalog.path("EMP", "EMP_DNO")
        ix = factory.access_index("EMP", path)
        pred = parse_predicate("EMP.NAME = 'x'", catalog, ("EMP",))
        plan = factory.get(ix, "EMP", {E_NAME}, {pred})
        assert E_NAME in plan.props.cols
        assert pred in plan.props.preds
        assert plan.props.order == ix.props.order  # GET preserves order


class TestSortShipStore:
    def test_sort_sets_order_and_costs_cpu(self, factory):
        scan = factory.access_base("DEPT", {DNO, MGR}, set())
        plan = factory.sort(scan, (DNO,))
        assert plan.props.order == (DNO,)
        assert plan.props.cost.cpu > scan.props.cost.cpu

    def test_sort_needs_columns_present(self, factory):
        scan = factory.access_base("DEPT", {MGR}, set())
        with pytest.raises(ReproError, match="not in the stream"):
            factory.sort(scan, (DNO,))

    def test_sort_rescan_cheaper_than_resort(self, factory):
        scan = factory.access_base("EMP", {E_DNO, E_NAME}, set())
        plan = factory.sort(scan, (E_DNO,))
        assert plan.props.rescan_cost.cpu < plan.props.cost.cpu

    def test_ship_changes_site_and_charges_messages(self, distributed_catalog):
        f = PlanFactory(distributed_catalog)
        scan = f.access_base("DEPT", {DNO, MGR}, set())
        plan = f.ship(scan, "L.A.")
        assert plan.props.site == "L.A."
        assert plan.props.cost.msgs > 0
        assert plan.props.cost.bytes_sent > 0

    def test_ship_to_same_site_rejected(self, factory):
        scan = factory.access_base("DEPT", {DNO}, set())
        with pytest.raises(ReproError, match="already at site"):
            factory.ship(scan, "local")

    def test_ship_preserves_order(self, distributed_catalog):
        f = PlanFactory(distributed_catalog)
        plan = f.ship(f.sort(f.access_base("DEPT", {DNO}, set()), (DNO,)), "L.A.")
        assert plan.props.order == (DNO,)

    def test_store_sets_temp_and_stored_as(self, factory):
        scan = factory.access_base("DEPT", {DNO, MGR}, set())
        plan = factory.store(scan)
        assert plan.props.temp
        assert plan.props.stored_as is not None
        assert plan.props.rescan_cost.io <= plan.props.cost.io

    def test_access_temp_streams_stored(self, factory):
        stored = factory.store(factory.access_base("DEPT", {DNO, MGR}, set()))
        plan = factory.access_temp(stored)
        assert plan.props.temp
        assert plan.props.rescan_cost.io < plan.props.cost.io

    def test_access_temp_requires_stored_input(self, factory):
        scan = factory.access_base("DEPT", {DNO}, set())
        with pytest.raises(ReproError, match="not a stored object"):
            factory.access_temp(scan)


class TestBuildix:
    def test_adds_clustered_path(self, factory):
        stored = factory.store(factory.access_base("EMP", {E_DNO, E_NAME}, set()))
        plan = factory.buildix(stored, (E_DNO,))
        assert len(plan.props.paths) == 1
        path = next(iter(plan.props.paths))
        assert path.clustered
        assert path.columns == ("DNO",)
        assert plan.props.has_path_on((E_DNO,))

    def test_requires_stored_input(self, factory):
        scan = factory.access_base("EMP", {E_DNO}, set())
        with pytest.raises(ReproError, match="stored"):
            factory.buildix(scan, (E_DNO,))

    def test_key_must_be_present(self, factory):
        stored = factory.store(factory.access_base("EMP", {E_DNO}, set()))
        with pytest.raises(ReproError, match="key not in"):
            factory.buildix(stored, (E_NAME,))

    def test_probe_cheaper_than_scan(self, factory, join_pred):
        stored = factory.store(factory.access_base("EMP", {E_DNO, E_NAME}, set()))
        indexed = factory.buildix(stored, (E_DNO,))
        path = next(iter(indexed.props.paths))
        probe = factory.access_temp_index(indexed, path, preds={join_pred})
        scan = factory.access_temp(stored, preds={join_pred})
        assert probe.props.rescan_cost.io < scan.props.rescan_cost.io


class TestJoin:
    def test_site_mismatch_rejected(self, distributed_catalog, join_pred):
        f = PlanFactory(distributed_catalog)
        d = f.access_base("DEPT", {DNO}, set())
        e = f.access_base("EMP", {E_DNO}, set())
        with pytest.raises(ReproError, match="different sites"):
            f.join("NL", d, e, {join_pred})

    def test_overlapping_tables_rejected(self, factory, join_pred):
        d1 = factory.access_base("DEPT", {DNO}, set())
        d2 = factory.access_base("DEPT", {DNO, MGR}, set())
        with pytest.raises(ReproError, match="overlap"):
            factory.join("NL", d1, d2, {join_pred})

    def test_card_not_double_counted_for_pushed_preds(self, catalog, factory, join_pred):
        d = factory.access_base("DEPT", {DNO, MGR}, set())
        # Inner with the join predicate pushed down (card already reduced).
        path = catalog.path("EMP", "EMP_DNO")
        probe = factory.access_index("EMP", path, preds={join_pred})
        nl = factory.join("NL", d, probe, {join_pred})
        # Inner without pushdown (predicate applied at the join).
        full = factory.access_index("EMP", path)
        mg = factory.join("NL", d, full, {join_pred})
        assert nl.props.card == pytest.approx(mg.props.card)

    def test_nl_charges_rescans(self, factory, join_pred):
        d = factory.access_base("DEPT", {DNO, MGR}, set())  # card 100
        e = factory.access_base("EMP", {E_DNO}, {join_pred})
        join = factory.join("NL", d, e, {join_pred})
        assert join.props.cost.io >= 99 * e.props.rescan_cost.io

    def test_nl_with_temp_inner_cheaper_io(self, factory, join_pred):
        d = factory.access_base("DEPT", {DNO, MGR}, set())
        heap_inner = factory.access_base("EMP", {E_DNO, E_NAME}, {join_pred})
        temp_inner = factory.access_temp(
            factory.store(factory.access_base("EMP", {E_DNO, E_NAME}, set())),
            preds={join_pred},
        )
        nl_heap = factory.join("NL", d, heap_inner, {join_pred})
        nl_temp = factory.join("NL", d, temp_inner, {join_pred})
        assert nl_temp.props.cost.io < nl_heap.props.cost.io

    def test_mg_preserves_outer_order(self, factory, join_pred):
        d = factory.sort(factory.access_base("DEPT", {DNO, MGR}, set()), (DNO,))
        e = factory.sort(factory.access_base("EMP", {E_DNO}, set()), (E_DNO,))
        join = factory.join("MG", d, e, {join_pred})
        assert join.props.order == (DNO,)

    def test_ha_destroys_order(self, factory, join_pred):
        d = factory.sort(factory.access_base("DEPT", {DNO, MGR}, set()), (DNO,))
        e = factory.access_base("EMP", {E_DNO}, set())
        join = factory.join("HA", d, e, {join_pred})
        assert join.props.order == ()

    def test_unknown_flavor_rejected(self, factory, join_pred):
        d = factory.access_base("DEPT", {DNO}, set())
        e = factory.access_base("EMP", {E_DNO}, set())
        with pytest.raises(ReproError):
            factory.join("XX", d, e, {join_pred})

    def test_join_unions_properties(self, factory, join_pred, mgr_pred):
        d = factory.access_base("DEPT", {DNO, MGR}, {mgr_pred})
        e = factory.access_base("EMP", {E_DNO}, set())
        join = factory.join("HA", d, e, {join_pred})
        assert join.props.tables == {"DEPT", "EMP"}
        assert join.props.preds == {join_pred, mgr_pred}
        assert join.props.cols == {DNO, MGR, E_DNO}


class TestFilterUnion:
    def test_filter_reduces_card(self, factory, mgr_pred):
        scan = factory.access_base("DEPT", {DNO, MGR}, set())
        plan = factory.filter(scan, {mgr_pred})
        assert plan.props.card < scan.props.card
        assert mgr_pred in plan.props.preds

    def test_filter_needs_preds(self, factory):
        scan = factory.access_base("DEPT", {DNO}, set())
        with pytest.raises(ReproError):
            factory.filter(scan, set())

    def test_union_adds_cards(self, factory, mgr_pred):
        a = factory.access_base("DEPT", {DNO, MGR}, {mgr_pred})
        b = factory.filter(factory.access_base("DEPT", {DNO, MGR}, set()), {mgr_pred})
        # Same columns and site: a UNION of the two is legal.
        plan = factory.union(a, b)
        assert plan.props.card == pytest.approx(a.props.card + b.props.card)

    def test_union_requires_same_columns(self, factory):
        a = factory.access_base("DEPT", {DNO}, set())
        b = factory.access_base("DEPT", {DNO, MGR}, set())
        with pytest.raises(ReproError, match="identical columns"):
            factory.union(a, b)


class TestIndexMatching:
    def test_eq_prefix_then_range(self, catalog):
        preds = {
            parse_predicate("EMP.DNO = 5", catalog, ("EMP",)),
            parse_predicate("EMP.ENO < 100", catalog, ("EMP",)),
        }
        matched, eq_prefix = index_matching_predicates(
            ("DNO", "ENO"), "EMP", preds, frozenset()
        )
        assert len(matched) == 2
        assert eq_prefix == 1

    def test_range_stops_matching(self, catalog):
        preds = {
            parse_predicate("EMP.DNO < 5", catalog, ("EMP",)),
            parse_predicate("EMP.ENO = 100", catalog, ("EMP",)),
        }
        matched, eq_prefix = index_matching_predicates(
            ("DNO", "ENO"), "EMP", preds, frozenset()
        )
        # The range on the first column ends the prefix: ENO=100 unmatched.
        assert len(matched) == 1
        assert eq_prefix == 0

    def test_no_sargable_preds(self, catalog, join_pred):
        matched, eq_prefix = index_matching_predicates(
            ("DNO",), "EMP", {join_pred}, frozenset()
        )
        assert matched == frozenset()

    def test_bound_tables_make_join_pred_sargable(self, catalog, join_pred):
        matched, eq_prefix = index_matching_predicates(
            ("DNO",), "EMP", {join_pred}, frozenset({"DEPT"})
        )
        assert matched == {join_pred}
        assert eq_prefix == 1
