"""The CLI reports library errors cleanly (no tracebacks)."""

from repro.__main__ import main


def test_unknown_table_reports_error(capsys):
    assert main(["optimize", "SELECT X FROM NOPE"]) == 2
    err = capsys.readouterr().err
    assert "error: unknown table" in err


def test_disconnected_join_reports_error(capsys):
    assert main(["optimize", "SELECT NAME, MGR FROM DEPT, EMP"]) == 2
    assert "cartesian" in capsys.readouterr().err


def test_parse_error_reported(capsys):
    assert main(["optimize", "SELECT FROM"]) == 2
    assert "error:" in capsys.readouterr().err
