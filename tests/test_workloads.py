"""Unit tests for workload generation (paper scenario + synthetic)."""

import pytest

from repro.errors import QueryError
from repro.workloads import (
    WorkloadSpec,
    chain_workload,
    clique_workload,
    figure1_query,
    paper_catalog,
    paper_database,
    star_workload,
    synthesize,
)
from repro.workloads.paper import with_proj


class TestPaperWorkload:
    def test_catalog_shape(self):
        cat = paper_catalog()
        assert cat.table("DEPT").column_names == ("DNO", "MGR", "BUDGET")
        assert [p.name for p in cat.paths_for("EMP")] == ["EMP_DNO"]

    def test_distributed_placement(self):
        cat = paper_catalog(distributed=True)
        assert cat.table("DEPT").site == "N.Y."
        assert cat.table("EMP").site == "L.A."
        assert cat.query_site == "L.A."

    def test_data_deterministic(self):
        cat1, cat2 = paper_catalog(), paper_catalog()
        db1, db2 = paper_database(cat1), paper_database(cat2)
        rows1 = [r for _, r in db1.table("EMP").scan()]
        rows2 = [r for _, r in db2.table("EMP").scan()]
        assert rows1 == rows2

    def test_stats_collected(self, paper_db):
        cat, db = paper_db
        assert cat.table_stats("EMP").card == 2000
        assert cat.column_stats("EMP", "DNO").n_distinct == 50

    def test_haas_rows_exist(self, paper_db):
        cat, db = paper_db
        mgr_pos = db.table("DEPT").position(
            __import__("repro.query.expressions", fromlist=["ColumnRef"]).ColumnRef("DEPT", "MGR")
        )
        managers = {row[mgr_pos] for _, row in db.table("DEPT").scan()}
        assert "Haas" in managers

    def test_figure1_query_parses(self):
        cat = paper_catalog()
        q = figure1_query(cat)
        assert q.table_set == {"DEPT", "EMP"}

    def test_with_proj_extends(self):
        cat = paper_catalog()
        db = paper_database(cat)
        with_proj(cat, db, proj_rows=100)
        assert cat.table_stats("PROJ").card == 100


class TestSyntheticWorkloads:
    def test_chain_shape(self):
        wl = chain_workload(3, rows=50, seed=1)
        assert wl.query.table_set == {"R0", "R1", "R2"}
        assert len(wl.query.multi_table_predicates()) == 2
        assert wl.query.join_graph_edges() == {
            frozenset({"R0", "R1"}),
            frozenset({"R1", "R2"}),
        }

    def test_star_shape(self):
        wl = star_workload(4, rows=50, seed=1)
        edges = wl.query.join_graph_edges()
        assert all("R0" in edge for edge in edges)
        # The fact table is larger than dimensions.
        assert len(wl.database.table("R0")) == 200

    def test_clique_shape(self):
        wl = clique_workload(3, rows=30, seed=1)
        assert len(wl.query.join_graph_edges()) == 3

    def test_selection_knob(self):
        with_sel = chain_workload(2, rows=50, seed=1, selection=0.2)
        assert len(with_sel.query.single_table_predicates("R0")) == 1
        without = chain_workload(2, rows=50, seed=1)
        assert len(without.query.single_table_predicates("R0")) == 0

    def test_sites_assigned_round_robin(self):
        wl = chain_workload(4, rows=20, seed=1, n_sites=2)
        sites = {wl.catalog.table(t).site for t in wl.query.tables}
        assert sites == {"S0", "S1"}

    def test_index_fraction_zero(self):
        wl = chain_workload(3, rows=20, seed=1, index_fraction=0.0)
        assert all(not wl.catalog.paths_for(t) for t in wl.query.tables)

    def test_determinism(self):
        a = chain_workload(3, rows=40, seed=9)
        b = chain_workload(3, rows=40, seed=9)
        rows_a = [r for _, r in a.database.table("R1").scan()]
        rows_b = [r for _, r in b.database.table("R1").scan()]
        assert rows_a == rows_b

    def test_stats_analyzed(self):
        wl = chain_workload(2, rows=60, seed=2)
        assert wl.catalog.table_stats("R0").card == 60

    def test_unknown_shape_rejected(self):
        with pytest.raises(QueryError):
            WorkloadSpec(shape="lattice")

    def test_synthesize_names(self):
        wl = synthesize(WorkloadSpec(shape="star", n_tables=3, rows=10))
        assert wl.name == "star-3x10"
