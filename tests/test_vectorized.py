"""Executor-equivalence suite: the vectorized engine vs the iterator.

The batch-at-a-time interpreter (``QueryExecutor(executor="vectorized")``,
the default) must be observationally identical to the tuple-at-a-time
iterator oracle: same rows in the same order, same accounting
(tuples flowed, messages, bytes shipped, I/O), same checkpoint behavior,
and same delivered-row counts under chaos retries.  Plus unit tests for
the ColumnBatch kernels and the CLI flag.
"""

import pytest

from repro.catalog import Catalog, TableDef, TableStats
from repro.catalog.catalog import make_columns
from repro.cost.propfuncs import PlanFactory
from repro.errors import CardinalityViolation
from repro.executor import (
    ChaosConfig,
    ChaosEngine,
    QueryExecutor,
    RetryPolicy,
)
from repro.executor.batch_ops import (
    BatchBuilder,
    ColumnBatch,
    batch_bytes,
    batches_of,
    compile_predicates,
    concat_batches,
    sort_permutation,
)
from repro.optimizer import StarburstOptimizer
from repro.query.expressions import ColumnRef, Literal
from repro.query.predicates import Comparison
from repro.robust import CheckpointPolicy
from repro.robust.checkpoint import CheckpointBatchIterator
from repro.storage import Database
from repro.workloads import (
    chain_workload,
    clique_workload,
    figure1_query,
    paper_catalog,
    paper_database,
    skewed_workload,
    star_workload,
)

#: Stats fields that must agree exactly across engines on every plan
#: (``batches`` and ``elapsed_seconds`` are engine-specific by design).
EXACT_STATS = (
    "output_rows",
    "messages",
    "bytes_shipped",
    "page_writes",
    "index_writes",
    "temps_materialized",
    "temps_reused",
)

#: Read-side counters: identical when every stream is drained, but an
#: early-exiting consumer (a merge join whose other side ran dry) pulls
#: whole batches where the iterator pulls single rows, so the vectorized
#: count may exceed the iterator's by up to one batch per stream.
READAHEAD_STATS = ("tuples_flowed", "page_reads", "index_reads")

BATCH_SIZE = 1024


def assert_engines_agree(database, query, plan):
    """Run one plan under both engines; rows (values *and* order),
    columns, and accounting must be identical up to batch read-ahead."""
    counts_v: dict[int, list[int]] = {}
    counts_i: dict[int, list[int]] = {}
    vec = QueryExecutor(database, executor="vectorized").run(
        query, plan, node_counts=counts_v
    )
    it = QueryExecutor(database, executor="iterator").run(
        query, plan, node_counts=counts_i
    )
    assert vec.columns == it.columns
    assert vec.rows == it.rows, f"rows diverged under plan:\n{plan}"
    for name in EXACT_STATS:
        assert getattr(vec.stats, name) == getattr(it.stats, name), (
            f"stats.{name} diverged: vectorized "
            f"{getattr(vec.stats, name)} != iterator "
            f"{getattr(it.stats, name)}\n{plan}"
        )
    for name in READAHEAD_STATS:
        assert getattr(vec.stats, name) >= getattr(it.stats, name), (
            f"stats.{name}: vectorized undercounts\n{plan}"
        )
    # Per-operator: same open counts; row counts may run ahead of the
    # iterator's by at most one partial batch per open.
    for node_id, (vec_rows, vec_opens) in counts_v.items():
        it_rows, it_opens = counts_i.get(node_id, (0, 0))
        assert vec_opens == it_opens
        assert it_rows <= vec_rows <= it_rows + BATCH_SIZE * max(vec_opens, 1)
    assert vec.stats.batches > 0
    assert it.stats.batches == 0
    return vec


def _paper(distributed: bool):
    catalog = paper_catalog(distributed=distributed)
    database = paper_database(catalog)
    return catalog, database, figure1_query(catalog)


@pytest.mark.parametrize(
    "make",
    [
        pytest.param(lambda: _paper(False), id="paper"),
        pytest.param(lambda: _paper(True), id="paper-distributed"),
        pytest.param(
            lambda: _workload(chain_workload(3, rows=60, seed=7, selection=0.3)),
            id="chain3-selective",
        ),
        pytest.param(
            lambda: _workload(chain_workload(4, rows=40, seed=8, n_sites=2)),
            id="chain4-distributed",
        ),
        pytest.param(
            lambda: _workload(chain_workload(5, rows=400, seed=31)),
            id="chain5-nl-index",
        ),
        pytest.param(
            lambda: _workload(star_workload(4, rows=40, seed=9)),
            id="star4",
        ),
        pytest.param(
            lambda: _workload(clique_workload(3, rows=30, seed=10, domain=15)),
            id="clique3",
        ),
        pytest.param(
            lambda: _workload(
                chain_workload(3, rows=40, seed=11, index_fraction=0.0)
            ),
            id="chain3-noindex",
        ),
        pytest.param(
            lambda: _workload(skewed_workload(n0=400, n1=60, seed=3)),
            id="skewed",
        ),
    ],
)
def test_engine_equivalence_all_alternatives(make):
    """Every surviving alternative of every paper workload must execute
    identically under both engines — the SAP is what failover runs, so
    equivalence on the best plan alone is not enough."""
    catalog, database, query = make()
    result = StarburstOptimizer(catalog).optimize(query)
    assert result.alternatives
    for plan in result.alternatives:
        assert_engines_agree(database, query, plan)


def _workload(wl):
    return wl.catalog, wl.database, wl.query


def test_best_plan_accounting_identical_on_e9_suite():
    """Best plans of the E9 chain suite drain every stream, so the two
    engines must agree on *every* counter — the premise the E14
    throughput benchmark's tuples-per-second comparison rests on."""
    for n_tables in (3, 4, 5, 6):
        wl = chain_workload(n_tables, rows=50, seed=31)
        plan = StarburstOptimizer(wl.catalog).optimize(wl.query).best_plan
        vec = QueryExecutor(wl.database, executor="vectorized").run(
            wl.query, plan
        )
        it = QueryExecutor(wl.database, executor="iterator").run(wl.query, plan)
        assert vec.rows == it.rows
        for name in EXACT_STATS + READAHEAD_STATS:
            assert getattr(vec.stats, name) == getattr(it.stats, name), (
                f"chain:{n_tables} stats.{name} diverged"
            )


def test_small_batch_size_is_equivalent():
    """Forcing many small batches through every operator (batch
    boundaries inside joins, sorts, and SHIPs) must not change rows."""
    wl = chain_workload(4, rows=60, seed=8, n_sites=2)
    plan = StarburstOptimizer(wl.catalog).optimize(wl.query).best_plan
    reference = QueryExecutor(wl.database, executor="iterator").run(
        wl.query, plan
    )
    tiny = QueryExecutor(
        wl.database, executor="vectorized", batch_size=7
    ).run(wl.query, plan)
    assert tiny.rows == reference.rows
    assert tiny.stats.tuples_flowed == reference.stats.tuples_flowed
    assert tiny.stats.bytes_shipped == reference.stats.bytes_shipped
    assert tiny.stats.batches > reference.stats.output_rows // 7


class TestChaosRetryAccounting:
    """Satellite fix: delivered rows are counted once even when chaos
    retries replay a SHIP transfer — the per-node row counts and the
    network byte totals must match a clean run exactly."""

    def _run(self, executor_name, chaos=None, retry=None):
        wl = chain_workload(4, rows=40, seed=8, n_sites=2)
        plan = StarburstOptimizer(wl.catalog).optimize(wl.query).best_plan
        executor = QueryExecutor(
            wl.database, chaos=chaos, retry=retry, executor=executor_name
        )
        return executor.run(wl.query, plan)

    CHAOS = dict(seed=4, link_failure_prob=0.5)
    RETRY = dict(max_attempts=12, base_backoff=0.0)

    @pytest.mark.parametrize("engine", QueryExecutor.EXECUTORS)
    def test_transient_retries_do_not_inflate_delivery(self, engine):
        clean = self._run(engine)
        chaotic = self._run(
            engine,
            chaos=ChaosEngine(ChaosConfig(**self.CHAOS)),
            retry=RetryPolicy(**self.RETRY),
        )
        # The chaos run really did retry...
        assert chaotic.stats.transient_failures > 0
        assert chaotic.stats.ship_retries > 0
        assert chaotic.stats.ship_attempts > clean.stats.ship_attempts
        # ...yet delivered exactly the same rows, messages, and bytes.
        assert chaotic.rows == clean.rows
        assert chaotic.stats.messages == clean.stats.messages
        assert chaotic.stats.bytes_shipped == clean.stats.bytes_shipped
        assert chaotic.stats.tuples_flowed == clean.stats.tuples_flowed

    def test_engines_agree_under_identical_chaos(self):
        """Same chaos seed, same retry schedule: both engines must see
        the same failures and produce the same accounting."""
        results = [
            self._run(
                engine,
                chaos=ChaosEngine(ChaosConfig(**self.CHAOS)),
                retry=RetryPolicy(**self.RETRY),
            )
            for engine in QueryExecutor.EXECUTORS
        ]
        vec, it = results
        assert vec.rows == it.rows
        assert vec.stats.ship_attempts == it.stats.ship_attempts
        assert vec.stats.ship_retries == it.stats.ship_retries
        assert vec.stats.transient_failures == it.stats.transient_failures
        assert vec.stats.bytes_shipped == it.stats.bytes_shipped


class TestCheckpointEquivalence:
    """Cardinality checkpoints must fire identically under both engines."""

    def _build(self):
        cat = Catalog(query_site="local")
        # Statistics claim 1000 rows; only 3 are loaded (no analyze).
        cat.add_table(TableDef("R", make_columns("K", "W")), TableStats(card=1000))
        db = Database(cat)
        db.create_storage("R")
        db.load("R", ({"K": i, "W": i * 10} for i in range(3)))
        factory = PlanFactory(cat)
        scan = factory.access_base(
            "R", {ColumnRef("R", "K"), ColumnRef("R", "W")}, set()
        )
        plan = factory.access_temp(factory.store(scan))
        return db, plan

    @pytest.mark.parametrize("engine", QueryExecutor.EXECUTORS)
    def test_store_checkpoint_fires(self, engine):
        db, plan = self._build()
        policy = CheckpointPolicy(qerror_threshold=10.0)
        executor = QueryExecutor(db, checkpoints=policy, executor=engine)
        with pytest.raises(CardinalityViolation) as excinfo:
            executor.run_plan(plan)
        assert excinfo.value.actual == 3
        assert excinfo.value.estimated == pytest.approx(1000.0)
        assert excinfo.value.partial_stats is not None
        db.drop_temps()

    def test_violations_identical_across_engines(self):
        violations = []
        for engine in QueryExecutor.EXECUTORS:
            db, plan = self._build()
            executor = QueryExecutor(
                db, checkpoints=CheckpointPolicy(qerror_threshold=10.0),
                executor=engine,
            )
            with pytest.raises(CardinalityViolation) as excinfo:
                executor.run_plan(plan)
            violations.append(excinfo.value)
            db.drop_temps()
        vec, it = violations
        assert (vec.label, vec.tables, vec.estimated, vec.actual, vec.q) == (
            it.label, it.tables, it.estimated, it.actual, it.q
        )


def test_checkpoint_batch_iterator_observes_once():
    observed = []
    batches = [
        ColumnBatch({ColumnRef("T", "A"): [1, 2, 3]}, 3),
        ColumnBatch({ColumnRef("T", "A"): [4, 5]}, 2),
    ]
    wrapped = CheckpointBatchIterator(
        iter(batches), node="sentinel", observe=lambda n, c: observed.append((n, c))
    )
    assert [len(b) for b in wrapped] == [3, 2]
    assert observed == [("sentinel", 5)]
    # Exhausting again must not re-observe.
    assert list(wrapped) == []
    assert observed == [("sentinel", 5)]


class TestBatchOps:
    A = ColumnRef("T", "A")
    B = ColumnRef("T", "B")

    def _batch(self):
        return ColumnBatch.from_rows(
            [
                {self.A: 1, self.B: "x"},
                {self.A: None, self.B: "y"},
                {self.A: 3, self.B: "z"},
            ],
            [self.A, self.B],
        )

    def test_from_rows_roundtrip(self):
        batch = self._batch()
        assert len(batch) == 3
        assert list(batch.rows()) == [
            {self.A: 1, self.B: "x"},
            {self.A: None, self.B: "y"},
            {self.A: 3, self.B: "z"},
        ]

    def test_selection_take_and_compact(self):
        batch = self._batch()
        batch.sel = [0, 2]
        assert len(batch) == 2
        dense = batch.compact()
        assert dense.sel is None and dense.length == 2
        assert dense.column(self.A) == [1, 3]
        gathered = dense.take([1, 0, 1])
        assert gathered.column(self.A) == [3, 1, 3]

    def test_missing_column_pads_none(self):
        assert self._batch().column(ColumnRef("T", "MISSING")) == [None] * 3

    def test_compiled_predicate_none_is_false(self):
        """Comparisons involving None are False, as in the iterator."""
        batch = self._batch()
        filt = compile_predicates(
            [Comparison("<", self.A, Literal(5))], frozenset([self.A, self.B])
        )
        idx = filt(batch.columns, [0, 1, 2], None)
        assert idx == [0, 2]

    def test_empty_predicates_compile_to_none(self):
        assert compile_predicates([], frozenset()) is None

    def test_batch_builder_emits_fixed_sizes(self):
        builder = BatchBuilder(batch_size=2)
        out = builder.append_batch(self._batch())
        out += builder.flush()
        assert [len(b) for b in out] == [2, 1]
        assert [r[self.A] for b in out for r in b.rows()] == [1, None, 3]

    def test_batches_of_chunks_lazily(self):
        chunks = list(batches_of(iter(range(5)), schema_len=1, batch_size=2))
        assert chunks == [[0, 1], [2, 3], [4]]

    def test_sort_permutation_nones_last_and_stable(self):
        batch = self._batch()
        # Nones sort after values — identical to the iterator's _sort_key.
        assert sort_permutation(batch, [self.A]) == [0, 2, 1]
        # Equal keys keep their relative order (stability).
        tie = ColumnBatch.from_rows(
            [{self.A: 1, self.B: "b"}, {self.A: 1, self.B: "a"}],
            [self.A, self.B],
        )
        assert sort_permutation(tie, [self.A]) == [0, 1]

    def test_concat_batches(self):
        first = self._batch()
        second = self._batch()
        merged = concat_batches([first, second])
        assert len(merged) == 6
        assert merged.column(self.B) == ["x", "y", "z"] * 2

    def test_batch_bytes_matches_row_accounting(self):
        tid = ColumnRef("T", "#TID")
        batch = ColumnBatch.from_rows(
            [{self.A: 1, self.B: "xy", tid: (0, 0)}],
            [self.A, self.B, tid],
        )
        # 4 (int) + 2 (str) + 8 (TID)
        assert batch_bytes(batch) == 14


class TestExecutorSelection:
    def test_unknown_executor_rejected(self):
        wl = chain_workload(3, rows=10, seed=1)
        with pytest.raises(ValueError, match="unknown executor"):
            QueryExecutor(wl.database, executor="bogus")

    def test_bad_batch_size_rejected(self):
        wl = chain_workload(3, rows=10, seed=1)
        with pytest.raises(ValueError, match="batch_size"):
            QueryExecutor(wl.database, batch_size=0)

    def test_vectorized_is_default(self):
        wl = chain_workload(3, rows=10, seed=1)
        assert QueryExecutor(wl.database).executor == "vectorized"

    def test_cli_executor_flag(self, capsys):
        from repro.__main__ import main

        for engine in QueryExecutor.EXECUTORS:
            assert main(
                ["optimize", "SELECT MGR FROM DEPT", "--execute",
                 "--executor", engine]
            ) == 0
            assert "executed:" in capsys.readouterr().out

    def test_cli_rejects_unknown_executor(self):
        from repro.__main__ import main

        with pytest.raises(SystemExit):
            main(["optimize", "SELECT MGR FROM DEPT", "--execute",
                  "--executor", "bogus"])

    def test_metrics_record_batch_shape(self):
        from repro.obs import MetricsRegistry

        wl = chain_workload(3, rows=30, seed=7)
        plan = StarburstOptimizer(wl.catalog).optimize(wl.query).best_plan
        metrics = MetricsRegistry()
        QueryExecutor(wl.database, metrics=metrics).run(wl.query, plan)
        snapshot = metrics.snapshot()
        assert snapshot.get("exec.batches", 0) > 0
        assert any(k.startswith("exec.rows_per_batch") for k in snapshot)
