"""End-to-end tests of the StarburstOptimizer facade."""

import pytest

from repro.config import OptimizerConfig
from repro.cost.model import CostWeights
from repro.optimizer import StarburstOptimizer
from repro.plans.operators import JOIN, SHIP, SORT
from repro.plans.properties import requirements
from repro.query.expressions import ColumnRef
from repro.query.parser import parse_query
from repro.stars.builtin_rules import default_rules, extended_rules


class TestBasicOptimization:
    def test_accepts_sql_text(self, catalog):
        result = StarburstOptimizer(catalog).optimize("SELECT MGR FROM DEPT")
        assert result.best_plan.props.tables == {"DEPT"}

    def test_accepts_query_block(self, catalog, fig1_query):
        result = StarburstOptimizer(catalog).optimize(fig1_query)
        assert result.best_plan.props.tables == {"DEPT", "EMP"}

    def test_best_is_cheapest_alternative(self, catalog, fig1_query):
        result = StarburstOptimizer(catalog).optimize(fig1_query)
        model = result.engine.ctx.model
        costs = [model.total(p.props.cost) for p in result.alternatives]
        assert result.best_cost == pytest.approx(min(costs))

    def test_all_final_plans_apply_all_predicates(self, catalog, fig1_query):
        result = StarburstOptimizer(catalog).optimize(fig1_query)
        for plan in result.alternatives:
            assert set(fig1_query.predicates) <= set(plan.props.preds)

    def test_explain_mentions_plan_and_cost(self, catalog, fig1_query):
        result = StarburstOptimizer(catalog).optimize(fig1_query)
        text = result.explain()
        assert "estimated cost" in text
        assert "JOIN" in text

    def test_elapsed_recorded(self, catalog):
        result = StarburstOptimizer(catalog).optimize("SELECT MGR FROM DEPT")
        assert result.elapsed_seconds > 0


class TestResultRequirements:
    def test_order_by_enforced(self, catalog):
        result = StarburstOptimizer(catalog).optimize(
            "SELECT NAME FROM EMP ORDER BY NAME"
        )
        plan = result.best_plan
        assert plan.props.satisfies(
            requirements(order=[ColumnRef("EMP", "NAME")])
        )

    def test_order_by_on_indexed_column_can_skip_sort(self, catalog):
        result = StarburstOptimizer(catalog).optimize(
            "SELECT DNO FROM EMP ORDER BY DNO"
        )
        # An index on EMP.DNO exists; an index plan needs no SORT.
        assert any(
            not any(n.op == SORT for n in p.nodes())
            for p in result.alternatives
        )

    def test_result_shipped_to_query_site(self, distributed_catalog):
        result = StarburstOptimizer(distributed_catalog).optimize(
            "SELECT MGR FROM DEPT"
        )
        assert result.best_plan.props.site == "L.A."
        assert any(n.op == SHIP for n in result.best_plan.nodes())

    def test_explicit_result_site(self, distributed_catalog):
        query = parse_query("SELECT MGR FROM DEPT", distributed_catalog)
        from dataclasses import replace

        query = replace(query, result_site="N.Y.")
        result = StarburstOptimizer(distributed_catalog).optimize(query)
        assert result.best_plan.props.site == "N.Y."
        assert not any(n.op == SHIP for n in result.best_plan.nodes())


class TestConfigurationKnobs:
    def test_rule_set_controls_repertoire(self, catalog, fig1_query):
        base = StarburstOptimizer(catalog, rules=default_rules()).optimize(fig1_query)
        extended = StarburstOptimizer(catalog, rules=extended_rules()).optimize(fig1_query)
        base_flavors = {
            n.flavor for p in base.alternatives for n in p.nodes() if n.op == JOIN
        }
        ext_flavors = {
            n.flavor for p in extended.alternatives for n in p.nodes() if n.op == JOIN
        }
        assert "HA" not in base_flavors
        assert extended.best_cost <= base.best_cost

    def test_weights_change_choices(self, distributed_catalog, fig1_query):
        # Make communication prohibitively expensive: the optimizer must
        # still deliver to L.A., but the plan cost reflects the weights.
        expensive = StarburstOptimizer(
            distributed_catalog, weights=CostWeights(w_msg=1e6)
        ).optimize("SELECT MGR FROM DEPT")
        cheap = StarburstOptimizer(
            distributed_catalog, weights=CostWeights(w_msg=0.0, w_byte=0.0)
        ).optimize("SELECT MGR FROM DEPT")
        assert expensive.best_cost > cheap.best_cost

    def test_trace_available_with_config(self, catalog):
        result = StarburstOptimizer(
            catalog, config=OptimizerConfig(trace=True)
        ).optimize("SELECT MGR FROM DEPT")
        assert "AccessRoot" in result.engine.trace()

    def test_stats_exposed(self, catalog, fig1_query):
        result = StarburstOptimizer(catalog).optimize(fig1_query)
        assert result.stats.star_references > 0
        assert result.stats.glue_references > 0
        assert result.plan_table_stats.inserts > 0
        assert result.pairs_considered == 1


class TestPlanQualityShapes:
    """Coarse sanity properties of the chosen plans (cost-model shapes)."""

    def test_selective_index_probe_beats_scan(self, catalog):
        result = StarburstOptimizer(catalog).optimize(
            "SELECT NAME FROM EMP WHERE DNO = 7"
        )
        ops = [(n.op, n.flavor) for n in result.best_plan.nodes()]
        assert ("ACCESS", "index") in ops

    def test_unselective_predicate_prefers_scan(self, catalog):
        from repro.catalog import ColumnStats

        catalog.set_column_stats("EMP", "DNO", ColumnStats(n_distinct=2, low=0, high=1))
        result = StarburstOptimizer(catalog).optimize(
            "SELECT NAME FROM EMP WHERE DNO = 1"
        )
        ops = [(n.op, n.flavor) for n in result.best_plan.nodes()]
        assert ("ACCESS", "heap") in ops

    def test_small_outer_selective_probe_prefers_nl(self, catalog, fig1_query):
        # With a single qualifying DEPT and highly selective DNO probes,
        # nested-loop index probing beats scanning+hashing 10k EMP rows.
        from repro.catalog import ColumnStats

        catalog.set_column_stats("DEPT", "MGR", ColumnStats(n_distinct=100))
        catalog.set_column_stats(
            "EMP", "DNO", ColumnStats(n_distinct=2000, low=0, high=1999)
        )
        catalog.set_column_stats(
            "DEPT", "DNO", ColumnStats(n_distinct=100, low=0, high=1999)
        )
        result = StarburstOptimizer(catalog).optimize(fig1_query)
        assert result.best_plan.flavor == "NL"
        ops = [(n.op, n.flavor) for n in result.best_plan.nodes()]
        assert ("ACCESS", "index") in ops
