"""The shared canonical (TABLES, PREDS) key helpers.

One key module (:mod:`repro.query.template`) serves three consumers —
the hashed plan table, the feedback cache, and batch deduplication — so
these tests pin down the stability properties they all rely on:
reordering tables or predicates never changes a key, literal constants
change the exact key but not the parameterized template, and flipped
comparisons normalize to one shape.
"""

from __future__ import annotations

import pytest

from repro.optimizer.batch import optimize_many
from repro.query.parser import parse_query
from repro.query.template import (
    PARAM,
    canonical_key,
    predicate_shape,
    query_key,
    query_template,
    template_key,
)
from repro.robust import FeedbackCache
from repro.stars.plantable import plan_key
from repro.workloads import chain_workload


@pytest.fixture(scope="module")
def workload():
    return chain_workload(3, rows=30)


def _parse(workload, sql):
    return parse_query(sql, workload.catalog)


class TestCanonicalKey:
    def test_table_order_is_irrelevant(self, workload):
        a = _parse(workload, "SELECT R0.ID FROM R0, R1 WHERE R0.ID = R1.FK")
        b = _parse(workload, "SELECT R0.ID FROM R1, R0 WHERE R0.ID = R1.FK")
        assert query_key(a) == query_key(b)

    def test_predicate_order_is_irrelevant(self, workload):
        a = _parse(
            workload,
            "SELECT R0.ID FROM R0, R1 "
            "WHERE R0.ID = R1.FK AND R0.VAL < 5",
        )
        b = _parse(
            workload,
            "SELECT R0.ID FROM R0, R1 "
            "WHERE R0.VAL < 5 AND R0.ID = R1.FK",
        )
        assert query_key(a) == query_key(b)

    def test_constants_change_the_exact_key(self, workload):
        a = _parse(workload, "SELECT R0.ID FROM R0 WHERE R0.VAL < 5")
        b = _parse(workload, "SELECT R0.ID FROM R0 WHERE R0.VAL < 9")
        assert query_key(a) != query_key(b)

    def test_plan_table_key_is_the_shared_key(self, workload):
        q = _parse(workload, "SELECT R0.ID FROM R0 WHERE R0.VAL < 5")
        assert plan_key(q.table_set, q.predicates) == query_key(q)
        assert canonical_key(q.table_set, q.predicates) == query_key(q)

    def test_feedback_cache_agrees_with_plan_table(self, workload):
        """An observation recorded under the plan table's key is found
        under the query's key — the loop the drift check closes."""
        q = _parse(workload, "SELECT R0.ID FROM R0 WHERE R0.VAL < 5")
        cache = FeedbackCache()
        cache.record(*plan_key(q.table_set, q.predicates), 17.0)
        assert cache.peek(*query_key(q)) == 17.0


class TestTemplateKey:
    def test_reordering_never_changes_the_template(self, workload):
        a = _parse(
            workload,
            "SELECT R0.ID FROM R0, R1 "
            "WHERE R0.ID = R1.FK AND R0.VAL < 5",
        )
        b = _parse(
            workload,
            "SELECT R0.ID FROM R1, R0 "
            "WHERE R0.VAL < 5 AND R0.ID = R1.FK",
        )
        assert query_template(a) == query_template(b)

    def test_constants_share_one_template(self, workload):
        a = _parse(workload, "SELECT R0.ID FROM R0 WHERE R0.VAL < 5")
        b = _parse(workload, "SELECT R0.ID FROM R0 WHERE R0.VAL < 90")
        assert query_key(a) != query_key(b)
        assert query_template(a) == query_template(b)

    def test_literals_abstracted_to_param_marker(self, workload):
        q = _parse(workload, "SELECT R0.ID FROM R0 WHERE R0.VAL < 5")
        (pred,) = q.predicates
        shape = predicate_shape(pred)
        assert PARAM in repr(shape)

    def test_flipped_comparison_normalizes(self, workload):
        a = _parse(workload, "SELECT R0.ID FROM R0 WHERE R0.VAL < 5")
        b = _parse(workload, "SELECT R0.ID FROM R0 WHERE 5 > R0.VAL")
        assert query_template(a) == query_template(b)

    def test_different_operators_differ(self, workload):
        a = _parse(workload, "SELECT R0.ID FROM R0 WHERE R0.VAL < 5")
        b = _parse(workload, "SELECT R0.ID FROM R0 WHERE R0.VAL >= 5")
        assert query_template(a) != query_template(b)

    def test_different_columns_differ(self, workload):
        a = _parse(workload, "SELECT R0.ID FROM R0 WHERE R0.VAL < 5")
        b = _parse(workload, "SELECT R0.ID FROM R0 WHERE R0.ID < 5")
        assert query_template(a) != query_template(b)

    def test_different_table_sets_differ(self, workload):
        a = _parse(workload, "SELECT R0.ID FROM R0, R1 WHERE R0.ID = R1.FK")
        b = _parse(
            workload,
            "SELECT R1.ID FROM R1, R2 WHERE R1.ID = R2.FK",
        )
        assert query_template(a) != query_template(b)

    def test_template_key_is_hashable_and_deterministic(self, workload):
        q = _parse(
            workload,
            "SELECT R0.ID FROM R0, R1 "
            "WHERE R0.ID = R1.FK AND R0.VAL < 5",
        )
        assert hash(query_template(q)) == hash(query_template(q))
        assert template_key(q.table_set, q.predicates) == query_template(q)


class TestBatchDedup:
    def test_reordered_duplicates_dedup_to_one_optimization(self, workload):
        sql_a = (
            "SELECT R0.ID FROM R0, R1 "
            "WHERE R0.ID = R1.FK AND R0.VAL < 5"
        )
        sql_b = (
            "SELECT R0.ID FROM R1, R0 "
            "WHERE R0.VAL < 5 AND R0.ID = R1.FK"
        )
        results = optimize_many(
            workload.catalog, [sql_a, sql_b, sql_a], dedup=True
        )
        assert [r.deduped for r in results] == [False, True, True]
        assert len({r.plan_digest for r in results}) == 1
        assert all(r.ok for r in results)

    def test_distinct_constants_do_not_dedup(self, workload):
        sql_a = "SELECT R0.ID FROM R0 WHERE R0.VAL < 5"
        sql_b = "SELECT R0.ID FROM R0 WHERE R0.VAL < 9"
        results = optimize_many(workload.catalog, [sql_a, sql_b], dedup=True)
        assert [r.deduped for r in results] == [False, False]

    def test_dedup_preserves_input_order(self, workload):
        sqls = [
            "SELECT R0.ID FROM R0 WHERE R0.VAL < 5",
            "SELECT R0.ID FROM R0 WHERE R0.VAL < 9",
            "SELECT R0.ID FROM R0 WHERE R0.VAL < 5",
        ]
        results = optimize_many(workload.catalog, sqls, dedup=True)
        assert [r.index for r in results] == [0, 1, 2]
        assert results[0].plan_digest == results[2].plan_digest
