"""Unit tests for the condition/argument function registry."""

import pytest

from repro.errors import RuleError
from repro.plans.sap import Stream
from repro.query.expressions import ColumnRef
from repro.query.parser import parse_predicate, parse_query
from repro.stars.engine import StarEngine
from repro.stars.builtin_rules import default_rules
from repro.stars.registry import (
    FunctionRegistry,
    default_registry,
    fn_candidate_sites,
    fn_covering,
    fn_index_cols,
    fn_index_preds,
    fn_local_query,
    fn_matching_indexes,
    fn_merge_cols,
    fn_needs_temp,
    fn_prefix_matches,
)
from repro.plans.properties import requirements

DNO = ColumnRef("DEPT", "DNO")
E_DNO = ColumnRef("EMP", "DNO")
E_NAME = ColumnRef("EMP", "NAME")


def ctx_for(catalog, sql="SELECT NAME, MGR FROM DEPT, EMP WHERE DEPT.DNO = EMP.DNO"):
    engine = StarEngine(default_rules(), catalog, parse_query(sql, catalog))
    return engine.ctx


class TestRegistryObject:
    def test_register_and_get(self):
        registry = FunctionRegistry()
        registry.register("f", lambda ctx: 1)
        assert registry.get("f")(None) == 1
        assert registry.has("f")

    def test_duplicate_registration_rejected(self):
        registry = FunctionRegistry()
        registry.register("f", lambda ctx: 1)
        with pytest.raises(RuleError, match="already registered"):
            registry.register("f", lambda ctx: 2)
        registry.register("f", lambda ctx: 2, replace=True)
        assert registry.get("f")(None) == 2

    def test_unknown_function(self):
        with pytest.raises(RuleError, match="unknown rule function"):
            FunctionRegistry().get("nope")

    def test_default_registry_is_a_copy(self):
        a, b = default_registry(), default_registry()
        a.register("session_only", lambda ctx: 1)
        assert not b.has("session_only")

    def test_default_registry_has_paper_functions(self):
        names = default_registry().names()
        for expected in (
            "local_query", "candidate_sites", "needs_temp", "join_preds",
            "sortable_preds", "hashable_preds", "indexable_preds",
            "inner_preds", "merge_cols", "index_cols",
        ):
            assert expected in names


class TestSiteFunctions:
    def test_local_query_true_when_all_local(self, catalog):
        assert fn_local_query(ctx_for(catalog))

    def test_local_query_false_when_distributed(self, distributed_catalog):
        assert not fn_local_query(ctx_for(distributed_catalog))

    def test_candidate_sites(self, distributed_catalog):
        sites = fn_candidate_sites(ctx_for(distributed_catalog))
        assert set(sites) == {"N.Y.", "L.A."}

    def test_needs_temp_composite(self, catalog):
        ctx = ctx_for(catalog)
        assert fn_needs_temp(ctx, Stream(frozenset({"DEPT", "EMP"})))

    def test_needs_temp_site_mismatch(self, distributed_catalog):
        ctx = ctx_for(distributed_catalog)
        dept = Stream(frozenset({"DEPT"}))  # stored at N.Y.
        assert not fn_needs_temp(ctx, dept)
        assert fn_needs_temp(ctx, dept.require(requirements(site="L.A.")))
        assert not fn_needs_temp(ctx, dept.require(requirements(site="N.Y.")))


class TestOrderingHelpers:
    def test_merge_cols_pairs_deterministically(self, catalog):
        p1 = parse_predicate("DEPT.DNO = EMP.DNO", catalog, ("DEPT", "EMP"))
        sp = frozenset({p1})
        outer = fn_merge_cols(None, sp, Stream(frozenset({"DEPT"})))
        inner = fn_merge_cols(None, sp, Stream(frozenset({"EMP"})))
        assert outer == (DNO,)
        assert inner == (E_DNO,)

    def test_merge_cols_multi_pred_alignment(self, catalog):
        cat = catalog
        p1 = parse_predicate("DEPT.DNO = EMP.DNO", cat, ("DEPT", "EMP"))
        p2 = parse_predicate("DEPT.MGR = EMP.NAME", cat, ("DEPT", "EMP"))
        sp = frozenset({p1, p2})
        outer = fn_merge_cols(None, sp, Stream(frozenset({"DEPT"})))
        inner = fn_merge_cols(None, sp, Stream(frozenset({"EMP"})))
        # Pairwise alignment: position i of outer joins position i of inner.
        pairs = set(zip(outer, inner))
        assert (DNO, E_DNO) in pairs
        assert (ColumnRef("DEPT", "MGR"), E_NAME) in pairs

    def test_index_cols_equality_first(self, catalog):
        eq = parse_predicate("DEPT.DNO = EMP.DNO", catalog, ("DEPT", "EMP"))
        rng = parse_predicate("EMP.ENO < DEPT.DNO", catalog, ("DEPT", "EMP"))
        ix = fn_index_cols(None, frozenset(), frozenset({eq, rng}), Stream(frozenset({"EMP"})))
        assert ix[0] == E_DNO  # '=' predicate columns first

    def test_prefix_matches(self, catalog):
        path = catalog.path("EMP", "EMP_DNO")
        assert fn_prefix_matches(None, (E_DNO,), path)
        assert not fn_prefix_matches(None, (E_NAME,), path)


class TestAccessHelpers:
    def test_matching_indexes(self, catalog):
        ctx = ctx_for(catalog)
        paths = fn_matching_indexes(ctx, "EMP")
        assert [p.name for p in paths] == ["EMP_DNO"]
        assert fn_matching_indexes(ctx, "DEPT") == ()

    def test_index_preds_key_columns_only(self, catalog):
        path = catalog.path("EMP", "EMP_DNO")
        on_key = parse_predicate("EMP.DNO = 3", catalog, ("EMP",))
        off_key = parse_predicate("EMP.NAME = 'x'", catalog, ("EMP",))
        got = fn_index_preds(None, path, frozenset({on_key, off_key}))
        assert got == {on_key}

    def test_covering(self, catalog):
        ctx = ctx_for(catalog)
        path = catalog.path("EMP", "EMP_DNO")
        assert fn_covering(ctx, path, frozenset({E_DNO}), frozenset())
        assert not fn_covering(ctx, path, frozenset({E_NAME}), frozenset())
