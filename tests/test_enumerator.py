"""Unit tests for the bottom-up join enumerator."""

import pytest

from repro.config import OptimizerConfig
from repro.errors import OptimizationError
from repro.optimizer.enumerator import JoinEnumerator, _connected
from repro.query.parser import parse_query
from repro.stars.builtin_rules import default_rules
from repro.stars.engine import StarEngine
from repro.workloads.generator import chain_workload


def run_enum(catalog, sql, config=None):
    query = parse_query(sql, catalog)
    engine = StarEngine(default_rules(), catalog, query, config=config)
    enumerator = JoinEnumerator(engine)
    sap = enumerator.run()
    return sap, enumerator, engine


class TestConnectivity:
    EDGES = frozenset({frozenset({"A", "B"}), frozenset({"B", "C"})})

    def test_connected_chain(self):
        assert _connected(frozenset({"A", "B", "C"}), self.EDGES)
        assert _connected(frozenset({"A", "B"}), self.EDGES)

    def test_disconnected_pair(self):
        assert not _connected(frozenset({"A", "C"}), self.EDGES)

    def test_singleton_always_connected(self):
        assert _connected(frozenset({"A"}), frozenset())


class TestEnumeration:
    def test_single_table_query(self, catalog):
        sap, enumerator, _ = run_enum(catalog, "SELECT MGR FROM DEPT")
        assert len(sap) >= 1
        assert enumerator.pairs_considered == 0

    def test_two_table_join(self, catalog):
        sap, enumerator, _ = run_enum(
            catalog, "SELECT NAME, MGR FROM DEPT, EMP WHERE DEPT.DNO = EMP.DNO"
        )
        assert all(p.props.tables == {"DEPT", "EMP"} for p in sap)
        assert enumerator.pairs_considered == 1  # one unordered pair

    def test_disconnected_query_requires_cartesian_flag(self, catalog):
        with pytest.raises(OptimizationError, match="cartesian"):
            run_enum(catalog, "SELECT NAME, MGR FROM DEPT, EMP")

    def test_cartesian_flag_enables_products(self, catalog):
        sap, _, _ = run_enum(
            catalog,
            "SELECT NAME, MGR FROM DEPT, EMP",
            OptimizerConfig(cartesian_products=True),
        )
        assert len(sap) >= 1

    def test_chain_skips_disconnected_subsets(self):
        wl = chain_workload(4, rows=30, seed=2)
        query = wl.query
        engine = StarEngine(default_rules(), wl.catalog, query)
        enumerator = JoinEnumerator(engine)
        enumerator.run()
        # Chain R0-R1-R2-R3: subsets like {R0, R2} are disconnected.
        assert enumerator.subsets_skipped > 0

    def test_composite_inners_off_limits_partitions(self):
        wl = chain_workload(4, rows=30, seed=2)
        engine_on = StarEngine(default_rules(), wl.catalog, wl.query)
        on = JoinEnumerator(engine_on)
        on.run()
        engine_off = StarEngine(
            default_rules(),
            wl.catalog,
            wl.query,
            config=OptimizerConfig(composite_inners=False),
        )
        off = JoinEnumerator(engine_off)
        off.run()
        assert off.pairs_considered < on.pairs_considered

    def test_every_connected_class_built_once(self):
        """E9's invariant: each (tables, preds) class is built exactly
        once during enumeration."""
        wl = chain_workload(4, rows=30, seed=2)
        engine = StarEngine(default_rules(), wl.catalog, wl.query)
        JoinEnumerator(engine).run()
        tables = tuple(wl.query.tables)
        for size in range(2, 5):
            from itertools import combinations

            for subset in combinations(tables, size):
                expansions = engine.plan_table.expansions_for(subset)
                assert expansions <= 1

    def test_plan_table_populated_per_level(self, catalog):
        _, _, engine = run_enum(
            catalog, "SELECT NAME, MGR FROM DEPT, EMP WHERE DEPT.DNO = EMP.DNO"
        )
        keys = engine.plan_table.keys()
        sizes = {len(tables) for tables, _ in keys}
        assert {1, 2} <= sizes
