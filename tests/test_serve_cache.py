"""The plan-template cache: band guards, LRU, and the drift breaker."""

from __future__ import annotations

import pytest

from repro.obs import MetricsRegistry
from repro.optimizer import StarburstOptimizer
from repro.query.parser import parse_query
from repro.robust import FeedbackCache
from repro.serve import PlanTemplateCache
from repro.workloads import chain_workload


@pytest.fixture(scope="module")
def workload():
    return chain_workload(3, rows=40)


@pytest.fixture(scope="module")
def optimizer(workload):
    return StarburstOptimizer(workload.catalog)


def _query(workload, sql):
    return parse_query(sql, workload.catalog)


def _optimize_and_insert(cache, optimizer, query, tier="full"):
    result = optimizer.optimize(query)
    cache.insert(query, result.best_plan, result.best_cost, tier=tier)
    return result


class TestLookup:
    def test_cold_miss_then_hit(self, workload, optimizer):
        cache = PlanTemplateCache(workload.catalog)
        q = _query(workload, "SELECT R0.ID FROM R0 WHERE R0.VAL < 20")
        assert cache.lookup(q) is None
        _optimize_and_insert(cache, optimizer, q)
        entry = cache.lookup(q)
        assert entry is not None
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1

    def test_same_template_different_constant_hits(self, workload, optimizer):
        cache = PlanTemplateCache(workload.catalog)
        q5 = _query(workload, "SELECT R0.ID FROM R0 WHERE R0.VAL < 20")
        q9 = _query(workload, "SELECT R0.ID FROM R0 WHERE R0.VAL < 24")
        _optimize_and_insert(cache, optimizer, q5)
        assert cache.lookup(q9) is not None

    def test_out_of_band_constant_misses(self, workload, optimizer):
        """A constant whose selectivity leaves the entry's band forces a
        fresh optimization (counted as a band miss)."""
        cache = PlanTemplateCache(workload.catalog, band_factor=2.0)
        narrow = _query(workload, "SELECT R0.ID FROM R0 WHERE R0.VAL < 2")
        wide = _query(workload, "SELECT R0.ID FROM R0 WHERE R0.VAL < 95")
        _optimize_and_insert(cache, optimizer, narrow)
        assert cache.lookup(wide) is None
        assert cache.stats.band_misses == 1

    def test_capacity_zero_disables(self, workload, optimizer):
        cache = PlanTemplateCache(workload.catalog, capacity=0)
        q = _query(workload, "SELECT R0.ID FROM R0 WHERE R0.VAL < 20")
        result = optimizer.optimize(q)
        assert cache.insert(q, result.best_plan, result.best_cost) is None
        assert cache.lookup(q) is None
        assert not cache.enabled
        assert len(cache) == 0


class TestLRU:
    def test_eviction_drops_least_recently_used(self, workload, optimizer):
        cache = PlanTemplateCache(workload.catalog, capacity=2)
        qs = [
            _query(workload, f"SELECT R0.ID FROM R0 WHERE R0.VAL {op} 20")
            for op in ("<", ">=")
        ]
        join = _query(
            workload, "SELECT R0.ID FROM R0, R1 WHERE R0.ID = R1.FK"
        )
        for q in qs:
            _optimize_and_insert(cache, optimizer, q)
        assert cache.lookup(qs[0]) is not None  # refresh qs[0]
        _optimize_and_insert(cache, optimizer, join)  # evicts qs[1]
        assert cache.stats.evictions == 1
        assert cache.lookup(qs[0]) is not None
        assert cache.lookup(qs[1]) is None

    def test_invalidate_drops_one_template(self, workload, optimizer):
        cache = PlanTemplateCache(workload.catalog)
        q = _query(workload, "SELECT R0.ID FROM R0 WHERE R0.VAL < 20")
        _optimize_and_insert(cache, optimizer, q)
        assert cache.invalidate(q)
        assert not cache.invalidate(q)
        assert cache.lookup(q) is None


class TestDriftBreaker:
    def _drifting_cache(self, workload, optimizer, threshold=3):
        feedback = FeedbackCache()
        metrics = MetricsRegistry()
        cache = PlanTemplateCache(
            workload.catalog, feedback=feedback,
            drift_threshold=10.0, breaker_threshold=threshold,
            metrics=metrics,
        )
        q = _query(workload, "SELECT R0.ID FROM R0 WHERE R0.VAL < 20")
        _optimize_and_insert(cache, optimizer, q)
        entry = cache.lookup_stale(q)
        # Runtime observes 100x the optimizer's estimate for this query.
        feedback.record(*entry.exact_key, entry.estimated_card * 100.0)
        return cache, q, metrics

    def test_consecutive_drift_trips_breaker(self, workload, optimizer):
        cache, q, metrics = self._drifting_cache(workload, optimizer)
        assert cache.lookup(q) is not None  # failure 1: grace window
        assert cache.lookup(q) is not None  # failure 2
        assert cache.lookup(q) is None  # failure 3: breaker trips
        assert cache.stats.breaker_trips == 1
        assert cache.stats.drift_failures == 3
        assert metrics.snapshot()["serve.cache.breaker_trips"] == 1
        # Once open, every fresh lookup misses without more drift checks.
        assert cache.lookup(q) is None
        assert cache.stats.breaker_trips == 1

    def test_in_threshold_observation_resets_failures(
        self, workload, optimizer
    ):
        feedback = FeedbackCache()
        cache = PlanTemplateCache(
            workload.catalog, feedback=feedback,
            drift_threshold=10.0, breaker_threshold=2,
        )
        q = _query(workload, "SELECT R0.ID FROM R0 WHERE R0.VAL < 20")
        _optimize_and_insert(cache, optimizer, q)
        entry = cache.lookup_stale(q)
        feedback.record(*entry.exact_key, entry.estimated_card * 50.0)
        assert cache.lookup(q) is not None  # failure 1
        # The observation swings back in-threshold: failures reset.
        feedback.record(*entry.exact_key, entry.estimated_card)
        assert cache.lookup(q) is not None
        assert entry.drift_failures == 0
        feedback.record(*entry.exact_key, entry.estimated_card * 50.0)
        assert cache.lookup(q) is not None  # failure 1 again, not 2
        assert cache.stats.breaker_trips == 0

    def test_stale_lookup_ignores_open_breaker(self, workload, optimizer):
        cache, q, _ = self._drifting_cache(workload, optimizer)
        for _ in range(3):
            cache.lookup(q)
        assert cache.lookup(q) is None
        stale = cache.lookup_stale(q)
        assert stale is not None
        assert stale.open
        assert cache.stats.stale_hits >= 1

    def test_reinsert_closes_breaker(self, workload, optimizer):
        cache, q, _ = self._drifting_cache(workload, optimizer)
        for _ in range(3):
            cache.lookup(q)
        assert cache.lookup(q) is None
        # Re-optimize with feedback steering the estimate; the fresh
        # entry's estimate now matches the observation, so lookups hit.
        feedback_optimizer = StarburstOptimizer(
            workload.catalog, feedback=cache.feedback
        )
        _optimize_and_insert(cache, feedback_optimizer, q)
        entry = cache.lookup(q)
        assert entry is not None
        assert not entry.open
        assert entry.drift_failures == 0

    def test_no_feedback_means_no_drift(self, workload, optimizer):
        cache = PlanTemplateCache(workload.catalog, feedback=None)
        q = _query(workload, "SELECT R0.ID FROM R0 WHERE R0.VAL < 20")
        _optimize_and_insert(cache, optimizer, q)
        for _ in range(10):
            assert cache.lookup(q) is not None
        assert cache.stats.drift_checks == 0


class TestValidation:
    def test_bad_parameters_rejected(self, workload):
        with pytest.raises(ValueError):
            PlanTemplateCache(workload.catalog, capacity=-1)
        with pytest.raises(ValueError):
            PlanTemplateCache(workload.catalog, band_factor=0.5)
        with pytest.raises(ValueError):
            PlanTemplateCache(workload.catalog, drift_threshold=0.9)
        with pytest.raises(ValueError):
            PlanTemplateCache(workload.catalog, breaker_threshold=0)

    def test_stats_snapshot_is_flat_numeric(self, workload):
        cache = PlanTemplateCache(workload.catalog)
        snapshot = cache.stats.as_dict()
        assert snapshot["lookups"] == 0
        assert snapshot["hit_rate"] == 0.0
        assert all(isinstance(v, (int, float)) for v in snapshot.values())
