"""Flight recorder: the ring, incident dumps, and the golden fixture."""

from __future__ import annotations

import json
import pathlib

import pytest

from repro.obs import (
    FlightRecord,
    FlightRecorder,
    TelemetryConfig,
    validate_flight_dump,
)
from repro.obs.flight import parse_dumps
from repro.robust.feedback import FeedbackCache
from repro.serve import OptimizerService, Request, ServiceConfig
from repro.workloads import chain_workload

SQL = "SELECT R0.ID, R2.ID FROM R0, R1, R2 WHERE R0.ID = R1.FK AND R1.ID = R2.FK"
SQL_B = "SELECT R0.ID FROM R0, R1 WHERE R0.ID = R1.FK AND R0.VAL < 20"
SQL_C = "SELECT R1.ID FROM R1, R2 WHERE R1.ID = R2.FK AND R1.VAL >= 50"

GOLDEN = pathlib.Path(__file__).parent / "fixtures" / "flight_golden.jsonl"


def _record(seq: int, **overrides) -> FlightRecord:
    defaults = dict(
        seq=seq,
        request_id=f"req-{seq:06d}",
        tenant="t0",
        template="T0",
        tier="full",
        cache="miss",
        plan_digest="abcd1234",
        cost=10.0,
        q_error=None,
        latency_seconds=0.002,
        budget_expansions=3,
        deadline_ticks=None,
        ok=True,
    )
    defaults.update(overrides)
    return FlightRecord(**defaults)


class TestRing:
    def test_keeps_only_last_capacity_records(self):
        recorder = FlightRecorder(capacity=3)
        for seq in range(5):
            recorder.record(_record(seq))
        assert len(recorder) == 3
        assert [r.seq for r in recorder.records()] == [2, 3, 4]

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            FlightRecorder(capacity=0)

    def test_bad_cache_outcome_rejected(self):
        with pytest.raises(ValueError, match="cache outcome"):
            _record(0, cache="maybe")

    def test_normalize_time_zeroes_latency_only(self):
        record = _record(0)
        normalized = record.as_dict(normalize_time=True)
        assert normalized["latency_seconds"] == 0.0
        raw = record.as_dict()
        raw["latency_seconds"] = 0.0
        assert normalized == raw


class TestDump:
    def test_dump_round_trips_through_validator(self):
        recorder = FlightRecorder(capacity=8)
        for seq in range(4):
            recorder.record(_record(seq))
        text = recorder.dump_text("breaker_trip")
        records = validate_flight_dump(text)
        assert [r["seq"] for r in records] == [0, 1, 2, 3]
        assert recorder.dumps == 1

    def test_header_carries_reason_and_count(self):
        recorder = FlightRecorder()
        recorder.record(_record(0))
        header = json.loads(recorder.dump_text("slo:latency").splitlines()[0])
        assert header == {
            "type": "flight_dump", "reason": "slo:latency", "records": 1,
        }

    def test_dump_appends_to_file(self, tmp_path):
        recorder = FlightRecorder()
        recorder.record(_record(0))
        path = tmp_path / "flight.jsonl"
        recorder.dump(str(path), "breaker_trip")
        recorder.record(_record(1))
        recorder.dump(str(path), "deadline_exceeded")
        dumps = list(parse_dumps(path.read_text()))
        assert len(dumps) == 2
        assert len(dumps[0]) == 1 and len(dumps[1]) == 2

    def test_validator_rejects_count_mismatch(self):
        recorder = FlightRecorder()
        recorder.record(_record(0))
        text = recorder.dump_text("x")
        truncated = "\n".join(text.splitlines()[:1]) + "\n"
        with pytest.raises(ValueError, match="promises"):
            validate_flight_dump(truncated)

    def test_validator_rejects_missing_fields(self):
        header = json.dumps(
            {"type": "flight_dump", "reason": "x", "records": 1}
        )
        with pytest.raises(ValueError, match="missing fields"):
            validate_flight_dump(header + "\n" + json.dumps({"seq": 0}))

    def test_validator_rejects_bad_header(self):
        with pytest.raises(ValueError, match="header"):
            validate_flight_dump(json.dumps({"type": "whatever"}))
        with pytest.raises(ValueError, match="empty"):
            validate_flight_dump("")


@pytest.fixture(scope="module")
def workload():
    return chain_workload(3, rows=40)


def _tripped_service(workload):
    """A service whose cached entry drifts until the breaker trips."""
    feedback = FeedbackCache()
    service = OptimizerService(
        workload.catalog,
        service=ServiceConfig(workers=1, queue_limit=8,
                              drift_threshold=10.0, breaker_threshold=2),
        feedback=feedback,
        telemetry=TelemetryConfig(sample_every=0, flight_capacity=16),
    )
    # Warm the cache; the test then injects a 100x runtime misestimate
    # for the cached template so subsequent lookups fail the drift check.
    service.serve_all([Request(SQL_B)])
    return service, feedback


class TestServiceIncidents:
    def _drift(self, service, feedback, workload):
        from repro.query.parser import parse_query

        query = parse_query(SQL_B, workload.catalog)
        entry = service.cache.lookup_stale(query)
        assert entry is not None
        feedback.record(*entry.exact_key, entry.estimated_card * 100.0)

    def test_breaker_trip_dumps_flight_recorder(self, workload):
        service, feedback = _tripped_service(workload)
        self._drift(service, feedback, workload)
        service.serve_all([Request(SQL_B)] * 3, burst=1)
        assert service.cache.stats.breaker_trips == 1
        assert service.last_flight_dump is not None
        records = validate_flight_dump(service.last_flight_dump)
        assert records  # the requests leading up to the trip
        header = json.loads(service.last_flight_dump.splitlines()[0])
        assert "breaker_trip" in header["reason"]
        assert service.metrics.snapshot()["telemetry.flight_dumps"] == 1

    def test_dump_goes_to_file_when_configured(self, workload, tmp_path):
        path = tmp_path / "incidents.jsonl"
        feedback = FeedbackCache()
        service = OptimizerService(
            workload.catalog,
            service=ServiceConfig(workers=1, queue_limit=8,
                                  drift_threshold=10.0, breaker_threshold=2),
            feedback=feedback,
            telemetry=TelemetryConfig(
                sample_every=0, flight_capacity=16, flight_path=str(path)
            ),
        )
        service.serve_all([Request(SQL_B)])
        self._drift(service, feedback, workload)
        service.serve_all([Request(SQL_B)] * 3, burst=1)
        assert path.exists()
        [records] = list(parse_dumps(path.read_text()))
        assert records

    def test_no_incident_no_dump(self, workload):
        service = OptimizerService(
            workload.catalog,
            service=ServiceConfig(workers=1, queue_limit=8),
            telemetry=TelemetryConfig(sample_every=0),
        )
        service.serve_all([Request(SQL)] * 3, burst=1)
        assert service.last_flight_dump is None
        assert service.flight is not None
        assert len(service.flight) == 3  # recorded, just never dumped


def _golden_run():
    """The seeded serving run the golden fixture pins.

    Everything that lands in a flight record is deterministic here:
    workers=1 + burst=1 serializes handling, the tight deadline forces
    heuristic degradation on request 3, and latency is normalized at
    dump time.
    """
    workload = chain_workload(3, rows=40)
    service = OptimizerService(
        workload.catalog,
        service=ServiceConfig(workers=1, queue_limit=8),
        telemetry=TelemetryConfig(sample_every=0, flight_capacity=16),
    )
    requests = [
        Request(SQL, tenant="t0", template="T0"),
        Request(SQL, tenant="t1", template="T0"),
        Request(SQL_B, tenant="t0", template="T1"),
        Request(SQL_C, tenant="t1", template="T2", deadline_ticks=150),
        Request(SQL_B, tenant="t0", template="T1"),
    ]
    service.serve_all(requests, burst=1)
    return service.flight.dump_text("golden", normalize_time=True)


class TestGoldenDump:
    def test_dump_matches_committed_golden_bytes(self):
        """Byte-stable modulo time: schema or serialization drift fails
        here first.  Regenerate with
        ``python -c 'import tests.test_flight_recorder as t; t.regenerate()'``
        from the repo root (PYTHONPATH=src:.)."""
        assert GOLDEN.exists(), "golden fixture missing"
        assert _golden_run() == GOLDEN.read_text()

    def test_golden_itself_validates(self):
        records = validate_flight_dump(GOLDEN.read_text())
        assert len(records) == 5
        assert [r["tier"] for r in records] == [
            "full", "cached", "full", "heuristic", "cached",
        ]
        assert all(r["latency_seconds"] == 0.0 for r in records)


def regenerate() -> None:
    GOLDEN.parent.mkdir(parents=True, exist_ok=True)
    GOLDEN.write_text(_golden_run())
    print(f"rewrote {GOLDEN}")
