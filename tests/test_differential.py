"""Differential integration tests: every optimizer plan must produce the
same multiset of rows as the naive reference evaluator.

This is the library's strongest end-to-end guarantee: rules, Glue,
enumeration, property functions and run-time routines together preserve
query semantics — over the paper's scenario, synthetic join-graph shapes,
distributed placements, both optimizers, and randomized predicates.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.baseline import TransformationalOptimizer
from repro.config import OptimizerConfig
from repro.executor import QueryExecutor, naive_evaluate
from repro.optimizer import StarburstOptimizer
from repro.query.parser import parse_query
from repro.workloads import chain_workload, clique_workload, star_workload
from repro.workloads.paper import figure1_query, with_proj


def assert_all_plans_correct(catalog, database, query, config=None, baseline=True):
    result = StarburstOptimizer(catalog, config=config).optimize(query)
    executor = QueryExecutor(database)
    reference = naive_evaluate(query, database).as_multiset()
    assert result.alternatives
    for plan in result.alternatives:
        got = executor.run(query, plan).as_multiset()
        assert got == reference, f"plan disagrees with reference:\n{plan}"
    if baseline:
        base = TransformationalOptimizer(catalog, config=config).optimize(query)
        got = executor.run(query, base.best_plan).as_multiset()
        assert got == reference, "baseline plan disagrees with reference"
    return result


class TestPaperScenario:
    def test_figure1_query(self, paper_db):
        cat, db = paper_db
        assert_all_plans_correct(cat, db, figure1_query(cat))

    def test_figure1_distributed(self, paper_db_distributed):
        cat, db = paper_db_distributed
        assert_all_plans_correct(cat, db, figure1_query(cat))

    def test_order_by_query(self, paper_db):
        cat, db = paper_db
        query = parse_query(
            "SELECT NAME, MGR FROM DEPT, EMP "
            "WHERE DEPT.DNO = EMP.DNO AND MGR = 'Haas' ORDER BY NAME",
            cat,
        )
        assert_all_plans_correct(cat, db, query)

    def test_range_and_or_predicates(self, paper_db):
        cat, db = paper_db
        query = parse_query(
            "SELECT NAME FROM DEPT, EMP WHERE DEPT.DNO = EMP.DNO "
            "AND (MGR = 'Haas' OR MGR = 'Mohan') AND SALARY BETWEEN 40000 AND 90000",
            cat,
        )
        assert_all_plans_correct(cat, db, query)

    def test_expression_join_predicate(self, paper_db):
        cat, db = paper_db
        query = parse_query(
            "SELECT NAME FROM DEPT, EMP WHERE EMP.DNO = DEPT.DNO + 0 AND MGR = 'Haas'",
            cat,
        )
        assert_all_plans_correct(cat, db, query, baseline=False)


class TestThreeTables:
    @pytest.fixture(scope="class")
    def env(self):
        from repro.workloads.paper import paper_catalog, paper_database

        cat = paper_catalog(dept_rows=20, emp_rows=300)
        db = paper_database(cat)
        with_proj(cat, db, proj_rows=150)
        return cat, db

    def test_three_way_join(self, env):
        cat, db = env
        query = parse_query(
            "SELECT NAME, TITLE FROM DEPT, EMP, PROJ "
            "WHERE DEPT.DNO = EMP.DNO AND EMP.ENO = PROJ.ENO AND MGR = 'Haas'",
            cat,
        )
        assert_all_plans_correct(cat, db, query)

    def test_three_way_with_order(self, env):
        cat, db = env
        query = parse_query(
            "SELECT NAME, TITLE FROM DEPT, EMP, PROJ "
            "WHERE DEPT.DNO = EMP.DNO AND EMP.ENO = PROJ.ENO ORDER BY NAME DESC",
            cat,
        )
        assert_all_plans_correct(cat, db, query, baseline=False)


@pytest.mark.parametrize(
    "workload",
    [
        pytest.param(lambda: chain_workload(3, rows=60, seed=7, selection=0.3), id="chain3-selective"),
        pytest.param(lambda: chain_workload(4, rows=40, seed=8, n_sites=2), id="chain4-distributed"),
        pytest.param(lambda: star_workload(4, rows=40, seed=9), id="star4"),
        pytest.param(lambda: clique_workload(3, rows=30, seed=10, domain=15), id="clique3"),
        pytest.param(lambda: chain_workload(3, rows=40, seed=11, index_fraction=0.0), id="chain3-noindex"),
    ],
)
def test_synthetic_workloads(workload):
    wl = workload()
    assert_all_plans_correct(wl.catalog, wl.database, wl.query)


def test_cartesian_products_config():
    wl = chain_workload(3, rows=30, seed=12)
    assert_all_plans_correct(
        wl.catalog,
        wl.database,
        wl.query,
        config=OptimizerConfig(cartesian_products=True),
    )


def test_composite_inners_disabled():
    wl = chain_workload(4, rows=30, seed=13)
    assert_all_plans_correct(
        wl.catalog,
        wl.database,
        wl.query,
        config=OptimizerConfig(composite_inners=False),
        baseline=False,
    )


def test_glue_cheapest_mode():
    wl = chain_workload(3, rows=30, seed=14)
    assert_all_plans_correct(
        wl.catalog,
        wl.database,
        wl.query,
        config=OptimizerConfig(glue_mode="cheapest"),
        baseline=False,
    )


# ---------------------------------------------------------------------------
# Randomized single- and two-table queries over the paper database
# ---------------------------------------------------------------------------

_MANAGERS = st.sampled_from(["Haas", "Mohan", "Lindsay", "Nobody"])
_DNO = st.integers(min_value=-5, max_value=60)
_SAL = st.integers(min_value=20_000, max_value=160_000)


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(mgr=_MANAGERS, dno=_DNO, low=_SAL, high=_SAL)
def test_random_predicates_match_reference(paper_db, mgr, dno, low, high):
    cat, db = paper_db
    low, high = min(low, high), max(low, high)
    query = parse_query(
        "SELECT NAME, MGR FROM DEPT, EMP WHERE DEPT.DNO = EMP.DNO "
        f"AND (MGR = '{mgr}' OR DEPT.DNO = {dno}) "
        f"AND SALARY BETWEEN {low} AND {high}",
        cat,
    )
    result = StarburstOptimizer(cat).optimize(query)
    got = QueryExecutor(db).run(query, result.best_plan).as_multiset()
    assert got == naive_evaluate(query, db).as_multiset()
