"""Tests for the metrics registry and the shared stats-snapshot path."""

from repro.executor.network import LinkStats
from repro.executor.resilient import ExecutionReport
from repro.executor.runtime import ExecutionStats
from repro.obs.metrics import MetricsRegistry, stats_snapshot
from repro.stars.engine import ExpansionStats
from repro.stars.plantable import PlanTableStats


class TestRegistry:
    def test_counter_accumulates(self):
        metrics = MetricsRegistry()
        metrics.inc("optimizer.rule.JoinRoot.fired")
        metrics.inc("optimizer.rule.JoinRoot.fired", 2)
        assert metrics.snapshot()["optimizer.rule.JoinRoot.fired"] == 3

    def test_gauge_last_write_wins(self):
        metrics = MetricsRegistry()
        metrics.set_gauge("executor.output_rows", 10)
        metrics.set_gauge("executor.output_rows", 7)
        assert metrics.snapshot()["executor.output_rows"] == 7

    def test_histogram_flattens_into_five_keys(self):
        metrics = MetricsRegistry()
        for value in (1.0, 3.0, 2.0):
            metrics.observe("analyze.q_error", value)
        snap = metrics.snapshot()
        assert snap["analyze.q_error.count"] == 3
        assert snap["analyze.q_error.sum"] == 6.0
        assert snap["analyze.q_error.min"] == 1.0
        assert snap["analyze.q_error.max"] == 3.0
        assert snap["analyze.q_error.mean"] == 2.0

    def test_empty_histogram_snapshot_is_finite(self):
        metrics = MetricsRegistry()
        metrics.histogram("empty")
        snap = metrics.snapshot()
        assert snap["empty.min"] == 0.0 and snap["empty.max"] == 0.0

    def test_snapshot_is_sorted_and_flat(self):
        metrics = MetricsRegistry()
        metrics.inc("b")
        metrics.set_gauge("a", 1.0)
        snap = metrics.snapshot()
        assert list(snap) == sorted(snap)
        assert all(isinstance(v, (int, float)) for v in snap.values())

    def test_ingest_prefixes_and_skips_non_numeric(self):
        metrics = MetricsRegistry()
        metrics.ingest({"rows": 5, "name": "x", "ok": True}, prefix="executor.")
        snap = metrics.snapshot()
        assert snap == {"executor.rows": 5}

    def test_len_counts_all_kinds(self):
        metrics = MetricsRegistry()
        metrics.inc("a")
        metrics.set_gauge("b", 1)
        metrics.observe("c", 1)
        assert len(metrics) == 3

    def test_empty_histogram_json_round_trips(self):
        # Regression: an empty histogram once snapshotted min=inf /
        # max=-inf, which json.dumps(allow_nan=False) rejects.
        import json

        metrics = MetricsRegistry()
        metrics.histogram("empty")
        text = json.dumps(metrics.snapshot(), allow_nan=False)
        assert json.loads(text)["empty.min"] == 0.0
        assert json.loads(text)["empty.max"] == 0.0


class TestHistogramQuantiles:
    def _histogram(self, values):
        from repro.obs.metrics import Histogram

        histogram = Histogram()
        for value in values:
            histogram.observe(value)
        return histogram

    def test_empty_quantile_is_zero(self):
        assert self._histogram([]).quantile(0.5) == 0.0

    def test_single_sample_exact_at_every_q(self):
        histogram = self._histogram([0.037])
        for q in (0.0, 0.25, 0.5, 0.99, 1.0):
            assert histogram.quantile(q) == 0.037

    def test_extremes_are_exact(self):
        histogram = self._histogram([0.001, 0.01, 0.1, 1.0])
        assert histogram.quantile(0.0) == 0.001
        assert histogram.quantile(1.0) == 1.0

    def test_accuracy_within_one_bucket(self):
        from repro.obs.metrics import BUCKET_BASE

        values = [i / 1000.0 for i in range(1, 1001)]
        histogram = self._histogram(values)
        for q in (0.25, 0.50, 0.90, 0.99):
            exact = values[int(q * (len(values) - 1))]
            estimate = histogram.quantile(q)
            ratio = max(exact, estimate) / min(exact, estimate)
            assert ratio <= BUCKET_BASE ** 1.5, (q, exact, estimate)

    def test_quantile_monotone_in_q(self):
        histogram = self._histogram([0.001 * 2 ** i for i in range(12)])
        quantiles = [histogram.quantile(q / 10) for q in range(11)]
        assert quantiles == sorted(quantiles)

    def test_out_of_range_q_clamps_to_extremes(self):
        histogram = self._histogram([0.001, 0.01, 0.1])
        assert histogram.quantile(-0.1) == 0.001
        assert histogram.quantile(1.5) == 0.1


class TestStatsSnapshotSchema:
    """One serialization path for every stats dataclass in the repo."""

    def test_expansion_stats(self):
        stats = ExpansionStats(star_references=4, memo_hits=1)
        snap = stats.as_dict()
        assert snap["star_references"] == 4 and snap["memo_hits"] == 1
        assert snap == stats_snapshot(stats)

    def test_plan_table_stats_with_derived_hit_rate(self):
        stats = PlanTableStats(lookups=4, hits=1, misses=3)
        snap = stats.as_dict()
        assert snap["hit_rate"] == 0.25
        assert snap["lookups"] == 4

    def test_execution_stats_with_derived_total_io(self):
        stats = ExecutionStats(page_reads=2, index_reads=3, output_rows=9)
        snap = stats.as_dict()
        assert snap["total_io"] == 5 and snap["output_rows"] == 9

    def test_link_stats(self):
        stats = LinkStats(messages=2, retries=1, backoff_seconds=0.05)
        snap = stats.as_dict()
        assert snap["messages"] == 2 and snap["backoff_seconds"] == 0.05

    def test_execution_report_numeric_only(self):
        report = ExecutionReport(executions=2, sap_failovers=1)
        report.succeeded = True
        report.downed_sites = frozenset({"N.Y."})
        snap = report.as_dict()
        assert snap["executions"] == 2
        assert snap["succeeded"] == 1.0
        assert snap["downed_sites"] == 1
        # Non-numeric fields (events, result, error) never leak in.
        assert all(isinstance(v, (int, float)) for v in snap.values())

    def test_prefix_applies_to_every_key(self):
        stats = ExpansionStats(star_references=1)
        snap = stats_snapshot(stats, prefix="optimizer.")
        assert all(key.startswith("optimizer.") for key in snap)

    def test_all_stats_ingest_into_one_registry(self):
        metrics = MetricsRegistry()
        metrics.ingest(ExpansionStats().as_dict(), prefix="optimizer.")
        metrics.ingest(PlanTableStats().as_dict(), prefix="plantable.")
        metrics.ingest(ExecutionStats().as_dict(), prefix="executor.")
        metrics.ingest(LinkStats().as_dict(), prefix="link.")
        metrics.ingest(ExecutionReport().as_dict(), prefix="resilient.")
        snap = metrics.snapshot()
        assert "optimizer.star_references" in snap
        assert "plantable.hit_rate" in snap
        assert "executor.total_io" in snap
        assert "link.bytes_sent" in snap
        assert "resilient.sap_failovers" in snap
