"""Shared fixtures: the paper's catalog/data and small helpers."""

from __future__ import annotations

import pytest

from repro.catalog import AccessPath, Catalog, ColumnStats, TableDef, TableStats
from repro.catalog.catalog import make_columns
from repro.cost.propfuncs import PlanFactory
from repro.query.expressions import ColumnRef
from repro.query.parser import parse_predicate, parse_query
from repro.storage import Database
from repro.workloads.paper import figure1_query, paper_catalog, paper_database


@pytest.fixture()
def catalog() -> Catalog:
    """A statistics-only catalog (no data) matching the paper's example,
    with round numbers that make cost expectations easy to reason about."""
    cat = Catalog(query_site="local")
    cat.add_table(
        TableDef("DEPT", make_columns("DNO", ("MGR", "str"))), TableStats(card=100)
    )
    cat.add_table(
        TableDef(
            "EMP",
            make_columns("ENO", "DNO", ("NAME", "str"), ("ADDRESS", "str")),
        ),
        TableStats(card=10_000),
    )
    cat.add_index(AccessPath("EMP_DNO", "EMP", ("DNO",)))
    cat.set_column_stats("EMP", "DNO", ColumnStats(n_distinct=100, low=0, high=99))
    cat.set_column_stats("EMP", "ENO", ColumnStats(n_distinct=10_000, low=0, high=9_999))
    cat.set_column_stats("DEPT", "DNO", ColumnStats(n_distinct=100, low=0, high=99))
    cat.set_column_stats("DEPT", "MGR", ColumnStats(n_distinct=50))
    return cat


@pytest.fixture()
def distributed_catalog() -> Catalog:
    """The Figure 3 placement: DEPT at N.Y., EMP and the query at L.A."""
    cat = Catalog(query_site="L.A.")
    cat.add_site("N.Y.")
    cat.add_table(
        TableDef("DEPT", make_columns("DNO", ("MGR", "str")), site="N.Y."),
        TableStats(card=100),
    )
    cat.add_table(
        TableDef(
            "EMP",
            make_columns("ENO", "DNO", ("NAME", "str"), ("ADDRESS", "str")),
            site="L.A.",
        ),
        TableStats(card=10_000),
    )
    cat.add_index(AccessPath("EMP_DNO", "EMP", ("DNO",)))
    cat.set_column_stats("EMP", "DNO", ColumnStats(n_distinct=100, low=0, high=99))
    cat.set_column_stats("DEPT", "DNO", ColumnStats(n_distinct=100, low=0, high=99))
    cat.set_column_stats("DEPT", "MGR", ColumnStats(n_distinct=50))
    return cat


@pytest.fixture()
def factory(catalog) -> PlanFactory:
    return PlanFactory(catalog)


@pytest.fixture()
def fig1_query(catalog):
    return parse_query(
        "SELECT NAME, ADDRESS, MGR FROM DEPT, EMP "
        "WHERE DEPT.DNO = EMP.DNO AND MGR = 'Haas'",
        catalog,
    )


@pytest.fixture()
def join_pred(catalog):
    return parse_predicate("DEPT.DNO = EMP.DNO", catalog, ("DEPT", "EMP"))


@pytest.fixture()
def mgr_pred(catalog):
    return parse_predicate("DEPT.MGR = 'Haas'", catalog, ("DEPT", "EMP"))


@pytest.fixture(scope="session")
def paper_db():
    """Loaded paper database (session-scoped: building data is costly)."""
    cat = paper_catalog()
    db = paper_database(cat)
    return cat, db


@pytest.fixture(scope="session")
def paper_db_distributed():
    cat = paper_catalog(distributed=True)
    db = paper_database(cat)
    return cat, db


def col(table: str, column: str) -> ColumnRef:
    return ColumnRef(table, column)
