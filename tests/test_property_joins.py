"""Property-based equivalence of the three join run-time routines.

For randomly generated tiny tables, NL, MG and HA joins must produce the
same multiset of (L.K, R.W) pairs as the set-comprehension definition of
an equi-join — the invariant behind the whole optimizer: join method
choice never changes the answer.
"""

from collections import Counter

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.catalog import Catalog, TableDef
from repro.catalog.catalog import make_columns
from repro.cost.propfuncs import PlanFactory
from repro.executor import QueryExecutor
from repro.query.expressions import ColumnRef
from repro.query.parser import parse_predicate
from repro.storage import Database

L_K = ColumnRef("L", "K")
L_V = ColumnRef("L", "V")
R_K = ColumnRef("R", "K")
R_W = ColumnRef("R", "W")

rows_strategy = st.lists(
    st.tuples(st.integers(0, 6), st.integers(0, 50)), min_size=0, max_size=25
)


def build(left_rows, right_rows):
    cat = Catalog()
    cat.add_table(TableDef("L", make_columns("K", "V")))
    cat.add_table(TableDef("R", make_columns("K", "W")))
    db = Database(cat)
    db.create_storage("L")
    db.create_storage("R")
    db.load("L", left_rows)
    db.load("R", right_rows)
    db.analyze_all()
    return cat, db


def expected_pairs(left_rows, right_rows):
    return Counter(
        (lk, rw) for lk, _ in left_rows for rk, rw in right_rows if lk == rk
    )


@settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(left=rows_strategy, right=rows_strategy)
def test_join_flavors_agree_with_definition(left, right):
    cat, db = build(left, right)
    factory = PlanFactory(cat)
    executor = QueryExecutor(db)
    pred = parse_predicate("L.K = R.K", cat, ("L", "R"))
    expected = expected_pairs(left, right)

    for flavor in ("NL", "HA", "MG"):
        outer = factory.access_base("L", {L_K, L_V}, set())
        inner = factory.access_base("R", {R_K, R_W}, set())
        if flavor == "MG":
            outer = factory.sort(outer, (L_K,))
            inner = factory.sort(inner, (R_K,))
        plan = factory.join(flavor, outer, inner, {pred})
        rows, _ = executor.run_plan(plan)
        got = Counter((row[L_K], row[R_W]) for row in rows)
        assert got == expected, flavor


@settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(left=rows_strategy, right=rows_strategy)
def test_join_commutes(left, right):
    """Swapping outer and inner changes cost, never the answer."""
    cat, db = build(left, right)
    factory = PlanFactory(cat)
    executor = QueryExecutor(db)
    pred = parse_predicate("L.K = R.K", cat, ("L", "R"))

    def run(outer_table):
        l_scan = factory.access_base("L", {L_K, L_V}, set())
        r_scan = factory.access_base("R", {R_K, R_W}, set())
        outer, inner = (l_scan, r_scan) if outer_table == "L" else (r_scan, l_scan)
        rows, _ = executor.run_plan(factory.join("HA", outer, inner, {pred}))
        return Counter((row[L_K], row[R_W]) for row in rows)

    assert run("L") == run("R")


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(left=rows_strategy, right=rows_strategy)
def test_materialized_inner_equivalent(left, right):
    """STORE + re-ACCESS of the inner is execution-transparent."""
    cat, db = build(left, right)
    factory = PlanFactory(cat)
    executor = QueryExecutor(db)
    pred = parse_predicate("L.K = R.K", cat, ("L", "R"))

    outer = factory.access_base("L", {L_K, L_V}, set())
    plain = factory.access_base("R", {R_K, R_W}, {pred})
    temp = factory.access_temp(
        factory.store(factory.access_base("R", {R_K, R_W}, set())), preds={pred}
    )
    rows_plain, _ = executor.run_plan(factory.join("NL", outer, plain, {pred}))
    rows_temp, _ = executor.run_plan(factory.join("NL", outer, temp, {pred}))
    key = lambda rows: Counter((r[L_K], r[R_W]) for r in rows)
    assert key(rows_plain) == key(rows_temp)
