"""Unit tests for the naive reference evaluator."""

import pytest

from repro.catalog import Catalog, TableDef
from repro.catalog.catalog import make_columns
from repro.executor import naive_evaluate
from repro.query.parser import parse_query
from repro.storage import Database


@pytest.fixture()
def env():
    cat = Catalog()
    cat.add_table(TableDef("L", make_columns("K", "V")))
    cat.add_table(TableDef("R", make_columns("K", "W")))
    db = Database(cat)
    db.create_storage("L")
    db.create_storage("R")
    db.load("L", [(k, k * 10) for k in range(5)])
    db.load("R", [(k % 3, k) for k in range(6)])
    db.analyze_all()
    return cat, db


class TestNaive:
    def test_single_table_filter(self, env):
        cat, db = env
        result = naive_evaluate(parse_query("SELECT K FROM L WHERE K > 2", cat), db)
        assert sorted(result.rows) == [(3,), (4,)]

    def test_join(self, env):
        cat, db = env
        result = naive_evaluate(
            parse_query("SELECT L.K, R.W FROM L, R WHERE L.K = R.K", cat), db
        )
        expected = sorted((k, w) for k in range(5) for w in range(6) if k == w % 3)
        assert sorted(result.rows) == expected

    def test_projection_expressions(self, env):
        cat, db = env
        result = naive_evaluate(
            parse_query("SELECT K + 1 AS KK FROM L WHERE K = 2", cat), db
        )
        assert result.rows == [(3,)]
        assert result.columns == ("KK",)

    def test_order_by_desc(self, env):
        cat, db = env
        result = naive_evaluate(
            parse_query("SELECT K FROM L ORDER BY K DESC", cat), db
        )
        assert [r[0] for r in result.rows] == [4, 3, 2, 1, 0]

    def test_multiset_duplicates_preserved(self, env):
        cat, db = env
        result = naive_evaluate(parse_query("SELECT R.K FROM R", cat), db)
        assert result.as_multiset() == {(0,): 2, (1,): 2, (2,): 2}

    def test_cartesian_product(self, env):
        cat, db = env
        result = naive_evaluate(parse_query("SELECT L.K, R.K FROM L, R", cat), db)
        assert len(result) == 5 * 6

    def test_or_predicate(self, env):
        cat, db = env
        result = naive_evaluate(
            parse_query("SELECT K FROM L WHERE K = 0 OR K = 4", cat), db
        )
        assert sorted(result.rows) == [(0,), (4,)]
