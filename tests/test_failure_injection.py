"""Failure-injection tests: wrong usage fails loudly and precisely.

A library that silently produces wrong plans is worse than one that
crashes; these tests pin the error behavior of every layer."""

import pytest

from repro.catalog import AccessPath, Catalog, TableDef, TableStats
from repro.catalog.catalog import make_columns
from repro.config import OptimizerConfig
from repro.cost.propfuncs import PlanFactory
from repro.errors import (
    ExecutionError,
    ExpansionError,
    GlueError,
    OptimizationError,
    RuleError,
    StorageError,
)
from repro.executor import QueryExecutor
from repro.optimizer import StarburstOptimizer
from repro.plans.plan import PlanNode, make_params
from repro.plans.properties import requirements
from repro.plans.sap import Stream
from repro.query.expressions import ColumnRef
from repro.query.parser import parse_query
from repro.stars.builtin_rules import default_rules
from repro.stars.dsl import parse_rules
from repro.stars.engine import StarEngine
from repro.storage import Database

DNO = ColumnRef("DEPT", "DNO")


class TestExecutorFailures:
    def test_plan_against_missing_storage(self, catalog, factory):
        # Catalog knows DEPT but no Database storage exists.
        db = Database(catalog)
        plan = factory.access_base("DEPT", {DNO}, set())
        with pytest.raises(StorageError, match="no storage"):
            QueryExecutor(db).run_plan(plan)

    def test_unbound_sideways_plan_standalone(self, catalog, factory, join_pred):
        db = Database(catalog)
        db.create_storage("DEPT")
        db.create_storage("EMP")
        db.load("EMP", [(1, 2, "n", "a")])
        # An inner probe with a pushed join predicate cannot run outside
        # its nested-loop context: the outer column is unbound.
        probe = factory.access_base("EMP", {ColumnRef("EMP", "DNO")}, {join_pred})
        with pytest.raises(ExecutionError, match="unbound column"):
            QueryExecutor(db).run_plan(probe)

    def test_get_without_tid_stream(self, catalog, factory):
        db = Database(catalog)
        db.create_storage("EMP")
        db.load("EMP", [(1, 2, "n", "a")])
        scan = factory.access_base("EMP", {ColumnRef("EMP", "DNO")}, set())
        bad = PlanNode(
            "GET",
            None,
            make_params(
                table="EMP", columns=frozenset({ColumnRef("EMP", "NAME")}), preds=frozenset()
            ),
            (scan,),
            scan.props,
        )
        with pytest.raises(ExecutionError, match="TID"):
            QueryExecutor(db).run_plan(bad)


class TestGlueFailures:
    def make_engine(self, catalog):
        query = parse_query(
            "SELECT NAME, MGR FROM DEPT, EMP WHERE DEPT.DNO = EMP.DNO", catalog
        )
        return StarEngine(default_rules(), catalog, query)

    def test_unknown_site_requirement(self, catalog):
        engine = self.make_engine(catalog)
        with pytest.raises(Exception):  # CatalogError via SHIP veneer
            engine.ctx.glue.resolve(
                Stream(frozenset({"DEPT"}), requirements(site="Atlantis"))
            )

    def test_order_on_missing_column(self, catalog):
        engine = self.make_engine(catalog)
        with pytest.raises(GlueError):
            engine.ctx.glue.resolve(
                Stream(
                    frozenset({"EMP"}),
                    requirements(order=[ColumnRef("EMP", "SALARY")]),
                )
            )

    def test_paths_on_missing_column(self, catalog):
        engine = self.make_engine(catalog)
        with pytest.raises(GlueError):
            engine.ctx.glue.resolve(
                Stream(
                    frozenset({"EMP"}),
                    requirements(paths=[ColumnRef("EMP", "ADDRESS")]),
                )
            )


class TestEngineFailures:
    def test_glue_cycle_caught_at_depth_limit(self, catalog):
        # AccessRoot referencing Glue is a cycle through Glue's implicit
        # AccessRoot re-reference; the validator flags it statically, and
        # the engine's depth limit catches it at run time too.
        rules = parse_rules(
            """
            star AccessRoot(T, C, P) { alt -> Glue(stream_of(T), P); }
            """
        )
        query = parse_query("SELECT MGR FROM DEPT", catalog)
        engine = StarEngine(
            rules, catalog, query, config=OptimizerConfig(max_depth=16)
        )
        with pytest.raises((ExpansionError, RecursionError)):
            engine.ctx.glue.resolve(Stream(frozenset({"DEPT"})))

    def test_combination_errors_counted_not_fatal(self, catalog):
        """JOIN over streams at different sites: the bad combination is
        skipped and counted, not raised."""
        cat = Catalog(query_site="a")
        cat.add_site("b")
        cat.add_table(TableDef("X", make_columns("K"), site="a"), TableStats(card=10))
        cat.add_table(TableDef("Y", make_columns("K"), site="b"), TableStats(card=10))
        rules = parse_rules(
            """
            star J(A, B, P) {
                alt -> JOIN(NL, ACCESS('X', cols_of(A), {}),
                            ACCESS('Y', cols_of(B), {}), P, {});
            }
            """
        )
        query = parse_query("SELECT X.K FROM X, Y WHERE X.K = Y.K", cat)
        engine = StarEngine(rules, cat, query)
        sap = engine.expand(
            "J",
            (Stream(frozenset({"X"})), Stream(frozenset({"Y"})), frozenset()),
        )
        assert len(sap) == 0
        assert engine.stats.combos_skipped == 1


class TestOptimizerFailures:
    def test_unknown_table_in_query(self, catalog):
        with pytest.raises(Exception):
            StarburstOptimizer(catalog).optimize("SELECT X FROM NOPE")

    def test_disconnected_join_graph_message(self, catalog):
        with pytest.raises(OptimizationError, match="cartesian"):
            StarburstOptimizer(catalog).optimize("SELECT NAME, MGR FROM DEPT, EMP")

    def test_broken_rules_rejected_before_any_query(self, catalog):
        broken = parse_rules("star JoinRoot(A, B, P) { alt -> Nope(A); }")
        with pytest.raises(RuleError, match="invalid rule set"):
            StarburstOptimizer(catalog, rules=broken)


class TestStorageFailures:
    def test_load_before_create(self, catalog):
        db = Database(catalog)
        with pytest.raises(StorageError):
            db.load("DEPT", [(1, "x")])

    def test_row_arity_mismatch(self, catalog):
        db = Database(catalog)
        db.create_storage("DEPT")
        with pytest.raises(StorageError, match="arity"):
            db.load("DEPT", [(1,)])

    def test_unique_index_violation(self):
        cat = Catalog()
        cat.add_table(TableDef("U", make_columns("K", "V")))
        cat.add_index(AccessPath("U_K", "U", ("K",), unique=True))
        db = Database(cat)
        db.create_storage("U")
        db.load("U", [(1, 10)])
        with pytest.raises(StorageError, match="duplicate"):
            db.load("U", [(1, 20)])
