"""Unit tests for plan nodes, digests, and plan rendering."""

import pytest

from repro.errors import ReproError
from repro.plans.plan import PlanNode, make_params, plan_digest, render_functional, render_tree
from repro.query.expressions import ColumnRef

DNO = ColumnRef("DEPT", "DNO")
MGR = ColumnRef("DEPT", "MGR")


class TestPlanNodeValidation:
    def test_arity_checked(self, factory):
        access = factory.access_base("DEPT", {DNO}, set())
        with pytest.raises(ReproError, match="input"):
            PlanNode("SORT", None, make_params(order=(DNO,)), (), access.props)

    def test_flavor_checked(self, factory):
        d = factory.access_base("DEPT", {DNO}, set())
        e = factory.access_base("EMP", {ColumnRef("EMP", "DNO")}, set())
        with pytest.raises(ReproError, match="flavor"):
            factory.join("ZIGZAG", d, e, set())

    def test_unknown_param_rejected(self, factory):
        access = factory.access_base("DEPT", {DNO}, set())
        with pytest.raises(ReproError, match="parameter"):
            PlanNode("SORT", None, make_params(bogus=1), (access,), access.props)

    def test_param_lookup(self, factory):
        access = factory.access_base("DEPT", {DNO}, set())
        assert access.param("table") == "DEPT"
        assert access.param("nonexistent", 42) == 42


class TestDigests:
    def test_same_structure_same_digest(self, factory):
        a = factory.access_base("DEPT", {DNO}, set())
        b = factory.access_base("DEPT", {DNO}, set())
        assert plan_digest(a) == plan_digest(b)
        assert a == b
        assert hash(a) == hash(b)

    def test_different_params_different_digest(self, factory, mgr_pred):
        a = factory.access_base("DEPT", {DNO}, set())
        b = factory.access_base("DEPT", {DNO}, {mgr_pred})
        assert plan_digest(a) != plan_digest(b)

    def test_digest_ignores_cost(self, factory):
        # Same structure built through different factories (same catalog)
        # has the same digest even if props differ in float noise.
        a = factory.access_base("DEPT", {DNO, MGR}, set())
        b = factory.access_base("DEPT", {MGR, DNO}, set())
        assert plan_digest(a) == plan_digest(b)

    def test_digest_differs_across_children(self, factory):
        a = factory.access_base("DEPT", {DNO}, set())
        sorted_a = factory.sort(a, (DNO,))
        assert plan_digest(a) != plan_digest(sorted_a)


class TestTraversal:
    def test_nodes_preorder(self, factory):
        a = factory.access_base("DEPT", {DNO}, set())
        s = factory.sort(a, (DNO,))
        ops = [n.op for n in s.nodes()]
        assert ops == ["SORT", "ACCESS"]

    def test_count_nodes(self, factory, join_pred):
        d = factory.access_base("DEPT", {DNO}, set())
        e = factory.access_base("EMP", {ColumnRef("EMP", "DNO")}, set())
        j = factory.join("HA", d, e, {join_pred})
        assert j.count_nodes() == 3


class TestRendering:
    def test_functional_notation_nests(self, factory):
        a = factory.access_base("DEPT", {DNO}, set())
        s = factory.sort(a, (DNO,))
        text = render_functional(s)
        assert text.startswith("SORT(DEPT.DNO, ACCESS(")
        assert text.count("(") == text.count(")")

    def test_tree_rendering_shows_structure(self, factory, join_pred):
        d = factory.sort(factory.access_base("DEPT", {DNO}, set()), (DNO,))
        e = factory.access_base("EMP", {ColumnRef("EMP", "DNO")}, set())
        j = factory.join("MG", d, e, {join_pred})
        text = render_tree(j)
        assert text.splitlines()[0].startswith("JOIN(MG")
        assert "├── SORT" in text
        assert "└── ACCESS" in text

    def test_tree_properties_ears(self, factory):
        a = factory.access_base("DEPT", {DNO}, set())
        text = render_tree(a, show_properties=True)
        assert "order:" in text and "site:" in text and "cost:" in text

    def test_ship_and_filter_labels(self, factory, distributed_catalog, mgr_pred):
        from repro.cost.propfuncs import PlanFactory

        f = PlanFactory(distributed_catalog)
        a = f.access_base("DEPT", {DNO, MGR}, set())
        shipped = f.ship(a, "L.A.")
        filtered = f.filter(shipped, {mgr_pred})
        text = render_functional(filtered)
        assert "SHIP(to L.A." in text
        assert "FILTER(" in text
