"""Property-based round-trip of the rule DSL.

Randomly generated rule sets must (1) parse, (2) pretty-print, and
(3) re-parse to structurally identical definitions — `StarDef.__str__`
is the DSL's canonical form.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.stars.ast import (
    Alternative,
    Argument,
    Call,
    Compare,
    Const,
    ForAll,
    Param,
    RequiredSpec,
    RuleSet,
    SetExpr,
    StarDef,
    StarRef,
)
from repro.stars.dsl import parse_rules

names = st.sampled_from(["T", "C", "P", "T1", "T2"])
star_names = st.sampled_from(["Alpha", "Beta", "Gamma"])
fn_names = st.sampled_from(["nonempty", "join_preds", "cols_of", "needed_cols"])


@st.composite
def exprs(draw, depth=0):
    if depth >= 2:
        return draw(st.one_of(
            names.map(Param),
            st.just(Const(frozenset())),
            st.integers(0, 9).map(Const),
        ))
    choice = draw(st.integers(0, 3))
    if choice == 0:
        return draw(names.map(Param))
    if choice == 1:
        name = draw(fn_names)
        args = draw(st.lists(exprs(depth=depth + 1), max_size=2))
        return Call(name, tuple(args))
    if choice == 2:
        op = draw(st.sampled_from(["|", "&", "-"]))
        return SetExpr(op, draw(exprs(depth=depth + 1)), draw(exprs(depth=depth + 1)))
    op = draw(st.sampled_from(["==", "!=", "<="]))
    return Compare(op, draw(exprs(depth=depth + 1)), draw(exprs(depth=depth + 1)))


@st.composite
def terms(draw, depth=0):
    if depth >= 1 or draw(st.booleans()):
        args = draw(st.lists(
            exprs(depth=2).map(Argument), min_size=1, max_size=3
        ))
        return StarRef("ACCESS", tuple(args))
    var = draw(st.sampled_from(["i", "s"]))
    return ForAll(var, draw(exprs(depth=1)), draw(terms(depth=depth + 1)))


@st.composite
def star_defs(draw, name):
    params = draw(st.lists(names, min_size=1, max_size=3, unique=True))
    n_alts = draw(st.integers(1, 3))
    exclusive = draw(st.booleans())
    alternatives = []
    for index in range(n_alts):
        condition = draw(st.one_of(st.none(), exprs(depth=1)))
        otherwise = False
        if exclusive and index == n_alts - 1 and condition is None:
            otherwise = draw(st.booleans())
        alternatives.append(
            Alternative(
                term=draw(terms()),
                condition=None if otherwise else condition,
                otherwise=otherwise,
            )
        )
    # Only reference bound parameters: rebuild param refs from the list.
    return StarDef(
        name=name,
        params=tuple(params),
        alternatives=tuple(alternatives),
        exclusive=exclusive,
    )


def _normalize(star: StarDef) -> tuple:
    return (
        star.name,
        star.params,
        star.exclusive,
        tuple(str(a) for a in star.alternatives),
        tuple((n, str(e)) for n, e in star.bindings),
    )


@settings(max_examples=80, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(data=st.data())
def test_dsl_roundtrip(data):
    star = data.draw(star_defs("Alpha"))
    text = str(star)
    reparsed = parse_rules(text).get("Alpha")
    assert _normalize(reparsed) == _normalize(star)


@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(data=st.data())
def test_dsl_roundtrip_is_fixpoint(data):
    """Printing a reparsed STAR yields identical text (canonical form)."""
    star = data.draw(star_defs("Beta"))
    once = str(parse_rules(str(star)).get("Beta"))
    twice = str(parse_rules(once).get("Beta"))
    assert once == twice
