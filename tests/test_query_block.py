"""Unit tests for QueryBlock's derived views used by the optimizer."""

import pytest

from repro.errors import QueryError
from repro.query.expressions import ColumnRef
from repro.query.parser import parse_query
from repro.query.query import OrderItem, QueryBlock, SelectItem


def q(catalog, sql):
    return parse_query(sql, catalog)


class TestValidation:
    def test_needs_tables(self):
        with pytest.raises(QueryError):
            QueryBlock(tables=(), select=(SelectItem(ColumnRef("A", "X"), "X"),))

    def test_duplicate_tables_rejected(self, catalog):
        with pytest.raises(QueryError, match="duplicate"):
            QueryBlock(
                tables=("EMP", "EMP"),
                select=(SelectItem(ColumnRef("EMP", "ENO"), "ENO"),),
            )

    def test_projection_tables_must_be_known(self, catalog):
        with pytest.raises(QueryError, match="unknown tables"):
            QueryBlock(
                tables=("EMP",),
                select=(SelectItem(ColumnRef("DEPT", "DNO"), "DNO"),),
            )

    def test_predicate_tables_must_be_known(self, catalog, join_pred):
        with pytest.raises(QueryError, match="unknown tables"):
            QueryBlock(
                tables=("EMP",),
                select=(SelectItem(ColumnRef("EMP", "ENO"), "ENO"),),
                predicates=(join_pred,),
            )

    def test_order_by_table_must_be_known(self, catalog):
        with pytest.raises(QueryError, match="ORDER BY"):
            QueryBlock(
                tables=("EMP",),
                select=(SelectItem(ColumnRef("EMP", "ENO"), "ENO"),),
                order_by=(OrderItem(ColumnRef("DEPT", "DNO")),),
            )


class TestDerivedViews:
    def test_columns_for_table_includes_predicates(self, catalog, fig1_query):
        cols = fig1_query.columns_for_table("EMP")
        assert ColumnRef("EMP", "DNO") in cols  # from the join predicate
        assert ColumnRef("EMP", "NAME") in cols  # from the projection
        assert ColumnRef("EMP", "ENO") not in cols

    def test_single_table_predicates(self, catalog, fig1_query):
        dept = fig1_query.single_table_predicates("DEPT")
        assert len(dept) == 1
        assert next(iter(dept)).tables() == {"DEPT"}
        assert fig1_query.single_table_predicates("EMP") == frozenset()

    def test_eligible_predicates_newly_covered_only(self, catalog, fig1_query):
        eligible = fig1_query.eligible_predicates(
            frozenset({"DEPT"}), frozenset({"EMP"})
        )
        assert len(eligible) == 1  # the join predicate, not MGR='Haas'

    def test_eligible_predicates_excludes_side_local(self, catalog):
        query = q(
            catalog,
            "SELECT NAME FROM DEPT, EMP "
            "WHERE DEPT.DNO = EMP.DNO AND EMP.ENO > 5",
        )
        eligible = query.eligible_predicates(frozenset({"DEPT"}), frozenset({"EMP"}))
        assert all(len(p.tables()) == 2 for p in eligible)

    def test_join_graph_edges(self, catalog, fig1_query):
        assert fig1_query.join_graph_edges() == {frozenset({"DEPT", "EMP"})}

    def test_interesting_order_columns(self, catalog):
        query = q(
            catalog,
            "SELECT NAME FROM DEPT, EMP WHERE DEPT.DNO = EMP.DNO ORDER BY NAME",
        )
        interesting = query.interesting_order_columns()
        assert ColumnRef("DEPT", "DNO") in interesting
        assert ColumnRef("EMP", "DNO") in interesting
        assert ColumnRef("EMP", "NAME") in interesting
        assert ColumnRef("EMP", "ADDRESS") not in interesting

    def test_required_order(self, catalog):
        query = q(catalog, "SELECT NAME FROM EMP ORDER BY NAME, ENO")
        assert query.required_order() == (
            ColumnRef("EMP", "NAME"),
            ColumnRef("EMP", "ENO"),
        )

    def test_output_vs_referenced_columns(self, catalog, fig1_query):
        out = fig1_query.output_columns()
        referenced = fig1_query.referenced_columns()
        assert out < referenced  # predicates reference DNO columns too
