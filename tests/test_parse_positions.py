"""ParseError line/column reporting for malformed STAR DSL inputs.

Satellite: a Database Customizer edits rule files by hand; every parse
failure must point at the offending line and column, not just describe
the problem.
"""

from __future__ import annotations

import pytest

from repro.errors import ParseError
from repro.stars.dsl import parse_rules

#: (rule text, expected line, expected column, message fragment).
#: Columns are 1-based; line 1 is the first line of the text.
MALFORMED = [
    # Garbage at top level.
    ("blah", 1, 1, "expected"),
    # Unexpected character the tokenizer cannot lex.
    ("star S(A) { alt -> @ }", 1, 20, "unexpected character"),
    # Missing parameter list parenthesis.
    ("star S A) { alt -> JOIN(NL, A, A, {}, {}); }", 1, 8, "expected '('"),
    # Keyword used as a STAR name.
    ("star order(A) { alt -> Glue(A); }", 1, 6, "expected a name"),
    # Missing the -> arrow after alt.
    ("star S(A) { alt Glue(A); }", 1, 17, "expected '->'"),
    # Missing semicolon between alternatives (line 2).
    ("star S(A) {\n    alt -> Glue(A)\n    alt -> Glue(A);\n}", 3, 5, "expected ';'"),
    # Unclosed STAR body hits end of input (line 2).
    ("star S(A) {\n    alt -> Glue(A);", 2, 20, "end of input"),
    # Bad required-property name inside brackets.
    ("star S(A, s) { alt -> Glue(A [speed = s]); }", 1, 31, "required property"),
    # Plan term inside a required property value.
    ("star S(A, B) { alt -> Glue(A [site = Glue(B)]); }", 1, 45, "plan terms"),
    # forall without 'in'.
    ("star S(A) { alt -> forall s candidate_sites(): Glue(A); }", 1, 29, "expected 'in'"),
    # Empty alternative: '->' with no term before ';'.
    ("star S(A) { alt -> ; }", 1, 20, "expected"),
    # extend of a condition missing its expression (line 3).
    ("star S(A) {\n    alt if -> Glue(A);\n}", 2, 12, "expected"),
    # Dangling comma in an argument list.
    ("star S(A) { alt -> JOIN(NL, A, A, {}, ); }", 1, 39, "expected"),
]


@pytest.mark.parametrize(
    "text, line, column, fragment",
    MALFORMED,
    ids=[f"case{i}" for i in range(len(MALFORMED))],
)
def test_malformed_input_reports_position(text, line, column, fragment):
    with pytest.raises(ParseError) as exc:
        parse_rules(text)
    err = exc.value
    assert err.line == line, f"line: got {err.line}, want {line}: {err}"
    assert err.column == column, f"column: got {err.column}, want {column}: {err}"
    assert fragment.lower() in str(err).lower()
    # The rendered message itself names the position.
    assert f"line {line}" in str(err)


def test_position_attributes_are_integers():
    with pytest.raises(ParseError) as exc:
        parse_rules("star S(A) { alt -> }")
    assert isinstance(exc.value.line, int)
    assert isinstance(exc.value.column, int)


def test_error_on_later_line_counts_newlines():
    text = "star S(A) {\n    alt -> Glue(A);\n}\n\nstar T(B) {\n    alt => Glue(B);\n}"
    with pytest.raises(ParseError) as exc:
        parse_rules(text)
    assert exc.value.line == 6
