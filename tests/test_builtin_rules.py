"""Behavioral tests of the paper's rule set (section 4), expanded through
the engine on controlled inputs."""

import pytest

from repro.config import OptimizerConfig
from repro.plans.operators import ACCESS, BUILDIX, GET, JOIN, SHIP, SORT, STORE
from repro.plans.sap import Stream
from repro.query.parser import parse_query
from repro.stars.builtin_rules import (
    BASE_RULES,
    DYNAMIC_INDEX_RULES,
    FORCED_PROJECTION_RULES,
    HASH_JOIN_RULES,
    ORDERED_STREAM_RULES,
    default_rules,
    extended_rules,
)
from repro.stars.dsl import parse_rules
from repro.stars.engine import StarEngine
from repro.query.expressions import ColumnRef

DNO = ColumnRef("DEPT", "DNO")
E_DNO = ColumnRef("EMP", "DNO")


def expand_join(catalog, rules=None, sql=None):
    sql = sql or (
        "SELECT NAME, ADDRESS, MGR FROM DEPT, EMP "
        "WHERE DEPT.DNO = EMP.DNO AND MGR = 'Haas'"
    )
    query = parse_query(sql, catalog)
    engine = StarEngine(
        rules or default_rules(), catalog, query, config=OptimizerConfig(prune=False)
    )
    jp = query.eligible_predicates(frozenset({"DEPT"}), frozenset({"EMP"}))
    sap = engine.expand(
        "JoinRoot", (Stream(frozenset({"DEPT"})), Stream(frozenset({"EMP"})), jp)
    )
    return sap, engine


def flavors(sap):
    return {p.flavor for p in sap if p.op == JOIN}


class TestJoinRoot:
    def test_both_permutations_generated(self, catalog):
        sap, _ = expand_join(catalog)
        outers = {next(iter(p.inputs[0].props.tables & {"DEPT", "EMP"})) for p in sap}
        # At least one plan with DEPT outer and one with EMP outer... the
        # outer side of each JOIN covers one of the two tables.
        outer_tables = {frozenset(p.inputs[0].props.tables) for p in sap}
        assert frozenset({"DEPT"}) in outer_tables
        assert frozenset({"EMP"}) in outer_tables

    def test_base_repertoire_has_nl_and_mg(self, catalog):
        sap, _ = expand_join(catalog)
        assert flavors(sap) == {"NL", "MG"}

    def test_no_sortable_preds_suppresses_merge(self, catalog):
        sql = (
            "SELECT NAME, MGR FROM DEPT, EMP "
            "WHERE DEPT.DNO < EMP.DNO"  # inequality: not sortable (default)
        )
        sap, _ = expand_join(catalog, sql=sql)
        assert flavors(sap) == {"NL"}

    def test_local_query_skips_remote_join(self, catalog):
        sap, engine = expand_join(catalog)
        assert all(not any(n.op == SHIP for n in p.nodes()) for p in sap)

    def test_distributed_query_generates_site_alternatives(self, distributed_catalog):
        sap, _ = expand_join(distributed_catalog)
        sites = {p.props.site for p in sap}
        assert sites == {"N.Y.", "L.A."}

    def test_figure1_plan_among_alternatives(self, catalog):
        """The exact Figure 1 shape: MG join, DEPT sorted via scan, EMP
        via index + GET."""
        sap, _ = expand_join(catalog)
        for plan in sap:
            if plan.flavor != "MG":
                continue
            outer, inner = plan.inputs
            if outer.props.tables != {"DEPT"}:
                continue
            outer_ops = [n.op for n in outer.nodes()]
            inner_ops = [n.op for n in inner.nodes()]
            if outer_ops == [SORT, ACCESS] and inner_ops == [GET, ACCESS]:
                inner_access = list(inner.nodes())[-1]
                assert inner_access.flavor == "index"
                return
        pytest.fail("Figure 1 plan not generated")


class TestSitedJoin:
    def test_composite_inner_forced_to_temp(self, catalog):
        """Condition C1 first disjunct: |T2| > 1 forces a temp."""
        sql = (
            "SELECT NAME FROM DEPT, EMP, PROJ0 "
            "WHERE DEPT.DNO = EMP.DNO AND EMP.ENO = PROJ0.ENO"
        )
        from repro.catalog import TableDef, TableStats
        from repro.catalog.catalog import make_columns

        catalog.add_table(
            TableDef("PROJ0", make_columns("PNO", "ENO")), TableStats(card=500)
        )
        query = parse_query(sql, catalog)
        engine = StarEngine(default_rules(), catalog, query)
        # Build the composite {DEPT, EMP} first.
        jp1 = query.eligible_predicates(frozenset({"DEPT"}), frozenset({"EMP"}))
        composite = engine.expand(
            "JoinRoot", (Stream(frozenset({"DEPT"})), Stream(frozenset({"EMP"})), jp1)
        )
        engine.plan_table.insert(
            frozenset({"DEPT", "EMP"}), jp1, composite
        )
        jp2 = query.eligible_predicates(
            frozenset({"PROJ0"}), frozenset({"DEPT", "EMP"})
        )
        sap = engine.expand(
            "JoinRoot",
            (Stream(frozenset({"PROJ0"})), Stream(frozenset({"DEPT", "EMP"})), jp2),
        )
        for plan in sap:
            if plan.op != JOIN:
                continue
            inner = plan.inputs[1]
            if len(inner.props.tables) > 1:
                assert inner.props.temp, "composite inner was not materialized"

    def test_required_remote_site_forces_temp(self, distributed_catalog):
        """Condition C1 second disjunct: site mismatch forces a temp."""
        sap, _ = expand_join(distributed_catalog)
        # Plans joining at L.A. with DEPT (stored at N.Y.) as the inner
        # must materialize the shipped DEPT stream.
        found = False
        for plan in sap:
            if plan.op != JOIN:
                continue
            inner = plan.inputs[1]
            if inner.props.tables == {"DEPT"} and inner.props.site == "L.A.":
                assert inner.props.temp
                found = True
        assert found


class TestSection45Extensions:
    def test_hash_join_added_as_data(self, catalog):
        rules = default_rules()
        parse_rules(HASH_JOIN_RULES, base=rules)
        sap, _ = expand_join(catalog, rules=rules)
        assert "HA" in flavors(sap)

    def test_hash_join_condition(self, catalog):
        # Inequality join: no hashable predicates, no HA alternative.
        rules = default_rules()
        parse_rules(HASH_JOIN_RULES, base=rules)
        sap, _ = expand_join(
            catalog,
            rules=rules,
            sql="SELECT NAME, MGR FROM DEPT, EMP WHERE DEPT.DNO < EMP.DNO",
        )
        assert "HA" not in flavors(sap)

    def test_hash_join_keeps_hashable_as_residual(self, catalog):
        """4.5.1: all multi-table predicates stay residual (collisions)."""
        rules = default_rules()
        parse_rules(HASH_JOIN_RULES, base=rules)
        sap, _ = expand_join(catalog, rules=rules)
        ha_plans = [p for p in sap if p.flavor == "HA"]
        for plan in ha_plans:
            assert plan.param("join_preds") <= plan.param("residual_preds")

    def test_forced_projection_materializes_inner(self, catalog):
        rules = default_rules()
        parse_rules(FORCED_PROJECTION_RULES, base=rules)
        sap, _ = expand_join(catalog, rules=rules)
        assert any(
            p.flavor == "NL"
            and any(n.op == STORE for n in p.inputs[1].nodes())
            for p in sap
        )

    def test_dynamic_index_builds_index(self, catalog):
        rules = default_rules()
        parse_rules(DYNAMIC_INDEX_RULES, base=rules)
        sap, _ = expand_join(catalog, rules=rules)
        assert any(
            any(n.op == BUILDIX for n in p.nodes()) for p in sap
        )

    def test_dynamic_index_condition_needs_indexable_preds(self, catalog):
        rules = default_rules()
        parse_rules(DYNAMIC_INDEX_RULES, base=rules)
        # OR-predicate only: no join predicates at all, hence no XP.
        sql = (
            "SELECT NAME, MGR FROM DEPT, EMP "
            "WHERE DEPT.DNO = EMP.DNO OR DEPT.DNO = EMP.ENO"
        )
        sap, _ = expand_join(catalog, rules=rules, sql=sql)
        assert not any(any(n.op == BUILDIX for n in p.nodes()) for p in sap)

    def test_extended_rules_toggle(self):
        rules = extended_rules(hash_join=False, forced_projection=False, dynamic_index=False)
        assert len(rules.get("JMeth").alternatives) == 2
        rules = extended_rules()
        assert len(rules.get("JMeth").alternatives) == 5


class TestOrderedStreamExample:
    """The section 2.1 OrderedStream STAR, loaded as extra rule data."""

    def test_both_definitions_when_index_matches(self, catalog):
        rules = parse_rules(BASE_RULES + ORDERED_STREAM_RULES)
        query = parse_query("SELECT NAME FROM EMP", catalog)
        engine = StarEngine(rules, catalog, query)
        sap = engine.expand(
            "OrderedStream",
            ("EMP", frozenset({E_DNO, ColumnRef("EMP", "NAME")}), frozenset(), (E_DNO,)),
        )
        # Both alternatives: SORT(ACCESS(...)) and GET(ACCESS(index)).
        shapes = {tuple(n.op for n in p.nodes()) for p in sap}
        assert (SORT, ACCESS) in shapes
        assert (GET, ACCESS) in shapes

    def test_sort_only_when_no_index(self, catalog):
        rules = parse_rules(BASE_RULES + ORDERED_STREAM_RULES)
        query = parse_query("SELECT MGR FROM DEPT", catalog)
        engine = StarEngine(rules, catalog, query)
        sap = engine.expand(
            "OrderedStream",
            ("DEPT", frozenset({DNO, ColumnRef("DEPT", "MGR")}), frozenset(), (DNO,)),
        )
        shapes = {tuple(n.op for n in p.nodes()) for p in sap}
        assert shapes == {(SORT, ACCESS)}
