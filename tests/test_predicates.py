"""Unit tests for predicates and the paper's JP/SP/HP/XP/IP classifiers."""

import pytest

from repro.errors import QueryError
from repro.query.expressions import Arith, ColumnRef, Literal, RowContext
from repro.query.predicates import (
    Comparison,
    Conjunction,
    Disjunction,
    Negation,
    classify_predicates,
    conjunction_of,
    equals_value,
    hashable_predicates,
    indexable_predicates,
    inner_only_predicates,
    join_predicates,
    sargable_column,
    sortable_predicates,
)

A_X = ColumnRef("A", "X")
A_Y = ColumnRef("A", "Y")
B_X = ColumnRef("B", "X")
B_Z = ColumnRef("B", "Z")

EQ = Comparison("=", A_X, B_X)                       # col = col (sortable)
INEQ = Comparison("<", A_X, B_X)                     # col < col
EXPR_EQ = Comparison("=", Arith("+", A_X, A_Y), B_X)  # expr = col (hashable, indexable)
LOCAL_B = Comparison(">", B_Z, Literal(5))            # single-table on B
LOCAL_A = Comparison("=", A_Y, Literal(1))            # single-table on A


class TestEvaluation:
    def test_comparison_ops(self):
        ctx = RowContext({A_X: 5, B_X: 7})
        assert Comparison("<", A_X, B_X).evaluate(ctx)
        assert Comparison("<=", A_X, B_X).evaluate(ctx)
        assert Comparison("<>", A_X, B_X).evaluate(ctx)
        assert not Comparison("=", A_X, B_X).evaluate(ctx)
        assert not Comparison(">", A_X, B_X).evaluate(ctx)
        assert not Comparison(">=", A_X, B_X).evaluate(ctx)

    def test_null_comparisons_are_false(self):
        ctx = RowContext({A_X: None, B_X: 7})
        assert not Comparison("=", A_X, B_X).evaluate(ctx)
        assert not Comparison("<>", A_X, B_X).evaluate(ctx)

    def test_unknown_op_rejected(self):
        with pytest.raises(QueryError):
            Comparison("~", A_X, B_X)

    def test_flipped(self):
        flipped = Comparison("<", A_X, B_X).flipped()
        assert flipped.op == ">"
        assert flipped.left is B_X and flipped.right is A_X

    def test_conjunction_disjunction_negation(self):
        ctx = RowContext({A_X: 5, B_X: 7, B_Z: 10})
        both = Conjunction((Comparison("<", A_X, B_X), LOCAL_B))
        assert both.evaluate(ctx)
        either = Disjunction((Comparison(">", A_X, B_X), LOCAL_B))
        assert either.evaluate(ctx)
        assert not Negation(both).evaluate(ctx)

    def test_conjunction_needs_two_parts(self):
        with pytest.raises(QueryError):
            Conjunction((EQ,))

    def test_conjuncts_flattening(self):
        nested = Conjunction((Conjunction((EQ, LOCAL_B)), LOCAL_A))
        assert set(nested.conjuncts()) == {EQ, LOCAL_B, LOCAL_A}

    def test_conjunction_of(self):
        assert conjunction_of([]) is None
        assert conjunction_of([EQ]) is EQ
        combined = conjunction_of([EQ, LOCAL_B])
        assert isinstance(combined, Conjunction)

    def test_equals_value(self):
        pred = equals_value("A", "X", 9)
        assert pred.evaluate(RowContext({A_X: 9}))
        assert not pred.evaluate(RowContext({A_X: 8}))


class TestClassifiers:
    ALL = frozenset([EQ, INEQ, EXPR_EQ, LOCAL_B, LOCAL_A])

    def test_join_predicates_are_multi_table_comparisons(self):
        assert join_predicates(self.ALL) == {EQ, INEQ, EXPR_EQ}

    def test_disjunction_never_a_join_predicate(self):
        disj = Disjunction((EQ, INEQ))
        assert join_predicates([disj]) == frozenset()

    def test_sortable_equality_only_default(self):
        assert sortable_predicates(self.ALL, {"A"}, {"B"}) == {EQ}

    def test_sortable_with_inequalities(self):
        got = sortable_predicates(self.ALL, {"A"}, {"B"}, equality_only=False)
        assert got == {EQ, INEQ}

    def test_sortable_requires_bare_columns(self):
        # EXPR_EQ has an expression side, so it is not sortable.
        assert EXPR_EQ not in sortable_predicates(self.ALL, {"A"}, {"B"})

    def test_sortable_direction_agnostic(self):
        assert sortable_predicates([EQ], {"B"}, {"A"}) == {EQ}

    def test_hashable_includes_expressions(self):
        assert hashable_predicates(self.ALL, {"A"}, {"B"}) == {EQ, EXPR_EQ}

    def test_hashable_excludes_inequalities(self):
        assert INEQ not in hashable_predicates(self.ALL, {"A"}, {"B"})

    def test_indexable_requires_bare_inner_column(self):
        got = indexable_predicates(self.ALL, {"A"}, {"B"})
        assert got == {EQ, INEQ, EXPR_EQ}

    def test_indexable_direction_matters(self):
        # With A as the inner, EXPR_EQ's bare column is on B (the outer),
        # and its expression side references A (the inner) — not indexable.
        got = indexable_predicates([EXPR_EQ], {"B"}, {"A"})
        assert got == frozenset()

    def test_inner_only(self):
        assert inner_only_predicates(self.ALL, {"B"}) == {LOCAL_B}
        assert inner_only_predicates(self.ALL, {"A"}) == {LOCAL_A}
        assert inner_only_predicates(self.ALL, {"A", "B"}) == self.ALL

    def test_classify_bundle(self):
        classes = classify_predicates(self.ALL, {"A"}, {"B"})
        assert classes.join == {EQ, INEQ, EXPR_EQ}
        assert classes.sortable == {EQ}
        assert classes.hashable == {EQ, EXPR_EQ}
        assert classes.inner_only == {LOCAL_B}
        assert classes.eligible == self.ALL


class TestSargability:
    def test_column_vs_literal(self):
        sarg = sargable_column(LOCAL_B, "B")
        assert sarg is not None
        column, op, value = sarg
        assert column == B_Z and op == ">" and value == Literal(5)

    def test_flips_to_put_column_left(self):
        pred = Comparison(">", Literal(5), B_Z)  # 5 > B.Z  =>  B.Z < 5
        column, op, value = sargable_column(pred, "B")
        assert column == B_Z and op == "<"

    def test_join_pred_not_sargable_without_bindings(self):
        assert sargable_column(EQ, "B") is None

    def test_join_pred_sargable_with_outer_bound(self):
        sarg = sargable_column(EQ, "B", bound_tables=frozenset(["A"]))
        assert sarg is not None
        column, op, value = sarg
        assert column == B_X and op == "=" and value == A_X

    def test_expression_side_sargable(self):
        sarg = sargable_column(EXPR_EQ, "B", bound_tables=frozenset(["A"]))
        assert sarg is not None
        assert sarg[0] == B_X

    def test_wrong_table_not_sargable(self):
        assert sargable_column(LOCAL_B, "A") is None

    def test_same_table_both_sides_not_sargable(self):
        pred = Comparison("=", A_X, A_Y)
        assert sargable_column(pred, "A") is None
