"""Fault injection, retry policy, and network accounting under chaos."""

from __future__ import annotations

import math

import pytest

from repro.cost.model import MESSAGE_SIZE, CostModel, ship_messages
from repro.errors import (
    LinkError,
    SiteUnavailableError,
    TransientNetworkError,
)
from repro.executor.chaos import ChaosConfig, ChaosEngine, RetryPolicy, SimClock
from repro.executor.network import NetworkSim
from repro.query.expressions import ColumnRef


class TestRetryPolicy:
    def test_backoff_is_exponential_and_capped(self):
        policy = RetryPolicy(base_backoff=0.1, multiplier=2.0, max_backoff=0.5)
        assert policy.backoff(1) == pytest.approx(0.1)
        assert policy.backoff(2) == pytest.approx(0.2)
        assert policy.backoff(3) == pytest.approx(0.4)
        assert policy.backoff(4) == pytest.approx(0.5)  # capped
        assert policy.backoff(10) == pytest.approx(0.5)

    def test_no_retries_fails_on_first_attempt(self):
        assert RetryPolicy.no_retries().max_attempts == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(base_backoff=-1.0)


class TestChaosConfig:
    def test_probability_validation(self):
        with pytest.raises(ValueError):
            ChaosConfig(link_failure_prob=1.5)
        with pytest.raises(ValueError):
            ChaosConfig(site_failure_prob=-0.1)

    def test_enabled(self):
        assert not ChaosConfig().enabled()
        assert ChaosConfig(link_failure_prob=0.1).enabled()
        assert ChaosConfig(down_sites=frozenset({"X"})).enabled()
        assert ChaosConfig(site_outages=(("X", 3),)).enabled()


class TestChaosEngine:
    def test_deterministic_under_seed(self):
        def run(seed):
            engine = ChaosEngine(ChaosConfig(seed=seed, link_failure_prob=0.3))
            outcomes = []
            for _ in range(50):
                try:
                    engine.on_transfer_attempt("A", "B")
                    outcomes.append("ok")
                except TransientNetworkError:
                    outcomes.append("fail")
            return outcomes

        assert run(7) == run(7)
        assert run(7) != run(8)  # different seed, different schedule

    def test_scheduled_site_outage_fires_at_attempt(self):
        engine = ChaosEngine(ChaosConfig(site_outages=(("N.Y.", 3),)))
        engine.on_transfer_attempt("N.Y.", "L.A.")
        engine.on_transfer_attempt("N.Y.", "L.A.")
        assert engine.site_up("N.Y.")
        with pytest.raises(SiteUnavailableError) as exc:
            engine.on_transfer_attempt("N.Y.", "L.A.")
        assert exc.value.site == "N.Y."
        assert not engine.site_up("N.Y.")

    def test_scheduled_link_outage(self):
        engine = ChaosEngine(ChaosConfig(link_outages=((("A", "B"), 1),)))
        with pytest.raises(LinkError):
            engine.on_transfer_attempt("A", "B")
        # Reverse direction unaffected.
        engine.on_transfer_attempt("B", "A")

    def test_check_site_and_kill_site(self):
        engine = ChaosEngine()
        engine.check_site("X")  # healthy: no raise
        engine.kill_site("X")
        with pytest.raises(SiteUnavailableError):
            engine.check_site("X")

    def test_protected_sites_never_randomly_killed(self):
        engine = ChaosEngine(ChaosConfig(
            seed=1,
            site_failure_prob=1.0,
            protected_sites=frozenset({"A", "B"}),
        ))
        for _ in range(20):
            engine.on_transfer_attempt("A", "B")
        assert engine.site_up("A") and engine.site_up("B")


class TestSimClock:
    def test_advance(self):
        clock = SimClock()
        assert clock.now == 0.0
        clock.advance(1.5)
        clock.advance(0.5)
        assert clock.now == pytest.approx(2.0)


class TestNetworkRetries:
    def test_transient_failures_are_retried_and_recorded(self):
        # p=1 for the first attempts is impossible to retry through, so
        # use a seed/probability pair known to fail exactly once first.
        engine = ChaosEngine(ChaosConfig(seed=0, link_failure_prob=0.5))
        net = NetworkSim(chaos=engine, retry=RetryPolicy(), clock=SimClock())
        for _ in range(10):
            net.transfer("A", "B", tuples=10, nbytes=100)
        link = net.links[("A", "B")]
        assert link.attempts == link.retries + 10
        assert link.failures == link.retries  # every failure was retried
        assert link.retries > 0  # p=0.5 over 10 transfers must retry some
        assert net.total_backoff > 0
        assert net.clock.now == pytest.approx(net.total_backoff)

    def test_retries_exhausted_raises_link_error(self):
        engine = ChaosEngine(ChaosConfig(seed=0, link_failure_prob=1.0))
        net = NetworkSim(chaos=engine, retry=RetryPolicy(max_attempts=3))
        with pytest.raises(LinkError, match="retries exhausted"):
            net.transfer("A", "B", tuples=1, nbytes=10)
        link = net.links[("A", "B")]
        assert link.attempts == 3
        assert link.failures == 3
        assert link.retries == 2
        assert link.messages == 0  # nothing was delivered

    def test_no_retries_policy_fails_fast(self):
        engine = ChaosEngine(ChaosConfig(seed=0, link_failure_prob=1.0))
        net = NetworkSim(chaos=engine, retry=RetryPolicy.no_retries())
        with pytest.raises(LinkError):
            net.transfer("A", "B", tuples=1, nbytes=10)
        assert net.links[("A", "B")].attempts == 1

    def test_timeout_budget_exhausted(self):
        engine = ChaosEngine(ChaosConfig(seed=0, link_failure_prob=1.0))
        policy = RetryPolicy(
            max_attempts=100, base_backoff=1.0, multiplier=1.0,
            max_backoff=1.0, timeout_budget=2.5,
        )
        net = NetworkSim(chaos=engine, retry=policy, clock=SimClock())
        with pytest.raises(LinkError, match="timeout budget"):
            net.transfer("A", "B", tuples=1, nbytes=10)
        assert net.total_backoff <= policy.timeout_budget

    def test_downed_site_raises_immediately(self):
        engine = ChaosEngine(ChaosConfig(down_sites=frozenset({"B"})))
        net = NetworkSim(chaos=engine, retry=RetryPolicy())
        with pytest.raises(SiteUnavailableError):
            net.transfer("A", "B", tuples=1, nbytes=10)

    def test_without_chaos_transfer_is_infallible(self):
        net = NetworkSim()
        net.transfer("A", "B", tuples=5, nbytes=10_000)
        link = net.links[("A", "B")]
        assert link.attempts == 1
        assert link.retries == 0
        assert link.tuples == 5


class TestMessageAccounting:
    """Satellite: NetworkSim actuals must agree with the cost model's
    ``msgs`` estimate — both sides now share :func:`ship_messages`."""

    def test_ship_messages_formula(self):
        assert ship_messages(0) == 1  # empty stream still costs a message
        assert ship_messages(-5) == 1
        assert ship_messages(1) == 2  # ceil(1/ms) + 1
        assert ship_messages(MESSAGE_SIZE) == 2
        assert ship_messages(MESSAGE_SIZE + 1) == 3
        assert ship_messages(10 * MESSAGE_SIZE) == 11
        assert ship_messages(100, message_size=50) == 3

    @pytest.mark.parametrize("nbytes", [0, 1, 100, 4096, 4097, 123_456])
    def test_network_actuals_match_formula(self, nbytes):
        net = NetworkSim()
        net.transfer("A", "B", tuples=1, nbytes=nbytes)
        assert net.total_messages == ship_messages(nbytes)

    def test_cost_model_estimate_uses_same_formula(self, catalog):
        model = CostModel(catalog)
        cols = frozenset({ColumnRef("DEPT", "DNO"), ColumnRef("DEPT", "MGR")})
        for card in (1.0, 50.0, 1000.0):
            estimated = model.ship_cost(card, cols)
            nbytes = int(math.ceil(card * model.row_width(cols)))
            net = NetworkSim()
            net.transfer("A", "B", tuples=int(card), nbytes=nbytes)
            assert net.total_messages == estimated.msgs
