"""Tests of the public API surface: everything exported exists, is
documented, and the documented quickstart actually runs."""

import importlib
import inspect
import pkgutil

import repro


class TestExports:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        assert repro.__version__.count(".") == 2

    def test_subpackage_alls_resolve(self):
        for pkg_name in (
            "repro.catalog", "repro.storage", "repro.query", "repro.plans",
            "repro.cost", "repro.stars", "repro.optimizer", "repro.executor",
            "repro.baseline", "repro.workloads", "repro.bench",
        ):
            module = importlib.import_module(pkg_name)
            for name in getattr(module, "__all__", ()):
                assert hasattr(module, name), f"{pkg_name}.{name}"


class TestDocstrings:
    def test_every_module_documented(self):
        missing = []
        for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
            module = importlib.import_module(info.name)
            if not (module.__doc__ or "").strip():
                missing.append(info.name)
        assert not missing, f"undocumented modules: {missing}"

    def test_every_public_export_documented(self):
        missing = []
        for name in repro.__all__:
            if name.startswith("__"):
                continue
            obj = getattr(repro, name)
            if inspect.isclass(obj) or inspect.isfunction(obj):
                if not (inspect.getdoc(obj) or "").strip():
                    missing.append(name)
        assert not missing, f"undocumented exports: {missing}"

    def test_public_methods_of_key_classes_documented(self):
        from repro import Catalog, QueryExecutor, StarburstOptimizer, StarEngine

        missing = []
        for cls in (Catalog, StarburstOptimizer, StarEngine, QueryExecutor):
            for name, member in inspect.getmembers(cls, inspect.isfunction):
                if name.startswith("_"):
                    continue
                if not (inspect.getdoc(member) or "").strip():
                    missing.append(f"{cls.__name__}.{name}")
        assert not missing, f"undocumented methods: {missing}"


class TestReadmeQuickstart:
    def test_quickstart_snippet_runs(self):
        from repro import StarburstOptimizer, QueryExecutor, render_tree
        from repro.workloads import paper_catalog, paper_database

        catalog = paper_catalog()
        database = paper_database(catalog)
        optimizer = StarburstOptimizer(catalog)
        result = optimizer.optimize(
            "SELECT NAME, ADDRESS, MGR FROM DEPT, EMP "
            "WHERE DEPT.DNO = EMP.DNO AND MGR = 'Haas'"
        )
        assert render_tree(result.best_plan, show_properties=True)
        rows = QueryExecutor(database).run(result.query, result.best_plan)
        assert rows.stats.total_io > 0
        assert len(rows) > 0

    def test_readme_hash_join_snippet_runs(self):
        from repro import StarburstOptimizer, default_rules, parse_rules
        from repro.workloads import paper_catalog, paper_database

        catalog = paper_catalog()
        paper_database(catalog)
        rules = default_rules()
        parse_rules(
            """
            extend JMeth {
                where HP = hashable_preds(P, T1, T2);
                alt if HP != {} -> JOIN(HA, Glue(T1, {}), Glue(T2, IP), HP, P - IP);
            }
            """,
            base=rules,
        )
        optimizer = StarburstOptimizer(catalog, rules=rules)
        result = optimizer.optimize(
            "SELECT NAME FROM DEPT, EMP WHERE DEPT.DNO = EMP.DNO"
        )
        assert result.best_plan is not None
