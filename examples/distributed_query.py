#!/usr/bin/env python3
"""Distributed optimization: the R*-style join-site alternatives.

Places DEPT at site N.Y. and EMP at site L.A. with the query running at
L.A. (the Figure 3 placement).  Shows:

* how the PermutedJoin/RemoteJoin STARs dictate candidate join sites;
* the SHIP operators Glue injects to satisfy [site = ...] requirements;
* how re-weighting communication cost changes the chosen plan.
"""

from repro import (
    CostWeights,
    QueryExecutor,
    StarburstOptimizer,
    naive_evaluate,
    render_tree,
)
from repro.plans.operators import JOIN, SHIP
from repro.stars.builtin_rules import extended_rules
from repro.workloads import figure1_query, paper_catalog, paper_database


def describe(result) -> None:
    plan = result.best_plan
    join = next(n for n in plan.nodes() if n.op == JOIN)
    ships = [n for n in plan.nodes() if n.op == SHIP]
    print(f"  estimated cost : {result.best_cost:.1f} ({plan.props.cost})")
    print(f"  join executes at {join.props.site}; "
          f"{len(ships)} SHIP operator(s); result delivered to {plan.props.site}")
    print(render_tree(plan))


def main() -> None:
    catalog = paper_catalog(distributed=True)
    database = paper_database(catalog)
    query = figure1_query(catalog)
    print(f"query: {query}")
    print(f"DEPT at {catalog.table('DEPT').site}, EMP at {catalog.table('EMP').site}, "
          f"query site {catalog.query_site}\n")

    print("default weights (a datagram costs ~2 page I/Os):")
    result = StarburstOptimizer(catalog).optimize(query)
    describe(result)

    # Every candidate join site appears in the plan table — the 4.2 STAR
    # generated SitedJoin alternatives for each site in σ.
    sites = sorted(
        {
            node.props.site
            for plan in result.engine.plan_table.all_plans()
            for node in plan.nodes()
            if node.op == JOIN
        }
    )
    print(f"\ncandidate join sites explored: {sites}")

    print("\nwith free communication (w_msg = w_byte = 0):")
    free = StarburstOptimizer(
        catalog, weights=CostWeights(w_msg=0.0, w_byte=0.0)
    ).optimize(query)
    describe(free)

    print("\nwith very expensive communication (w_msg = 1000):")
    pricey = StarburstOptimizer(
        catalog, weights=CostWeights(w_msg=1000.0)
    ).optimize(query)
    describe(pricey)

    # The semijoin filtration strategy (one of the paper's omitted-for-
    # brevity strategies) plugs in as rule data and produces the classic
    # [BERN 81] pattern: project → ship → filter at home → ship survivors.
    with_sj = StarburstOptimizer(
        catalog, rules=extended_rules(semijoin=True)
    ).optimize(query)
    sj_plans = [
        p
        for p in with_sj.engine.plan_table.all_plans()
        if any(n.op == JOIN and n.flavor == "SJ" for n in p.nodes())
    ]
    print(f"\nwith the semijoin rules enabled, {len(sj_plans)} semijoin "
          "plan(s) were generated; one of them:")
    if sj_plans:
        print(render_tree(sj_plans[0]))

    # All variants still compute the same answer.
    executor = QueryExecutor(database)
    reference = naive_evaluate(query, database).as_multiset()
    for r in (result, free, pricey, with_sj):
        assert executor.run(query, r.best_plan).as_multiset() == reference
    print("\nall plans return identical answers ✓")


if __name__ == "__main__":
    main()
