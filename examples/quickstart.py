#!/usr/bin/env python3
"""Quickstart: optimize and run the paper's example query.

Builds the DEPT/EMP catalog behind Figure 1, optimizes

    SELECT NAME, ADDRESS, MGR
    FROM DEPT, EMP
    WHERE DEPT.DNO = EMP.DNO AND MGR = 'Haas'

with the full STAR repertoire, explains the chosen plan, executes it,
and cross-checks the answer against the naive reference evaluator.
"""

from repro import QueryExecutor, StarburstOptimizer, naive_evaluate, render_tree
from repro.workloads import figure1_query, paper_catalog, paper_database


def main() -> None:
    # 1. Catalog + data (deterministic synthetic EMP/DEPT).
    catalog = paper_catalog()
    database = paper_database(catalog)
    query = figure1_query(catalog)
    print(f"query: {query}\n")

    # 2. Optimize.  The default optimizer loads the paper's whole rule
    #    repertoire (sections 4.1-4.5) from DSL text.
    optimizer = StarburstOptimizer(catalog)
    result = optimizer.optimize(query)
    print(f"{len(result.alternatives)} alternative plan(s) survived pruning;")
    print(f"cheapest (estimated cost {result.best_cost:.1f}):\n")
    print(render_tree(result.best_plan, show_properties=True))

    # 3. Execute the chosen plan.
    executor = QueryExecutor(database)
    answer = executor.run(query, result.best_plan)
    print(f"\nexecuted: {len(answer)} rows, "
          f"{answer.stats.total_io} page I/Os, "
          f"{answer.stats.tuples_flowed} tuples flowed")
    print("first rows:")
    for row in sorted(answer.rows)[:5]:
        print("  ", dict(zip(answer.columns, row)))

    # 4. Differential check against the brute-force evaluator.
    reference = naive_evaluate(query, database)
    assert answer.as_multiset() == reference.as_multiset()
    print(f"\nanswer matches the naive reference evaluator "
          f"({len(reference)} rows) ✓")


if __name__ == "__main__":
    main()
