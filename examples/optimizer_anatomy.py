#!/usr/bin/env python3
"""A guided tour of one optimization, from rule text to executed plan.

Walks the paper's machinery step by step on a three-table query:

1. the rule DSL and what JMeth looks like as data;
2. STAR expansion of one JoinRoot reference, with the expansion trace;
3. the property vector of the winning plan at every node (Figure 2);
4. the plan table after bottom-up enumeration (shared fragments);
5. execution with actual-vs-estimated accounting.
"""

from repro import OptimizerConfig, QueryExecutor, StarburstOptimizer, parse_query
from repro.plans.plan import render_tree
from repro.workloads.paper import paper_catalog, paper_database, with_proj


def main() -> None:
    catalog = paper_catalog(dept_rows=30, emp_rows=800)
    database = paper_database(catalog)
    with_proj(catalog, database, proj_rows=400)
    query = parse_query(
        "SELECT NAME, TITLE FROM DEPT, EMP, PROJ "
        "WHERE DEPT.DNO = EMP.DNO AND EMP.ENO = PROJ.ENO AND MGR = 'Haas' "
        "ORDER BY NAME",
        catalog,
    )
    print(f"query: {query}\n")

    # 1. Rules are data.
    optimizer = StarburstOptimizer(catalog, config=OptimizerConfig(trace=True))
    print("the JMeth STAR, as loaded from DSL text:")
    print(optimizer.rules.get("JMeth"))

    # 2-4. Optimize with tracing on.
    result = optimizer.optimize(query)
    print("\nexpansion trace (each line: STAR reference -> plans):")
    for line in result.engine.trace().splitlines()[:12]:
        print("  " + line)
    print(f"  ... ({len(result.engine.trace().splitlines())} lines total)")

    print("\nplan table contents (TABLES/PREDS equivalence classes):")
    for tables, preds in sorted(
        result.engine.plan_table.keys(), key=lambda k: (len(k[0]), sorted(k[0]))
    ):
        sap = result.engine.plan_table.lookup(tables, preds)
        print(f"  {{{', '.join(sorted(tables))}}} with {len(preds)} pred(s): "
              f"{len(sap)} surviving plan(s)")

    print("\nwinning plan with its Figure-2 property vector per node:")
    print(render_tree(result.best_plan, show_properties=True))
    for node in result.best_plan.nodes():
        props = node.props
        print(f"\n  {node.op}({node.flavor or ''}) ->")
        for line in props.describe().splitlines():
            print(f"    {line}")
        break  # root only; drop the break to dump every node

    # 5. Execute, compare estimate vs. actual.
    answer = QueryExecutor(database).run(query, result.best_plan)
    print(f"\nestimated cardinality {result.best_plan.props.card:.0f} "
          f"vs actual {len(answer)} rows")
    print(f"estimated IO {result.best_plan.props.cost.io:.0f} "
          f"vs actual {answer.stats.total_io} page touches")
    print(f"optimization took {result.elapsed_seconds * 1000:.1f} ms, "
          f"{result.stats.star_references} STAR references, "
          f"{result.stats.conditions_evaluated} condition evaluations")


if __name__ == "__main__":
    main()
