#!/usr/bin/env python3
"""Extending the optimizer as a Database Customizer (paper section 5).

Three escalating extensions, none of which touches engine code:

1. add the hash-join strategy (4.5.1) as DSL rule text;
2. author a brand-new strategy — "sort tiny outers eagerly" — guarded by
   a custom condition function registered by name (the paper's compiled
   "C function");
3. try to install a *broken* rule set and watch the static validator
   reject it before any query runs.
"""

from repro import (
    QueryExecutor,
    RuleError,
    StarburstOptimizer,
    default_rules,
    naive_evaluate,
    parse_rules,
    validate_rules,
)
from repro.plans.operators import JOIN
from repro.stars.builtin_rules import HASH_JOIN_RULES
from repro.stars.registry import default_registry
from repro.workloads import figure1_query, paper_catalog, paper_database


def flavors_used(result):
    return sorted(
        {n.flavor for p in result.alternatives for n in p.nodes() if n.op == JOIN}
    )


def main() -> None:
    catalog = paper_catalog()
    database = paper_database(catalog)
    query = figure1_query(catalog)
    executor = QueryExecutor(database)
    reference = naive_evaluate(query, database).as_multiset()

    # --- step 0: the base repertoire -------------------------------------
    rules = default_rules()
    result = StarburstOptimizer(catalog, rules=rules).optimize(query)
    print(f"base repertoire: join flavors {flavors_used(result)}, "
          f"best cost {result.best_cost:.1f}")

    # --- step 1: add hash join as data ------------------------------------
    print("\nadding the 4.5.1 hash-join alternative (pure rule text):")
    print(HASH_JOIN_RULES.strip())
    parse_rules(HASH_JOIN_RULES, base=rules)
    result = StarburstOptimizer(catalog, rules=rules).optimize(query)
    print(f"-> join flavors now {flavors_used(result)}, "
          f"best cost {result.best_cost:.1f}")
    assert executor.run(query, result.best_plan).as_multiset() == reference

    # --- step 2: a brand-new strategy with a custom condition -------------
    registry = default_registry()
    registry.register(
        "tiny_stream",
        lambda ctx, stream: all(
            ctx.catalog.table_stats(t).card <= 64 for t in stream.tables
        ),
    )
    new_rule = """
    extend JMeth {
        // Eagerly sort-merge when the outer is tiny: the sort is nearly
        // free and the merge preserves a useful order.
        alt if tiny_stream(T1) and nonempty(SP) ->
            JOIN(MG, Glue(T1 [order = merge_cols(SP, T1)], {}),
                     Glue(T2 [order = merge_cols(SP, T2)], IP),
                     SP, P - (IP | SP));
    }
    """
    print("\nadding a DBC-authored strategy guarded by a custom condition")
    print("function 'tiny_stream' (registered by name, like the paper's")
    print("compiled C functions):")
    parse_rules(new_rule, base=rules)
    report = validate_rules(rules, registry)
    print(f"validator: ok={report.ok}, warnings={report.warnings}")
    result = StarburstOptimizer(catalog, rules=rules, registry=registry).optimize(query)
    print(f"-> {len(result.alternatives)} final alternatives, "
          f"best cost {result.best_cost:.1f}")
    assert executor.run(query, result.best_plan).as_multiset() == reference
    print("answers still correct ✓")

    # --- step 3: the validator rejects broken rule sets -------------------
    print("\ninstalling a deliberately broken rule set:")
    broken = parse_rules(
        """
        star AccessRoot(T, C, P) { alt -> Helper(T, C, P); }
        star Helper(T, C, P) { alt -> AccessRoot(T, C, P); }
        star JoinRoot(T1, T2, P) { alt -> Missing(T1, T2, P, 'x'); }
        """
    )
    report = validate_rules(broken, registry)
    for error in report.errors:
        print(f"  validator error: {error}")
    try:
        StarburstOptimizer(catalog, rules=broken)
    except RuleError:
        print("optimizer construction refused the broken rule set ✓")


if __name__ == "__main__":
    main()
