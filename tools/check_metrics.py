#!/usr/bin/env python3
"""Metrics-name lint (run in CI as a required step).

The metric catalog in ``docs/observability.md`` is the contract between
the code and anyone building dashboards or alerts on the ``/metrics``
endpoint.  This lint keeps it honest, both directions:

1. **Coverage** — every metric name the code emits (literal first
   arguments to ``.inc`` / ``.set_gauge`` / ``.observe``, f-string names
   with the interpolated part wildcarded to ``*``, and every
   ``ingest(prefix=...)`` as ``prefix*``) must be matched by a catalog
   entry.
2. **Staleness** — every catalog entry must still match at least one
   name the code emits; entries for deleted metrics fail the lint.

Catalog entries are the backticked first column of the table rows in
the "Metric catalog" section; entries may use ``*`` wildcards
(``serve.tier.*``).  Exit status 0 when clean, 1 with one ``error:``
line per problem.
"""

from __future__ import annotations

import ast
import re
import sys
from fnmatch import fnmatchcase
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src" / "repro"
DOC = REPO / "docs" / "observability.md"

#: Registry methods whose first argument is a metric name.
EMITTERS = ("inc", "set_gauge", "observe")

_CATALOG_ROW = re.compile(r"^\|\s*`([^`]+)`")


def _name_of(arg: ast.expr) -> str | None:
    """A literal or f-string metric name, f-string holes as ``*``."""
    if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
        return arg.value
    if isinstance(arg, ast.JoinedStr):
        parts = []
        for piece in arg.values:
            if isinstance(piece, ast.Constant):
                parts.append(str(piece.value))
            else:
                parts.append("*")
        return "".join(parts)
    return None


def used_names() -> dict[str, list[str]]:
    """``{name_or_pattern: [file:line, ...]}`` for every emit site."""
    used: dict[str, list[str]] = {}
    for path in sorted(SRC.rglob("*.py")):
        if path.name == "metrics.py":
            continue  # the registry itself: emits via caller-given names
        tree = ast.parse(path.read_text(), filename=str(path))
        rel = str(path.relative_to(REPO))
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Attribute):
                continue
            name = None
            if func.attr in EMITTERS and node.args:
                name = _name_of(node.args[0])
            elif func.attr == "ingest":
                for keyword in node.keywords:
                    if keyword.arg == "prefix":
                        prefix = _name_of(keyword.value)
                        if prefix is not None:
                            name = prefix + "*"
            if name is not None:
                used.setdefault(name, []).append(f"{rel}:{node.lineno}")
    return used


def catalog_entries() -> dict[str, int]:
    """``{pattern: line}`` from the Metric catalog table in the doc."""
    if not DOC.exists():
        return {}
    entries: dict[str, int] = {}
    in_section = False
    for lineno, line in enumerate(DOC.read_text().splitlines(), start=1):
        if line.startswith("## "):
            in_section = "metric catalog" in line.lower()
            continue
        if not in_section:
            continue
        match = _CATALOG_ROW.match(line)
        if match and match.group(1) not in ("name", "metric"):
            entries[match.group(1)] = lineno
    return entries


def _matches(name: str, pattern: str) -> bool:
    return name == pattern or fnmatchcase(name, pattern)


def main() -> int:
    used = used_names()
    entries = catalog_entries()
    errors: list[str] = []
    if not entries:
        errors.append(
            f"error: no metric catalog found in {DOC.relative_to(REPO)} "
            "(expected a '## Metric catalog' section with a table)"
        )
    for name, sites in sorted(used.items()):
        if not any(_matches(name, pattern) for pattern in entries):
            errors.append(
                f"error: metric {name!r} (emitted at {sites[0]}) is not "
                f"documented in {DOC.relative_to(REPO)}"
            )
    for pattern, lineno in sorted(entries.items()):
        if not any(_matches(name, pattern) for name in used):
            errors.append(
                f"error: catalog entry {pattern!r} "
                f"({DOC.relative_to(REPO)}:{lineno}) matches no metric "
                "emitted by the code"
            )
    for line in errors:
        print(line, file=sys.stderr)
    if not errors:
        print(
            f"metrics lint: {len(used)} emitted name(s)/pattern(s) covered "
            f"by {len(entries)} catalog entr(ies)"
        )
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
