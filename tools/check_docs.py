#!/usr/bin/env python3
"""Documentation lint (run in CI as a required step).

Two checks, both cheap and purely static:

1. **Module docstrings** — every public module under ``src/repro/``
   (anything not starting with ``_``, plus ``__init__.py`` and
   ``__main__.py``) must carry a module docstring.  The docstring-first
   convention is what makes ``docs/architecture.md``'s package map
   verifiable against the code.
2. **CLI coverage** — every subcommand registered via ``add_parser``
   in ``src/repro/__main__.py`` must have a matching ``## `name```
   section in ``docs/cli.md``, and ``docs/cli.md`` must not document
   subcommands that no longer exist.
3. **LOLEPOP lowering coverage** — the per-LOLEPOP table in
   ``docs/backends.md`` must have exactly one row per operator
   declared in ``src/repro/plans/operators.py`` (the ``NAME =
   "NAME"`` module constants), and every row's operator must really
   exist — both directions, so the lowering reference can neither rot
   nor invent operators.

Exit status 0 when clean, 1 with one ``error:`` line per problem.
"""

from __future__ import annotations

import ast
import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src" / "repro"
CLI_DOC = REPO / "docs" / "cli.md"
BACKENDS_DOC = REPO / "docs" / "backends.md"
MAIN = SRC / "__main__.py"
OPERATORS = SRC / "plans" / "operators.py"


def public_modules() -> list[Path]:
    """Every module that is part of the public surface: not ``_private``,
    dunders (``__init__``, ``__main__``) included."""
    modules = []
    for path in sorted(SRC.rglob("*.py")):
        name = path.stem
        if name.startswith("_") and not name.startswith("__"):
            continue
        modules.append(path)
    return modules


def check_docstrings() -> list[str]:
    errors = []
    for path in public_modules():
        tree = ast.parse(path.read_text(), filename=str(path))
        if not ast.get_docstring(tree):
            rel = path.relative_to(REPO)
            errors.append(f"{rel}: public module has no module docstring")
    return errors


def registered_subcommands() -> set[str]:
    """Subcommand names passed to ``add_parser(...)`` in ``__main__.py``."""
    tree = ast.parse(MAIN.read_text(), filename=str(MAIN))
    names = set()
    for node in ast.walk(tree):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "add_parser"
            and node.args
            and isinstance(node.args[0], ast.Constant)
            and isinstance(node.args[0].value, str)
        ):
            names.add(node.args[0].value)
    return names


def documented_subcommands() -> set[str]:
    """``## `name``` headings in docs/cli.md."""
    text = CLI_DOC.read_text()
    return set(re.findall(r"^## `([a-z0-9-]+)`", text, flags=re.MULTILINE))


def check_cli_doc() -> list[str]:
    if not CLI_DOC.exists():
        return [f"{CLI_DOC.relative_to(REPO)}: missing"]
    registered = registered_subcommands()
    documented = documented_subcommands()
    errors = []
    for name in sorted(registered - documented):
        errors.append(
            f"docs/cli.md: subcommand {name!r} is registered in "
            f"src/repro/__main__.py but has no '## `{name}`' section"
        )
    for name in sorted(documented - registered):
        errors.append(
            f"docs/cli.md: documents subcommand {name!r} which is not "
            "registered in src/repro/__main__.py"
        )
    return errors


def declared_lolepops() -> set[str]:
    """Operator names declared as ``NAME = "NAME"`` module constants in
    ``plans/operators.py`` (flavor tuples and helpers don't match)."""
    tree = ast.parse(OPERATORS.read_text(), filename=str(OPERATORS))
    names = set()
    for node in tree.body:
        if (
            isinstance(node, ast.Assign)
            and len(node.targets) == 1
            and isinstance(node.targets[0], ast.Name)
            and isinstance(node.value, ast.Constant)
            and node.targets[0].id == node.value.value
        ):
            names.add(node.targets[0].id)
    return names


def documented_lolepops() -> list[str]:
    """First-cell operator names from docs/backends.md's per-LOLEPOP
    lowering table: rows shaped ``| `OP` | ... |``."""
    text = BACKENDS_DOC.read_text()
    return re.findall(r"^\| `([A-Z]+)` \|", text, flags=re.MULTILINE)


def check_backends_doc() -> list[str]:
    if not BACKENDS_DOC.exists():
        return [f"{BACKENDS_DOC.relative_to(REPO)}: missing"]
    declared = declared_lolepops()
    documented = documented_lolepops()
    errors = []
    for name in sorted(set(documented) - declared):
        errors.append(
            f"docs/backends.md: lowering table names operator {name!r} "
            "which src/repro/plans/operators.py does not declare"
        )
    for name in sorted(declared - set(documented)):
        errors.append(
            f"docs/backends.md: operator {name!r} is declared in "
            "src/repro/plans/operators.py but has no lowering-table row"
        )
    for name in sorted({n for n in documented if documented.count(n) > 1}):
        errors.append(
            f"docs/backends.md: operator {name!r} has more than one "
            "lowering-table row"
        )
    return errors


def main() -> int:
    errors = check_docstrings() + check_cli_doc() + check_backends_doc()
    for error in errors:
        print(f"error: {error}", file=sys.stderr)
    modules = len(public_modules())
    subcommands = len(registered_subcommands())
    lolepops = len(declared_lolepops())
    verdict = "PASS" if not errors else f"FAIL ({len(errors)} problem(s))"
    print(
        f"docs lint: {verdict} — {modules} module(s), "
        f"{subcommands} subcommand(s), {lolepops} LOLEPOP(s) checked"
    )
    return 1 if errors else 0


if __name__ == "__main__":
    raise SystemExit(main())
