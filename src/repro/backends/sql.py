"""Lowering a chosen QEP to deterministic standalone SQL.

The emitter walks the plan bottom-up and produces one nested ``SELECT``
per LOLEPOP, so the emitted statement has the same shape as the plan
tree (``docs/backends.md`` has the full per-operator mapping).  Three
translation problems dominate:

**Sideways information passing.**  A nested-loop inner subtree carries
predicates referencing outer tables (``ACCESS(index, EMP_DNO, ...,
{DEPT.DNO = EMP.DNO})``); SQL has no per-probe parameter binding, so
such *free* predicates are hoisted up the tree and attached as join
conditions at the first ancestor whose table set covers them — a
row-set-preserving move because conjunctive filters commute across the
inner side of a nested-loop join.  Hoisting across operators where a
filter does **not** commute (UNION, DEDUP, INTERSECT, PROJECT, a
materialized temp) raises :class:`~repro.errors.UnsupportedPlanError`.

**NULL semantics.**  The engine's :class:`~repro.query.predicates.Comparison`
returns ``False`` whenever either side is ``None`` — two-valued logic —
while SQL comparisons are three-valued.  Every comparison is therefore
emitted with explicit guards, ``(a IS NOT NULL AND b IS NOT NULL AND
a op b)``, which is never NULL, so ``NOT`` composes identically on both
sides.  The hash-semijoin flavor is the one deliberate exception: the
engine's ``SJ`` matches via set membership (``None == None`` holds), so
its ``EXISTS`` probe uses SQLite's null-safe ``IS`` operator.

**Tuple identifiers.**  Index streams carry the ``#TID`` pseudo-column;
the SQLite side exposes a synthetic ``__tid`` rowid-ordinal column (see
:mod:`repro.backends.sqlite`) that plays the same role: ``GET`` becomes
a join on it.  TIDs never appear in a final projection, so the engine's
``RID(page, slot)`` pairs and the ordinal never have to agree — each
backend only needs to be internally consistent.

Physical choices that do not change the row set — join order/method,
SHIP sites, SORT placement, which index served a probe — are collapsed
and recorded as ``--`` comments in the artifact (and in
:attr:`CompiledPlan.notes`), keeping the statement runnable on a stock
single-node SQLite while still documenting the plan it came from.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.backends.base import CompiledPlan
from repro.errors import UnsupportedPlanError
from repro.executor.runtime import _hash_sides
from repro.plans.operators import (
    ACCESS,
    BUILDIX,
    DEDUP,
    FILTER,
    GET,
    INTERSECT,
    JOIN,
    PROJECT,
    SHIP,
    SORT,
    STORE,
    UNION,
)
from repro.plans.plan import PlanNode
from repro.query.expressions import Arith, ColumnRef, Expr, FuncCall, Literal
from repro.query.predicates import (
    Comparison,
    Conjunction,
    Disjunction,
    Negation,
    Predicate,
)
from repro.query.query import QueryBlock
from repro.storage.table import TID_NAME

#: Name of the synthetic tuple-identifier column every loaded SQLite
#: table carries (see :func:`repro.backends.sqlite.load_database`).
TID_SQL_COLUMN = "__tid"

Resolve = Callable[[ColumnRef], str]


def _q(name: str) -> str:
    """Quote an SQL identifier (doubling embedded quotes)."""
    return '"' + name.replace('"', '""') + '"'


def _col_alias(ref: ColumnRef) -> str:
    """The stable output name a stream column gets in emitted SQL:
    ``EMP.DNO`` travels as the quoted identifier ``"EMP.DNO"``."""
    return _q(f"{ref.table}.{ref.column}")


def _sorted_cols(cols) -> tuple[ColumnRef, ...]:
    return tuple(sorted(cols, key=str))


def _sorted_preds(preds) -> tuple[Predicate, ...]:
    return tuple(sorted(preds, key=str))


def _render_literal(value: Any) -> str:
    if value is None:
        return "NULL"
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, str):
        return "'" + value.replace("'", "''") + "'"
    return repr(value)


def _render_expr(expr: Expr, resolve: Resolve) -> str:
    if isinstance(expr, ColumnRef):
        return resolve(expr)
    if isinstance(expr, Literal):
        return _render_literal(expr.value)
    if isinstance(expr, Arith):
        left = _render_expr(expr.left, resolve)
        right = _render_expr(expr.right, resolve)
        if expr.op == "/":
            # Python `/` is true division; SQLite `/` truncates on two
            # integers.  CAST forces real division on both engines.
            return f"(CAST({left} AS REAL) / {right})"
        if expr.op == "%":
            # Python `%` follows the divisor's sign; SQLite's follows the
            # dividend's.  ((a % b) + b) % b agrees with Python for both.
            return f"((({left} % {right}) + {right}) % {right})"
        return f"({left} {expr.op} {right})"
    if isinstance(expr, FuncCall):
        args = [_render_expr(a, resolve) for a in expr.args]
        if expr.name == "mod":
            return f"((({args[0]} % {args[1]}) + {args[1]}) % {args[1]})"
        if expr.name in ("abs", "lower", "upper", "length"):
            return f"{expr.name}({', '.join(args)})"
    raise UnsupportedPlanError(f"no SQL lowering for expression {expr}")


def _render_pred(pred: Predicate, resolve: Resolve) -> str:
    """Render a predicate under the engine's two-valued NULL semantics:
    a guarded comparison evaluates to 0 (not NULL) when either side is
    NULL, so NOT/AND/OR compose exactly like the interpreter."""
    if isinstance(pred, Comparison):
        left = _render_expr(pred.left, resolve)
        right = _render_expr(pred.right, resolve)
        guards = []
        for side, text in ((pred.left, left), (pred.right, right)):
            if isinstance(side, Literal) and side.value is not None:
                continue  # a non-NULL literal needs no guard
            guards.append(f"{text} IS NOT NULL")
        guards.append(f"{left} {pred.op} {right}")
        return "(" + " AND ".join(guards) + ")"
    if isinstance(pred, Conjunction):
        return "(" + " AND ".join(_render_pred(p, resolve) for p in pred.parts) + ")"
    if isinstance(pred, Disjunction):
        return "(" + " OR ".join(_render_pred(p, resolve) for p in pred.parts) + ")"
    if isinstance(pred, Negation):
        return f"(NOT {_render_pred(pred.part, resolve)})"
    raise UnsupportedPlanError(f"no SQL lowering for predicate {pred}")


@dataclass(frozen=True)
class _Rel:
    """One lowered subtree: a complete SELECT, its exported columns
    (each aliased per :func:`_col_alias`), and the *free* predicates not
    yet applied because they reference tables outside the subtree."""

    sql: str
    cols: tuple[ColumnRef, ...]
    free: frozenset[Predicate]


class SqlEmitter:
    """One plan → one deterministic SQL statement (stateful per call)."""

    def __init__(self) -> None:
        self._ctes: dict[str, tuple[str, str]] = {}  # digest -> (name, sql)
        self._cte_cols: dict[str, tuple[ColumnRef, ...]] = {}
        self._notes: list[str] = []
        self._alias_counter = 0

    # -- small helpers -----------------------------------------------------------

    def _alias(self, prefix: str) -> str:
        self._alias_counter += 1
        return f"{prefix}{self._alias_counter}"

    def _note(self, text: str) -> None:
        if text not in self._notes:
            self._notes.append(text)

    @staticmethod
    def _scope(alias: str, cols) -> Resolve:
        """Resolver over one subquery alias exporting ``cols``."""
        known = set(cols)

        def resolve(ref: ColumnRef) -> str:
            if ref not in known:
                raise UnsupportedPlanError(
                    f"predicate references column {ref} absent from the stream"
                )
            return f"{alias}.{_col_alias(ref)}"

        return resolve

    @staticmethod
    def _split_preds(preds, covered: frozenset[str]):
        """Partition predicates into (applicable now, free)."""
        local, free = [], []
        for pred in _sorted_preds(preds):
            (local if pred.tables() <= covered else free).append(pred)
        return local, frozenset(free)

    def _where(self, preds, resolve: Resolve) -> str:
        if not preds:
            return ""
        return " WHERE " + " AND ".join(
            _render_pred(p, resolve) for p in _sorted_preds(preds)
        )

    # -- dispatch ----------------------------------------------------------------

    def lower(self, node: PlanNode) -> _Rel:
        if node.op == ACCESS:
            return self._access(node)
        if node.op == GET:
            return self._get(node)
        if node.op == FILTER:
            return self._filter(node)
        if node.op == SORT:
            return self._passthrough(node, f"SORT({', '.join(str(c) for c in node.param('order', ()))}) elided: row-set comparison is order-insensitive and the outer query re-derives ORDER BY")
        if node.op == SHIP:
            return self._passthrough(
                node,
                f"SHIP {node.inputs[0].props.site} -> {node.param('to_site')} "
                "collapsed: emitted SQL runs single-site",
            )
        if node.op == JOIN:
            return self._join(node)
        if node.op == UNION:
            return self._union(node)
        if node.op == DEDUP:
            return self._dedup(node)
        if node.op == PROJECT:
            return self._project(node)
        if node.op == INTERSECT:
            return self._intersect(node)
        if node.op in (STORE, BUILDIX):
            # Bare STORE/BUILDIX at stream position: materialize as a
            # CTE and stream it back out, like the interpreter does.
            name, cols = self._temp_cte(node)
            return _Rel(f"SELECT * FROM {name}", cols, frozenset())
        raise UnsupportedPlanError("no SQL lowering routine", op=node.op)

    # -- ACCESS ------------------------------------------------------------------

    def _access(self, node: PlanNode) -> _Rel:
        if node.flavor == "temp" or node.inputs:
            return self._access_temp(node)
        table = node.param("table")
        columns = node.param("columns") or frozenset()
        preds = node.param("preds") or frozenset()
        alias = self._alias("t")

        if node.flavor == "index":
            path = node.param("path")
            self._note(
                f"ACCESS(index) via {path.name} on {table} lowered to a "
                "predicate scan (probe bounds become WHERE conditions)"
            )
            if path.clustered:
                providable = None  # clustered leaves carry the full row
            else:
                providable = {ColumnRef(table, c) for c in path.columns}
        else:
            providable = None
            if node.flavor == "btree":
                self._note(
                    f"ACCESS(btree) on {table}: clustered key-order scan "
                    "lowered to a sequential scan"
                )

        def resolve(ref: ColumnRef) -> str:
            if ref.table != table:
                raise UnsupportedPlanError(
                    f"scan of {table} cannot resolve {ref}", op=ACCESS
                )
            if ref.column.startswith("#"):
                return f"{alias}.{_q(TID_SQL_COLUMN)}"
            if providable is not None and ref not in providable:
                raise UnsupportedPlanError(
                    f"unclustered index scan cannot provide {ref}", op=ACCESS
                )
            return f"{alias}.{_q(ref.column)}"

        out_cols = _sorted_cols(columns)
        items = ", ".join(f"{resolve(c)} AS {_col_alias(c)}" for c in out_cols)
        local, free = self._split_preds(preds, frozenset((table,)))
        sql = f"SELECT {items} FROM {_q(table)} AS {alias}" + self._where(
            local, resolve
        )
        return _Rel(sql, out_cols, free)

    def _access_temp(self, node: PlanNode) -> _Rel:
        """Rescan of a materialized temp: a SELECT from its CTE."""
        if not node.inputs:
            raise UnsupportedPlanError(
                "temp access without a producing subtree", op=ACCESS
            )
        name, stored = self._temp_cte(node.inputs[0])
        columns = node.param("columns") or node.props.cols
        preds = node.param("preds") or frozenset()
        alias = self._alias("s")
        stored_set = set(stored)
        out_cols = tuple(c for c in _sorted_cols(columns) if c in stored_set)
        resolve = self._scope(alias, stored)
        items = ", ".join(f"{resolve(c)} AS {_col_alias(c)}" for c in out_cols)
        local, free = self._split_preds(preds, node.props.tables)
        sql = f"SELECT {items} FROM {name} AS {alias}" + self._where(local, resolve)
        return _Rel(sql, out_cols, free)

    def _temp_cte(self, node: PlanNode) -> tuple[str, tuple[ColumnRef, ...]]:
        """Materialize a STORE/BUILDIX subtree as a shared CTE (one per
        plan digest, so shared subplans are emitted once)."""
        while node.op == BUILDIX:
            key = ", ".join(str(c) for c in node.param("key", ()))
            self._note(f"BUILDIX({key}) collapsed: dynamic temp index becomes a CTE scan")
            node = node.inputs[0]
        if node.op != STORE:
            raise UnsupportedPlanError("cannot materialize this node", op=node.op)
        digest = node.digest
        cached = self._ctes.get(digest)
        if cached is not None:
            return cached[0], self._cte_cols[digest]
        rel = self.lower(node.inputs[0])
        if rel.free:
            raise UnsupportedPlanError(
                "materialized temp depends on outer bindings: "
                + "; ".join(str(p) for p in _sorted_preds(rel.free)),
                op=STORE,
            )
        schema = _sorted_cols(node.props.cols)
        if set(schema) - set(rel.cols):
            raise UnsupportedPlanError(
                "temp schema not covered by its producing stream", op=STORE
            )
        alias = self._alias("s")
        resolve = self._scope(alias, rel.cols)
        items = ", ".join(f"{resolve(c)} AS {_col_alias(c)}" for c in schema)
        name = f"temp_{digest}"
        sql = f"SELECT {items} FROM ({rel.sql}) AS {alias}"
        self._ctes[digest] = (name, sql)
        self._cte_cols[digest] = schema
        self._note(f"STORE materialized as CTE {name}")
        return name, schema

    # -- GET ---------------------------------------------------------------------

    def _get(self, node: PlanNode) -> _Rel:
        table = node.param("table")
        columns = node.param("columns") or frozenset()
        preds = node.param("preds") or frozenset()
        inner = self.lower(node.inputs[0])
        tid = ColumnRef(table, TID_NAME)
        if tid not in inner.cols:
            raise UnsupportedPlanError(
                f"GET on {table}: input stream lacks a TID", op=GET
            )
        stream = self._alias("s")
        base = self._alias("g")
        fetched = set(columns)
        out_cols = _sorted_cols(set(inner.cols) | fetched)

        def resolve(ref: ColumnRef) -> str:
            # Fetched columns overwrite same-named stream columns, like
            # the interpreter's ``out[column] = raw[pos]``.
            if ref in fetched:
                return f"{base}.{_q(ref.column)}"
            if ref in set(inner.cols):
                return f"{stream}.{_col_alias(ref)}"
            raise UnsupportedPlanError(
                f"GET predicate references unavailable column {ref}", op=GET
            )

        items = ", ".join(f"{resolve(c)} AS {_col_alias(c)}" for c in out_cols)
        covered = node.props.tables | frozenset((table,))
        local, free = self._split_preds(preds, covered)
        free_in = {p for p in inner.free if p.tables() <= covered}
        conds = [
            f"{base}.{_q(TID_SQL_COLUMN)} = {stream}.{_col_alias(tid)}"
        ]
        conds += [
            _render_pred(p, resolve) for p in _sorted_preds(set(local) | free_in)
        ]
        sql = (
            f"SELECT {items} FROM ({inner.sql}) AS {stream}, {_q(table)} AS {base} "
            f"WHERE {' AND '.join(conds)}"
        )
        return _Rel(sql, out_cols, (inner.free - free_in) | free)

    # -- FILTER / passthrough ----------------------------------------------------

    def _filter(self, node: PlanNode) -> _Rel:
        inner = self.lower(node.inputs[0])
        preds = node.param("preds") or frozenset()
        local, free = self._split_preds(preds, node.props.tables)
        alias = self._alias("s")
        resolve = self._scope(alias, inner.cols)
        applicable = set(local) | {
            p for p in inner.free if p.tables() <= node.props.tables
        }
        sql = f"SELECT * FROM ({inner.sql}) AS {alias}" + self._where(
            applicable, resolve
        )
        remaining = (inner.free - applicable) | free
        return _Rel(sql, inner.cols, remaining)

    def _passthrough(self, node: PlanNode, note: str) -> _Rel:
        self._note(note)
        return self.lower(node.inputs[0])

    # -- JOIN --------------------------------------------------------------------

    def _join(self, node: PlanNode) -> _Rel:
        if node.flavor == "SJ":
            return self._join_sj(node)
        outer, inner = node.inputs
        o = self.lower(outer)
        i = self.lower(inner)
        if node.flavor in ("MG", "HA"):
            self._note(
                f"JOIN({node.flavor}) lowered to a predicate join: the "
                "merge/hash physical strategy does not change the row set"
            )
        oa, ia = self._alias("a"), self._alias("b")
        out_cols = _sorted_cols(set(o.cols) | set(i.cols))
        inner_set = set(i.cols)

        def resolve(ref: ColumnRef) -> str:
            if ref in inner_set:
                return f"{ia}.{_col_alias(ref)}"
            if ref in set(o.cols):
                return f"{oa}.{_col_alias(ref)}"
            raise UnsupportedPlanError(
                f"join predicate references unavailable column {ref}", op=JOIN
            )

        covered = node.props.tables
        own = (node.param("join_preds") or frozenset()) | (
            node.param("residual_preds") or frozenset()
        )
        local, free_own = self._split_preds(own, covered)
        hoisted = {p for p in (o.free | i.free) if p.tables() <= covered}
        if hoisted:
            self._note(
                "sideways (per-probe) predicates hoisted to join scope: "
                + "; ".join(str(p) for p in _sorted_preds(hoisted))
            )
        conds = [
            _render_pred(p, resolve) for p in _sorted_preds(set(local) | hoisted)
        ]
        items = ", ".join(f"{resolve(c)} AS {_col_alias(c)}" for c in out_cols)
        sql = f"SELECT {items} FROM ({o.sql}) AS {oa}, ({i.sql}) AS {ia}"
        if conds:
            sql += f" WHERE {' AND '.join(conds)}"
        remaining = ((o.free | i.free) - hoisted) | free_own
        return _Rel(sql, out_cols, remaining)

    def _join_sj(self, node: PlanNode) -> _Rel:
        """Hash semijoin → EXISTS.  The engine matches via set membership
        (``None == None`` holds, residual predicates are ignored), so the
        probe uses null-safe ``IS`` equality, not guarded ``=``."""
        outer, inner = node.inputs
        o = self.lower(outer)
        i = self.lower(inner)
        join_preds = node.param("join_preds") or frozenset()
        sides = _hash_sides(join_preds, outer.props.tables)
        if not sides:
            raise UnsupportedPlanError("semijoin without hashable predicates", op=JOIN)
        if {p for p in i.free if p.tables() & outer.props.tables}:
            raise UnsupportedPlanError(
                "semijoin inner carries predicates on the semijoin outer "
                "(the engine does not bind outer rows across SJ)",
                op=JOIN,
            )
        oa, ia = self._alias("a"), self._alias("b")
        o_resolve = self._scope(oa, o.cols)
        i_resolve = self._scope(ia, i.cols)
        matches = []
        for o_expr, i_expr in sides:
            left = _render_expr(o_expr, o_resolve)
            right = _render_expr(i_expr, i_resolve)
            guards = []
            if not isinstance(o_expr, ColumnRef):
                # The engine skips rows whose key expression *raises*
                # (arithmetic over NULL); a bare column never raises.
                guards += [
                    f"{_render_expr(c, o_resolve)} IS NOT NULL"
                    for c in _sorted_cols(o_expr.columns())
                ]
            if not isinstance(i_expr, ColumnRef):
                guards += [
                    f"{_render_expr(c, i_resolve)} IS NOT NULL"
                    for c in _sorted_cols(i_expr.columns())
                ]
            matches.append(" AND ".join(guards + [f"{left} IS {right}"]))
        self._note(
            "JOIN(SJ) lowered to EXISTS with null-safe IS matching "
            "(the engine's hash-set membership semantics)"
        )
        items = ", ".join(f"{o_resolve(c)} AS {_col_alias(c)}" for c in o.cols)
        sql = (
            f"SELECT {items} FROM ({o.sql}) AS {oa} WHERE EXISTS "
            f"(SELECT 1 FROM ({i.sql}) AS {ia} WHERE {' AND '.join(matches)})"
        )
        return _Rel(sql, o.cols, o.free | i.free)

    # -- UNION / DEDUP / PROJECT / INTERSECT -------------------------------------

    def _union(self, node: PlanNode) -> _Rel:
        left = self.lower(node.inputs[0])
        right = self.lower(node.inputs[1])
        if left.free or right.free:
            raise UnsupportedPlanError(
                "cannot hoist sideways predicates across UNION "
                "(the filter would apply to both branches)",
                op=UNION,
            )
        if set(left.cols) != set(right.cols):
            raise UnsupportedPlanError(
                "UNION branches export different column sets", op=UNION
            )
        # Both branches emit columns in sorted order, so positional
        # UNION ALL lines up; duplicates are preserved like the engine's
        # stream concatenation.
        sql = f"{left.sql} UNION ALL {right.sql}"
        return _Rel(sql, left.cols, frozenset())

    def _dedup(self, node: PlanNode) -> _Rel:
        inner = self.lower(node.inputs[0])
        if inner.free:
            raise UnsupportedPlanError(
                "cannot hoist sideways predicates across DEDUP "
                "(first-row-per-key depends on pre-filter order)",
                op=DEDUP,
            )
        key = tuple(node.param("key", ()))
        key_set = set(key)
        inner_set = set(inner.cols)
        if not key or not key_set <= inner_set:
            raise UnsupportedPlanError(
                "DEDUP key not present in the input stream", op=DEDUP
            )
        # SELECT DISTINCT dedups on *all* columns; that equals the
        # engine's first-row-per-key exactly when equal keys imply equal
        # rows: a TID key on a single-table stream (every carried column
        # is determined by the base row), or a key covering every column.
        tid_keyed = len(node.props.tables) == 1 and any(
            c.column.startswith("#") for c in key
        )
        if not (tid_keyed or key_set == inner_set):
            raise UnsupportedPlanError(
                "DEDUP key does not functionally determine the stream "
                "(DISTINCT would change the row set)",
                op=DEDUP,
            )
        alias = self._alias("s")
        self._note(
            f"DEDUP({', '.join(str(c) for c in key)}) lowered to SELECT "
            "DISTINCT (key functionally determines the stream)"
        )
        sql = f"SELECT DISTINCT * FROM ({inner.sql}) AS {alias}"
        return _Rel(sql, inner.cols, frozenset())

    def _project(self, node: PlanNode) -> _Rel:
        inner = self.lower(node.inputs[0])
        if inner.free:
            raise UnsupportedPlanError(
                "cannot hoist sideways predicates across PROJECT "
                "(the projection may drop their columns)",
                op=PROJECT,
            )
        columns = node.param("columns") or frozenset()
        out_cols = tuple(c for c in inner.cols if c in columns)
        alias = self._alias("s")
        resolve = self._scope(alias, inner.cols)
        items = ", ".join(f"{resolve(c)} AS {_col_alias(c)}" for c in out_cols)
        sql = f"SELECT {items} FROM ({inner.sql}) AS {alias}"
        return _Rel(sql, out_cols, frozenset())

    def _intersect(self, node: PlanNode) -> _Rel:
        left = self.lower(node.inputs[0])
        right = self.lower(node.inputs[1])
        if right.free:
            raise UnsupportedPlanError(
                "cannot hoist sideways predicates out of an INTERSECT "
                "right side (membership would change)",
                op=INTERSECT,
            )
        key = tuple(node.param("key", ()))
        if not key or not (set(key) <= set(left.cols) and set(key) <= set(right.cols)):
            raise UnsupportedPlanError(
                "INTERSECT key not present on both sides", op=INTERSECT
            )
        la, ra = self._alias("a"), self._alias("b")
        # The engine intersects on raw tuples (None == None matches), so
        # the key comparison is null-safe IS, not guarded =.
        conds = " AND ".join(
            f"{la}.{_col_alias(c)} IS {ra}.{_col_alias(c)}" for c in key
        )
        self._note(
            f"INTERSECT({', '.join(str(c) for c in key)}) lowered to "
            "EXISTS with null-safe IS matching"
        )
        sql = (
            f"SELECT * FROM ({left.sql}) AS {la} WHERE EXISTS "
            f"(SELECT 1 FROM ({right.sql}) AS {ra} WHERE {conds})"
        )
        return _Rel(sql, left.cols, left.free)


class SqlBackend:
    """The ``sql`` backend: lowers a QEP to a standalone SQLite-dialect
    statement.  ``execute`` delegates to the ``sqlite`` backend (the
    statement's reference runner)."""

    name = "sql"
    language = "sql"

    def compile_plan(
        self, query: QueryBlock, plan: PlanNode, catalog: Any = None
    ) -> CompiledPlan:
        emitter = SqlEmitter()
        rel = emitter.lower(plan)
        if rel.free:
            raise UnsupportedPlanError(
                "unresolved sideways predicates at plan root: "
                + "; ".join(str(p) for p in _sorted_preds(rel.free))
            )
        root = "q"
        resolve = emitter._scope(root, rel.cols)
        items = []
        for item in query.select:
            items.append(f"{_render_expr(item.expr, resolve)} AS {_q(item.alias)}")
        order = []
        for order_item in query.order_by:
            # The engine sorts None first under DESC, last under ASC
            # (``_sort_key``); SQLite defaults to the opposite, so the
            # placement is always explicit.
            direction = (
                "DESC NULLS FIRST" if order_item.descending else "ASC NULLS LAST"
            )
            order.append(f"{resolve(order_item.column)} {direction}")

        lines = [
            "-- repro sql backend",
            f"-- plan digest: {plan.digest}",
            f"-- query: {query}",
        ]
        lines += [f"-- note: {note}" for note in emitter._notes]
        body = ""
        if emitter._ctes:
            ctes = ", ".join(
                f"{name} AS ({sql})"
                for name, sql in sorted(emitter._ctes.values())
            )
            body = f"WITH {ctes} "
        body += f"SELECT {', '.join(items)} FROM ({rel.sql}) AS {root}"
        if order:
            body += " ORDER BY " + ", ".join(order)
        lines.append(body + ";")
        return CompiledPlan(
            backend=self.name,
            language=self.language,
            text="\n".join(lines) + "\n",
            notes=tuple(emitter._notes),
        )

    def execute(self, query: QueryBlock, plan: PlanNode, database) -> list[tuple]:
        from repro.backends.sqlite import SqliteBackend

        return SqliteBackend().execute(query, plan, database)

    def supports(self, query: QueryBlock, plan: PlanNode) -> bool:
        try:
            self.compile_plan(query, plan)
        except UnsupportedPlanError:
            return False
        return True
