"""Backend protocol, registry, and row-set normalization.

A *backend* is one way to turn a chosen QEP into answers: the in-process
interpreters execute the plan directly, while compiling backends lower
it to a standalone artifact (SQL text, generated Python) that runs
without the optimizer in the loop.  All backends implement the same
small protocol so the :class:`~repro.backends.oracle.DifferentialOracle`
can drive them interchangeably:

* ``compile_plan(query, plan, catalog)`` → :class:`CompiledPlan` — the
  deterministic artifact (raises
  :class:`~repro.errors.UnsupportedPlanError` outside the backend's
  supported subset; interpreting backends return a rendered plan tree).
* ``execute(query, plan, database)`` → list of result tuples in the
  query's projection order.
* ``supports(query, plan)`` → bool — a cheap static check, equivalent
  to "``compile_plan`` would not raise ``UnsupportedPlanError``".

Because the backends run on *different value systems* (Python objects
in-process, SQLite storage classes over the wire), results are compared
through :func:`normalize_rows`, which collapses the representational
differences that do not change the answer (``2`` vs ``2.0``, row
order) while preserving multiset cardinality.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Protocol, runtime_checkable

from repro.errors import BackendError
from repro.plans.plan import PlanNode
from repro.query.query import QueryBlock
from repro.storage.table import Database


@dataclass(frozen=True)
class CompiledPlan:
    """The deterministic artifact one backend produced for one QEP.

    ``text`` is the complete standalone artifact (SQL statement, Python
    module source, or a rendered plan tree for interpreting backends);
    ``language`` names its dialect so callers can route it (``"sql"``,
    ``"python"``, ``"plan"``).  ``notes`` records lowering decisions
    that do not change the row set — collapsed SHIPs, index choices,
    order-preserving rewrites — mirrored as comments inside ``text``.
    """

    backend: str
    language: str
    text: str
    notes: tuple[str, ...] = field(default_factory=tuple)


@runtime_checkable
class Backend(Protocol):
    """What the oracle and the CLI require of a registered backend."""

    name: str

    def compile_plan(
        self, query: QueryBlock, plan: PlanNode, catalog: Any = None
    ) -> CompiledPlan: ...

    def execute(
        self, query: QueryBlock, plan: PlanNode, database: Database
    ) -> list[tuple]: ...

    def supports(self, query: QueryBlock, plan: PlanNode) -> bool: ...


_REGISTRY: dict[str, Callable[[], Backend]] = {}
_INSTANCES: dict[str, Backend] = {}


def register_backend(name: str, factory: Callable[[], Backend]) -> None:
    """Register a backend constructor under ``name`` (last wins, so a
    Database Customizer can shadow a builtin)."""
    _REGISTRY[name] = factory
    _INSTANCES.pop(name, None)


def get_backend(name: str) -> Backend:
    """The (cached) backend instance registered under ``name``."""
    if name not in _REGISTRY:
        raise BackendError(
            f"unknown backend {name!r} (registered: {', '.join(backend_names())})"
        )
    if name not in _INSTANCES:
        _INSTANCES[name] = _REGISTRY[name]()
    return _INSTANCES[name]


def backend_names() -> tuple[str, ...]:
    """All registered backend names, sorted."""
    return tuple(sorted(_REGISTRY))


# -- row-set normalization -------------------------------------------------------


def normalize_value(value: Any) -> tuple:
    """A canonical, totally-ordered key for one result value.

    Collapses the cross-backend representational differences that do not
    change the answer: SQLite has no bool (``True`` comes back as ``1``)
    and ``/`` is emitted as real division (``4 / 2`` is ``2.0`` both
    sides, but integer-typed columns round-trip as ``int``).  Numbers
    therefore compare as floats; NULL/None sorts first; strings compare
    as themselves.  The leading tag keeps mixed-type columns sortable.
    """
    if value is None:
        return ("0:null",)
    if isinstance(value, bool):
        return ("1:num", float(value))
    if isinstance(value, (int, float)):
        return ("1:num", float(value))
    if isinstance(value, str):
        return ("2:str", value)
    return ("3:other", repr(value))


def normalize_rows(rows: list[tuple] | tuple[tuple, ...]) -> tuple[tuple, ...]:
    """The canonical multiset form of a result: every value normalized,
    rows sorted.  Two backends agree exactly when their normalized forms
    compare equal — duplicates count, order does not."""
    return tuple(sorted(tuple(normalize_value(v) for v in row) for row in rows))
