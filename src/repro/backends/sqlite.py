"""Running emitted SQL against an in-memory SQLite database.

This is the independent half of the differential oracle: the workload's
base tables are loaded into stock SQLite (stdlib ``sqlite3``, no
extensions), the :mod:`repro.backends.sql` artifact is executed there,
and the resulting rows are compared — after
:func:`~repro.backends.base.normalize_rows` — against the in-process
engines.  Agreement then rests on an engine we did not write.

Loading rules:

* Every table gets a synthetic ``__tid INTEGER`` first column holding
  the heap-scan ordinal of the row.  It stands in for the engine's
  ``RID(page, slot)`` tuple identifiers: ``GET`` joins on it, DEDUP and
  INTERSECT key on it.  The two TID systems never meet — ``#TID``
  columns never appear in a final projection — so each side only has to
  be internally consistent.
* Column types come from the catalog (``int`` → INTEGER, ``float`` →
  REAL, ``str`` → TEXT); Python ``bool`` values load as 0/1, which
  :func:`~repro.backends.base.normalize_value` folds back together.
* Connections are cached per :class:`~repro.storage.table.Database`
  object (weakly, so dropping the database drops the mirror), because a
  differential sweep runs hundreds of plans against the same data.
"""

from __future__ import annotations

import sqlite3
import weakref
from typing import Any

from repro.backends.base import CompiledPlan
from repro.backends.sql import TID_SQL_COLUMN, SqlBackend, _q
from repro.errors import BackendError
from repro.plans.plan import PlanNode
from repro.query.query import QueryBlock
from repro.storage.table import Database

_TYPE_MAP = {"int": "INTEGER", "float": "REAL", "str": "TEXT"}

#: Per-Database connection cache (weak keys: dropping the Database
#: drops its SQLite mirror).
_CONNECTIONS: "weakref.WeakKeyDictionary[Database, sqlite3.Connection]" = (
    weakref.WeakKeyDictionary()
)


def load_database(database: Database) -> sqlite3.Connection:
    """Mirror every base table of ``database`` into a fresh in-memory
    SQLite connection (ignoring temps — the emitted SQL recreates those
    as CTEs)."""
    conn = sqlite3.connect(":memory:")
    catalog = database.catalog
    for name in database.base_table_names():
        data = database.table(name)
        tdef = catalog.table(name)
        col_ddl = [f"{_q(TID_SQL_COLUMN)} INTEGER"]
        for ref in data.schema:
            ctype = _TYPE_MAP.get(tdef.column(ref.column).ctype, "")
            col_ddl.append(f"{_q(ref.column)} {ctype}".rstrip())
        conn.execute(f"CREATE TABLE {_q(name)} ({', '.join(col_ddl)})")
        placeholders = ", ".join("?" for _ in range(len(data.schema) + 1))
        insert = f"INSERT INTO {_q(name)} VALUES ({placeholders})"
        rows = [
            (ordinal, *row) for ordinal, (_, row) in enumerate(data.scan())
        ]
        if rows:
            conn.executemany(insert, rows)
    conn.commit()
    return conn


def connection_for(database: Database) -> sqlite3.Connection:
    """The cached SQLite mirror of ``database`` (loaded on first use)."""
    conn = _CONNECTIONS.get(database)
    if conn is None:
        conn = load_database(database)
        _CONNECTIONS[database] = conn
    return conn


def run_sql(conn: sqlite3.Connection, sql: str) -> list[tuple]:
    """Execute one emitted statement, translating SQLite complaints into
    :class:`~repro.errors.BackendError` (an emitted artifact a stock
    engine rejects is a backend bug, not a user error)."""
    try:
        cursor = conn.execute(sql)
        return [tuple(row) for row in cursor.fetchall()]
    except sqlite3.Error as exc:
        raise BackendError(f"SQLite rejected emitted SQL: {exc}") from exc


class SqliteBackend:
    """The ``sqlite`` backend: compile via :class:`SqlBackend`, execute
    on the in-memory SQLite mirror of the workload database."""

    name = "sqlite"
    language = "sql"

    def __init__(self) -> None:
        self._sql = SqlBackend()

    def compile_plan(
        self, query: QueryBlock, plan: PlanNode, catalog: Any = None
    ) -> CompiledPlan:
        compiled = self._sql.compile_plan(query, plan, catalog)
        return CompiledPlan(
            backend=self.name,
            language=compiled.language,
            text=compiled.text,
            notes=compiled.notes,
        )

    def execute(self, query: QueryBlock, plan: PlanNode, database: Database) -> list[tuple]:
        compiled = self._sql.compile_plan(query, plan, database.catalog)
        return run_sql(connection_for(database), compiled.text)

    def supports(self, query: QueryBlock, plan: PlanNode) -> bool:
        return self._sql.supports(query, plan)
