"""The in-process engines exposed through the backend protocol.

``iterator`` and ``vectorized`` are the existing
:class:`~repro.executor.runtime.QueryExecutor` interpreters wrapped so
the :class:`~repro.backends.oracle.DifferentialOracle` and the CLI can
drive them like any compiling backend.  Their "compiled artifact" is
the rendered plan tree — interpreters have no lower form — which keeps
``compile-plan`` meaningful for every registered backend name.
"""

from __future__ import annotations

from typing import Any

from repro.backends.base import CompiledPlan
from repro.plans.plan import PlanNode, render_tree
from repro.query.query import QueryBlock
from repro.storage.table import Database


class InProcessBackend:
    """One interpreter (``iterator`` or ``vectorized``) behind the
    backend protocol; supports every valid plan."""

    language = "plan"

    def __init__(self, executor: str) -> None:
        self.name = executor
        self._executor = executor

    def compile_plan(
        self, query: QueryBlock, plan: PlanNode, catalog: Any = None
    ) -> CompiledPlan:
        text = (
            f"-- repro {self.name} backend (interpreted; no lower form)\n"
            f"-- plan digest: {plan.digest}\n"
            f"-- query: {query}\n"
            f"{render_tree(plan)}\n"
        )
        return CompiledPlan(backend=self.name, language=self.language, text=text)

    def execute(self, query: QueryBlock, plan: PlanNode, database: Database) -> list[tuple]:
        from repro.executor.runtime import QueryExecutor

        executor = QueryExecutor(database, executor=self._executor)
        return executor.run(query, plan).rows

    def supports(self, query: QueryBlock, plan: PlanNode) -> bool:
        return True
