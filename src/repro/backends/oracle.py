"""The differential oracle: one plan, every backend, one verdict.

Executes the same ``(query, plan, database)`` on each requested backend
and compares the :func:`~repro.backends.base.normalize_rows` forms.
Two in-process interpreters agreeing is a parity test; an *external*
engine (SQLite, via emitted SQL) agreeing is an independent correctness
check of both the plan and the lowering — the external-oracle
discipline experiment E19 gates on.

A backend can end a check three ways: a normalized row set (compared),
a declared fallback (``pyloop`` executing an unsupported plan through
the vectorized engine — still compared, but flagged so coverage stats
stay honest), or an error (recorded, excluded from comparison).
:meth:`OracleReport.assert_agreement` turns any disagreement — or a
check where fewer than two backends produced rows — into a
:class:`~repro.errors.BackendError` whose message shows the first
differing rows per backend.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.backends.base import get_backend, normalize_rows
from repro.errors import BackendError, ReproError
from repro.plans.plan import PlanNode
from repro.query.query import QueryBlock
from repro.storage.table import Database

#: The standard oracle lineup: both interpreters, the fused-Python
#: pipeline, and the external SQLite check.
DEFAULT_BACKENDS = ("iterator", "vectorized", "pyloop", "sqlite")


@dataclass
class BackendOutcome:
    """What one backend did with one plan."""

    backend: str
    rows: tuple | None = None  #: normalized row set (None on error)
    row_count: int | None = None
    supported: bool = True
    fell_back: bool = False
    error: str | None = None

    @property
    def comparable(self) -> bool:
        return self.rows is not None


@dataclass
class OracleReport:
    """The oracle's verdict for one plan across all backends."""

    plan_digest: str
    outcomes: list[BackendOutcome] = field(default_factory=list)

    @property
    def agreed(self) -> bool:
        """True when at least two backends produced rows and every
        producing backend produced the same normalized row set."""
        rowsets = [o.rows for o in self.outcomes if o.comparable]
        return len(rowsets) >= 2 and all(r == rowsets[0] for r in rowsets)

    @property
    def fallbacks(self) -> tuple[str, ...]:
        return tuple(o.backend for o in self.outcomes if o.fell_back)

    @property
    def errors(self) -> tuple[str, ...]:
        return tuple(
            f"{o.backend}: {o.error}" for o in self.outcomes if o.error is not None
        )

    def mismatch_summary(self, sample: int = 3) -> str:
        """A debuggable one-plan report: per-backend row counts plus the
        first rows unique to each disagreeing backend."""
        lines = [f"plan {self.plan_digest}:"]
        reference = next((o for o in self.outcomes if o.comparable), None)
        for o in self.outcomes:
            if o.error is not None:
                lines.append(f"  {o.backend}: ERROR {o.error}")
                continue
            status = " (fell back)" if o.fell_back else ""
            lines.append(f"  {o.backend}: {o.row_count} row(s){status}")
            if reference is not None and o.rows != reference.rows:
                extra = [r for r in o.rows if r not in reference.rows][:sample]
                missing = [r for r in reference.rows if r not in o.rows][:sample]
                if extra:
                    lines.append(f"    extra vs {reference.backend}: {extra}")
                if missing:
                    lines.append(f"    missing vs {reference.backend}: {missing}")
        return "\n".join(lines)

    def assert_agreement(self) -> None:
        if not self.agreed:
            raise BackendError(
                "backends disagree on the row set\n" + self.mismatch_summary()
            )


class DifferentialOracle:
    """Runs a plan through several backends and compares row sets."""

    def __init__(self, backends: tuple[str, ...] = DEFAULT_BACKENDS) -> None:
        self.backends = tuple(backends)

    def check(
        self, query: QueryBlock, plan: PlanNode, database: Database
    ) -> OracleReport:
        report = OracleReport(plan_digest=plan.digest)
        for name in self.backends:
            backend = get_backend(name)
            outcome = BackendOutcome(backend=name)
            outcome.supported = backend.supports(query, plan)
            try:
                rows = backend.execute(query, plan, database)
            except ReproError as exc:
                outcome.error = str(exc)
            else:
                outcome.rows = normalize_rows(rows)
                outcome.row_count = len(rows)
                outcome.fell_back = not outcome.supported
            report.outcomes.append(outcome)
        return report

    def check_or_raise(
        self, query: QueryBlock, plan: PlanNode, database: Database
    ) -> OracleReport:
        report = self.check(query, plan, database)
        report.assert_agreement()
        return report
