"""Fused per-plan Python pipelines (data-centric code generation).

Where the interpreters walk the plan tree per tuple (or per batch), this
backend compiles the whole operator tree into **one** generated Python
function — the produce/consume ("push") model: each pipeline becomes a
nested ``for`` loop, operators between pipeline breakers disappear into
plain ``if``/assignment statements, and column values live in local
variables instead of row dictionaries.  It extends the
:mod:`repro.executor.batch_ops` compiled-predicate idea all the way down
the operator tree.

Sideways information passing costs nothing here: a nested-loop inner
subtree is emitted *inside* the outer loop's body, so predicates that
reference outer tables simply close over the outer columns' local
variables — the lexical analogue of the interpreter's
:class:`~repro.query.expressions.RowContext` chain.

Supported subset: single-pipeline plans — anything without
materialization.  ``STORE``, ``BUILDIX`` and ``ACCESS(temp)`` raise
:class:`~repro.errors.UnsupportedPlanError` at compile time, and
:meth:`PyLoopBackend.execute` then falls back to the vectorized engine,
so the backend is safe to call on any plan.  (Hash/merge/semijoin
builds and DEDUP/INTERSECT state are in-memory dicts and sets — loop
state, not pipeline breaks.)

Engine-parity corners the generated code reproduces exactly:

* comparisons are two-valued (``None`` on either side → False) via the
  ``_eq``/``_lt``/... helpers in the generated module's preamble;
* hash and semijoin key expressions that *raise* (arithmetic over
  ``None``) skip the row, not the query — per-join key functions return
  a ``_SKIP`` sentinel on the same exception set the engine maps to
  ``ExecutionError``;
* the semijoin probe is raw set membership (``None == None`` matches,
  residual predicates ignored), merge keys skip ``None``, and the hash
  join rechecks every join predicate on the combined row;
* DEDUP/INTERSECT keys use ``row.get`` semantics (a column missing from
  the stream reads as ``None``).

TIDs are heap-scan ordinals (``enumerate`` indexes), so ``GET`` is a
plain list index — internally consistent with nothing to reconcile,
since TIDs never reach a final projection.
"""

from __future__ import annotations

import re
from typing import Any, Callable

from repro.backends.base import CompiledPlan
from repro.errors import BackendError, UnsupportedPlanError
from repro.executor.runtime import _hash_sides, _merge_triples
from repro.plans.operators import (
    ACCESS,
    DEDUP,
    FILTER,
    GET,
    INTERSECT,
    JOIN,
    PROJECT,
    SHIP,
    SORT,
    UNION,
)
from repro.plans.plan import PlanNode
from repro.query.expressions import Arith, ColumnRef, Expr, FuncCall, Literal
from repro.query.predicates import (
    Comparison,
    Conjunction,
    Disjunction,
    Negation,
)
from repro.query.query import QueryBlock
from repro.storage.table import Database, tid_column

#: Ops a fused pipeline can absorb (ACCESS only without plan inputs and
#: with a non-temp flavor — materialization breaks the pipeline).
_FUSABLE_OPS = frozenset(
    (ACCESS, GET, SORT, SHIP, FILTER, JOIN, UNION, DEDUP, PROJECT, INTERSECT)
)

_CMP_HELPERS = {"=": "_eq", "<>": "_ne", "<": "_lt", "<=": "_le", ">": "_gt", ">=": "_ge"}

_PREAMBLE = '''\
_SKIP = object()


def _sk(v):
    return (v is None, v)


def _eq(a, b):
    return a is not None and b is not None and a == b


def _ne(a, b):
    return a is not None and b is not None and a != b


def _lt(a, b):
    return a is not None and b is not None and a < b


def _le(a, b):
    return a is not None and b is not None and a <= b


def _gt(a, b):
    return a is not None and b is not None and a > b


def _ge(a, b):
    return a is not None and b is not None and a >= b
'''

Env = dict[ColumnRef, str]
Consume = Callable[[Env, int], None]


def _san(text: str) -> str:
    return re.sub(r"[^0-9a-zA-Z_]", "_", text)


def _tuple_literal(items: list[str]) -> str:
    return "(" + ", ".join(items) + ("," if len(items) == 1 else "") + ")"


def _py_expr(expr: Expr, env: Env) -> str:
    if isinstance(expr, ColumnRef):
        var = env.get(expr)
        if var is None:
            raise UnsupportedPlanError(
                f"expression references column {expr} absent from the pipeline"
            )
        return var
    if isinstance(expr, Literal):
        return repr(expr.value)
    if isinstance(expr, Arith):
        left, right = _py_expr(expr.left, env), _py_expr(expr.right, env)
        return f"({left} {expr.op} {right})"
    if isinstance(expr, FuncCall):
        args = [_py_expr(a, env) for a in expr.args]
        if expr.name == "abs":
            return f"abs({args[0]})"
        if expr.name == "lower":
            return f"({args[0]}).lower()"
        if expr.name == "upper":
            return f"({args[0]}).upper()"
        if expr.name == "length":
            return f"len({args[0]})"
        if expr.name == "mod":
            return f"({args[0]} % {args[1]})"
    raise UnsupportedPlanError(f"no pyloop lowering for expression {expr}")


def _py_pred(pred, env: Env) -> str:
    if isinstance(pred, Comparison):
        left, right = _py_expr(pred.left, env), _py_expr(pred.right, env)
        return f"{_CMP_HELPERS[pred.op]}({left}, {right})"
    if isinstance(pred, Conjunction):
        return "(" + " and ".join(_py_pred(p, env) for p in pred.parts) + ")"
    if isinstance(pred, Disjunction):
        return "(" + " or ".join(_py_pred(p, env) for p in pred.parts) + ")"
    if isinstance(pred, Negation):
        return f"(not {_py_pred(pred.part, env)})"
    raise UnsupportedPlanError(f"no pyloop lowering for predicate {pred}")


def _sorted_preds(preds):
    return tuple(sorted(preds, key=str))


class _PipelineEmitter:
    """Generates the body of ``run(tables)`` by pushing rows from scans
    down to a consume callback, one nested loop per pipeline."""

    def __init__(self, catalog: Any) -> None:
        self.catalog = catalog
        self.body: list[str] = []
        self.aux: list[str] = []
        self.notes: list[str] = []
        self._counter = 0

    def _next(self) -> int:
        self._counter += 1
        return self._counter

    def w(self, depth: int, text: str) -> None:
        self.body.append("    " * depth + text)

    def note(self, text: str) -> None:
        if text not in self.notes:
            self.notes.append(text)

    def _key_fn(self, prefix: str, exprs: list[str], params: list[str], skip_none: bool, can_raise: bool) -> str:
        """Emit a module-level key function; returns its name.  The
        caller's variable names double as the parameter names."""
        name = f"_{prefix}{self._next()}"
        lines = [f"def {name}({', '.join(params)}):"]
        key = _tuple_literal(exprs)
        if can_raise:
            lines += [
                "    try:",
                f"        _k = {key}",
                "    except (TypeError, ZeroDivisionError, AttributeError, ValueError):",
                "        return _SKIP",
            ]
        else:
            lines.append(f"    _k = {key}")
        if skip_none:
            lines += ["    if None in _k:", "        return _SKIP"]
        lines.append("    return _k")
        self.aux.append("\n".join(lines))
        return name

    def _guard_preds(self, preds, env: Env, depth: int) -> None:
        for pred in _sorted_preds(preds):
            self.w(depth, f"if not {_py_pred(pred, env)}:")
            self.w(depth + 1, "continue")

    # -- dispatch ----------------------------------------------------------------

    def emit(self, node: PlanNode, env: Env, depth: int, consume: Consume) -> None:
        if node.op == ACCESS:
            self._access(node, env, depth, consume)
        elif node.op == GET:
            self._get(node, env, depth, consume)
        elif node.op == FILTER:
            self._guarded_passthrough(node, env, depth, consume)
        elif node.op == SORT:
            order = ", ".join(str(c) for c in node.param("order", ()))
            self.note(f"SORT({order}) elided: the epilogue re-derives ORDER BY")
            self.emit(node.inputs[0], env, depth, consume)
        elif node.op == SHIP:
            self.note(
                f"SHIP {node.inputs[0].props.site} -> {node.param('to_site')} "
                "collapsed: generated pipeline runs in-process"
            )
            self.emit(node.inputs[0], env, depth, consume)
        elif node.op == PROJECT:
            columns = node.param("columns") or frozenset()
            narrowed_consume = consume

            def project_consume(inner_env: Env, d: int) -> None:
                narrowed_consume(
                    {ref: var for ref, var in inner_env.items() if ref in columns}, d
                )

            self.emit(node.inputs[0], env, depth, project_consume)
        elif node.op == JOIN:
            self._join(node, env, depth, consume)
        elif node.op == UNION:
            self.emit(node.inputs[0], env, depth, consume)
            self.emit(node.inputs[1], env, depth, consume)
        elif node.op == DEDUP:
            self._dedup(node, env, depth, consume)
        elif node.op == INTERSECT:
            self._intersect(node, env, depth, consume)
        else:
            raise UnsupportedPlanError(
                "not fusable into a single pipeline", op=node.op
            )

    # -- scans -------------------------------------------------------------------

    def _positions(self, table: str) -> dict[str, int]:
        tdef = self.catalog.table(table)
        return {name: i for i, name in enumerate(tdef.column_names)}

    def _access(self, node: PlanNode, env: Env, depth: int, consume: Consume) -> None:
        if node.flavor == "temp" or node.inputs:
            raise UnsupportedPlanError(
                "materialized temps break the single fused pipeline", op=ACCESS
            )
        table = node.param("table")
        columns = node.param("columns") or frozenset()
        preds = node.param("preds") or frozenset()
        positions = self._positions(table)
        n = self._next()
        tid = tid_column(table)

        providable: set[ColumnRef] | None = None
        always_tid = False
        if node.flavor == "index":
            path = node.param("path")
            self.note(
                f"index {path.name} on {table}: probe lowered to a "
                "predicate scan over the base rows"
            )
            always_tid = True  # index streams always carry the TID
            if not path.clustered:
                providable = {ColumnRef(table, c) for c in path.columns}
        elif node.flavor == "btree":
            self.note(
                f"btree table {table}: key-order scan lowered to heap order "
                "(row-set comparison is order-insensitive)"
            )

        self.w(depth, f"for _i{n}, _r{n} in enumerate(tables[{table!r}]):")
        inner = dict(env)
        bind: list[ColumnRef] = sorted(
            (c for c in columns if not c.column.startswith("#")), key=str
        )
        eval_only: list[ColumnRef] = []
        if providable is not None:
            # An unclustered index entry carries only its key columns
            # (plus the TID); the interpreter evaluates predicates over
            # everything the entry carries, then narrows to the
            # requested columns.
            eval_only = sorted(providable - set(bind), key=str)
            bind = [c for c in bind if c in providable]
        for ref in bind + eval_only:
            var = f"v{n}_{_san(ref.table)}_{_san(ref.column)}"
            self.w(depth + 1, f"{var} = _r{n}[{positions[ref.column]}]")
            inner[ref] = var
        want_tid = always_tid or any(c.column.startswith("#") for c in columns)
        if want_tid:
            tid_var = f"v{n}_{_san(table)}__tid"
            self.w(depth + 1, f"{tid_var} = _i{n}")
            inner[tid] = tid_var
        self._guard_preds(preds, inner, depth + 1)
        out_env = dict(env)
        for ref in bind:
            out_env[ref] = inner[ref]
        if want_tid:
            out_env[tid] = inner[tid]
        consume(out_env, depth + 1)

    def _get(self, node: PlanNode, env: Env, depth: int, consume: Consume) -> None:
        table = node.param("table")
        columns = node.param("columns") or frozenset()
        preds = node.param("preds") or frozenset()
        positions = self._positions(table)
        tid = tid_column(table)

        def after_input(inner_env: Env, d: int) -> None:
            tid_var = inner_env.get(tid)
            if tid_var is None:
                raise UnsupportedPlanError(
                    f"GET on {table}: input stream lacks a TID", op=GET
                )
            n = self._next()
            self.w(d, f"_g{n} = tables[{table!r}][{tid_var}]")
            out_env = dict(inner_env)
            for ref in sorted(columns, key=str):
                var = f"g{n}_{_san(ref.table)}_{_san(ref.column)}"
                self.w(d, f"{var} = _g{n}[{positions[ref.column]}]")
                out_env[ref] = var
            self._guard_preds(preds, out_env, d)
            consume(out_env, d)

        self.emit(node.inputs[0], env, depth, after_input)

    def _guarded_passthrough(
        self, node: PlanNode, env: Env, depth: int, consume: Consume
    ) -> None:
        preds = node.param("preds") or frozenset()

        def after_input(inner_env: Env, d: int) -> None:
            self._guard_preds(preds, inner_env, d)
            consume(inner_env, d)

        self.emit(node.inputs[0], env, depth, after_input)

    # -- joins -------------------------------------------------------------------

    def _join(self, node: PlanNode, env: Env, depth: int, consume: Consume) -> None:
        if node.flavor == "NL":
            self._join_nl(node, env, depth, consume)
        elif node.flavor in ("HA", "MG"):
            self._join_hash(node, env, depth, consume)
        elif node.flavor == "SJ":
            self._join_sj(node, env, depth, consume)
        else:  # pragma: no cover - plan validation rejects unknown flavors
            raise UnsupportedPlanError(f"unknown JOIN flavor {node.flavor}", op=JOIN)

    def _join_nl(self, node: PlanNode, env: Env, depth: int, consume: Consume) -> None:
        outer, inner = node.inputs
        preds = (node.param("join_preds") or frozenset()) | (
            node.param("residual_preds") or frozenset()
        )

        def outer_consume(outer_env: Env, d: int) -> None:
            def inner_consume(combined_env: Env, d2: int) -> None:
                self._guard_preds(preds, combined_env, d2)
                consume(combined_env, d2)

            # Inner emission under the outer env: sideways predicates on
            # inner scans resolve against the outer loop's variables.
            self.emit(inner, outer_env, d, inner_consume)

        self.emit(outer, env, depth, outer_consume)

    def _join_hash(self, node: PlanNode, env: Env, depth: int, consume: Consume) -> None:
        outer, inner = node.inputs
        join_preds = node.param("join_preds") or frozenset()
        residual = node.param("residual_preds") or frozenset()
        is_merge = node.flavor == "MG"
        if is_merge:
            triples = _merge_triples(join_preds, outer.props.tables)
            if not triples:
                raise UnsupportedPlanError(
                    "merge join without column-to-column predicates", op=JOIN
                )
            sides = [(o, i) for o, i, _ in triples]
            check = (join_preds - {p for _, _, p in triples}) | residual
            self.note(
                "JOIN(MG) lowered to hash matching with None-key skip "
                "(merge order is irrelevant to the row set)"
            )
        else:
            sides = _hash_sides(join_preds, outer.props.tables)
            if not sides:
                raise UnsupportedPlanError(
                    "hash join without hashable predicates", op=JOIN
                )
            check = join_preds | residual
        n = self._next()
        self.w(depth, f"_ht{n} = {{}}")
        inner_tables = inner.props.tables
        state: dict[str, list[ColumnRef] | None] = {"saved": None}

        def build_consume(inner_env: Env, d: int) -> None:
            # Bucket only the inner stream's own columns (enclosing
            # nested-loop bindings stay lexically visible at the probe
            # site, like the interpreter's RowContext chain).
            stream = sorted(
                (ref for ref in inner_env if ref.table in inner_tables), key=str
            )
            if state["saved"] is None:
                state["saved"] = stream
            elif state["saved"] != stream:
                raise UnsupportedPlanError(
                    "hash-join build branches export different column sets",
                    op=JOIN,
                )
            exprs = [_py_expr(e, inner_env) for _, e in sides]
            params = sorted(
                {inner_env[ref] for _, e in sides for ref in e.columns()}
            )
            fn = self._key_fn(
                "bkey", exprs, params,
                skip_none=is_merge,
                can_raise=not all(isinstance(e, ColumnRef) for _, e in sides),
            )
            self.w(d, f"_k{n} = {fn}({', '.join(params)})")
            self.w(d, f"if _k{n} is not _SKIP:")
            row = _tuple_literal([inner_env[ref] for ref in stream])
            self.w(d + 1, f"_ht{n}.setdefault(_k{n}, []).append({row})")

        self.emit(inner, env, depth, build_consume)
        saved: list[ColumnRef] = state["saved"] or []

        def probe_consume(outer_env: Env, d: int) -> None:
            exprs = [_py_expr(e, outer_env) for e, _ in sides]
            params = sorted(
                {outer_env[ref] for e, _ in sides for ref in e.columns()}
            )
            fn = self._key_fn(
                "pkey", exprs, params,
                skip_none=is_merge,
                can_raise=not all(isinstance(e, ColumnRef) for e, _ in sides),
            )
            self.w(d, f"_k{n} = {fn}({', '.join(params)})")
            self.w(d, f"if _k{n} is not _SKIP:")
            self.w(d + 1, f"for _m{n} in _ht{n}.get(_k{n}, ()):")
            combined = dict(outer_env)
            for j, ref in enumerate(saved):
                var = f"m{n}_{_san(ref.table)}_{_san(ref.column)}"
                self.w(d + 2, f"{var} = _m{n}[{j}]")
                combined[ref] = var
            self._guard_preds(check, combined, d + 2)
            consume(combined, d + 2)

        self.emit(outer, env, depth, probe_consume)

    def _join_sj(self, node: PlanNode, env: Env, depth: int, consume: Consume) -> None:
        outer, inner = node.inputs
        join_preds = node.param("join_preds") or frozenset()
        sides = _hash_sides(join_preds, outer.props.tables)
        if not sides:
            raise UnsupportedPlanError(
                "semijoin without hashable predicates", op=JOIN
            )
        n = self._next()
        self.note(
            "JOIN(SJ) lowered to set membership (None == None matches, "
            "residual predicates ignored — engine semantics)"
        )
        self.w(depth, f"_ks{n} = set()")

        def build_consume(inner_env: Env, d: int) -> None:
            exprs = [_py_expr(e, inner_env) for _, e in sides]
            params = sorted(
                {inner_env[ref] for _, e in sides for ref in e.columns()}
            )
            fn = self._key_fn(
                "skey", exprs, params, skip_none=False,
                can_raise=not all(isinstance(e, ColumnRef) for _, e in sides),
            )
            self.w(d, f"_k{n} = {fn}({', '.join(params)})")
            self.w(d, f"if _k{n} is not _SKIP:")
            self.w(d + 1, f"_ks{n}.add(_k{n})")

        self.emit(inner, env, depth, build_consume)

        def probe_consume(outer_env: Env, d: int) -> None:
            exprs = [_py_expr(e, outer_env) for e, _ in sides]
            params = sorted(
                {outer_env[ref] for e, _ in sides for ref in e.columns()}
            )
            fn = self._key_fn(
                "qkey", exprs, params, skip_none=False,
                can_raise=not all(isinstance(e, ColumnRef) for e, _ in sides),
            )
            self.w(d, f"_k{n} = {fn}({', '.join(params)})")
            self.w(d, f"if _k{n} is _SKIP or _k{n} not in _ks{n}:")
            self.w(d + 1, "continue")
            consume(outer_env, d)

        self.emit(outer, env, depth, probe_consume)

    # -- set operators -----------------------------------------------------------

    def _key_values(self, key, env: Env) -> list[str]:
        # row.get semantics: a column missing from the stream reads None.
        return [env.get(ref, "None") for ref in key]

    def _dedup(self, node: PlanNode, env: Env, depth: int, consume: Consume) -> None:
        key = tuple(node.param("key", ()))
        n = self._next()
        self.w(depth, f"_seen{n} = set()")

        def after_input(inner_env: Env, d: int) -> None:
            values = _tuple_literal(self._key_values(key, inner_env))
            self.w(d, f"_k{n} = {values}")
            self.w(d, f"if _k{n} in _seen{n}:")
            self.w(d + 1, "continue")
            self.w(d, f"_seen{n}.add(_k{n})")
            consume(inner_env, d)

        self.emit(node.inputs[0], env, depth, after_input)

    def _intersect(self, node: PlanNode, env: Env, depth: int, consume: Consume) -> None:
        key = tuple(node.param("key", ()))
        n = self._next()
        self.w(depth, f"_rk{n} = set()")

        def right_consume(inner_env: Env, d: int) -> None:
            values = _tuple_literal(self._key_values(key, inner_env))
            self.w(d, f"_rk{n}.add({values})")

        self.emit(node.inputs[1], env, depth, right_consume)

        def left_consume(inner_env: Env, d: int) -> None:
            values = _tuple_literal(self._key_values(key, inner_env))
            self.w(d, f"if {values} not in _rk{n}:")
            self.w(d + 1, "continue")
            consume(inner_env, d)

        self.emit(node.inputs[0], env, depth, left_consume)


def generate_module(query: QueryBlock, plan: PlanNode, catalog: Any) -> tuple[str, tuple[str, ...]]:
    """Generate the standalone module source for one plan; returns
    ``(source, notes)``."""
    if catalog is None:
        raise BackendError("pyloop compilation needs a catalog for column layout")
    emitter = _PipelineEmitter(catalog)

    def root_consume(env: Env, depth: int) -> None:
        selects = [_py_expr(item.expr, env) for item in query.select]
        if query.order_by:
            orders = [env.get(o.column, "None") for o in query.order_by]
            emitter.w(
                depth,
                f"out.append(({_tuple_literal(selects)}, {_tuple_literal(orders)}))",
            )
        else:
            emitter.w(depth, f"out.append({_tuple_literal(selects)})")

    emitter.emit(plan, {}, 1, root_consume)

    epilogue: list[str] = []
    if query.order_by:
        for i, item in reversed(list(enumerate(query.order_by))):
            epilogue.append(
                f"    out.sort(key=lambda _p: _sk(_p[1][{i}]), "
                f"reverse={item.descending})"
            )
        epilogue.append("    return [_p[0] for _p in out]")
    else:
        epilogue.append("    return out")

    lines = [
        '"""Fused pipeline generated by repro.backends.pyloop.',
        "",
        f"plan digest: {plan.digest}",
        f"query: {query}",
        "",
        "Call ``run(tables)`` with ``tables`` mapping each base-table name",
        "to its rows (tuples in catalog column order, heap-scan order).",
        '"""',
        "",
    ]
    lines += [f"# note: {note}" for note in emitter.notes]
    lines += ["", _PREAMBLE]
    for aux in emitter.aux:
        lines += ["", aux, ""]
    lines += ["", "def run(tables):", "    out = []"]
    lines += emitter.body
    lines += epilogue
    lines.append("")
    return "\n".join(lines), tuple(emitter.notes)


class PyLoopBackend:
    """The ``pyloop`` backend: one generated Python function per plan,
    falling back to the vectorized engine outside the fusable subset."""

    name = "pyloop"
    language = "python"

    def compile_plan(
        self, query: QueryBlock, plan: PlanNode, catalog: Any = None
    ) -> CompiledPlan:
        source, notes = generate_module(query, plan, catalog)
        return CompiledPlan(
            backend=self.name, language=self.language, text=source, notes=notes
        )

    def execute(self, query: QueryBlock, plan: PlanNode, database: Database) -> list[tuple]:
        try:
            compiled = self.compile_plan(query, plan, database.catalog)
        except UnsupportedPlanError:
            return self._fallback(query, plan, database)
        namespace: dict[str, Any] = {}
        exec(  # noqa: S102 - executing our own generated artifact
            compile(compiled.text, f"<pyloop:{plan.digest}>", "exec"), namespace
        )
        tables = {
            name: [row for _, row in database.table(name).scan()]
            for name in database.base_table_names()
        }
        try:
            return [tuple(row) for row in namespace["run"](tables)]
        except Exception as exc:
            raise BackendError(f"generated pipeline failed: {exc}") from exc

    @staticmethod
    def _fallback(query: QueryBlock, plan: PlanNode, database: Database) -> list[tuple]:
        from repro.executor.runtime import QueryExecutor

        return QueryExecutor(database, executor="vectorized").run(query, plan).rows

    def supports(self, query: QueryBlock, plan: PlanNode) -> bool:
        """Static shape check (compilation may still reject predicates
        that reference columns the pipeline never binds; ``execute``
        falls back in that case too)."""
        for node in plan.nodes():
            if node.op not in _FUSABLE_OPS:
                return False
            if node.op == ACCESS and (node.flavor == "temp" or node.inputs):
                return False
        return True
