"""Multi-backend plan compilation (ROADMAP: "Multi-backend plan compilation").

A chosen QEP is a *program*; this package gives it more than one
runtime.  Every backend implements the small
:class:`~repro.backends.base.Backend` protocol — compile a plan to a
standalone artifact, execute it against a workload database, declare
its supported subset — and registers under a name:

``iterator`` / ``vectorized``
    The in-process interpreters (:mod:`repro.backends.inprocess`).
``sql`` / ``sqlite``
    Lowering to deterministic standalone SQL
    (:mod:`repro.backends.sql`) and its reference runner on an
    in-memory SQLite mirror of the workload
    (:mod:`repro.backends.sqlite`).
``pyloop``
    Fused per-plan Python pipelines — produce/consume code generation
    down the operator tree (:mod:`repro.backends.pyloop`).

The :class:`~repro.backends.oracle.DifferentialOracle` runs one plan on
all of them and requires identical normalized row sets, which is the
E19 gate and the ``python -m repro diff`` subcommand.  See
``docs/backends.md`` for the per-LOLEPOP lowering rules and the
walkthrough for adding a backend.
"""

from repro.backends.base import (
    Backend,
    CompiledPlan,
    backend_names,
    get_backend,
    normalize_rows,
    normalize_value,
    register_backend,
)
from repro.backends.inprocess import InProcessBackend
from repro.backends.oracle import (
    DEFAULT_BACKENDS,
    BackendOutcome,
    DifferentialOracle,
    OracleReport,
)
from repro.backends.pyloop import PyLoopBackend
from repro.backends.sql import SqlBackend, SqlEmitter
from repro.backends.sqlite import SqliteBackend, load_database

register_backend("iterator", lambda: InProcessBackend("iterator"))
register_backend("vectorized", lambda: InProcessBackend("vectorized"))
register_backend("sql", SqlBackend)
register_backend("sqlite", SqliteBackend)
register_backend("pyloop", PyLoopBackend)

__all__ = [
    "Backend",
    "BackendOutcome",
    "CompiledPlan",
    "DEFAULT_BACKENDS",
    "DifferentialOracle",
    "InProcessBackend",
    "OracleReport",
    "PyLoopBackend",
    "SqlBackend",
    "SqlEmitter",
    "SqliteBackend",
    "backend_names",
    "get_backend",
    "load_database",
    "normalize_rows",
    "normalize_value",
    "register_backend",
]
