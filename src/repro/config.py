"""Optimizer configuration.

Section 2.3 mentions compile-time parameters (e.g. whether Cartesian
products are considered, composite inners allowed); this object collects
them plus the engine knobs.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace


@dataclass(frozen=True, slots=True)
class OptimizerConfig:
    """Knobs for the STAR engine, Glue, and the join enumerator."""

    #: Restrict merge-join sortable predicates to equalities (System R /
    #: R* behaviour; the paper's SP definition literally allows any
    #: ``col1 op col2``).
    equality_merge_only: bool = True

    #: Glue return mode (section 3.2 step 3): "either ... the cheapest
    #: plan satisfying the requirements or (optionally) all plans".
    glue_mode: str = "all"  # "all" | "cheapest"

    #: Consider Cartesian products between streams with no linking join
    #: predicate (section 2.3: off by default, as in System R and R*).
    cartesian_products: bool = False

    #: Allow composite inners — joins whose inner is itself a join result,
    #: e.g. (A*B)*(C*D) (section 2.3).
    composite_inners: bool = True

    #: Prune dominated plans in the plan table (System R interesting-
    #: property pruning generalized to the property vector).  This is
    #: hot-path layer 3: with it off, every insert keeps every plan, so
    #: downstream LOLEPOP maps and Glue veneers multiply over dominated
    #: alternatives that could never win.
    prune: bool = True

    #: Memoize STAR expansions per optimization (hot-path layer 1): a
    #: repeated reference of a STAR with the same canonicalized arguments
    #: — including any Requirements riding on stream arguments — returns
    #: the cached SAP instead of re-expanding.  Cache hits are free: they
    #: are not charged against an :class:`~repro.robust.budget.
    #: OptimizerBudget`'s expansion counter.  Off only for A/B
    #: measurement (E13) and correctness cross-checks.
    memo_stars: bool = True

    #: Hash-cons plan nodes (hot-path layer 2): structurally identical
    #: plans constructed through different rule paths become the *same*
    #: object, so shared fragments are physically shared, equality
    #: short-circuits on identity, and each unique subtree is digested
    #: once.  Off only for A/B measurement (E13).
    intern_plans: bool = True

    #: Compile each STAR's alternatives, conditions, ``where`` bindings
    #: and REQUIRED specs into Python closures once per RuleSet (hot-path
    #: layer 4, :mod:`repro.stars.compile`): call targets bound
    #: statically, parameter lookups become slot reads, constant subtrees
    #: folded.  The AST interpreter stays available as the semantics
    #: oracle — toggling this flag never changes a chosen plan (E18).
    #: Off only for A/B measurement and differential tests.
    compile_stars: bool = True

    #: Safety limit on STAR expansion depth (a DBC-authored rule cycle
    #: fails fast instead of recursing forever).
    max_depth: int = 64

    #: Evaluation-order control ([LEE 88] describes "a very general
    #: mechanism for controlling the order in which STARs are
    #: evaluated"): stop taking further alternatives of a STAR once this
    #: many plans have accumulated for one reference.  None = unlimited.
    #: Alternatives are tried in definition order, so a DBC orders the
    #: preferred strategies first and caps the search budget here.
    max_plans_per_reference: int | None = None

    #: Collect a human-readable expansion trace ("rules ... may be traced
    #: to explain the origin of any execution plan", section 1).
    trace: bool = False

    #: Sites the optimizer must plan around, in addition to any sites the
    #: catalog has marked down (``Catalog.mark_site_down``): no base-table
    #: access at them, no SHIP to them, and they are dropped from the
    #: candidate join sites.  Used by :class:`ResilientExecutor` when
    #: re-optimizing after a site outage.
    avoid_sites: frozenset[str] = field(default_factory=frozenset)

    #: Keep plans whose *site footprint* (every site any of their nodes
    #: executes at) is not a superset of a cheaper plan's footprint, even
    #: when dominated on cost and every physical property.  A plan that
    #: reads a replica at a different site is insurance against a site
    #: outage — retaining it is what makes the SAP useful for run-time
    #: failover.  Off by default: it weakens pruning, and purely local
    #: workloads gain nothing from it.
    retain_site_diversity: bool = False

    def with_options(self, **kwargs) -> "OptimizerConfig":
        return replace(self, **kwargs)

    def __post_init__(self) -> None:
        if self.glue_mode not in ("all", "cheapest"):
            raise ValueError(f"bad glue_mode {self.glue_mode!r}")
        if self.max_depth < 2:
            raise ValueError("max_depth must be at least 2")
        if self.max_plans_per_reference is not None and self.max_plans_per_reference < 1:
            raise ValueError("max_plans_per_reference must be at least 1")
