"""Request-scoped serving telemetry: trace contexts, sampling, span trees.

PR 2's :class:`~repro.obs.trace.Tracer` made every *component* traceable;
this module makes every *request* traceable.  The serving layer mints a
:class:`TraceContext` per admitted request — a deterministic request id
plus tenant/template identity — and wraps the whole handling path in
``tracer.context(**ctx.trace_args())``, so the admission instant, the
tier decision, the plan-template cache probe, the optimizer span tree,
and (when the plan is executed) the executor spans all come out stamped
with one ``rid``.  :func:`span_tree` reassembles that flat stream into
the request's single contiguous tree, and :func:`validate_request_tree`
is the gate experiment E16 runs over it.

Tracing every request would be wasteful at serving rates, so a
:class:`TraceSampler` picks 1-in-N requests deterministically (request
sequence number, not wall clock — two identical runs sample identical
requests).  Errors are *always* visible: un-sampled requests that fail
still emit a single ``serve``/``error`` instant carrying their rid.

:class:`TelemetryConfig` bundles the serving-telemetry knobs — sampling
rate, flight-recorder capacity and dump path, SLO objectives and the
burn-rate thresholds at which :meth:`OptimizerService._choose_tier`
starts degrading — so ``telemetry=TelemetryConfig.disabled()`` is the
measured-baseline switch of the E16 overhead gate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence

from repro.obs.slo import SLObjective
from repro.obs.trace import TraceEvent


@dataclass
class TraceContext:
    """One request's identity, carried through the serving path.

    ``request_id`` is deterministic (minted from the service's request
    counter), so two runs over the same request stream produce the same
    ids — what lets trace-based tests and goldens pin exact trees.
    ``tier`` is filled in once the degradation ladder has chosen.
    """

    request_id: str
    #: The service's request sequence number the id was minted from —
    #: also the sampler's input and the flight record's ``seq``.
    seq: int = 0
    tenant: str = "default"
    template: str | None = None
    tier: str = "?"
    #: Whether this request's handling is traced (sampler decision).
    sampled: bool = False

    def trace_args(self) -> dict[str, Any]:
        """The ambient args stamped into every event of this request."""
        args: dict[str, Any] = {"rid": self.request_id, "tenant": self.tenant}
        if self.template is not None:
            args["template"] = self.template
        return args


class TraceSampler:
    """Deterministic 1-in-N request sampling.

    ``every=1`` traces everything, ``every=0`` traces nothing; otherwise
    request sequence numbers ``0, N, 2N, ...`` are sampled.  Pure
    function of the sequence number — no RNG, no clock — so sampling
    decisions replay identically across runs.
    """

    __slots__ = ("every",)

    def __init__(self, every: int = 1):
        if every < 0:
            raise ValueError(f"sample_every must be >= 0, got {every}")
        self.every = every

    def sample(self, seq: int) -> bool:
        return self.every > 0 and seq % self.every == 0


@dataclass(frozen=True)
class TelemetryConfig:
    """Knobs of the serving-telemetry layer (experiment E16).

    Separate from :class:`~repro.serve.service.ServiceConfig` because it
    configures *observation*, never *behavior* — with the single
    documented exception of the SLO burn thresholds, which feed the tier
    chooser so degradation becomes a measured policy.
    """

    #: Master switch: False disables request tracing, the flight
    #: recorder, and SLO monitoring (the E16 overhead baseline).
    enabled: bool = True
    #: Trace 1-in-N requests (0 = never, 1 = every request).
    sample_every: int = 16
    #: Flight-recorder ring size in requests (0 disables the recorder).
    flight_capacity: int = 64
    #: File the flight recorder appends JSONL dumps to (None = memory
    #: only; the last dump stays readable on the service).
    flight_path: str | None = None
    #: Declarative service-level objectives, watched per response.
    slos: tuple[SLObjective, ...] = ()
    #: SLO burn rate at or above which the tier chooser degrades to
    #: at least ``anytime`` / ``heuristic``.
    slo_anytime_burn: float = 1.0
    slo_heuristic_burn: float = 2.0

    def __post_init__(self) -> None:
        if self.sample_every < 0:
            raise ValueError("sample_every must be >= 0")
        if self.flight_capacity < 0:
            raise ValueError("flight_capacity must be >= 0")
        if self.slo_anytime_burn <= 0 or self.slo_heuristic_burn <= 0:
            raise ValueError("SLO burn thresholds must be positive")

    @classmethod
    def disabled(cls) -> "TelemetryConfig":
        return cls(enabled=False, sample_every=0, flight_capacity=0)


# ---------------------------------------------------------------------------
# Span-tree reassembly
# ---------------------------------------------------------------------------


@dataclass
class SpanNode:
    """One event plus its children — a reassembled request tree node."""

    event: TraceEvent
    children: list["SpanNode"] = field(default_factory=list)

    @property
    def name(self) -> str:
        return self.event.name

    def walk(self) -> Iterable["SpanNode"]:
        """This node and every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def names(self) -> list[str]:
        return [node.event.name for node in self.walk()]

    def find(self, name: str) -> "SpanNode | None":
        for node in self.walk():
            if node.event.name == name:
                return node
        return None


def request_events(
    events: Sequence[TraceEvent], request_id: str
) -> list[TraceEvent]:
    """Every event stamped with ``request_id``, in completion order."""
    return [e for e in events if e.args.get("rid") == request_id]


def span_tree(events: Sequence[TraceEvent], request_id: str) -> SpanNode:
    """Reassemble one request's events into its single span tree.

    Raises :class:`ValueError` when the request has no events, or when
    its events do not form exactly one contiguous tree (zero or multiple
    roots, or a parent pointing outside the request) — the property the
    E16 span gate asserts.
    """
    mine = request_events(events, request_id)
    if not mine:
        raise ValueError(f"no events for request {request_id!r}")
    nodes = {e.span: SpanNode(e) for e in mine}
    roots: list[SpanNode] = []
    for event in mine:
        node = nodes[event.span]
        if event.parent is not None and event.parent in nodes:
            nodes[event.parent].children.append(node)
        else:
            roots.append(node)
    if len(roots) != 1:
        raise ValueError(
            f"request {request_id!r} has {len(roots)} span-tree root(s): "
            f"{sorted(r.event.name for r in roots)}"
        )
    return roots[0]


def validate_request_tree(
    events: Sequence[TraceEvent],
    request_id: str,
    required: Sequence[str] = (),
) -> list[str]:
    """Human-readable problems with a request's span tree (empty = ok).

    Checks the tree is single-rooted and contiguous, that the root is
    the ``serve``/``request`` span, that every event carries the same
    tenant stamp, and that each name in ``required`` appears somewhere
    in the tree (the admission→tier→cache→optimize completeness gate).
    """
    errors: list[str] = []
    try:
        root = span_tree(events, request_id)
    except ValueError as exc:
        return [str(exc)]
    if root.event.cat != "serve" or root.event.name != "request":
        errors.append(
            f"root is {root.event.cat}/{root.event.name}, "
            "expected serve/request"
        )
    tenants = {node.event.args.get("tenant") for node in root.walk()}
    if len(tenants) > 1:
        errors.append(f"mixed tenant stamps in one request: {sorted(tenants)}")
    names = set(root.names())
    for name in required:
        if name not in names:
            errors.append(f"span tree is missing required event {name!r}")
    return errors


__all__ = [
    "SpanNode",
    "TelemetryConfig",
    "TraceContext",
    "TraceSampler",
    "request_events",
    "span_tree",
    "validate_request_tree",
]
