"""Observability: tracing, metrics and EXPLAIN ANALYZE.

The measurement substrate for the reproduction's efficiency claims:

* :class:`~repro.obs.trace.Tracer` — hierarchical, ring-buffered spans
  over every layer (STAR expansion, Glue, property functions, plan-table
  probes, executor operators, SHIP/chaos), exportable as JSON lines and
  Chrome ``trace_event`` format;
* :class:`~repro.obs.metrics.MetricsRegistry` — counters, gauges and
  histograms snapshotable as one flat dict, with
  :func:`~repro.obs.metrics.stats_snapshot` as the single serialization
  path for every stats dataclass in the repo;
* :func:`~repro.obs.analyze.explain_analyze` — execute the chosen QEP
  and join per-operator actual rows against estimated CARD, computing
  per-operator and plan-level Q-error.

``Observability`` bundles a tracer and a registry for APIs that thread
both (:class:`~repro.optimizer.optimizer.StarburstOptimizer`,
:class:`~repro.executor.resilient.ResilientExecutor`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.obs.analyze import (
    AnalyzeReport,
    OperatorMeasure,
    explain_analyze,
    q_error,
)
from repro.obs.flight import (
    FlightRecord,
    FlightRecorder,
    validate_flight_dump,
)
from repro.obs.metrics import (
    BUCKET_BASE,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    stats_snapshot,
)
from repro.obs.openmetrics import (
    render_openmetrics,
    validate_openmetrics,
)
from repro.obs.slo import (
    SLObjective,
    SLOMonitor,
)
from repro.obs.telemetry import (
    SpanNode,
    TelemetryConfig,
    TraceContext,
    TraceSampler,
    request_events,
    span_tree,
    validate_request_tree,
)
from repro.obs.trace import (
    CATEGORIES,
    EVENT_SCHEMA,
    PHASES,
    TraceEvent,
    Tracer,
    active_tracer,
    validate_events,
    validate_jsonl,
)


@dataclass
class Observability:
    """A tracer + metrics registry pair, enabled as a unit."""

    tracer: Tracer = field(default_factory=Tracer)
    metrics: MetricsRegistry = field(default_factory=MetricsRegistry)

    @classmethod
    def enabled(cls, capacity: int = 65536) -> "Observability":
        return cls(tracer=Tracer(capacity=capacity), metrics=MetricsRegistry())

    @classmethod
    def disabled(cls) -> "Observability":
        return cls(tracer=Tracer.disabled(), metrics=MetricsRegistry())


__all__ = [
    "AnalyzeReport",
    "BUCKET_BASE",
    "CATEGORIES",
    "Counter",
    "EVENT_SCHEMA",
    "FlightRecord",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Observability",
    "OperatorMeasure",
    "PHASES",
    "SLObjective",
    "SLOMonitor",
    "SpanNode",
    "TelemetryConfig",
    "TraceContext",
    "TraceEvent",
    "TraceSampler",
    "Tracer",
    "active_tracer",
    "explain_analyze",
    "q_error",
    "render_openmetrics",
    "request_events",
    "span_tree",
    "stats_snapshot",
    "validate_events",
    "validate_flight_dump",
    "validate_jsonl",
    "validate_openmetrics",
    "validate_request_tree",
]
