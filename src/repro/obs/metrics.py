"""Counters, gauges and histograms behind one flat snapshot.

The repo grew three ad-hoc statistics dataclasses before this module
(:class:`~repro.stars.engine.ExpansionStats`,
:class:`~repro.stars.plantable.PlanTableStats`,
:class:`~repro.executor.runtime.ExecutionStats` plus the per-link
:class:`~repro.executor.network.LinkStats`), each serializing itself a
slightly different way.  :func:`stats_snapshot` is now the single
serialization path: it flattens any stats dataclass into a
``{name: number}`` dict, so ``OptimizationError`` diagnostics, chaos
reports and the metrics registry all share one schema.

:class:`MetricsRegistry` is the accumulation side: named counters
(monotonic), gauges (point-in-time) and histograms (count/sum/min/max
plus fixed log-bucketed counts answering :meth:`Histogram.quantile`),
snapshotable as one flat dict — the shape benchmark JSON and the CLI
report.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Any, Iterator, Mapping


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, n: int = 1) -> int:
        self.value += n
        return self.value


class Gauge:
    """A point-in-time value (last write wins)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value


#: Log-bucket geometry: each bucket spans one power of ``BUCKET_BASE``
#: (~19% relative width), so :meth:`Histogram.quantile` answers within
#: one bucket of the exact rank statistic while memory stays bounded.
BUCKET_BASE = 2.0 ** 0.25
_LOG_BASE = math.log(BUCKET_BASE)
#: Bucket indices are clamped to this range (covers roughly 1e-10 ..
#: 1e10 at the base above), bounding the bucket dict whatever the stream.
_BUCKET_MIN_INDEX = -128
_BUCKET_MAX_INDEX = 128


class Histogram:
    """Streaming count/sum/min/max plus fixed log-bucketed counts.

    Positive observations land in bucket ``floor(log_base(value))``
    (HDR-histogram style, sparse dict, index clamped so at most 258
    buckets ever exist); non-positive values collect in one underflow
    bucket.  :meth:`quantile` walks the cumulative counts and returns the
    geometric midpoint of the target bucket clamped to the exact
    ``[min, max]`` — within one bucket (≈±10%) of the exact percentile,
    and exact for ``q=0``, ``q=1``, and single-sample streams.
    """

    __slots__ = ("count", "total", "minimum", "maximum", "_buckets",
                 "_underflow")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.minimum = float("inf")
        self.maximum = float("-inf")
        self._buckets: dict[int, int] = {}
        self._underflow = 0

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value
        if value > 0.0:
            index = math.floor(math.log(value) / _LOG_BASE)
            if index < _BUCKET_MIN_INDEX:
                index = _BUCKET_MIN_INDEX
            elif index > _BUCKET_MAX_INDEX:
                index = _BUCKET_MAX_INDEX
            self._buckets[index] = self._buckets.get(index, 0) + 1
        else:
            self._underflow += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    @property
    def min_value(self) -> float:
        """The observed minimum, JSON-safe: 0.0 when empty (never inf)."""
        return self.minimum if self.count else 0.0

    @property
    def max_value(self) -> float:
        """The observed maximum, JSON-safe: 0.0 when empty (never -inf)."""
        return self.maximum if self.count else 0.0

    def quantile(self, q: float) -> float:
        """The approximate ``q``-quantile (q clamped to [0, 1]).

        0.0 for an empty histogram; exact min/max for ``q<=0`` /
        ``q>=1``; otherwise the geometric midpoint of the bucket holding
        the nearest-rank sample, clamped to the exact observed range.
        """
        if not self.count:
            return 0.0
        if q <= 0.0:
            return self.minimum
        if q >= 1.0:
            return self.maximum
        rank = q * (self.count - 1)
        seen = self._underflow
        if rank < seen:
            # All underflow values are <= 0; min is the best single answer.
            return min(self.minimum, 0.0)
        for index in sorted(self._buckets):
            seen += self._buckets[index]
            if rank < seen:
                low = BUCKET_BASE ** index
                mid = low * math.sqrt(BUCKET_BASE)
                return min(max(mid, self.minimum), self.maximum)
        return self.maximum

    def bucket_counts(self) -> Iterator[tuple[float, int]]:
        """(upper bound, count) pairs in ascending bucket order, the
        underflow bucket (values <= 0) first with bound 0.0."""
        if self._underflow:
            yield 0.0, self._underflow
        for index in sorted(self._buckets):
            yield BUCKET_BASE ** (index + 1), self._buckets[index]


class MetricsRegistry:
    """Named counters/gauges/histograms with a flat snapshot.

    Names are dotted paths (``optimizer.expansion.star_references``,
    ``executor.ship_retries``); the snapshot flattens histograms into
    ``name.count`` / ``name.sum`` / ``name.min`` / ``name.max`` /
    ``name.mean`` / ``name.p50`` / ``name.p99`` keys so the whole
    registry serializes as one ``{str: number}`` dict.
    """

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    # -- get-or-create ------------------------------------------------------

    def counter(self, name: str) -> Counter:
        counter = self._counters.get(name)
        if counter is None:
            counter = self._counters[name] = Counter()
        return counter

    def gauge(self, name: str) -> Gauge:
        gauge = self._gauges.get(name)
        if gauge is None:
            gauge = self._gauges[name] = Gauge()
        return gauge

    def histogram(self, name: str) -> Histogram:
        histogram = self._histograms.get(name)
        if histogram is None:
            histogram = self._histograms[name] = Histogram()
        return histogram

    # -- convenience writers ------------------------------------------------

    def inc(self, name: str, n: int = 1) -> None:
        self.counter(name).inc(n)

    def set_gauge(self, name: str, value: float) -> None:
        self.gauge(name).set(value)

    def observe(self, name: str, value: float) -> None:
        self.histogram(name).observe(value)

    def ingest(self, stats: Mapping[str, Any], prefix: str = "") -> None:
        """Fold a flat stats dict (:func:`stats_snapshot` output) into
        gauges under ``prefix``."""
        for key, value in stats.items():
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                continue
            self.set_gauge(prefix + key, value)

    # -- typed read access (the OpenMetrics renderer needs the kinds) -------

    def counters(self) -> dict[str, Counter]:
        return dict(self._counters)

    def gauges(self) -> dict[str, Gauge]:
        return dict(self._gauges)

    def histograms(self) -> dict[str, Histogram]:
        return dict(self._histograms)

    # -- snapshot -----------------------------------------------------------

    def snapshot(self) -> dict[str, float]:
        """Every metric as one flat ``{name: number}`` dict.

        Always JSON-safe: empty histograms report ``min``/``max`` as 0.0
        rather than leaking ``inf``/``-inf`` (which ``json.dumps`` would
        render as the invalid-JSON token ``Infinity``).
        """
        out: dict[str, float] = {}
        for name, counter in self._counters.items():
            out[name] = counter.value
        for name, gauge in self._gauges.items():
            out[name] = gauge.value
        for name, histogram in self._histograms.items():
            out[f"{name}.count"] = histogram.count
            out[f"{name}.sum"] = histogram.total
            out[f"{name}.min"] = histogram.min_value
            out[f"{name}.max"] = histogram.max_value
            out[f"{name}.mean"] = histogram.mean
            out[f"{name}.p50"] = histogram.quantile(0.50)
            out[f"{name}.p99"] = histogram.quantile(0.99)
        return dict(sorted(out.items()))

    def __len__(self) -> int:
        return len(self._counters) + len(self._gauges) + len(self._histograms)


def stats_snapshot(
    stats: Any,
    prefix: str = "",
    extras: Mapping[str, float] | None = None,
) -> dict[str, float]:
    """Serialize a stats dataclass into the shared flat-dict schema.

    Only numeric (int/float, non-bool) fields are kept; ``extras`` adds
    derived values (e.g. ``total_io``, ``hit_rate``) under the same
    prefix.  This is the one serialization path every stats object in
    the repo routes through.
    """
    out: dict[str, float] = {}
    for field_def in dataclasses.fields(stats):
        value = getattr(stats, field_def.name)
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            continue
        out[prefix + field_def.name] = value
    if extras:
        for key, value in extras.items():
            out[prefix + key] = value
    return out
