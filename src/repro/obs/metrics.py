"""Counters, gauges and histograms behind one flat snapshot.

The repo grew three ad-hoc statistics dataclasses before this module
(:class:`~repro.stars.engine.ExpansionStats`,
:class:`~repro.stars.plantable.PlanTableStats`,
:class:`~repro.executor.runtime.ExecutionStats` plus the per-link
:class:`~repro.executor.network.LinkStats`), each serializing itself a
slightly different way.  :func:`stats_snapshot` is now the single
serialization path: it flattens any stats dataclass into a
``{name: number}`` dict, so ``OptimizationError`` diagnostics, chaos
reports and the metrics registry all share one schema.

:class:`MetricsRegistry` is the accumulation side: named counters
(monotonic), gauges (point-in-time) and histograms (count/sum/min/max),
snapshotable as one flat dict — the shape benchmark JSON and the CLI
report.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Mapping


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, n: int = 1) -> int:
        self.value += n
        return self.value


class Gauge:
    """A point-in-time value (last write wins)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value


class Histogram:
    """Streaming count/sum/min/max over observed values."""

    __slots__ = ("count", "total", "minimum", "maximum")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.minimum = float("inf")
        self.maximum = float("-inf")

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0


class MetricsRegistry:
    """Named counters/gauges/histograms with a flat snapshot.

    Names are dotted paths (``optimizer.expansion.star_references``,
    ``executor.ship_retries``); the snapshot flattens histograms into
    ``name.count`` / ``name.sum`` / ``name.min`` / ``name.max`` /
    ``name.mean`` keys so the whole registry serializes as one
    ``{str: number}`` dict.
    """

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    # -- get-or-create ------------------------------------------------------

    def counter(self, name: str) -> Counter:
        counter = self._counters.get(name)
        if counter is None:
            counter = self._counters[name] = Counter()
        return counter

    def gauge(self, name: str) -> Gauge:
        gauge = self._gauges.get(name)
        if gauge is None:
            gauge = self._gauges[name] = Gauge()
        return gauge

    def histogram(self, name: str) -> Histogram:
        histogram = self._histograms.get(name)
        if histogram is None:
            histogram = self._histograms[name] = Histogram()
        return histogram

    # -- convenience writers ------------------------------------------------

    def inc(self, name: str, n: int = 1) -> None:
        self.counter(name).inc(n)

    def set_gauge(self, name: str, value: float) -> None:
        self.gauge(name).set(value)

    def observe(self, name: str, value: float) -> None:
        self.histogram(name).observe(value)

    def ingest(self, stats: Mapping[str, Any], prefix: str = "") -> None:
        """Fold a flat stats dict (:func:`stats_snapshot` output) into
        gauges under ``prefix``."""
        for key, value in stats.items():
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                continue
            self.set_gauge(prefix + key, value)

    # -- snapshot -----------------------------------------------------------

    def snapshot(self) -> dict[str, float]:
        """Every metric as one flat ``{name: number}`` dict."""
        out: dict[str, float] = {}
        for name, counter in self._counters.items():
            out[name] = counter.value
        for name, gauge in self._gauges.items():
            out[name] = gauge.value
        for name, histogram in self._histograms.items():
            out[f"{name}.count"] = histogram.count
            out[f"{name}.sum"] = histogram.total
            out[f"{name}.min"] = histogram.minimum if histogram.count else 0.0
            out[f"{name}.max"] = histogram.maximum if histogram.count else 0.0
            out[f"{name}.mean"] = histogram.mean
        return dict(sorted(out.items()))

    def __len__(self) -> int:
        return len(self._counters) + len(self._gauges) + len(self._histograms)


def stats_snapshot(
    stats: Any,
    prefix: str = "",
    extras: Mapping[str, float] | None = None,
) -> dict[str, float]:
    """Serialize a stats dataclass into the shared flat-dict schema.

    Only numeric (int/float, non-bool) fields are kept; ``extras`` adds
    derived values (e.g. ``total_io``, ``hit_rate``) under the same
    prefix.  This is the one serialization path every stats object in
    the repo routes through.
    """
    out: dict[str, float] = {}
    for field_def in dataclasses.fields(stats):
        value = getattr(stats, field_def.name)
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            continue
        out[prefix + field_def.name] = value
    if extras:
        for key, value in extras.items():
            out[prefix + key] = value
    return out
