"""EXPLAIN ANALYZE: estimate-vs-actual reporting with Q-error.

Experiment E8 compares plan-level estimated and measured cost; this
module does it per operator.  :func:`explain_analyze` executes the
chosen QEP with per-node row accounting switched on, then joins each
LOLEPOP's *actual* rows (and loop count — an inner stream under a
nested-loop join opens once per outer row) against the property vector's
*estimated* CARD, computing the Q-error

    q(est, act) = max(est, act) / min(est, act)

with both sides floored at 1.0 (the standard convention: an estimator
that predicts 0.3 rows for an empty stream is not penalized by a
division by zero).  A Q-error of 1.0 is a perfect estimate; the metric
is symmetric in over- and under-estimation.

The per-operator comparison uses *rows per loop*, matching how the
cardinality model estimates: the CARD of a nested-loop inner is its
per-probe output under sideways information passing, so actuals must be
normalized by the number of probes before they are comparable.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.bench.reporting import Table
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer
from repro.plans.plan import PlanNode

if TYPE_CHECKING:
    from repro.executor.chaos import ChaosEngine, RetryPolicy
    from repro.executor.runtime import ExecutionResult
    from repro.optimizer.optimizer import OptimizationResult
    from repro.storage.table import Database


def q_error(estimated: float, actual: float, floor: float = 1.0) -> float:
    """The Q-error of one cardinality estimate (symmetric ratio ≥ 1).

    Zero and negative inputs are legal — an estimator may predict 0 rows
    and an empty stream observes 0 — and are clamped to ``floor`` so the
    ratio is always finite.  The ``floor`` itself must be positive:
    a zero floor would let a zero estimate divide by zero.
    """
    if floor <= 0:
        raise ValueError(f"q_error floor must be positive, got {floor}")
    est = max(float(estimated), floor)
    act = max(float(actual), floor)
    return max(est / act, act / est)


@dataclass(frozen=True, slots=True)
class OperatorMeasure:
    """Estimate-vs-actual for one LOLEPOP of the executed plan."""

    node: PlanNode
    label: str
    depth: int
    estimated_rows: float
    actual_rows: int
    loops: int
    q_error: float | None  # None when the operator never opened

    @property
    def rows_per_loop(self) -> float:
        return self.actual_rows / self.loops if self.loops else 0.0


@dataclass
class AnalyzeReport:
    """The joined estimate-vs-actual report for one executed plan."""

    plan: PlanNode
    operators: list[OperatorMeasure]
    result: "ExecutionResult"
    #: Root-operator (whole-plan) cardinality Q-error.
    plan_q_error: float = 1.0
    #: Worst per-operator Q-error among operators that executed.
    max_q_error: float = 1.0
    #: Geometric mean of per-operator Q-errors (the usual summary).
    mean_q_error: float = 1.0
    #: SHIP message estimate vs. actual (formula is shared, so any gap
    #: here is cardinality/width estimation error — see E8).
    estimated_messages: float = 0.0
    actual_messages: int = 0
    events: list[str] = field(default_factory=list)

    def as_dict(self) -> dict[str, float]:
        """Flat metrics-schema summary (no per-operator breakdown)."""
        return {
            "operators": len(self.operators),
            "plan_q_error": self.plan_q_error,
            "max_q_error": self.max_q_error,
            "mean_q_error": self.mean_q_error,
            "estimated_messages": self.estimated_messages,
            "actual_messages": self.actual_messages,
            "output_rows": len(self.result.rows),
            "elapsed_seconds": self.result.stats.elapsed_seconds,
            "total_io": self.result.stats.total_io,
        }

    def render(self) -> str:
        """The per-operator table plus plan-level summary lines."""
        table = Table(
            ["operator", "est rows", "act rows", "loops", "act/loop", "q-error"]
        )
        for measure in self.operators:
            table.add(
                "  " * measure.depth + measure.label,
                f"{measure.estimated_rows:.1f}",
                measure.actual_rows,
                measure.loops,
                f"{measure.rows_per_loop:.1f}",
                "-" if measure.q_error is None else f"{measure.q_error:.2f}",
            )
        lines = [
            str(table),
            "",
            f"plan-level Q-error:      {self.plan_q_error:.2f} "
            f"(est {self.plan.props.card:.1f} rows, "
            f"actual {self.result.stats.output_rows})",
            f"worst operator Q-error:  {self.max_q_error:.2f}",
            f"geo-mean operator Q-error: {self.mean_q_error:.2f}",
            f"messages est/actual:     {self.estimated_messages:.0f} / "
            f"{self.actual_messages}",
            f"executed: {len(self.result)} rows, "
            f"{self.result.stats.total_io} page I/Os, "
            f"{self.result.stats.tuples_flowed} tuples flowed, "
            f"{self.result.stats.elapsed_seconds * 1000:.1f} ms",
        ]
        lines.extend(self.events)
        return "\n".join(lines)


def plan_walk(plan: PlanNode) -> list[tuple[PlanNode, int]]:
    """Pre-order (node, depth) pairs; shared subplans visited once, at
    their first (shallowest-first-encountered) position."""
    out: list[tuple[PlanNode, int]] = []
    seen: set[int] = set()

    def walk(node: PlanNode, depth: int) -> None:
        if id(node) in seen:
            return
        seen.add(id(node))
        out.append((node, depth))
        for child in node.inputs:
            walk(child, depth + 1)

    walk(plan, 0)
    return out


def _operator_label(node: PlanNode) -> str:
    label = node.op
    if node.flavor:
        label += f"({node.flavor})"
    table = node.param("table")
    if table is not None:
        label += f" {table}"
    if node.op == "SHIP":
        label += f" →{node.param('to_site')}"
    elif node.props.site not in (None, "local"):
        label += f" @{node.props.site}"
    return label


def explain_analyze(
    opt_result: "OptimizationResult",
    database: "Database",
    *,
    chaos: "ChaosEngine | None" = None,
    retry: "RetryPolicy | None" = None,
    tracer: Tracer | None = None,
    metrics: MetricsRegistry | None = None,
    executor: str = "vectorized",
) -> AnalyzeReport:
    """Execute ``opt_result.best_plan`` and join actual per-operator rows
    against estimated CARD, computing per-operator and plan Q-error."""
    from repro.executor.runtime import QueryExecutor  # avoid import cycle

    executor = QueryExecutor(
        database, chaos=chaos, retry=retry, tracer=tracer, executor=executor
    )
    node_counts: dict[int, list[int]] = {}
    result = executor.run(
        opt_result.query, opt_result.best_plan, node_counts=node_counts
    )

    operators: list[OperatorMeasure] = []
    executed_qs: list[float] = []
    for node, depth in plan_walk(opt_result.best_plan):
        rows, loops = node_counts.get(id(node), (0, 0))
        q = q_error(node.props.card, rows / loops) if loops else None
        if q is not None:
            executed_qs.append(q)
        operators.append(
            OperatorMeasure(
                node=node,
                label=_operator_label(node),
                depth=depth,
                estimated_rows=node.props.card,
                actual_rows=rows,
                loops=loops,
                q_error=q,
            )
        )

    root = opt_result.best_plan
    report = AnalyzeReport(
        plan=root,
        operators=operators,
        result=result,
        plan_q_error=q_error(root.props.card, result.stats.output_rows),
        max_q_error=max(executed_qs, default=1.0),
        mean_q_error=(
            math.exp(sum(math.log(q) for q in executed_qs) / len(executed_qs))
            if executed_qs
            else 1.0
        ),
        estimated_messages=root.props.cost.msgs,
        actual_messages=result.stats.messages,
    )
    if metrics is not None:
        metrics.ingest(result.stats.as_dict(), prefix="executor.")
        metrics.ingest(report.as_dict(), prefix="analyze.")
        for measure in operators:
            metrics.observe(
                f"executor.op.{measure.node.op}.rows", measure.actual_rows
            )
            if measure.q_error is not None:
                metrics.observe(
                    f"executor.op.{measure.node.op}.q_error", measure.q_error
                )
    return report
