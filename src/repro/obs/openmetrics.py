"""OpenMetrics text rendering for a :class:`MetricsRegistry`.

The registry's :meth:`~repro.obs.metrics.MetricsRegistry.snapshot` is a
flat JSON dict — fine for benchmark artifacts, useless for a Prometheus
scrape.  :func:`render_openmetrics` renders the registry's typed
contents as OpenMetrics text: counters get a ``_total`` sample, gauges
are plain samples, and histograms are rendered as summaries — quantile
samples (p50/p90/p99 straight from the log-bucketed
:meth:`~repro.obs.metrics.Histogram.quantile`) plus ``_count`` and
``_sum`` — because the log buckets are fixed-width in *log* space and a
summary is the honest projection.  Dotted metric names are sanitized to
the ``[a-zA-Z_][a-zA-Z0-9_]*`` charset (dots become underscores) with
collision detection, and the exposition ends with the mandatory
``# EOF``.

:func:`validate_openmetrics` is a strict parser of the subset we emit —
the "a strict parser accepts it" acceptance gate runs it over both the
CLI output and the ``/metrics`` endpoint body.
"""

from __future__ import annotations

import re

from repro.obs.metrics import MetricsRegistry

#: Content type the /metrics endpoint serves.
CONTENT_TYPE = "application/openmetrics-text; version=1.0.0; charset=utf-8"

#: Quantiles exposed per histogram (label value, q).
SUMMARY_QUANTILES = (("0.5", 0.50), ("0.9", 0.90), ("0.99", 0.99))

_NAME_RE = re.compile(r"[a-zA-Z_][a-zA-Z0-9_]*$")
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_][a-zA-Z0-9_]*)"
    r"(?:\{(?P<labels>[^}]*)\})? "
    r"(?P<value>-?(?:\d+(?:\.\d+)?(?:[eE][+-]?\d+)?|\d+))$"
)


def sanitize_name(name: str) -> str:
    """A dotted registry name as a legal OpenMetrics metric name."""
    cleaned = re.sub(r"[^a-zA-Z0-9_]", "_", name)
    if not cleaned or not cleaned[0].isalpha() and cleaned[0] != "_":
        cleaned = "_" + cleaned
    return cleaned


def _format_value(value: float) -> str:
    if isinstance(value, int) or float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def render_openmetrics(registry: MetricsRegistry) -> str:
    """The registry as OpenMetrics exposition text (ends with ``# EOF``).

    Raises :class:`ValueError` when two registry names sanitize to the
    same metric name — a silent merge would corrupt the scrape.
    """
    families: list[tuple[str, str, list[str]]] = []
    seen: dict[str, str] = {}

    def claim(name: str) -> str:
        cleaned = sanitize_name(name)
        if cleaned in seen and seen[cleaned] != name:
            raise ValueError(
                f"metric name collision: {name!r} and {seen[cleaned]!r} "
                f"both sanitize to {cleaned!r}"
            )
        seen[cleaned] = name
        return cleaned

    for name, counter in sorted(registry.counters().items()):
        metric = claim(name)
        families.append((metric, "counter", [
            f"{metric}_total {_format_value(counter.value)}",
        ]))
    for name, gauge in sorted(registry.gauges().items()):
        metric = claim(name)
        families.append((metric, "gauge", [
            f"{metric} {_format_value(gauge.value)}",
        ]))
    for name, histogram in sorted(registry.histograms().items()):
        metric = claim(name)
        samples = [
            f'{metric}{{quantile="{label}"}} '
            f"{_format_value(histogram.quantile(q))}"
            for label, q in SUMMARY_QUANTILES
        ]
        samples.append(f"{metric}_count {_format_value(histogram.count)}")
        samples.append(f"{metric}_sum {_format_value(histogram.total)}")
        families.append((metric, "summary", samples))

    lines: list[str] = []
    for metric, kind, samples in families:
        lines.append(f"# TYPE {metric} {kind}")
        lines.extend(samples)
    lines.append("# EOF")
    return "\n".join(lines) + "\n"


def validate_openmetrics(text: str) -> dict[str, str]:
    """Strictly parse OpenMetrics text; returns ``{metric: type}``.

    Enforces the invariants of the subset this repo emits: a terminal
    ``# EOF`` line and nothing after it, every sample preceded by a
    ``# TYPE`` declaration for its family, counters exposing exactly a
    ``_total`` sample, summaries exposing quantile/``_count``/``_sum``
    samples only, legal metric names, and finite sample values.  Raises
    :class:`ValueError` with a line-numbered message otherwise.
    """
    lines = text.splitlines()
    if not lines or lines[-1] != "# EOF":
        raise ValueError("exposition must end with a '# EOF' line")
    types: dict[str, str] = {}
    for lineno, line in enumerate(lines[:-1], start=1):
        if line == "# EOF":
            raise ValueError(f"line {lineno}: '# EOF' before end of text")
        if line.startswith("# TYPE "):
            parts = line.split(" ")
            if len(parts) != 4:
                raise ValueError(f"line {lineno}: malformed TYPE line")
            _, _, metric, kind = parts
            if not _NAME_RE.match(metric):
                raise ValueError(f"line {lineno}: bad metric name {metric!r}")
            if kind not in ("counter", "gauge", "summary", "histogram"):
                raise ValueError(f"line {lineno}: unknown type {kind!r}")
            if metric in types:
                raise ValueError(f"line {lineno}: duplicate TYPE for {metric}")
            types[metric] = kind
            continue
        if line.startswith("#"):
            continue  # HELP/UNIT comments are legal, we just don't emit them
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise ValueError(f"line {lineno}: malformed sample: {line!r}")
        sample = match.group("name")
        family, suffix = _family_of(sample, types)
        if family is None:
            raise ValueError(
                f"line {lineno}: sample {sample!r} has no TYPE declaration"
            )
        kind = types[family]
        labels = match.group("labels")
        if kind == "counter" and suffix != "_total":
            raise ValueError(
                f"line {lineno}: counter sample must be {family}_total"
            )
        if kind == "gauge" and suffix:
            raise ValueError(f"line {lineno}: gauge sample has suffix")
        if kind == "summary":
            if suffix not in ("", "_count", "_sum"):
                raise ValueError(
                    f"line {lineno}: bad summary suffix {suffix!r}"
                )
            if suffix == "" and (labels is None
                                 or "quantile=" not in labels):
                raise ValueError(
                    f"line {lineno}: summary sample needs a quantile label"
                )
        float(match.group("value"))  # raises on garbage
    return types


def _family_of(sample: str, types: dict[str, str]) -> tuple[str | None, str]:
    """Resolve a sample name to (family, suffix) against declared types."""
    for suffix in ("_total", "_count", "_sum", "_bucket", ""):
        if suffix and sample.endswith(suffix):
            family = sample[: -len(suffix)]
        elif not suffix:
            family = sample
        else:
            continue
        if family in types:
            return family, suffix
    return None, ""


__all__ = [
    "CONTENT_TYPE",
    "SUMMARY_QUANTILES",
    "render_openmetrics",
    "sanitize_name",
    "validate_openmetrics",
]
