"""Hierarchical tracing with a ring-buffered structured event log.

The paper promises that rules "may be traced to explain the origin of
any execution plan" (section 1).  PR 1 grew that into an ad-hoc string
trace; this module replaces it with a first-class :class:`Tracer`
producing structured :class:`TraceEvent` records for every layer:

===========  ==============================================================
category     emitted by
===========  ==============================================================
``star``     :class:`~repro.stars.engine.StarEngine` — one span per STAR
             reference expanded (memo hits are instants)
``glue``     :class:`~repro.stars.glue.Glue` — resolve/augment spans plus
             one instant per veneer LOLEPOP inserted
``plantable``  :class:`~repro.stars.plantable.PlanTable` probe/insert
``propfunc``   :class:`~repro.cost.propfuncs.PlanFactory` — one instant
             per property-function evaluation (LOLEPOP constructed)
``executor``   run-time operator open→close spans with row counts
``ship``     :class:`~repro.executor.network.NetworkSim` transfer
             attempts, retries, backoff and completions
``chaos``    :class:`~repro.executor.chaos.ChaosEngine` fault injections
``optimizer``  one span per :meth:`StarburstOptimizer.optimize`
``resilient``  :class:`~repro.executor.resilient.ResilientExecutor`
             executions, SAP failovers and replans
``robust``   the adaptive loop — optimization budgets, cardinality
             checkpoints, feedback-cache records/hits and per-attempt
             spans of :class:`~repro.robust.adaptive.AdaptiveExecutor`
``serve``    :class:`~repro.serve.service.OptimizerService` — one span
             per handled request plus admission/tier/cache instants,
             stamped with the request id (see :mod:`repro.obs.telemetry`)
``telemetry``  the telemetry layer itself — flight-recorder dumps and
             SLO state transitions
===========  ==============================================================

Design constraints:

* **zero cost when disabled** — every instrumented hot path guards on
  ``tracer is not None``; constructors normalize a disabled tracer to
  ``None`` so the disabled mode is literally the uninstrumented code
  path (benchmarked by E11);
* **bounded memory** — events land in a ring buffer (``capacity``);
  eviction is counted in :attr:`Tracer.dropped`, never an error;
* **deterministic streams** — event identity (phase, category, name,
  depth, span ids, args) is derived only from the work performed, so two
  runs with the same inputs and chaos seed produce identical
  :meth:`Tracer.signature` streams.  Wall-clock fields (``ts``/``dur``)
  are excluded from the signature;
* **exportable** — :meth:`Tracer.to_jsonl` emits one JSON object per
  line, :meth:`Tracer.to_chrome` emits the Chrome ``trace_event`` JSON
  that ``chrome://tracing`` / Perfetto load directly.

Spans are recorded as *complete* events (Chrome phase ``"X"``) at close
time, which keeps lazily-consumed executor generators — whose close
order is not strictly nested — representable without corrupting the
trace.  Instants use phase ``"i"``.
"""

from __future__ import annotations

import json
import time
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator

#: The phases an event may carry: complete span or instant.
PHASES = frozenset({"X", "i"})

#: The categories the subsystems emit (the validator enforces these).
CATEGORIES = frozenset(
    {
        "star",
        "glue",
        "plantable",
        "propfunc",
        "executor",
        "ship",
        "chaos",
        "optimizer",
        "resilient",
        "robust",
        "serve",
        "telemetry",
    }
)

#: Field name → required type(s), the schema every exported event obeys.
EVENT_SCHEMA: dict[str, tuple[type, ...]] = {
    "seq": (int,),
    "ph": (str,),
    "cat": (str,),
    "name": (str,),
    "ts": (int, float),
    "dur": (int, float),
    "depth": (int,),
    "span": (int,),
    "parent": (int, type(None)),
    "args": (dict,),
}

#: Argument values are coerced to these JSON-safe scalar types.
_SCALARS = (str, int, float, bool, type(None))


@dataclass(frozen=True, slots=True)
class TraceEvent:
    """One structured trace record.

    ``ts``/``dur`` are seconds relative to the tracer's epoch; ``depth``
    is the number of enclosing open spans at begin time; ``span`` /
    ``parent`` tie the hierarchy together across the flat stream.
    """

    seq: int
    ph: str  # "X" (complete span) or "i" (instant)
    cat: str
    name: str
    ts: float
    dur: float
    depth: int
    span: int
    parent: int | None
    args: dict[str, Any] = field(default_factory=dict)

    def as_dict(self) -> dict[str, Any]:
        return {
            "seq": self.seq,
            "ph": self.ph,
            "cat": self.cat,
            "name": self.name,
            "ts": self.ts,
            "dur": self.dur,
            "depth": self.depth,
            "span": self.span,
            "parent": self.parent,
            "args": self.args,
        }

    def signature(self) -> tuple:
        """The deterministic identity of this event (no wall-clock)."""
        return (
            self.ph,
            self.cat,
            self.name,
            self.depth,
            self.span,
            self.parent,
            tuple(sorted(self.args.items())),
        )


class _Frame:
    """One open span on the tracer's stack."""

    __slots__ = ("span_id", "cat", "name", "start", "depth", "parent", "args")

    def __init__(self, span_id, cat, name, start, depth, parent, args):
        self.span_id = span_id
        self.cat = cat
        self.name = name
        self.start = start
        self.depth = depth
        self.parent = parent
        self.args = args


class Tracer:
    """Collects trace events into a ring buffer.

    A disabled tracer (``enabled=False``) accepts every call as a no-op;
    instrumented components additionally normalize disabled tracers to
    ``None`` at construction so their hot paths stay untouched.
    """

    def __init__(
        self,
        capacity: int = 65536,
        enabled: bool = True,
        clock=time.perf_counter,
    ):
        if capacity < 1:
            raise ValueError("capacity must be at least 1")
        self.enabled = enabled
        self.capacity = capacity
        self._clock = clock
        self._epoch = clock()
        self._events: deque[TraceEvent] = deque(maxlen=capacity)
        self._stack: list[_Frame] = []
        self._seq = 0
        self._next_span = 0
        #: Ambient args merged into every recorded event (see
        #: :meth:`context`) — how request ids stitch spans across layers.
        self._context: dict[str, Any] = {}
        self._context_stack: list[dict[str, Any]] = []
        #: Events evicted from the ring buffer so far.
        self.dropped = 0

    @classmethod
    def disabled(cls) -> "Tracer":
        return cls(capacity=1, enabled=False)

    # -- recording ----------------------------------------------------------

    def _now(self) -> float:
        return self._clock() - self._epoch

    def begin(self, cat: str, name: str, **args: Any) -> int:
        """Open a span; returns its id for :meth:`end`."""
        if not self.enabled:
            return -1
        span_id = self._next_span
        self._next_span += 1
        parent = self._stack[-1].span_id if self._stack else None
        cleaned = _clean_args(args)
        if self._context:
            cleaned = {**self._context, **cleaned}
        frame = _Frame(
            span_id, cat, name, self._now(), len(self._stack), parent,
            cleaned,
        )
        self._stack.append(frame)
        return span_id

    def end(self, span_id: int | None = None, **args: Any) -> None:
        """Close a span (the innermost by default) and record it.

        Closing by explicit ``span_id`` tolerates out-of-order closes —
        executor generators are finalized in GC order, not stack order.
        Ending with an empty stack or an unknown id is a silent no-op.
        """
        if not self.enabled or not self._stack:
            return
        if span_id is None or self._stack[-1].span_id == span_id:
            frame = self._stack.pop()
        else:
            index = next(
                (
                    i
                    for i in range(len(self._stack) - 1, -1, -1)
                    if self._stack[i].span_id == span_id
                ),
                None,
            )
            if index is None:
                return
            frame = self._stack.pop(index)
        if args:
            frame.args.update(_clean_args(args))
        now = self._now()
        self._record(
            TraceEvent(
                seq=self._seq,
                ph="X",
                cat=frame.cat,
                name=frame.name,
                ts=frame.start,
                dur=now - frame.start,
                depth=frame.depth,
                span=frame.span_id,
                parent=frame.parent,
                args=frame.args,
            )
        )

    def instant(self, cat: str, name: str, **args: Any) -> None:
        """Record a zero-duration event at the current nesting depth."""
        if not self.enabled:
            return
        span_id = self._next_span
        self._next_span += 1
        parent = self._stack[-1].span_id if self._stack else None
        cleaned = _clean_args(args)
        if self._context:
            cleaned = {**self._context, **cleaned}
        self._record(
            TraceEvent(
                seq=self._seq,
                ph="i",
                cat=cat,
                name=name,
                ts=self._now(),
                dur=0.0,
                depth=len(self._stack),
                span=span_id,
                parent=parent,
                args=cleaned,
            )
        )

    @contextmanager
    def span(self, cat: str, name: str, **args: Any) -> Iterator[int]:
        """Context-manager sugar over :meth:`begin` / :meth:`end`."""
        span_id = self.begin(cat, name, **args)
        try:
            yield span_id
        finally:
            self.end(span_id)

    @contextmanager
    def context(self, **args: Any) -> Iterator["Tracer"]:
        """Stamp ``args`` into every event recorded inside the block.

        This is how request-scoped identity (request id, tenant) reaches
        spans emitted deep inside the optimizer or executor without
        threading a parameter through every call: the serving layer wraps
        request handling in ``tracer.context(rid=...)`` and the whole
        span tree comes out stamped.  Contexts nest; inner keys win.
        """
        if not self.enabled:
            yield self
            return
        self._context_stack.append(self._context)
        merged = dict(self._context)
        merged.update(_clean_args(args))
        self._context = merged
        try:
            yield self
        finally:
            self._context = self._context_stack.pop()

    def _record(self, event: TraceEvent) -> None:
        if len(self._events) == self.capacity:
            self.dropped += 1
        self._events.append(event)
        self._seq += 1

    # -- inspection ---------------------------------------------------------

    def events(self) -> tuple[TraceEvent, ...]:
        """The buffered events, in completion order."""
        return tuple(self._events)

    def __len__(self) -> int:
        return len(self._events)

    @property
    def open_spans(self) -> int:
        return len(self._stack)

    def signature(self) -> tuple[tuple, ...]:
        """The wall-clock-free identity of the whole stream; equal across
        runs with identical inputs and chaos seed."""
        return tuple(e.signature() for e in self._events)

    def category_counts(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for event in self._events:
            counts[event.cat] = counts.get(event.cat, 0) + 1
        return counts

    def clear(self) -> None:
        self._events.clear()
        self._stack.clear()
        self.dropped = 0

    # -- export -------------------------------------------------------------

    def to_jsonl(self) -> str:
        """One JSON object per line (the schema of :data:`EVENT_SCHEMA`)."""
        return "\n".join(json.dumps(e.as_dict(), sort_keys=True) for e in self._events)

    def to_chrome(self) -> str:
        """Chrome ``trace_event`` JSON, loadable by chrome://tracing and
        Perfetto.  Span events use the Complete ("X") phase; instants use
        "i" with thread scope."""
        trace_events = []
        for e in self._events:
            entry: dict[str, Any] = {
                "name": e.name,
                "cat": e.cat,
                "ph": e.ph,
                "ts": round(e.ts * 1e6, 3),
                "pid": 1,
                "tid": 1,
                "args": dict(e.args, seq=e.seq, span=e.span, depth=e.depth),
            }
            if e.ph == "X":
                entry["dur"] = round(e.dur * 1e6, 3)
            else:
                entry["s"] = "t"
            trace_events.append(entry)
        return json.dumps(
            {"traceEvents": trace_events, "displayTimeUnit": "ms"}, indent=1
        )


def _clean_args(args: dict[str, Any]) -> dict[str, Any]:
    """Coerce span arguments to JSON-safe deterministic scalars."""
    return {
        k: (v if isinstance(v, _SCALARS) else str(v)) for k, v in args.items()
    }


# ---------------------------------------------------------------------------
# Schema validation (the ``trace --self-check`` CI lint)
# ---------------------------------------------------------------------------


def validate_event(record: Any, index: int = 0) -> list[str]:
    """Validate one decoded event dict against :data:`EVENT_SCHEMA`."""
    errors: list[str] = []
    where = f"event {index}"
    if not isinstance(record, dict):
        return [f"{where}: not a JSON object"]
    for fname, types in EVENT_SCHEMA.items():
        if fname not in record:
            errors.append(f"{where}: missing field {fname!r}")
            continue
        value = record[fname]
        if not isinstance(value, types) or isinstance(value, bool) and bool not in types:
            errors.append(
                f"{where}: field {fname!r} has type {type(value).__name__}, "
                f"expected {'/'.join(t.__name__ for t in types)}"
            )
    extras = set(record) - set(EVENT_SCHEMA)
    if extras:
        errors.append(f"{where}: unknown field(s) {sorted(extras)}")
    if record.get("ph") not in PHASES:
        errors.append(f"{where}: phase {record.get('ph')!r} not in {sorted(PHASES)}")
    if record.get("cat") not in CATEGORIES:
        errors.append(
            f"{where}: category {record.get('cat')!r} not in {sorted(CATEGORIES)}"
        )
    if isinstance(record.get("depth"), int) and record["depth"] < 0:
        errors.append(f"{where}: negative depth")
    if isinstance(record.get("args"), dict):
        for key, value in record["args"].items():
            if not isinstance(value, _SCALARS):
                errors.append(
                    f"{where}: arg {key!r} is not a scalar "
                    f"({type(value).__name__})"
                )
    return errors


def validate_events(records: Iterable[Any]) -> list[str]:
    """Validate a decoded event stream; returns human-readable errors."""
    errors: list[str] = []
    last_seq: int | None = None
    for index, record in enumerate(records):
        errors.extend(validate_event(record, index))
        seq = record.get("seq") if isinstance(record, dict) else None
        if isinstance(seq, int):
            if last_seq is not None and seq <= last_seq:
                errors.append(
                    f"event {index}: seq {seq} not increasing (after {last_seq})"
                )
            last_seq = seq
    return errors


def validate_jsonl(text: str) -> list[str]:
    """Validate a JSON-lines trace export (``Tracer.to_jsonl`` output)."""
    records = []
    errors: list[str] = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        try:
            records.append(json.loads(line))
        except json.JSONDecodeError as exc:
            errors.append(f"line {lineno}: invalid JSON ({exc})")
    errors.extend(validate_events(records))
    return errors


def active_tracer(tracer: Tracer | None) -> Tracer | None:
    """Normalize a tracer for hot-path guards: disabled tracers become
    ``None`` so instrumented code pays nothing when tracing is off."""
    if tracer is None or not tracer.enabled:
        return None
    return tracer
