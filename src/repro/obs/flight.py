"""Flight recorder: a ring buffer of recent requests, dumped on incident.

Aviation flight recorders don't log everything forever — they keep the
last few minutes and surface them when something goes wrong.  This is
the serving-layer analogue: :class:`FlightRecorder` keeps the last K
:class:`FlightRecord` summaries (template key, tier, cache outcome, plan
digest, cost, Q-error, latency, budget spent), and the service dumps the
whole ring as JSONL the moment the drift circuit breaker trips, a
deadline-bounded request exhausts its budget, or an SLO enters
violation.  The dump is the incident artifact: the K requests *leading
up to* the trip, not just the one that tripped it.

Dumps are deterministic modulo wall-clock latency; ``normalize_time``
zeroes the latency field so seeded runs produce byte-stable goldens
(``tests/fixtures/flight_golden.jsonl``), pinning the record schema.
:func:`validate_flight_dump` is the strict reader the E16 gate runs over
a forced-trip dump.
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import dataclass, fields
from typing import Any, Iterable


#: Cache outcomes a record may carry (``none`` = the request never
#: consulted the template cache, e.g. it was rejected or errored early).
CACHE_OUTCOMES = ("hit", "stale", "miss", "none")


@dataclass(frozen=True)
class FlightRecord:
    """One request's summary, as kept in the flight-recorder ring."""

    seq: int
    request_id: str
    tenant: str
    template: str | None
    tier: str
    cache: str
    plan_digest: str | None
    cost: float | None
    q_error: float | None
    latency_seconds: float
    budget_expansions: int
    deadline_ticks: int | None
    ok: bool
    error: str | None = None

    def __post_init__(self) -> None:
        if self.cache not in CACHE_OUTCOMES:
            raise ValueError(
                f"cache outcome must be one of {CACHE_OUTCOMES}, "
                f"got {self.cache!r}"
            )

    def as_dict(self, normalize_time: bool = False) -> dict[str, Any]:
        """The record as a JSON-ready dict; ``normalize_time`` zeroes the
        latency so seeded dumps are byte-stable across machines."""
        out = {f.name: getattr(self, f.name) for f in fields(self)}
        if normalize_time:
            out["latency_seconds"] = 0.0
        return out


class FlightRecorder:
    """Ring buffer of the last ``capacity`` request records."""

    def __init__(self, capacity: int = 64):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._ring: deque[FlightRecord] = deque(maxlen=capacity)
        self.dumps = 0

    def __len__(self) -> int:
        return len(self._ring)

    def record(self, record: FlightRecord) -> None:
        self._ring.append(record)

    def records(self) -> list[FlightRecord]:
        """Oldest-to-newest snapshot of the ring."""
        return list(self._ring)

    def dump_text(self, reason: str, normalize_time: bool = False) -> str:
        """The whole ring as JSONL: one header line naming the dump
        reason, then one line per record, oldest first.

        Keys are sorted so identical record streams serialize to
        identical bytes — what the golden-fixture test pins.
        """
        self.dumps += 1
        lines = [json.dumps(
            {"type": "flight_dump", "reason": reason,
             "records": len(self._ring)},
            sort_keys=True,
        )]
        for record in self._ring:
            lines.append(json.dumps(
                record.as_dict(normalize_time=normalize_time),
                sort_keys=True, allow_nan=False,
            ))
        return "\n".join(lines) + "\n"

    def dump(self, path: str, reason: str,
             normalize_time: bool = False) -> str:
        """Append a dump to ``path`` (JSONL file); returns the text."""
        text = self.dump_text(reason, normalize_time=normalize_time)
        with open(path, "a", encoding="utf-8") as handle:
            handle.write(text)
        return text


def validate_flight_dump(text: str) -> list[dict[str, Any]]:
    """Parse and strictly validate one flight dump; returns the records.

    Raises :class:`ValueError` on any structural problem: missing or
    malformed header, record-count mismatch, missing or unknown record
    fields, or a bad cache outcome.  This is the parser the E16
    forced-trip gate runs.
    """
    lines = [line for line in text.splitlines() if line.strip()]
    if not lines:
        raise ValueError("empty flight dump")
    header = json.loads(lines[0])
    if header.get("type") != "flight_dump":
        raise ValueError(f"bad dump header: {lines[0]!r}")
    if "reason" not in header or "records" not in header:
        raise ValueError("dump header missing reason/records")
    body = lines[1:]
    if len(body) != header["records"]:
        raise ValueError(
            f"header promises {header['records']} records, "
            f"found {len(body)}"
        )
    expected = {f.name for f in fields(FlightRecord)}
    records: list[dict[str, Any]] = []
    for i, line in enumerate(body):
        raw = json.loads(line)
        got = set(raw)
        if got != expected:
            missing = sorted(expected - got)
            extra = sorted(got - expected)
            raise ValueError(
                f"record {i}: missing fields {missing}, extra {extra}"
            )
        if raw["cache"] not in CACHE_OUTCOMES:
            raise ValueError(f"record {i}: bad cache outcome {raw['cache']!r}")
        records.append(raw)
    return records


def parse_dumps(text: str) -> Iterable[list[dict[str, Any]]]:
    """Split a multi-dump JSONL file into individual validated dumps."""
    lines = [line for line in text.splitlines() if line.strip()]
    start = 0
    while start < len(lines):
        header = json.loads(lines[start])
        if header.get("type") != "flight_dump":
            raise ValueError(f"expected dump header at line {start}")
        end = start + 1 + int(header["records"])
        yield validate_flight_dump("\n".join(lines[start:end]))
        start = end


__all__ = [
    "CACHE_OUTCOMES",
    "FlightRecord",
    "FlightRecorder",
    "parse_dumps",
    "validate_flight_dump",
]
