"""Service-level objectives with rolling error budgets and burn rates.

An :class:`SLObjective` declares what fraction of requests must be
*good* — fast enough (latency objective) or successful (error-rate
objective) — and :class:`SLOMonitor` tracks each objective over a
rolling window of responses.  The core quantity is the **burn rate**:

    burn = bad_fraction / (1 - target)

i.e. how fast the rolling window is spending its error budget.  Burn 1.0
means the service is exactly on objective; burn 2.0 means it is failing
twice as many requests as the objective allows.  The monitor publishes
``slo.<name>.burn_rate`` / ``slo.<name>.budget_remaining`` gauges on
every observation, and reports *transitions* into violation (burn > 1
with enough samples) so the serving layer can react exactly once per
incident — dumping the flight recorder and letting
``_choose_tier`` degrade under measured pressure instead of guessing
from queue depth alone.

Everything is deterministic: windows are request-counted (no wall-clock
decay), so identical response streams produce identical burn curves.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass


@dataclass(frozen=True)
class SLObjective:
    """One declarative objective over a rolling window of requests.

    With ``latency_threshold`` set, a request is good when it succeeded
    *and* finished within the threshold; without it the objective judges
    success alone (an error-rate objective).  ``target`` is the required
    good fraction — the error budget is ``1 - target``.
    """

    name: str
    target: float = 0.99
    #: Seconds a request may take and still count as good (None = only
    #: success is judged).
    latency_threshold: float | None = None
    #: Rolling window length, in requests.
    window: int = 128
    #: Violations are not reported before this many samples exist —
    #: one bad request out of two is noise, not an incident.
    min_samples: int = 16

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("objective name must be non-empty")
        if not 0.0 < self.target < 1.0:
            raise ValueError(f"target must be in (0, 1), got {self.target}")
        if self.latency_threshold is not None and self.latency_threshold <= 0:
            raise ValueError("latency_threshold must be positive")
        if self.window < 1:
            raise ValueError("window must be at least 1")
        if self.min_samples < 1:
            raise ValueError("min_samples must be at least 1")

    @classmethod
    def latency(
        cls, name: str, threshold: float, target: float = 0.99,
        window: int = 128,
    ) -> "SLObjective":
        """p-``target`` latency objective: that fraction of requests must
        finish within ``threshold`` seconds."""
        return cls(name=name, target=target, latency_threshold=threshold,
                   window=window)

    @classmethod
    def errors(
        cls, name: str, target: float = 0.999, window: int = 128
    ) -> "SLObjective":
        """Error-rate objective: ``target`` fraction must succeed."""
        return cls(name=name, target=target, window=window)

    def good(self, latency_seconds: float, ok: bool) -> bool:
        if not ok:
            return False
        if self.latency_threshold is not None:
            return latency_seconds <= self.latency_threshold
        return True

    @property
    def error_budget(self) -> float:
        return 1.0 - self.target


class SLOMonitor:
    """Rolling-window burn-rate tracking over a set of objectives."""

    def __init__(self, objectives, metrics=None):
        self.objectives = tuple(objectives)
        names = [o.name for o in self.objectives]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate objective names: {names}")
        self.metrics = metrics
        self._windows: dict[str, deque[bool]] = {
            o.name: deque(maxlen=o.window) for o in self.objectives
        }
        self._violated: set[str] = set()

    def __len__(self) -> int:
        return len(self.objectives)

    def observe(self, latency_seconds: float, ok: bool) -> list[str]:
        """Fold one response in; returns objectives *newly* in violation.

        Publishes the per-objective burn-rate and budget-remaining
        gauges on every call, so a scrape between any two requests sees
        current burn.
        """
        newly: list[str] = []
        for objective in self.objectives:
            window = self._windows[objective.name]
            window.append(objective.good(latency_seconds, ok))
            burn = self.burn_rate(objective.name)
            if self.metrics is not None:
                self.metrics.set_gauge(
                    f"slo.{objective.name}.burn_rate", burn
                )
                self.metrics.set_gauge(
                    f"slo.{objective.name}.budget_remaining",
                    self.budget_remaining(objective.name),
                )
            violated = burn > 1.0 and len(window) >= objective.min_samples
            if violated and objective.name not in self._violated:
                self._violated.add(objective.name)
                newly.append(objective.name)
            elif not violated:
                self._violated.discard(objective.name)
        return newly

    def burn_rate(self, name: str) -> float:
        """Bad fraction over the window, relative to the error budget."""
        objective = self._objective(name)
        window = self._windows[name]
        if not window:
            return 0.0
        bad = sum(1 for good in window if not good) / len(window)
        return bad / objective.error_budget

    def budget_remaining(self, name: str) -> float:
        """Rolling error budget left, 1.0 (untouched) .. 0.0 (spent)."""
        return max(0.0, 1.0 - self.burn_rate(name))

    def max_burn(self) -> float:
        """The hottest objective's burn rate (0.0 with no objectives)."""
        if not self.objectives:
            return 0.0
        return max(self.burn_rate(o.name) for o in self.objectives)

    def violated(self, name: str | None = None) -> bool:
        if name is None:
            return bool(self._violated)
        return name in self._violated

    def status(self) -> dict[str, dict[str, float]]:
        """Per-objective burn/budget/sample-count snapshot (reporting)."""
        return {
            o.name: {
                "burn_rate": self.burn_rate(o.name),
                "budget_remaining": self.budget_remaining(o.name),
                "samples": float(len(self._windows[o.name])),
                "violated": float(self.violated(o.name)),
            }
            for o in self.objectives
        }

    def _objective(self, name: str) -> SLObjective:
        for objective in self.objectives:
            if objective.name == name:
                return objective
        raise KeyError(f"no objective named {name!r}")


__all__ = ["SLObjective", "SLOMonitor"]
