"""Property vectors and required properties (paper section 3).

Every table — base table or result of a plan — has a set of properties
that summarize the work done on the table thus far.  Figure 2 lists them:

=============  =========================================================
relational     TABLES, COLS, PREDS                        (*what*)
physical       ORDER, SITE, TEMP, PATHS                   (*how*)
estimated      CARD, COST                                 (*how much*)
=============  =========================================================

Only LOLEPOP property functions (``repro.cost.propfuncs``) construct or
revise property vectors; STARs merely compose LOLEPOPs (section 7).

:class:`Requirements` models the ``[square bracket]`` annotations of
section 3.2.  Requirements accumulate on a stream argument across STAR
references until Glue is referenced, which injects veneer operators to
satisfy them.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterable

from repro.catalog.schema import AccessPath
from repro.cost.model import Cost
from repro.errors import GlueError
from repro.query.expressions import ColumnRef
from repro.query.predicates import Predicate

#: A tuple of columns: the ORDER property ("an ordered list of columns").
OrderSpec = tuple[ColumnRef, ...]


def order_satisfies(actual: OrderSpec, required: OrderSpec) -> bool:
    """Does a stream ordered by ``actual`` satisfy a requirement of
    ``required``?  Yes iff ``required`` is a prefix of ``actual`` — the
    paper's ``order ⊑ a`` test."""
    if len(required) > len(actual):
        return False
    return tuple(actual[: len(required)]) == tuple(required)


@dataclass(frozen=True, slots=True)
class PropertyVector:
    """The property vector of one plan (Figure 2)."""

    # relational (WHAT)
    tables: frozenset[str]
    cols: frozenset[ColumnRef]
    preds: frozenset[Predicate]
    # physical (HOW)
    order: OrderSpec = ()
    site: str = "local"
    temp: bool = False
    paths: frozenset[AccessPath] = field(default_factory=frozenset)
    #: Name of the stored object this plan's output materializes, if any
    #: (a temp created by STORE/BUILDIX, or a base table).  Streams have
    #: ``stored_as=None``.  This is how TableAccess and index veneers
    #: find the thing to re-ACCESS (section 4.5.2's forcing-projection
    #: alternative re-accesses the temp).
    stored_as: str | None = None
    # estimated (HOW MUCH)
    card: float = 1.0
    cost: Cost = Cost.ZERO
    #: Estimated cost of producing the stream *again* (used by the
    #: nested-loop join property function: a materialized inner rescans
    #: cheaply, a pipelined inner recomputes).
    rescan_cost: Cost = Cost.ZERO

    def satisfies(self, req: "Requirements") -> bool:
        """Does this plan meet every required property?"""
        if req.order is not None and not order_satisfies(self.order, req.order):
            return False
        if req.site is not None and self.site != req.site:
            return False
        if req.temp and not self.temp:
            return False
        if req.paths is not None and not self.has_path_on(req.paths):
            return False
        return True

    def has_path_on(self, key_columns: OrderSpec) -> bool:
        """Is there an available access path whose key starts with
        ``key_columns``?  (The ``paths ≥ IX`` requirement of 4.5.3.)"""
        wanted = tuple(c.column for c in key_columns)
        return any(p.provides_order_prefix(wanted) for p in self.paths)

    def describe(self) -> str:
        """Multi-line rendering used by the Figure-2 benchmark."""
        lines = [
            f"TABLES = {{{', '.join(sorted(self.tables))}}}",
            f"COLS   = {{{', '.join(sorted(str(c) for c in self.cols))}}}",
            f"PREDS  = {{{', '.join(sorted(str(p) for p in self.preds))}}}",
            f"ORDER  = ({', '.join(str(c) for c in self.order)})",
            f"SITE   = {self.site}",
            f"TEMP   = {self.temp}",
            f"PATHS  = {{{', '.join(sorted(str(p) for p in self.paths))}}}",
            f"CARD   = {self.card:.1f}",
            f"COST   = {self.cost}",
        ]
        return "\n".join(lines)


@dataclass(frozen=True, slots=True)
class Requirements:
    """Required properties accumulated on a stream argument (section 3.2).

    ``None`` fields are "not required".  ``extra_preds`` is not a paper
    property requirement but the mechanism by which predicates are pushed
    down to a stream ("the predicates to be applied by the inner stream
    are parameters"): Glue re-references the access STARs with them.
    """

    order: OrderSpec | None = None
    site: str | None = None
    temp: bool = False
    paths: OrderSpec | None = None
    extra_preds: frozenset[Predicate] = field(default_factory=frozenset)

    def is_empty(self) -> bool:
        return self == Requirements.EMPTY

    def merged(self, other: "Requirements") -> "Requirements":
        """Accumulate ``other`` on top of these requirements.

        Later requirements override earlier ones for scalar properties
        (the innermost STAR reference speaks last) but conflicting
        non-None scalars raise, because the paper's rule sets never
        legitimately require two different sites or orders for one
        stream.
        """
        def pick(mine, theirs, what: str):
            if mine is None:
                return theirs
            if theirs is None:
                return mine
            if mine != theirs:
                raise GlueError(f"conflicting {what} requirements: {mine} vs {theirs}")
            return mine

        return Requirements(
            order=pick(self.order, other.order, "order"),
            site=pick(self.site, other.site, "site"),
            temp=self.temp or other.temp,
            paths=pick(self.paths, other.paths, "paths"),
            extra_preds=self.extra_preds | other.extra_preds,
        )

    def without_preds(self) -> "Requirements":
        return replace(self, extra_preds=frozenset())

    def __str__(self) -> str:
        parts = []
        if self.order is not None:
            parts.append(f"order={','.join(str(c) for c in self.order)}")
        if self.site is not None:
            parts.append(f"site={self.site}")
        if self.temp:
            parts.append("temp")
        if self.paths is not None:
            parts.append(f"paths>={','.join(str(c) for c in self.paths)}")
        if self.extra_preds:
            parts.append(f"push={{{', '.join(sorted(str(p) for p in self.extra_preds))}}}")
        return f"[{'; '.join(parts)}]" if parts else "[]"


# A shared no-requirements constant (plain class attribute, not a field).
Requirements.EMPTY = Requirements()  # type: ignore[attr-defined]


def requirements(
    order: Iterable[ColumnRef] | None = None,
    site: str | None = None,
    temp: bool = False,
    paths: Iterable[ColumnRef] | None = None,
    extra_preds: Iterable[Predicate] = (),
) -> Requirements:
    """Convenience constructor accepting any iterables."""
    return Requirements(
        order=tuple(order) if order is not None else None,
        site=site,
        temp=temp,
        paths=tuple(paths) if paths is not None else None,
        extra_preds=frozenset(extra_preds),
    )
