"""Plans: LOLEPOP operators, the plan DAG, property vectors, and SAPs.

This package defines the *objects the rules manipulate* (paper section 2):

* :class:`~repro.plans.properties.PropertyVector` — Figure 2's relational
  / physical / estimated properties of a plan;
* :class:`~repro.plans.properties.Requirements` — required properties
  attached to STAR arguments with ``[square brackets]`` (section 3.2);
* :class:`~repro.plans.plan.PlanNode` — a node of the query evaluation
  plan, a directed graph of LOLEPOPs (Figure 1);
* :class:`~repro.plans.sap.SAP` — the Set of Alternative Plans abstract
  data type that all STARs consume and produce (section 2.2);
* :class:`~repro.plans.sap.Stream` — a not-yet-resolved SAP argument (a
  table set plus accumulated requirements) that Glue resolves into plans.
"""

from repro.plans.operators import (
    ACCESS,
    BUILDIX,
    FILTER,
    GET,
    JOIN,
    SHIP,
    SORT,
    STORE,
    UNION,
    JOIN_FLAVORS,
    LOLEPOPS,
)
from repro.plans.plan import PlanNode, plan_digest, render_functional, render_tree
from repro.plans.properties import (
    PropertyVector,
    Requirements,
    order_satisfies,
)
from repro.plans.sap import SAP, Stream

__all__ = [
    "ACCESS",
    "BUILDIX",
    "FILTER",
    "GET",
    "JOIN",
    "JOIN_FLAVORS",
    "LOLEPOPS",
    "PlanNode",
    "PropertyVector",
    "Requirements",
    "SAP",
    "SHIP",
    "SORT",
    "STORE",
    "Stream",
    "UNION",
    "order_satisfies",
    "plan_digest",
    "render_functional",
    "render_tree",
]
