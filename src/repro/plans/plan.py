"""Plan nodes and plan rendering.

A query evaluation plan (QEP) is a directed graph of LOLEPOPs (Figure 1).
:class:`PlanNode` is immutable and hashable; shared subplans are shared
Python objects ("alternative plans may incorporate the same plan
fragment").  Each node carries the property vector computed by its
LOLEPOP's property function at construction time — properties are changed
*only* by LOLEPOPs (section 7).

Two renderings are provided, matching the paper's two notations:

* :func:`render_functional` — the nested-function notation of section 2.1
  (``JOIN(MG, ..., SORT(ACCESS(DEPT, ...), ...), GET(...))``);
* :func:`render_tree` — an indented tree like Figure 1, with the property
  "ears" of Figure 3 optionally shown at the root.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, Iterator

from repro.errors import ReproError
from repro.plans.operators import ACCESS, GET, JOIN, SHIP, SORT, spec_for
from repro.plans.properties import PropertyVector


def _freeze_param(value: Any) -> Any:
    """Normalize parameter values to hashable, deterministic forms."""
    if isinstance(value, (list, tuple)):
        return tuple(_freeze_param(v) for v in value)
    if isinstance(value, (set, frozenset)):
        return frozenset(_freeze_param(v) for v in value)
    return value


@dataclass(frozen=True, slots=True)
class PlanNode:
    """One LOLEPOP in a plan, with its parameters, inputs and properties.

    ``digest`` is a content hash of the plan's *structure* (operators,
    parameters, children — not cost), computed lazily on first use from
    the children's cached digests and memoized on the node.  Node
    construction itself never hashes — plans that are built and discarded
    by a pruning pass (most of them, in a big search) pay nothing.
    Structural equality, hashing, SAP deduplication and memoization keys
    all run on the cached digest in O(1).
    """

    op: str
    flavor: str | None
    params: tuple[tuple[str, Any], ...]
    inputs: tuple["PlanNode", ...]
    props: PropertyVector = field(compare=False)
    _digest: str | None = field(
        default=None, init=False, repr=False, compare=False
    )
    _hash: int | None = field(
        default=None, init=False, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        spec = spec_for(self.op)
        if len(self.inputs) not in spec.arities:
            raise ReproError(
                f"{self.op} takes {spec.arities} input(s), got {len(self.inputs)}"
            )
        if spec.flavors and self.flavor not in spec.flavors:
            raise ReproError(f"{self.op} has no flavor {self.flavor!r}")
        for key, _ in self.params:
            if key not in spec.params:
                raise ReproError(f"{self.op} has no parameter {key!r}")

    @property
    def digest(self) -> str:
        digest = self._digest
        if digest is None:
            digest = self._compute_digest()
            object.__setattr__(self, "_digest", digest)
        return digest

    def _compute_digest(self) -> str:
        hasher = hashlib.sha256()
        hasher.update(self.op.encode())
        hasher.update((self.flavor or "").encode())
        for key, value in self.params:
            hasher.update(key.encode())
            if isinstance(value, frozenset):
                hasher.update("|".join(sorted(str(v) for v in value)).encode())
            else:
                hasher.update(str(value).encode())
        for child in self.inputs:
            hasher.update(child.digest.encode())
        return hasher.hexdigest()[:16]

    def __hash__(self) -> int:
        cached = self._hash
        if cached is None:
            cached = hash(self.digest)
            object.__setattr__(self, "_hash", cached)
        return cached

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if not isinstance(other, PlanNode):
            return NotImplemented
        return self.digest == other.digest

    def param(self, key: str, default: Any = None) -> Any:
        for name, value in self.params:
            if name == key:
                return value
        return default

    def nodes(self) -> Iterator["PlanNode"]:
        """All nodes, root first (pre-order; shared nodes visited once)."""
        seen: set[int] = set()
        stack = [self]
        while stack:
            node = stack.pop()
            if id(node) in seen:
                continue
            seen.add(id(node))
            yield node
            stack.extend(reversed(node.inputs))

    def count_nodes(self) -> int:
        return sum(1 for _ in self.nodes())

    def __str__(self) -> str:
        return render_functional(self)


def make_params(**kwargs: Any) -> tuple[tuple[str, Any], ...]:
    """Build a deterministic, hashable parameter tuple."""
    return tuple(sorted((k, _freeze_param(v)) for k, v in kwargs.items()))


# ---------------------------------------------------------------------------
# Rendering
# ---------------------------------------------------------------------------


def _fmt_set(values) -> str:
    return "{" + ", ".join(sorted(str(v) for v in values)) + "}"


def _node_label(node: PlanNode) -> str:
    """A one-line description of the node's own operation."""
    if node.op == ACCESS:
        path = node.param("path")
        source = path.name if path is not None else node.param("table")
        return (
            f"ACCESS({node.flavor}, {source}, "
            f"{_fmt_set(node.param('columns', frozenset()))}, "
            f"{_fmt_set(node.param('preds', frozenset()))})"
        )
    if node.op == GET:
        return (
            f"GET({node.param('table')}, "
            f"{_fmt_set(node.param('columns', frozenset()))}, "
            f"{_fmt_set(node.param('preds', frozenset()))})"
        )
    if node.op == SORT:
        order = ", ".join(str(c) for c in node.param("order", ()))
        return f"SORT({order})"
    if node.op == SHIP:
        return f"SHIP(to {node.param('to_site')})"
    if node.op == JOIN:
        return (
            f"JOIN({node.flavor}, {_fmt_set(node.param('join_preds', frozenset()))}, "
            f"residual={_fmt_set(node.param('residual_preds', frozenset()))})"
        )
    if node.op == "FILTER":
        return f"FILTER({_fmt_set(node.param('preds', frozenset()))})"
    if node.op == "PROJECT":
        return f"PROJECT({_fmt_set(node.param('columns', frozenset()))})"
    if node.op == "INTERSECT":
        key = ", ".join(str(c) for c in node.param("key", ()))
        return f"INTERSECT({key})"
    if node.op == "DEDUP":
        key = ", ".join(str(c) for c in node.param("key", ()))
        return f"DEDUP({key})"
    if node.op == "BUILDIX":
        key = ", ".join(str(c) for c in node.param("key", ()))
        return f"BUILDIX({key})"
    return node.op


def render_functional(node: PlanNode) -> str:
    """The nested-function notation of section 2.1."""
    label = _node_label(node)
    if not node.inputs:
        return label
    inner = ", ".join(render_functional(child) for child in node.inputs)
    # Splice the children in before the closing parenthesis.
    if label.endswith(")"):
        return f"{label[:-1]}, {inner})"
    return f"{label}({inner})"


def render_tree(node: PlanNode, show_properties: bool = False) -> str:
    """An indented tree rendering in the style of Figure 1.

    With ``show_properties=True`` the root node gets the order/site
    "ears" of Figure 3 plus cardinality and cost.
    """
    lines: list[str] = []
    if show_properties:
        props = node.props
        order = ",".join(c.column for c in props.order) or "-"
        lines.append(f"   (order: {order} | site: {props.site} | "
                     f"card: {props.card:.1f} | cost: {props.cost})")

    def walk(current: PlanNode, prefix: str, is_last: bool, is_root: bool) -> None:
        if is_root:
            lines.append(_node_label(current))
            child_prefix = ""
        else:
            connector = "└── " if is_last else "├── "
            lines.append(prefix + connector + _node_label(current))
            child_prefix = prefix + ("    " if is_last else "│   ")
        for index, child in enumerate(current.inputs):
            walk(child, child_prefix, index == len(current.inputs) - 1, False)

    walk(node, "", True, True)
    return "\n".join(lines)


def plan_digest(node: PlanNode) -> str:
    """The plan's structural digest (ignores cost); cached per node."""
    return node.digest


def plan_sites(node: PlanNode) -> frozenset[str]:
    """The plan's *site footprint*: every site some node executes at.

    A plan survives a site outage iff the dead site is not in its
    footprint — the question :class:`ResilientExecutor` asks of each
    alternative in the SAP when failing over.
    """
    return frozenset(n.props.site for n in node.nodes())


def plan_links(node: PlanNode) -> frozenset[tuple[str, str]]:
    """Every directed link the plan ships a stream over."""
    return frozenset(
        (n.inputs[0].props.site, n.param("to_site"))
        for n in node.nodes()
        if n.op == SHIP
    )
