"""LOLEPOP definitions.

A LOw-LEvel Plan OPerator (paper section 2.1) is "a function that operates
on 1 or 2 tables ... and produces a single table as output"; besides input
tables it has parameters that control its operation, and a *flavor*
distinguishing variants with the same parameter structure (e.g. join
methods).

This module declares the operator vocabulary and the parameter schema of
each operator.  Plan nodes themselves live in :mod:`repro.plans.plan`;
property functions in :mod:`repro.cost.propfuncs`; run-time routines in
:mod:`repro.executor.runtime`.  Adding a LOLEPOP (paper section 5) means
adding an entry here plus one property function and one run-time routine.
"""

from __future__ import annotations

from dataclasses import dataclass

ACCESS = "ACCESS"
GET = "GET"
SORT = "SORT"
SHIP = "SHIP"
STORE = "STORE"
BUILDIX = "BUILDIX"
JOIN = "JOIN"
FILTER = "FILTER"
UNION = "UNION"
DEDUP = "DEDUP"
PROJECT = "PROJECT"
INTERSECT = "INTERSECT"

#: ACCESS flavors: the storage-manager kinds of section 4.5.2 plus the
#: index and temp sources ("ACCESSes to base tables and to access methods
#: ... use different flavors of ACCESS", footnote 3).
ACCESS_FLAVORS = ("heap", "btree", "index", "temp")

#: JOIN flavors: nested-loop, sort-merge (section 4.4), hash (4.5.1),
#: and hash semijoin (SJ — the filtration strategy of the paper's
#: omitted list; emits left rows having at least one right match).
JOIN_FLAVORS = ("NL", "MG", "HA", "SJ")


@dataclass(frozen=True, slots=True)
class LolepopSpec:
    """Operator metadata: allowed arities and legal parameter keys."""

    name: str
    arities: tuple[int, ...]
    flavors: tuple[str, ...]
    params: tuple[str, ...]


LOLEPOPS: dict[str, LolepopSpec] = {
    spec.name: spec
    for spec in (
        # ACCESS of a base table or index has no plan input; ACCESS of a
        # materialized temp consumes the plan that produced the temp.
        # ``site`` names the stored copy being read (primary or replica) —
        # part of the params so replica plans get distinct digests.
        LolepopSpec(
            ACCESS, (0, 1), ACCESS_FLAVORS, ("table", "path", "columns", "preds", "site")
        ),
        # GET consumes a TID stream and the stored table it dereferences
        # (Figure 1); the stored table is a parameter, not a plan input.
        LolepopSpec(GET, (1,), (), ("table", "columns", "preds")),
        LolepopSpec(SORT, (1,), (), ("order",)),
        LolepopSpec(SHIP, (1,), (), ("to_site",)),
        LolepopSpec(STORE, (1,), (), ()),
        LolepopSpec(BUILDIX, (1,), (), ("key",)),
        LolepopSpec(JOIN, (2,), JOIN_FLAVORS, ("join_preds", "residual_preds")),
        LolepopSpec(FILTER, (1,), (), ("preds",)),
        LolepopSpec(UNION, (2,), (), ()),
        # DEDUP keeps the first row per key — used by the index OR-ing
        # strategy to merge TID streams from several indexes.
        LolepopSpec(DEDUP, (1,), (), ("key",)),
        # PROJECT narrows a stream to a column subset — used by the
        # semijoin strategy to ship only the join columns.
        LolepopSpec(PROJECT, (1,), (), ("columns",)),
        # INTERSECT keeps left rows whose key appears in the right stream
        # — used by the index AND-ing strategy on TID streams.
        LolepopSpec(INTERSECT, (2,), (), ("key",)),
    )
}


def spec_for(op: str) -> LolepopSpec:
    return LOLEPOPS[op]
