"""Hash-consed plan interning.

Alternative plans "may incorporate the same plan fragment" (section
2.3), and the bottom-up enumeration builds the same subtree through many
enclosing alternatives.  Without interning, each construction produces a
fresh :class:`~repro.plans.plan.PlanNode` object: structurally equal but
distinct, so every DAG walk (``nodes()``, site footprints, execution)
revisits what is logically one fragment, and every equality check falls
through to digest comparison.

:class:`PlanInterner` dedupes nodes by structural digest as they leave
the :class:`~repro.cost.propfuncs.PlanFactory`: the first construction
of a shape wins and every later structurally-identical construction
returns the *same object*.  Plans built from interned children therefore
share subtrees physically, equality short-circuits on identity, and the
per-unique-subtree digest is computed exactly once.  One interner lives
for one optimization (it is part of the engine's per-query state), so
interned plans never leak property vectors across catalogs or feedback
epochs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.obs.metrics import stats_snapshot
from repro.plans.plan import PlanNode


@dataclass
class InternStats:
    """Instrumentation of one interner's lifetime."""

    requests: int = 0
    hits: int = 0
    unique: int = 0

    def hit_rate(self) -> float:
        return self.hits / self.requests if self.requests else 0.0

    def as_dict(self) -> dict[str, float]:
        """Serialize through the shared metrics-snapshot path."""
        return stats_snapshot(self, extras={"hit_rate": self.hit_rate()})


class PlanInterner:
    """Digest-keyed hash-consing table for plan nodes."""

    __slots__ = ("_by_digest", "stats")

    def __init__(self) -> None:
        self._by_digest: dict[str, PlanNode] = {}
        self.stats = InternStats()

    def intern(self, node: PlanNode) -> PlanNode:
        """The canonical node for ``node``'s structure.

        Returns the previously interned object when one exists (a *hit*:
        the new construction is discarded), otherwise registers ``node``
        as the canonical representative.
        """
        self.stats.requests += 1
        digest = node.digest
        existing = self._by_digest.get(digest)
        if existing is not None:
            self.stats.hits += 1
            return existing
        self._by_digest[digest] = node
        self.stats.unique += 1
        return node

    def get(self, digest: str) -> PlanNode | None:
        return self._by_digest.get(digest)

    def __len__(self) -> int:
        return len(self._by_digest)
