"""The SAP abstract data type and unresolved stream arguments.

Section 2.2: "It is easiest to treat all STARs as operations on the
abstract data type Set of Alternative Plans for a stream (SAP), which
consume one or two SAPs and are mapped (in the LISP sense) onto each
element of those SAPs to produce an output SAP."

:class:`Stream` is a SAP argument *before* Glue resolves it: a table set
plus the requirements accumulated so far (section 3.2: "the requirements
are accumulated until Glue is referenced").  ``T2[temp]`` in rule text
produces ``stream.require(temp=True)``.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Iterable, Iterator

from repro.cost.model import CostModel
from repro.plans.plan import PlanNode, plan_digest, plan_links, plan_sites
from repro.plans.properties import Requirements, order_satisfies


@dataclass(frozen=True, slots=True)
class Stream:
    """An unresolved SAP argument: tables to produce + accumulated
    requirements.  ``fixed_plans`` pins the candidate plans explicitly
    (used by tests and the Figure-3 benchmark); normally Glue finds
    candidates in the plan table."""

    tables: frozenset[str]
    requirements: Requirements = Requirements.EMPTY
    fixed_plans: tuple[PlanNode, ...] | None = None

    def require(self, extra: Requirements) -> "Stream":
        """Accumulate additional required properties on this stream."""
        return replace(self, requirements=self.requirements.merged(extra))

    def bare(self) -> "Stream":
        """This stream with no requirements (for condition functions that
        need the undecorated table set)."""
        return Stream(self.tables, Requirements.EMPTY, self.fixed_plans)

    def __str__(self) -> str:
        base = "{" + ", ".join(sorted(self.tables)) + "}"
        req = str(self.requirements)
        return base + (req if req != "[]" else "")


class SAP:
    """An immutable set of alternative plans with cost-based helpers."""

    __slots__ = ("plans",)

    def __init__(self, plans: Iterable[PlanNode] = ()):
        deduped: dict[str, PlanNode] = {}
        for plan in plans:
            digest = plan_digest(plan)
            if digest not in deduped:
                deduped[digest] = plan
        self.plans: tuple[PlanNode, ...] = tuple(deduped.values())

    def __iter__(self) -> Iterator[PlanNode]:
        return iter(self.plans)

    def __len__(self) -> int:
        return len(self.plans)

    def __bool__(self) -> bool:
        return bool(self.plans)

    def union(self, other: "SAP") -> "SAP":
        return SAP((*self.plans, *other.plans))

    def map(self, fn: Callable[[PlanNode], PlanNode | None]) -> "SAP":
        """Apply ``fn`` to each alternative (the LISP-map of section 2.2),
        dropping alternatives for which ``fn`` returns None."""
        return SAP(p for p in (fn(plan) for plan in self.plans) if p is not None)

    def satisfying(self, req: Requirements) -> "SAP":
        return SAP(p for p in self.plans if p.props.satisfies(req))

    def cheapest(self, model: CostModel) -> PlanNode | None:
        if not self.plans:
            return None
        return min(self.plans, key=lambda p: model.total(p.props.cost))

    def pruned(
        self,
        model: CostModel,
        interesting: frozenset | None = None,
        site_diversity: bool = False,
    ) -> "SAP":
        """Drop dominated alternatives.

        Plan A dominates plan B when both produce the same relational
        content (TABLES, COLS, PREDS) and A is no worse on every
        interesting physical property *and* cost:

        * ``total(A) <= total(B)``,
        * same SITE,
        * A's ORDER satisfies B's ORDER (B's order is a prefix of A's),
        * A is materialized if B is (``temp``/``stored_as``),
        * A's PATHS cover B's.

        This is System R's "interesting order" pruning generalized to the
        whole property vector.  When ``interesting`` (a set of columns) is
        given, a plan's ORDER only protects it from pruning up to its
        longest prefix of interesting columns — orders that no later
        merge join or ORDER BY can exploit do not keep expensive plans
        alive (the classic System R refinement).

        With ``site_diversity`` on, dominance additionally requires the
        dominating plan's site/link *footprint* to be a subset of the
        dominated plan's — a plan that touches a site or link the cheaper
        plan does not is insurance against an outage of the cheaper
        plan's resources, and survives pruning.
        """
        judge = _DominanceJudge(self.plans, model, interesting, site_diversity)
        keep: list[PlanNode] = []
        for cand in judge.by_cost(self.plans):
            if not judge.dominated_by_any(keep, cand):
                keep.append(cand)
        return SAP(keep)

    def __str__(self) -> str:
        return f"SAP[{len(self.plans)} plan(s)]"


def merge_pruned(
    existing: SAP,
    incoming: SAP,
    model: CostModel,
    interesting: frozenset | None = None,
    site_diversity: bool = False,
) -> SAP:
    """Merge ``incoming`` into an already-pruned ``existing`` SAP.

    ``existing`` is assumed mutually non-dominated (the invariant
    :meth:`SAP.pruned` establishes and the plan table maintains), so only
    the cross pairs and the incoming-incoming pairs need dominance
    checks — ``O(new × total)`` instead of re-pruning the whole union
    from scratch on every insert.  Produces the same survivors as
    ``existing.union(incoming).pruned(...)``: on mutual domination
    (equivalent plans) the established plan wins, exactly as the cheaper/
    earlier candidate wins in the full sort-based pass.
    """
    seen = {p.digest for p in existing.plans}
    new = [p for p in incoming.plans if p.digest not in seen]
    if not new:
        return existing
    judge = _DominanceJudge(
        (*existing.plans, *new), model, interesting, site_diversity
    )
    kept_new: list[PlanNode] = []
    established = list(existing.plans)
    for cand in judge.by_cost(new):
        if judge.dominated_by_any(established, cand):
            continue
        if judge.dominated_by_any(kept_new, cand):
            continue
        kept_new.append(cand)
    if not kept_new:
        return existing
    survivors = [
        plan
        for plan in established
        if not judge.dominated_by_any(kept_new, plan)
    ]
    return SAP((*survivors, *kept_new))


class _DominanceJudge:
    """Precomputed per-plan state for one dominance-pruning pass.

    Total cost, effective (interesting-prefix) order, and — only when
    site diversity is on — the site/link footprint are each computed once
    per plan, instead of once per pairwise comparison.
    """

    __slots__ = ("totals", "effective", "footprint")

    def __init__(
        self,
        plans: Iterable[PlanNode],
        model: CostModel,
        interesting: frozenset | None,
        site_diversity: bool,
    ) -> None:
        total = model.total
        self.totals: dict[str, float] = {}
        self.effective: dict[str, tuple] = {}
        self.footprint: dict[str, tuple[frozenset, frozenset]] | None = (
            {} if site_diversity else None
        )
        for plan in plans:
            digest = plan.digest
            if digest in self.totals:
                continue
            self.totals[digest] = total(plan.props.cost)
            self.effective[digest] = _effective_order(
                plan.props.order, interesting
            )
            if self.footprint is not None:
                self.footprint[digest] = (plan_sites(plan), plan_links(plan))

    def by_cost(self, plans: Iterable[PlanNode]) -> list[PlanNode]:
        return sorted(plans, key=lambda p: self.totals[p.digest])

    def dominated_by_any(
        self, keepers: Iterable[PlanNode], cand: PlanNode
    ) -> bool:
        for kept in keepers:
            if _dominates(kept, cand, self):
                return True
        return False


def _effective_order(order: tuple, interesting: frozenset | None) -> tuple:
    if interesting is None:
        return tuple(order)
    prefix = []
    for column in order:
        if column not in interesting:
            break
        prefix.append(column)
    return tuple(prefix)


def _real_cols(cols: frozenset) -> frozenset:
    """Columns excluding TID pseudo-columns (which carry no information
    the query needs and should not shield a plan from pruning)."""
    return frozenset(c for c in cols if not c.column.startswith("#"))


def _dominates(a: PlanNode, b: PlanNode, judge: "_DominanceJudge") -> bool:
    pa, pb = a.props, b.props
    if pa.site != pb.site:
        return False
    if judge.footprint is not None:
        a_sites, a_links = judge.footprint[a.digest]
        b_sites, b_links = judge.footprint[b.digest]
        # A may only subsume B if everything A depends on, B depends on
        # too — otherwise B survives failures A does not.
        if not (a_sites <= b_sites and a_links <= b_links):
            return False
    if pb.temp and not pa.temp:
        return False
    if pb.stored_as is not None and pa.stored_as is None:
        return False
    if not order_satisfies(judge.effective[a.digest], judge.effective[b.digest]):
        return False
    if not (pb.paths <= pa.paths):
        return False
    if pa.tables != pb.tables or pa.preds != pb.preds:
        return False
    if _real_cols(pa.cols) != _real_cols(pb.cols):
        return False
    if judge.totals[a.digest] > judge.totals[b.digest]:
        return False
    return True
