"""Predicate AST and the predicate *classification* functions of the paper.

Section 4.4 of the paper defines, for a join of table sets ``T1`` (outer)
and ``T2`` (inner) with eligible predicates ``P``:

``JP``
    join predicates: multi-table, no ORs or subqueries, but expressions OK.
``SP``
    sortable predicates: ``p in JP`` of form ``col1 op col2`` where
    ``col1`` belongs to ``T1`` and ``col2`` to ``T2`` (or vice versa).
``IP``
    predicates eligible on the inner only: ``columns(p) subseteq columns(T2)``.

Section 4.5 adds:

``HP``
    hashable predicates: ``p in JP`` of form
    ``expr(columns(T1)) = expr(columns(T2))``.
``XP``
    indexable multi-table predicates: ``p in JP`` of form
    ``expr(columns(T1)) op T2.col``.

These classifiers are exposed both as plain functions here and as registry
functions usable from STAR rule text (see ``repro.stars.registry``).

A note on ``SP``: the paper writes ``col1 op col2`` without restricting
``op``; our merge-join runtime implements equality merge (as System R and
R* did), so the default classification restricts ``SP`` to equality.  Pass
``equality_only=False`` to get the paper's literal definition.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Iterator

from repro.errors import QueryError
from repro.query.expressions import ColumnRef, Expr, Literal, RowContext

COMPARISON_OPS = ("=", "<>", "<", "<=", ">", ">=")

_OP_FUNCS: dict[str, Callable[[Any, Any], bool]] = {
    "=": lambda a, b: a == b,
    "<>": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}

_OP_FLIP = {"=": "=", "<>": "<>", "<": ">", "<=": ">=", ">": "<", ">=": "<="}


@dataclass(frozen=True, slots=True)
class Predicate:
    """Base class of all predicates."""

    def columns(self) -> frozenset[ColumnRef]:
        return frozenset(self._iter_columns())

    def tables(self) -> frozenset[str]:
        return frozenset(ref.table for ref in self._iter_columns())

    def _iter_columns(self) -> Iterator[ColumnRef]:
        return iter(())

    def evaluate(self, ctx: RowContext) -> bool:
        raise NotImplementedError

    def conjuncts(self) -> tuple["Predicate", ...]:
        """Flatten top-level ANDs into a tuple of conjunct predicates."""
        return (self,)


@dataclass(frozen=True, slots=True)
class Comparison(Predicate):
    """A binary comparison ``left op right``."""

    op: str
    left: Expr
    right: Expr

    def __post_init__(self) -> None:
        if self.op not in _OP_FUNCS:
            raise QueryError(f"unknown comparison operator {self.op!r}")

    def _iter_columns(self) -> Iterator[ColumnRef]:
        yield from self.left._iter_columns()
        yield from self.right._iter_columns()

    def evaluate(self, ctx: RowContext) -> bool:
        left = self.left.evaluate(ctx)
        right = self.right.evaluate(ctx)
        if left is None or right is None:
            return False
        return _OP_FUNCS[self.op](left, right)

    def flipped(self) -> "Comparison":
        """The same predicate with sides exchanged (``a < b`` -> ``b > a``)."""
        return Comparison(_OP_FLIP[self.op], self.right, self.left)

    def __str__(self) -> str:
        return f"{self.left} {self.op} {self.right}"


@dataclass(frozen=True, slots=True)
class Conjunction(Predicate):
    """``AND`` of two or more predicates."""

    parts: tuple[Predicate, ...]

    def __post_init__(self) -> None:
        if len(self.parts) < 2:
            raise QueryError("a conjunction needs at least two parts")

    def _iter_columns(self) -> Iterator[ColumnRef]:
        for part in self.parts:
            yield from part._iter_columns()

    def evaluate(self, ctx: RowContext) -> bool:
        return all(part.evaluate(ctx) for part in self.parts)

    def conjuncts(self) -> tuple[Predicate, ...]:
        flat: list[Predicate] = []
        for part in self.parts:
            flat.extend(part.conjuncts())
        return tuple(flat)

    def __str__(self) -> str:
        return " AND ".join(
            f"({p})" if isinstance(p, Disjunction) else str(p) for p in self.parts
        )


@dataclass(frozen=True, slots=True)
class Disjunction(Predicate):
    """``OR`` of two or more predicates.

    Disjunctions are *not* join predicates per the paper's JP definition;
    they are always applied as residual filters.
    """

    parts: tuple[Predicate, ...]

    def __post_init__(self) -> None:
        if len(self.parts) < 2:
            raise QueryError("a disjunction needs at least two parts")

    def _iter_columns(self) -> Iterator[ColumnRef]:
        for part in self.parts:
            yield from part._iter_columns()

    def evaluate(self, ctx: RowContext) -> bool:
        return any(part.evaluate(ctx) for part in self.parts)

    def __str__(self) -> str:
        return " OR ".join(str(p) for p in self.parts)


@dataclass(frozen=True, slots=True)
class Negation(Predicate):
    """``NOT`` of a predicate."""

    part: Predicate

    def _iter_columns(self) -> Iterator[ColumnRef]:
        yield from self.part._iter_columns()

    def evaluate(self, ctx: RowContext) -> bool:
        return not self.part.evaluate(ctx)

    def __str__(self) -> str:
        return f"NOT ({self.part})"


# ---------------------------------------------------------------------------
# Classification (paper sections 4.4 and 4.5)
# ---------------------------------------------------------------------------


def _side_tables(expr: Expr) -> frozenset[str]:
    return expr.tables()


def join_predicates(preds: Iterable[Predicate]) -> frozenset[Predicate]:
    """``JP``: multi-table comparisons (no ORs; expressions OK)."""
    return frozenset(
        p
        for p in preds
        if isinstance(p, Comparison) and len(p.tables()) >= 2
    )


def sortable_predicates(
    preds: Iterable[Predicate],
    outer_tables: frozenset[str] | set[str],
    inner_tables: frozenset[str] | set[str],
    equality_only: bool = True,
) -> frozenset[Predicate]:
    """``SP``: join predicates of form ``col1 op col2`` across the two sides."""
    outer = frozenset(outer_tables)
    inner = frozenset(inner_tables)
    result = []
    for p in join_predicates(preds):
        assert isinstance(p, Comparison)
        if equality_only and p.op != "=":
            continue
        if not (isinstance(p.left, ColumnRef) and isinstance(p.right, ColumnRef)):
            continue
        left_t, right_t = p.left.table, p.right.table
        spans = (left_t in outer and right_t in inner) or (
            left_t in inner and right_t in outer
        )
        if spans:
            result.append(p)
    return frozenset(result)


def hashable_predicates(
    preds: Iterable[Predicate],
    outer_tables: frozenset[str] | set[str],
    inner_tables: frozenset[str] | set[str],
) -> frozenset[Predicate]:
    """``HP``: equality join predicates whose sides each touch one side only."""
    outer = frozenset(outer_tables)
    inner = frozenset(inner_tables)
    result = []
    for p in join_predicates(preds):
        assert isinstance(p, Comparison)
        if p.op != "=":
            continue
        lt, rt = _side_tables(p.left), _side_tables(p.right)
        if not lt or not rt:
            continue
        if (lt <= outer and rt <= inner) or (lt <= inner and rt <= outer):
            result.append(p)
    return frozenset(result)


def indexable_predicates(
    preds: Iterable[Predicate],
    outer_tables: frozenset[str] | set[str],
    inner_tables: frozenset[str] | set[str],
) -> frozenset[Predicate]:
    """``XP``: join predicates of form ``expr(outer cols) op inner.col``.

    The bare-column side must be a single column of the inner; the other
    side may be any expression over outer columns only.
    """
    outer = frozenset(outer_tables)
    inner = frozenset(inner_tables)
    result = []
    for p in join_predicates(preds):
        assert isinstance(p, Comparison)
        for bare, expr_side in ((p.right, p.left), (p.left, p.right)):
            if not isinstance(bare, ColumnRef) or bare.table not in inner:
                continue
            expr_tables = _side_tables(expr_side)
            if expr_tables and expr_tables <= outer:
                result.append(p)
                break
    return frozenset(result)


def inner_only_predicates(
    preds: Iterable[Predicate],
    inner_tables: frozenset[str] | set[str],
) -> frozenset[Predicate]:
    """``IP``: predicates whose columns all belong to the inner table set."""
    inner = frozenset(inner_tables)
    return frozenset(p for p in preds if p.tables() and p.tables() <= inner)


@dataclass(frozen=True, slots=True)
class PredicateClasses:
    """All of the paper's predicate classes for one (outer, inner) pair."""

    eligible: frozenset[Predicate]
    join: frozenset[Predicate] = field(default_factory=frozenset)
    sortable: frozenset[Predicate] = field(default_factory=frozenset)
    hashable: frozenset[Predicate] = field(default_factory=frozenset)
    indexable: frozenset[Predicate] = field(default_factory=frozenset)
    inner_only: frozenset[Predicate] = field(default_factory=frozenset)


def classify_predicates(
    preds: Iterable[Predicate],
    outer_tables: frozenset[str] | set[str],
    inner_tables: frozenset[str] | set[str],
    equality_only_sort: bool = True,
) -> PredicateClasses:
    """Classify ``preds`` into the paper's JP / SP / HP / XP / IP classes."""
    preds = frozenset(preds)
    return PredicateClasses(
        eligible=preds,
        join=join_predicates(preds),
        sortable=sortable_predicates(
            preds, outer_tables, inner_tables, equality_only=equality_only_sort
        ),
        hashable=hashable_predicates(preds, outer_tables, inner_tables),
        indexable=indexable_predicates(preds, outer_tables, inner_tables),
        inner_only=inner_only_predicates(preds, inner_tables),
    )


# ---------------------------------------------------------------------------
# Sargability: can an access method apply this predicate?
# ---------------------------------------------------------------------------


def sargable_column(
    pred: Predicate,
    table: str,
    bound_tables: frozenset[str] = frozenset(),
) -> tuple[ColumnRef, str, Expr] | None:
    """If ``pred`` can be applied as a search argument on ``table``, return
    ``(column, op, value_expr)`` with the column on the left.

    A predicate is sargable for ``table`` when it is a comparison with one
    side a bare column of ``table`` and the other side an expression whose
    columns (if any) all belong to ``bound_tables`` — tables whose values
    are instantiated by an enclosing nested-loop join (sideways
    information passing).
    """
    if not isinstance(pred, Comparison):
        return None
    for column_side, value_side, op in (
        (pred.left, pred.right, pred.op),
        (pred.right, pred.left, _OP_FLIP[pred.op]),
    ):
        if not isinstance(column_side, ColumnRef) or column_side.table != table:
            continue
        value_tables = value_side.tables()
        if value_tables <= bound_tables and table not in value_tables:
            return (column_side, op, value_side)
    return None


def conjunction_of(preds: Iterable[Predicate]) -> Predicate | None:
    """Combine predicates into a single conjunction (None if empty)."""
    parts = tuple(preds)
    if not parts:
        return None
    if len(parts) == 1:
        return parts[0]
    return Conjunction(parts)


def equals_value(table: str, column: str, value: Any) -> Comparison:
    """Convenience constructor for ``table.column = value``."""
    return Comparison("=", ColumnRef(table, column), Literal(value))
