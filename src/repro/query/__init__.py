"""Query model: scalar expressions, predicates, a small SQL parser, and
query blocks.

This package supplies the *non-procedural* side of the optimizer: what the
user asked for.  The optimizer (``repro.optimizer``) turns a
:class:`~repro.query.query.QueryBlock` into a procedural plan of LOLEPOPs.
"""

from repro.query.expressions import (
    Arith,
    ColumnRef,
    Expr,
    FuncCall,
    Literal,
    RowContext,
)
from repro.query.predicates import (
    Comparison,
    Conjunction,
    Disjunction,
    Negation,
    Predicate,
    classify_predicates,
    hashable_predicates,
    indexable_predicates,
    inner_only_predicates,
    join_predicates,
    sortable_predicates,
)
from repro.query.parser import parse_query, parse_predicate, parse_expression
from repro.query.query import QueryBlock, OrderItem

__all__ = [
    "Arith",
    "ColumnRef",
    "Comparison",
    "Conjunction",
    "Disjunction",
    "Expr",
    "FuncCall",
    "Literal",
    "Negation",
    "OrderItem",
    "Predicate",
    "QueryBlock",
    "RowContext",
    "classify_predicates",
    "hashable_predicates",
    "indexable_predicates",
    "inner_only_predicates",
    "join_predicates",
    "parse_expression",
    "parse_predicate",
    "parse_query",
    "sortable_predicates",
]
