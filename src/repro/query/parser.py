"""A small SQL parser for select-project-join blocks.

Grammar (case-insensitive keywords)::

    query       := SELECT select_list FROM table_list
                   [WHERE predicate] [ORDER BY order_list]
    select_list := '*' | select_item (',' select_item)*
    select_item := expr [AS ident]
    table_list  := ident (',' ident)*
    order_list  := column [ASC|DESC] (',' column [ASC|DESC])*
    predicate   := disjunct (OR disjunct)*
    disjunct    := conjunct (AND conjunct)*
    conjunct    := NOT conjunct | '(' predicate ')' | comparison
    comparison  := expr op expr | expr BETWEEN expr AND expr
    op          := '=' | '<>' | '!=' | '<' | '<=' | '>' | '>='
    expr        := term (('+'|'-') term)*
    term        := factor (('*'|'/'|'%') factor)*
    factor      := ['-'] primary
    primary     := number | string | column | func '(' args ')' | '(' expr ')'
    column      := ident '.' ident | ident

Unqualified column names are resolved against the FROM list using the
catalog.  The parser produces conjunct-normalized predicates: the WHERE
clause is flattened into a tuple of top-level conjuncts (ORs stay intact
inside a conjunct, matching the paper's treatment of ORs as residual,
non-join predicates).
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterable

from typing import TYPE_CHECKING

from repro.errors import ParseError

if TYPE_CHECKING:  # imported lazily to avoid a circular import with catalog
    from repro.catalog.catalog import Catalog
from repro.query.expressions import Arith, ColumnRef, Expr, FuncCall, Literal
from repro.query.expressions import scalar_functions
from repro.query.predicates import (
    Comparison,
    Conjunction,
    Disjunction,
    Negation,
    Predicate,
)
from repro.query.query import OrderItem, QueryBlock, SelectItem

_KEYWORDS = {
    "select", "from", "where", "order", "by", "and", "or", "not",
    "as", "asc", "desc", "between",
}

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<number>\d+\.\d+|\d+)
  | (?P<string>'(?:[^']|'')*')
  | (?P<ident>[A-Za-z_][A-Za-z_0-9#]*)
  | (?P<op><=|>=|<>|!=|=|<|>)
  | (?P<punct>[(),.*+\-/%])
    """,
    re.VERBOSE,
)


@dataclass(frozen=True, slots=True)
class _Token:
    kind: str
    text: str
    line: int
    column: int


def _tokenize(text: str) -> list[_Token]:
    tokens: list[_Token] = []
    pos = 0
    line = 1
    line_start = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            raise ParseError(
                f"unexpected character {text[pos]!r}", line, pos - line_start + 1
            )
        kind = match.lastgroup or ""
        token_text = match.group()
        if kind != "ws":
            tokens.append(_Token(kind, token_text, line, pos - line_start + 1))
        else:
            newlines = token_text.count("\n")
            if newlines:
                line += newlines
                line_start = pos + token_text.rfind("\n") + 1
        pos = match.end()
    tokens.append(_Token("eof", "", line, pos - line_start + 1))
    return tokens


class _Parser:
    """Recursive-descent parser over the token stream."""

    def __init__(self, text: str, catalog: "Catalog", tables: tuple[str, ...] = ()):
        self._tokens = _tokenize(text)
        self._pos = 0
        self._catalog = catalog
        self._tables = tables

    # -- token plumbing -------------------------------------------------------

    def _peek(self) -> _Token:
        return self._tokens[self._pos]

    def _advance(self) -> _Token:
        token = self._tokens[self._pos]
        if token.kind != "eof":
            self._pos += 1
        return token

    def _error(self, message: str) -> ParseError:
        token = self._peek()
        return ParseError(f"{message}, got {token.text!r}", token.line, token.column)

    def _at_keyword(self, word: str) -> bool:
        token = self._peek()
        return token.kind == "ident" and token.text.lower() == word

    def _expect_keyword(self, word: str) -> None:
        if not self._at_keyword(word):
            raise self._error(f"expected {word.upper()}")
        self._advance()

    def _expect_punct(self, char: str) -> None:
        token = self._peek()
        if token.kind != "punct" or token.text != char:
            raise self._error(f"expected {char!r}")
        self._advance()

    def _at_punct(self, char: str) -> bool:
        token = self._peek()
        return token.kind == "punct" and token.text == char

    def _accept_punct(self, char: str) -> bool:
        if self._at_punct(char):
            self._advance()
            return True
        return False

    def _expect_ident(self) -> str:
        token = self._peek()
        if token.kind != "ident" or token.text.lower() in _KEYWORDS:
            raise self._error("expected identifier")
        self._advance()
        return token.text

    # -- query ----------------------------------------------------------------

    def parse_query(self) -> QueryBlock:
        self._expect_keyword("select")
        select_texts = self._parse_select_list_raw()
        self._expect_keyword("from")
        tables = [self._expect_ident()]
        while self._accept_punct(","):
            tables.append(self._expect_ident())
        self._tables = tuple(tables)
        select = self._resolve_select_list(select_texts)
        predicates: tuple[Predicate, ...] = ()
        if self._at_keyword("where"):
            self._advance()
            predicates = self.parse_predicate().conjuncts()
        order_by: list[OrderItem] = []
        if self._at_keyword("order"):
            self._advance()
            self._expect_keyword("by")
            order_by.append(self._parse_order_item())
            while self._accept_punct(","):
                order_by.append(self._parse_order_item())
        if self._peek().kind != "eof":
            raise self._error("unexpected trailing input")
        return QueryBlock(
            tables=self._tables,
            select=tuple(select),
            predicates=predicates,
            order_by=tuple(order_by),
        )

    def _parse_select_list_raw(self) -> list[tuple[int, int]]:
        """Record the token spans of select items (columns can only be
        resolved after FROM is known), returning (start, end) positions."""
        spans: list[tuple[int, int]] = []
        if self._at_punct("*"):
            self._advance()
            return [(-1, -1)]
        spans.append(self._skip_select_item())
        while self._accept_punct(","):
            spans.append(self._skip_select_item())
        return spans

    def _skip_select_item(self) -> tuple[int, int]:
        start = self._pos
        depth = 0
        while True:
            token = self._peek()
            if token.kind == "eof":
                break
            if token.kind == "punct" and token.text == "(":
                depth += 1
            elif token.kind == "punct" and token.text == ")":
                if depth == 0:
                    break
                depth -= 1
            elif depth == 0:
                if token.kind == "punct" and token.text == ",":
                    break
                if token.kind == "ident" and token.text.lower() == "from":
                    break
            self._advance()
        if self._pos == start:
            raise self._error("expected select item")
        return (start, self._pos)

    def _resolve_select_list(self, spans: list[tuple[int, int]]) -> list[SelectItem]:
        if spans == [(-1, -1)]:
            items = []
            for table in self._tables:
                for column in self._catalog.table(table).column_names:
                    items.append(SelectItem(ColumnRef(table, column), column))
            return items
        items = []
        saved = self._pos
        for start, end in spans:
            self._pos = start
            expr = self.parse_expression()
            alias: str | None = None
            if self._at_keyword("as"):
                self._advance()
                alias = self._expect_ident()
            if self._pos != end:
                raise self._error("malformed select item")
            if alias is None:
                alias = expr.column if isinstance(expr, ColumnRef) else str(expr)
            items.append(SelectItem(expr, alias))
        self._pos = saved
        return items

    def _parse_order_item(self) -> OrderItem:
        expr = self._parse_column()
        descending = False
        if self._at_keyword("desc"):
            self._advance()
            descending = True
        elif self._at_keyword("asc"):
            self._advance()
        return OrderItem(expr, descending)

    # -- predicates -----------------------------------------------------------

    def parse_predicate(self) -> Predicate:
        parts = [self._parse_and()]
        while self._at_keyword("or"):
            self._advance()
            parts.append(self._parse_and())
        if len(parts) == 1:
            return parts[0]
        return Disjunction(tuple(parts))

    def _parse_and(self) -> Predicate:
        parts = [self._parse_not()]
        while self._at_keyword("and"):
            self._advance()
            parts.append(self._parse_not())
        if len(parts) == 1:
            return parts[0]
        return Conjunction(tuple(parts))

    def _parse_not(self) -> Predicate:
        if self._at_keyword("not"):
            self._advance()
            return Negation(self._parse_not())
        return self._parse_comparison()

    def _parse_comparison(self) -> Predicate:
        # A parenthesis may open either a nested predicate or a scalar
        # expression; try the predicate interpretation first.
        if self._at_punct("("):
            saved = self._pos
            try:
                self._advance()
                pred = self.parse_predicate()
                self._expect_punct(")")
                return pred
            except ParseError:
                self._pos = saved
        left = self.parse_expression()
        token = self._peek()
        if self._at_keyword("between"):
            self._advance()
            low = self.parse_expression()
            self._expect_keyword("and")
            high = self.parse_expression()
            return Conjunction((Comparison(">=", left, low), Comparison("<=", left, high)))
        if token.kind != "op":
            raise self._error("expected comparison operator")
        self._advance()
        op = "<>" if token.text == "!=" else token.text
        right = self.parse_expression()
        return Comparison(op, left, right)

    # -- expressions ----------------------------------------------------------

    def parse_expression(self) -> Expr:
        left = self._parse_term()
        while self._at_punct("+") or self._at_punct("-"):
            op = self._advance().text
            left = Arith(op, left, self._parse_term())
        return left

    def _parse_term(self) -> Expr:
        left = self._parse_factor()
        while self._at_punct("*") or self._at_punct("/") or self._at_punct("%"):
            op = self._advance().text
            left = Arith(op, left, self._parse_factor())
        return left

    def _parse_factor(self) -> Expr:
        if self._accept_punct("-"):
            inner = self._parse_factor()
            if isinstance(inner, Literal) and isinstance(inner.value, (int, float)):
                return Literal(-inner.value)
            return Arith("-", Literal(0), inner)
        return self._parse_primary()

    def _parse_primary(self) -> Expr:
        token = self._peek()
        if token.kind == "number":
            self._advance()
            value = float(token.text) if "." in token.text else int(token.text)
            return Literal(value)
        if token.kind == "string":
            self._advance()
            return Literal(token.text[1:-1].replace("''", "'"))
        if self._accept_punct("("):
            expr = self.parse_expression()
            self._expect_punct(")")
            return expr
        if token.kind == "ident" and token.text.lower() not in _KEYWORDS:
            name = self._expect_ident()
            if self._at_punct("(") and name.lower() in scalar_functions():
                self._advance()
                args: list[Expr] = []
                if not self._at_punct(")"):
                    args.append(self.parse_expression())
                    while self._accept_punct(","):
                        args.append(self.parse_expression())
                self._expect_punct(")")
                return FuncCall(name.lower(), tuple(args))
            if self._accept_punct("."):
                column = self._expect_ident()
                return ColumnRef(name, column)
            return self._catalog.resolve_column(name, self._tables)
        raise self._error("expected expression")

    def _parse_column(self) -> ColumnRef:
        expr = self._parse_primary()
        if not isinstance(expr, ColumnRef):
            raise self._error("expected a column reference")
        return expr


def parse_query(text: str, catalog: "Catalog") -> QueryBlock:
    """Parse a SELECT statement into a :class:`QueryBlock`."""
    return _Parser(text, catalog).parse_query()


def parse_predicate(text: str, catalog: "Catalog", tables: Iterable[str]) -> Predicate:
    """Parse a standalone predicate (for tests and workload builders)."""
    parser = _Parser(text, catalog, tuple(tables))
    pred = parser.parse_predicate()
    if parser._peek().kind != "eof":
        raise parser._error("unexpected trailing input")
    return pred


def parse_expression(text: str, catalog: "Catalog", tables: Iterable[str]) -> Expr:
    """Parse a standalone scalar expression."""
    parser = _Parser(text, catalog, tuple(tables))
    expr = parser.parse_expression()
    if parser._peek().kind != "eof":
        raise parser._error("unexpected trailing input")
    return expr
