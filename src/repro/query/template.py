"""Canonical (TABLES, PREDS) keys: equivalence classes and templates.

Two related notions of "the same query shape" exist in this repo, and
before this module each had ad-hoc keying code:

* the **equivalence-class key** (:func:`canonical_key`) — exact tables
  and exact predicates as order-free frozensets.  This is the hashed
  plan table's key (paper section 4.4), the
  :class:`~repro.robust.feedback.FeedbackCache` key, and the batch
  driver's duplicate-query key.  Two queries share it only when they are
  the *same* query up to table/predicate ordering.
* the **template key** (:func:`template_key`) — the equivalence-class
  key with every literal constant abstracted to a parameter marker and
  comparisons orientation-normalized.  ``R.VAL < 5`` and ``R.VAL < 9``
  share a template; so do ``5 > R.VAL`` and ``R.VAL < 7``.  This is the
  plan-template cache's key: millions of users mostly re-issue the same
  *parameterized* shapes, and the serving layer caches one plan per
  shape, guarded by selectivity bands.

Both keys are plain hashable tuples built from one recursive shape walk,
so the plan table, the feedback cache, the batch driver and the serving
cache can never silently diverge on what "the same query" means — the
property the key-stability tests pin down.
"""

from __future__ import annotations

from typing import Iterable

from repro.query.expressions import Arith, ColumnRef, Expr, FuncCall, Literal
from repro.query.predicates import (
    Comparison,
    Conjunction,
    Disjunction,
    Negation,
    Predicate,
)
from repro.query.query import QueryBlock

#: The exact equivalence-class key: order-free tables and predicates.
PlanKey = tuple[frozenset[str], frozenset[Predicate]]

#: A template key is an opaque hashable tuple (tables, predicate shapes).
TemplateKey = tuple[tuple[str, ...], tuple[tuple, ...]]

#: The shape marker standing in for any literal constant.
PARAM = "?"


def canonical_key(
    tables: Iterable[str], preds: Iterable[Predicate]
) -> PlanKey:
    """The exact (TABLES, PREDS) equivalence-class key.

    Frozenset-valued on both components, so table and predicate
    *ordering* never matters; constants do.  This is the single key
    construction shared by the hashed plan table, the feedback cache and
    the batch driver.
    """
    return (frozenset(tables), frozenset(preds))


def template_key(
    tables: Iterable[str], preds: Iterable[Predicate]
) -> TemplateKey:
    """The parameterized-template key: constants stripped, order-free.

    Tables sort; each predicate reduces to its :func:`predicate_shape`
    and the shapes sort — so the key is stable under table reordering,
    predicate reordering, comparison flipping, and any change of literal
    parameter values.
    """
    return (
        tuple(sorted(set(tables))),
        tuple(sorted(predicate_shape(p) for p in set(preds))),
    )


def query_template(query: QueryBlock) -> TemplateKey:
    """The template key of a whole query block."""
    return template_key(query.table_set, query.predicates)


def query_key(query: QueryBlock) -> PlanKey:
    """The exact equivalence-class key of a whole query block."""
    return canonical_key(query.table_set, query.predicates)


# ---------------------------------------------------------------------------
# Shapes
# ---------------------------------------------------------------------------


def expr_shape(expr: Expr) -> tuple:
    """A hashable shape for an expression, literals abstracted."""
    if isinstance(expr, Literal):
        return (PARAM,)
    if isinstance(expr, ColumnRef):
        return ("col", expr.table, expr.column)
    if isinstance(expr, Arith):
        return ("arith", expr.op, expr_shape(expr.left), expr_shape(expr.right))
    if isinstance(expr, FuncCall):
        return ("func", expr.name, tuple(expr_shape(a) for a in expr.args))
    # Unknown extension expression: fall back to its string form with no
    # abstraction — better a too-precise template than a wrong merge.
    return ("opaque", str(expr))


def predicate_shape(pred: Predicate) -> tuple:
    """A hashable shape for a predicate, literals abstracted.

    Comparisons are orientation-normalized (a shape is the smaller of
    the original and the flipped form), AND/OR parts sort — the same
    canonicalizations :func:`template_key` promises.
    """
    if isinstance(pred, Comparison):
        original = ("cmp", pred.op, expr_shape(pred.left), expr_shape(pred.right))
        flipped_pred = pred.flipped()
        flipped = (
            "cmp",
            flipped_pred.op,
            expr_shape(flipped_pred.left),
            expr_shape(flipped_pred.right),
        )
        return min(original, flipped)
    if isinstance(pred, Conjunction):
        return ("and", tuple(sorted(predicate_shape(p) for p in pred.parts)))
    if isinstance(pred, Disjunction):
        return ("or", tuple(sorted(predicate_shape(p) for p in pred.parts)))
    if isinstance(pred, Negation):
        return ("not", predicate_shape(pred.part))
    return ("opaque", str(pred))
