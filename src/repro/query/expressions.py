"""Scalar expression AST.

Expressions appear on either side of predicates and in projection lists.
They are immutable, hashable values so they can live inside the frozen sets
of the property vector (the ``COLS`` and ``PREDS`` properties of a plan,
Figure 2 of the paper).

The evaluation entry point is :meth:`Expr.evaluate`, which takes a
:class:`RowContext`.  A row context layers an *outer binding* context over
the current row: this implements the paper's "sideways information passing"
(footnote 4, after [ULLM 85]) — during a nested-loop join, columns of the
outer stream are instantiated so a join predicate becomes a single-table
predicate on the inner stream.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Mapping

from repro.errors import ExecutionError, QueryError


class RowContext:
    """Column values visible while evaluating an expression.

    ``values`` maps :class:`ColumnRef` to the current tuple's values.
    ``outer`` optionally chains to the enclosing context (outer tuples of a
    nested-loop join).  Lookup walks the chain from innermost to outermost.
    """

    __slots__ = ("values", "outer")

    def __init__(self, values: Mapping["ColumnRef", Any], outer: "RowContext | None" = None):
        self.values = values
        self.outer = outer

    def lookup(self, ref: "ColumnRef") -> Any:
        ctx: RowContext | None = self
        while ctx is not None:
            if ref in ctx.values:
                return ctx.values[ref]
            ctx = ctx.outer
        raise ExecutionError(f"unbound column {ref} during evaluation")

    def bound(self, ref: "ColumnRef") -> bool:
        ctx: RowContext | None = self
        while ctx is not None:
            if ref in ctx.values:
                return True
            ctx = ctx.outer
        return False

    def child(self, values: Mapping["ColumnRef", Any]) -> "RowContext":
        """A context for an inner row, with this context as outer scope."""
        return RowContext(values, outer=self)


@dataclass(frozen=True, slots=True)
class Expr:
    """Base class of all scalar expressions."""

    def columns(self) -> frozenset["ColumnRef"]:
        """All column references appearing in this expression."""
        return frozenset(self._iter_columns())

    def tables(self) -> frozenset[str]:
        """Names of all tables referenced by this expression."""
        return frozenset(ref.table for ref in self._iter_columns())

    def _iter_columns(self) -> Iterator["ColumnRef"]:
        return iter(())

    def evaluate(self, ctx: RowContext) -> Any:
        raise NotImplementedError

    def is_column(self) -> bool:
        return isinstance(self, ColumnRef)


@dataclass(frozen=True, slots=True)
class ColumnRef(Expr):
    """A reference to ``table.column``.

    ``table`` is the quantifier (correlation) name; in this reproduction we
    use the table name directly since the SQL subset has no self-joins with
    aliases exposed to the optimizer core.
    """

    table: str
    column: str

    def _iter_columns(self) -> Iterator["ColumnRef"]:
        yield self

    def evaluate(self, ctx: RowContext) -> Any:
        return ctx.lookup(self)

    def __str__(self) -> str:
        return f"{self.table}.{self.column}"


@dataclass(frozen=True, slots=True)
class Literal(Expr):
    """A constant value (int, float, str, bool, or None)."""

    value: Any

    def evaluate(self, ctx: RowContext) -> Any:
        return self.value

    def __str__(self) -> str:
        if isinstance(self.value, str):
            return f"'{self.value}'"
        return repr(self.value)


_ARITH_OPS: dict[str, Callable[[Any, Any], Any]] = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "/": lambda a, b: a / b,
    "%": lambda a, b: a % b,
}


@dataclass(frozen=True, slots=True)
class Arith(Expr):
    """A binary arithmetic expression, e.g. ``EMP.SALARY * 1.1``."""

    op: str
    left: Expr
    right: Expr

    def __post_init__(self) -> None:
        if self.op not in _ARITH_OPS:
            raise QueryError(f"unknown arithmetic operator {self.op!r}")

    def _iter_columns(self) -> Iterator[ColumnRef]:
        yield from self.left._iter_columns()
        yield from self.right._iter_columns()

    def evaluate(self, ctx: RowContext) -> Any:
        left = self.left.evaluate(ctx)
        right = self.right.evaluate(ctx)
        try:
            return _ARITH_OPS[self.op](left, right)
        except (TypeError, ZeroDivisionError) as exc:
            raise ExecutionError(f"arithmetic failed: {self} ({exc})") from exc

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


_FUNCTIONS: dict[str, Callable[..., Any]] = {
    "abs": abs,
    "lower": lambda s: s.lower(),
    "upper": lambda s: s.upper(),
    "length": len,
    "mod": lambda a, b: a % b,
}


@dataclass(frozen=True, slots=True)
class FuncCall(Expr):
    """A call to a builtin scalar function, e.g. ``upper(EMP.NAME)``."""

    name: str
    args: tuple[Expr, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if self.name not in _FUNCTIONS:
            raise QueryError(f"unknown scalar function {self.name!r}")

    def _iter_columns(self) -> Iterator[ColumnRef]:
        for arg in self.args:
            yield from arg._iter_columns()

    def evaluate(self, ctx: RowContext) -> Any:
        values = [arg.evaluate(ctx) for arg in self.args]
        try:
            return _FUNCTIONS[self.name](*values)
        except (TypeError, ValueError, AttributeError) as exc:
            raise ExecutionError(f"function call failed: {self} ({exc})") from exc

    def __str__(self) -> str:
        return f"{self.name}({', '.join(str(a) for a in self.args)})"


def scalar_functions() -> tuple[str, ...]:
    """Names of the builtin scalar functions (for the parser)."""
    return tuple(sorted(_FUNCTIONS))
