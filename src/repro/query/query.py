"""Query blocks: the non-procedural input to the optimizer.

A :class:`QueryBlock` is the select-project-join block the optimizer
plans: a set of tables (quantifiers), a conjunctive predicate set, a
projection list, and optional result requirements (ORDER BY, delivery
site).  The optimizer turns one of these into LOLEPOPs by referencing the
``AccessRoot`` and ``JoinRoot`` STARs bottom-up (paper section 2.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import QueryError
from repro.query.expressions import ColumnRef, Expr
from repro.query.predicates import Predicate


@dataclass(frozen=True, slots=True)
class OrderItem:
    """One ORDER BY item (descending order is an extension; the paper's
    ORDER property is an ordered list of columns)."""

    column: ColumnRef
    descending: bool = False

    def __str__(self) -> str:
        return f"{self.column} DESC" if self.descending else str(self.column)


@dataclass(frozen=True, slots=True)
class SelectItem:
    """One projection item: an expression with an output name."""

    expr: Expr
    alias: str

    def __str__(self) -> str:
        if isinstance(self.expr, ColumnRef) and self.expr.column == self.alias:
            return str(self.expr)
        return f"{self.expr} AS {self.alias}"


@dataclass(frozen=True, slots=True)
class QueryBlock:
    """A select-project-join query block."""

    tables: tuple[str, ...]
    select: tuple[SelectItem, ...]
    predicates: tuple[Predicate, ...] = field(default_factory=tuple)
    order_by: tuple[OrderItem, ...] = field(default_factory=tuple)
    #: Site to which the result must be delivered; None means the
    #: catalog's query site.
    result_site: str | None = None

    def __post_init__(self) -> None:
        if not self.tables:
            raise QueryError("a query block needs at least one table")
        if len(set(self.tables)) != len(self.tables):
            raise QueryError("duplicate tables in query block (self-joins need aliases)")
        if not self.select:
            raise QueryError("a query block needs a projection list")
        known = set(self.tables)
        for item in self.select:
            unknown = item.expr.tables() - known
            if unknown:
                raise QueryError(f"projection references unknown tables {sorted(unknown)}")
        for pred in self.predicates:
            unknown = pred.tables() - known
            if unknown:
                raise QueryError(f"predicate {pred} references unknown tables {sorted(unknown)}")
        for item in self.order_by:
            if item.column.table not in known:
                raise QueryError(f"ORDER BY references unknown table {item.column.table}")

    # -- derived views used by the optimizer ---------------------------------

    @property
    def table_set(self) -> frozenset[str]:
        return frozenset(self.tables)

    def output_columns(self) -> frozenset[ColumnRef]:
        """Columns the projection list reads."""
        refs: set[ColumnRef] = set()
        for item in self.select:
            refs.update(item.expr.columns())
        return frozenset(refs)

    def referenced_columns(self) -> frozenset[ColumnRef]:
        """All columns the query touches (projection, predicates, order)."""
        refs = set(self.output_columns())
        for pred in self.predicates:
            refs.update(pred.columns())
        for item in self.order_by:
            refs.add(item.column)
        return frozenset(refs)

    def columns_for_table(self, table: str) -> frozenset[ColumnRef]:
        """Columns of ``table`` the plan must carry (the C argument of the
        single-table access STARs)."""
        return frozenset(r for r in self.referenced_columns() if r.table == table)

    def single_table_predicates(self, table: str) -> frozenset[Predicate]:
        """Predicates referencing only ``table`` (applied at access time —
        "pushing down the selection")."""
        return frozenset(
            p for p in self.predicates if p.tables() and p.tables() <= {table}
        )

    def multi_table_predicates(self) -> frozenset[Predicate]:
        return frozenset(p for p in self.predicates if len(p.tables()) >= 2)

    def eligible_predicates(
        self, left: frozenset[str], right: frozenset[str]
    ) -> frozenset[Predicate]:
        """The *newly* eligible predicates P for joining two streams: those
        whose tables are covered by left ∪ right but by neither side alone
        (section 2.3's JoinRoot reference)."""
        union = left | right
        return frozenset(
            p
            for p in self.predicates
            if p.tables() <= union and not p.tables() <= left and not p.tables() <= right
            # single-table predicates were consumed at access time
            and len(p.tables()) >= 1
        )

    def join_graph_edges(self) -> frozenset[frozenset[str]]:
        """Pairs of tables linked by some multi-table predicate."""
        edges: set[frozenset[str]] = set()
        for pred in self.multi_table_predicates():
            tables = sorted(pred.tables())
            for i, a in enumerate(tables):
                for b in tables[i + 1 :]:
                    edges.add(frozenset((a, b)))
        return frozenset(edges)

    def interesting_order_columns(self) -> frozenset[ColumnRef]:
        """Columns whose orders are worth preserving between plan classes
        (System R's interesting orders): columns of multi-table
        predicates (future merge joins) plus ORDER BY columns."""
        cols: set[ColumnRef] = set()
        for pred in self.multi_table_predicates():
            cols.update(pred.columns())
        for item in self.order_by:
            cols.add(item.column)
        return frozenset(cols)

    def required_order(self) -> tuple[ColumnRef, ...]:
        """The result ORDER requirement (ascending columns only feed the
        ORDER property; descending items still sort correctly at run time)."""
        return tuple(item.column for item in self.order_by)

    def __str__(self) -> str:
        text = "SELECT " + ", ".join(str(s) for s in self.select)
        text += " FROM " + ", ".join(self.tables)
        if self.predicates:
            text += " WHERE " + " AND ".join(
                f"({p})" if " OR " in str(p) else str(p) for p in self.predicates
            )
        if self.order_by:
            text += " ORDER BY " + ", ".join(str(o) for o in self.order_by)
        return text
