"""The adaptive execution loop: checkpoint → feedback → re-optimize.

:class:`AdaptiveExecutor` composes the chaos-tolerant
:class:`~repro.executor.resilient.ResilientExecutor` (PR 1's SAP
failover still handles site/link death) with the cardinality machinery
of this package:

1. execute the optimizer's best plan with an armed
   :class:`~repro.robust.checkpoint.CheckpointPolicy` watching every
   materialization point;
2. when a checkpoint trips (:class:`~repro.errors.CardinalityViolation`),
   the observed cardinality is already in the
   :class:`~repro.robust.feedback.FeedbackCache` — re-optimize the *same*
   :class:`~repro.query.query.QueryBlock` (no re-parse), letting the
   selectivity estimator override the wrong estimates with observations;
3. re-execute, reusing any temp whose producing subtree (by plan digest)
   was already materialized by an aborted attempt;
4. after ``max_reoptimizations`` corrections, run the final attempt with
   the checkpoints disarmed — execution always terminates.

Executed cost is accounted per attempt — including the work thrown away
by aborts — with the cost model's own weights, so experiment E12 can
compare adaptive against static honestly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.cost.model import Cost, CostWeights
from repro.errors import CardinalityViolation
from repro.executor.chaos import ChaosConfig, ChaosEngine, RetryPolicy
from repro.executor.resilient import ExecutionReport, ResilientExecutor
from repro.executor.runtime import ExecutionResult, ExecutionStats
from repro.obs.metrics import MetricsRegistry, stats_snapshot
from repro.obs.trace import Tracer, active_tracer
from repro.plans.plan import PlanNode
from repro.query.query import QueryBlock
from repro.robust.checkpoint import CheckpointPolicy
from repro.robust.feedback import FeedbackCache
from repro.storage.table import Database

if TYPE_CHECKING:
    from repro.optimizer.optimizer import OptimizationResult, StarburstOptimizer


def executed_cost(stats: ExecutionStats, weights: CostWeights) -> float:
    """Actual resource usage priced with the optimizer's own weights, so
    estimated and executed cost are directly comparable (E8's convention)."""
    return weights.total(
        Cost(
            io=stats.total_io,
            cpu=stats.tuples_flowed,
            msgs=stats.messages,
            bytes_sent=stats.bytes_shipped,
        )
    )


@dataclass
class AdaptiveReport:
    """What one adaptive execution did to get an answer."""

    #: Plan executions started (aborted attempts included).
    attempts: int = 0
    #: Checkpoint violations that aborted an attempt.
    checkpoint_violations: int = 0
    #: Re-optimizations triggered by violations.
    reoptimizations: int = 0
    #: Temps materialized by an aborted attempt and reused by a later one.
    temps_reused: int = 0
    #: Executed cost summed over every attempt (aborted work included).
    executed_cost: float = 0.0
    #: Executed cost of the attempt that delivered the answer.
    final_attempt_cost: float = 0.0
    #: How many optimizations ended budget-exhausted / heuristic.
    budget_exhaustions: int = 0
    #: SAP failovers / replans aggregated from the inner resilient runs.
    sap_failovers: int = 0
    replans: int = 0
    events: list[str] = field(default_factory=list)
    succeeded: bool = False
    error: Exception | None = None
    result: ExecutionResult | None = None
    final_plan: PlanNode | None = None
    #: The per-attempt resilient reports, in order (diagnostics only).
    execution_reports: list[ExecutionReport] = field(default_factory=list)

    def as_dict(self) -> dict[str, float]:
        """Serialize through the shared metrics-snapshot path."""
        return stats_snapshot(
            self, extras={"succeeded": float(self.succeeded)}
        )

    def summary(self) -> str:
        status = "succeeded" if self.succeeded else f"FAILED ({self.error})"
        lines = [
            f"adaptive execution {status}",
            f"  attempts:               {self.attempts}",
            f"  checkpoint violations:  {self.checkpoint_violations}",
            f"  re-optimizations:       {self.reoptimizations}",
            f"  temps reused:           {self.temps_reused}",
            f"  executed cost (total):  {self.executed_cost:.1f}",
            f"  executed cost (final):  {self.final_attempt_cost:.1f}",
        ]
        if self.budget_exhaustions:
            lines.append(
                f"  budget exhaustions:     {self.budget_exhaustions}"
            )
        if self.sap_failovers or self.replans:
            lines.append(
                f"  chaos failovers:        {self.sap_failovers} SAP, "
                f"{self.replans} replan(s)"
            )
        for event in self.events:
            lines.append(f"  - {event}")
        return "\n".join(lines)


class AdaptiveExecutor:
    """Executes a query, re-optimizing mid-flight on cardinality surprises.

    The ``optimizer`` must consult ``feedback`` for corrections to take
    effect on re-optimization; when the optimizer has no feedback cache
    attached yet, this constructor installs one (or the ``feedback``
    argument) on it.
    """

    def __init__(
        self,
        database: Database,
        optimizer: "StarburstOptimizer",
        qerror_threshold: float = 10.0,
        max_reoptimizations: int = 3,
        feedback: FeedbackCache | None = None,
        chaos: ChaosEngine | ChaosConfig | None = None,
        retry: RetryPolicy | None = None,
        tracer: Tracer | None = None,
        metrics: MetricsRegistry | None = None,
        executor: str = "vectorized",
    ):
        self.db = database
        self.optimizer = optimizer
        self.qerror_threshold = qerror_threshold
        self.max_reoptimizations = max_reoptimizations
        self.chaos = chaos
        self.retry = retry
        self.executor = executor
        self.tracer = active_tracer(tracer)
        self.metrics = metrics
        if feedback is None:
            feedback = getattr(optimizer, "feedback", None) or FeedbackCache(
                tracer=self.tracer, metrics=metrics
            )
        self.feedback = feedback
        if getattr(optimizer, "feedback", None) is not self.feedback:
            optimizer.feedback = self.feedback

    # -- public API ----------------------------------------------------------

    def run(self, query: QueryBlock | str) -> AdaptiveReport:
        """Optimize and execute ``query``, correcting mid-flight."""
        report = AdaptiveReport()
        weights = self.optimizer.weights or CostWeights()
        temp_cache: dict[str, object] = {}
        tracer = self.tracer
        try:
            opt = self._optimize(query, report)
            max_attempts = self.max_reoptimizations + 1
            for attempt in range(1, max_attempts + 1):
                final = attempt == max_attempts
                policy = CheckpointPolicy(
                    qerror_threshold=self.qerror_threshold,
                    feedback=self.feedback,
                    tracer=tracer,
                    metrics=self.metrics,
                    armed=not final,
                )
                report.attempts += 1
                span = None
                if tracer is not None:
                    span = tracer.begin(
                        "robust", "attempt",
                        number=attempt, plan=opt.best_plan.digest,
                        armed=not final,
                    )
                resilient = ResilientExecutor(
                    self.db,
                    self.optimizer,
                    chaos=self.chaos,
                    retry=self.retry,
                    tracer=tracer,
                    metrics=self.metrics,
                    checkpoints=policy,
                    temp_cache=temp_cache,
                    executor=self.executor,
                )
                try:
                    exec_report = resilient.run(opt)
                except CardinalityViolation as violation:
                    if span is not None:
                        tracer.end(span, failed=True, q=round(violation.q, 2))
                    self._on_violation(report, violation, weights)
                    opt = self._optimize(opt.query, report)
                    continue
                if span is not None:
                    tracer.end(span, failed=not exec_report.succeeded)
                self._absorb(report, exec_report, weights)
                break
        finally:
            self.db.drop_temps()
        if self.metrics is not None:
            self.metrics.ingest(report.as_dict(), prefix="adaptive.")
            self.metrics.ingest(self.feedback.as_dict(), prefix="feedback.")
        return report

    # -- steps ---------------------------------------------------------------

    def _optimize(self, query, report: AdaptiveReport) -> "OptimizationResult":
        opt = self.optimizer.optimize(query)
        if opt.budget_exhausted:
            report.budget_exhaustions += 1
            report.events.append(
                "optimization budget exhausted"
                + (" (heuristic fallback plan)" if opt.heuristic_fallback else "")
            )
        return opt

    def _on_violation(
        self,
        report: AdaptiveReport,
        violation: CardinalityViolation,
        weights: CostWeights,
    ) -> None:
        report.checkpoint_violations += 1
        report.reoptimizations += 1
        stats: ExecutionStats | None = violation.partial_stats
        aborted_cost = 0.0
        if stats is not None:
            aborted_cost = executed_cost(stats, weights)
            report.executed_cost += aborted_cost
            report.temps_reused += stats.temps_reused
        report.events.append(
            f"attempt {report.attempts} aborted: {violation} "
            f"(aborted work cost {aborted_cost:.1f}); re-optimizing with "
            f"{len(self.feedback)} feedback observation(s)"
        )
        if self.metrics is not None:
            self.metrics.inc("adaptive.violations")

    def _absorb(
        self,
        report: AdaptiveReport,
        exec_report: ExecutionReport,
        weights: CostWeights,
    ) -> None:
        report.execution_reports.append(exec_report)
        report.sap_failovers += exec_report.sap_failovers
        report.replans += exec_report.replans
        report.succeeded = exec_report.succeeded
        report.error = exec_report.error
        report.result = exec_report.result
        report.final_plan = exec_report.final_plan
        if exec_report.result is not None:
            stats = exec_report.result.stats
            report.final_attempt_cost = executed_cost(stats, weights)
            report.executed_cost += report.final_attempt_cost
            report.temps_reused += stats.temps_reused
            report.events.append(
                f"attempt {report.attempts} delivered {len(exec_report.result)} "
                f"row(s) at executed cost {report.final_attempt_cost:.1f}"
            )
        else:
            report.events.append(
                f"attempt {report.attempts} failed: {exec_report.error}"
            )
