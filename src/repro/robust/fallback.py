"""The guaranteed-cheap heuristic plan.

When the optimization budget dies before the plan table holds a single
complete plan, the optimizer still must answer with something runnable.
This module builds one plan the way System R's designers would have by
hand, with no search at all:

* every table through its primary access path (a base-table scan at the
  first usable storage site, single-table predicates pushed down);
* a greedy left-deep chain of nested-loop joins, starting from the
  smallest estimated stream and always preferring a table connected to
  the current prefix by a join predicate (Cartesian products only when
  the join graph is disconnected);
* SHIP veneers wherever the two join inputs sit at different sites, and
  final SHIP/SORT/FILTER veneers for the query's required site, order,
  and any predicate not yet applied.

Construction cost is O(tables² · predicates) — independent of the rule
set and of how much search the budget permitted.
"""

from __future__ import annotations

from repro.errors import OptimizationError, ReproError
from repro.plans.plan import PlanNode
from repro.plans.properties import Requirements, order_satisfies
from repro.query.query import QueryBlock


def heuristic_plan(ctx, query: QueryBlock, requirements: Requirements) -> PlanNode:
    """One runnable plan for ``query`` built without STAR expansion.

    ``ctx`` is the engine's :class:`~repro.stars.engine.RuleContext`
    (supplies the factory, the cost model, and the usable-site view).
    Raises :class:`~repro.errors.OptimizationError` only when no plan can
    exist at all (a table with no usable copy).
    """
    factory = ctx.factory
    model = ctx.model

    leaves: dict[str, PlanNode] = {}
    for table in sorted(query.table_set):
        leaves[table] = _leaf(ctx, query, table)

    remaining = set(leaves)
    start = min(remaining, key=lambda t: (leaves[t].props.card, t))
    plan = leaves.pop(start)
    remaining.discard(start)
    applied = set(plan.props.preds)

    while remaining:
        connected = [
            t
            for t in remaining
            if query.eligible_predicates(plan.props.tables, frozenset([t]))
        ]
        pool = connected or sorted(remaining)
        nxt = min(pool, key=lambda t: (leaves[t].props.card, t))
        inner = leaves.pop(nxt)
        remaining.discard(nxt)
        join_preds = query.eligible_predicates(plan.props.tables, frozenset([nxt]))
        # Any predicate over 3+ tables that just became fully covered
        # rides along as a residual of this join.
        covered = plan.props.tables | {nxt}
        residual = frozenset(
            p
            for p in query.predicates
            if p.tables() and p.tables() <= covered
            and p not in applied and p not in join_preds
            and not p.tables() <= frozenset([nxt])
        )
        if inner.props.site != plan.props.site:
            inner = factory.ship(inner, plan.props.site)
        plan = factory.join("NL", plan, inner, join_preds, residual)
        applied |= join_preds | residual

    # Final veneers: leftover predicates, result site, required order.
    leftovers = frozenset(
        p for p in query.predicates if p.tables() and p not in plan.props.preds
    )
    if leftovers:
        plan = factory.filter(plan, leftovers)
    if requirements.site is not None and plan.props.site != requirements.site:
        plan = factory.ship(plan, requirements.site)
    if requirements.order and not order_satisfies(
        plan.props.order, tuple(requirements.order)
    ):
        plan = factory.sort(plan, tuple(requirements.order))
    return plan


def _leaf(ctx, query: QueryBlock, table: str) -> PlanNode:
    """The primary access path: a base scan at the first usable copy."""
    columns = query.columns_for_table(table)
    preds = query.single_table_predicates(table)
    last_error: ReproError | None = None
    try:
        sites = ctx.engine._usable_copies(table)
    except ReproError as exc:
        raise OptimizationError(
            f"heuristic fallback cannot access table {table}: {exc}"
        ) from exc
    for site in sites:
        try:
            return ctx.factory.access_base(table, columns, preds, site=site)
        except ReproError as exc:  # racing site-state change; try next copy
            last_error = exc
    raise OptimizationError(
        f"heuristic fallback cannot access table {table}: {last_error}"
    )
