"""Optimization budgets: bounded STAR expansion with anytime semantics.

An :class:`OptimizerBudget` is charged from the two hot counters of the
search — STAR references (:meth:`charge_expansion`, from
``StarEngine._expand_star``) and plan-table insertions
(:meth:`charge_plans`, from ``PlanTable.insert``) — plus a logical clock
(every charge is one tick) that stands in for a wall-clock deadline
without breaking determinism.

Exhaustion raises :class:`BudgetExhausted`.  The signal is deliberately
**not** a :class:`~repro.errors.ReproError`: the engine and Glue swallow
``ReproError`` per-plan (an infeasible LOLEPOP combination just skips
that combination), and a budget must cut through those handlers to reach
the optimizer's anytime recovery path.  During recovery the optimizer
re-enters the engine to assemble the best-so-far plan; :meth:`suspend`
makes charging a no-op for that window so assembly cannot re-trip the
exhausted budget.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator


class BudgetExhausted(Exception):
    """Control-flow signal: the optimization budget ran out.

    Plain ``Exception`` on purpose — see the module docstring.  Carries
    the exhausted budget so the catcher can report what ran out.
    """

    def __init__(self, reason: str, budget: "OptimizerBudget"):
        super().__init__(reason)
        self.reason = reason
        self.budget = budget


@dataclass
class OptimizerBudget:
    """Bounds on one query optimization; ``None`` means unlimited.

    ``max_expansions`` caps STAR references, ``max_plans`` caps plans
    offered to the plan table, ``deadline_ticks`` caps the logical clock
    (one tick per charge of either kind).
    """

    max_expansions: int | None = None
    max_plans: int | None = None
    deadline_ticks: int | None = None

    #: Consumed so far (reset per optimization by the optimizer).
    expansions: int = field(default=0, init=False)
    plans: int = field(default=0, init=False)
    ticks: int = field(default=0, init=False)
    #: Why the budget ran out (None while within budget).
    exhausted_reason: str | None = field(default=None, init=False)
    _suspended: bool = field(default=False, init=False)

    def __post_init__(self) -> None:
        for name in ("max_expansions", "max_plans", "deadline_ticks"):
            value = getattr(self, name)
            if value is not None and value < 1:
                raise ValueError(f"{name} must be at least 1 (or None)")

    # -- lifecycle ----------------------------------------------------------

    @property
    def exhausted(self) -> bool:
        return self.exhausted_reason is not None

    @property
    def unlimited(self) -> bool:
        return (
            self.max_expansions is None
            and self.max_plans is None
            and self.deadline_ticks is None
        )

    def reset(self) -> None:
        """Fresh counters for a new optimization (same limits)."""
        self.expansions = 0
        self.plans = 0
        self.ticks = 0
        self.exhausted_reason = None
        self._suspended = False

    @contextmanager
    def suspend(self) -> Iterator[None]:
        """Charging becomes a no-op inside the block (anytime assembly)."""
        previous = self._suspended
        self._suspended = True
        try:
            yield
        finally:
            self._suspended = previous

    # -- charge points ------------------------------------------------------

    def charge_expansion(self, what: str = "") -> None:
        """One STAR reference (charged by ``StarEngine._expand_star``)."""
        if self._suspended:
            return
        self.expansions += 1
        self.ticks += 1
        if self.max_expansions is not None and self.expansions > self.max_expansions:
            self._exhaust(
                f"expansion budget exhausted ({self.max_expansions} STAR "
                f"reference(s)){f' at {what}' if what else ''}"
            )
        self._check_deadline()

    def charge_plans(self, count: int) -> None:
        """``count`` plans offered to the plan table (``PlanTable.insert``)."""
        if self._suspended:
            return
        self.plans += count
        self.ticks += 1
        if self.max_plans is not None and self.plans > self.max_plans:
            self._exhaust(
                f"plan budget exhausted ({self.max_plans} plan(s) inserted)"
            )
        self._check_deadline()

    def _check_deadline(self) -> None:
        if self.deadline_ticks is not None and self.ticks > self.deadline_ticks:
            self._exhaust(
                f"deadline exhausted ({self.deadline_ticks} logical tick(s))"
            )

    def _exhaust(self, reason: str) -> None:
        if self.exhausted_reason is None:
            self.exhausted_reason = reason
        raise BudgetExhausted(reason, self)

    # -- reporting ----------------------------------------------------------

    def as_dict(self) -> dict[str, float]:
        """Flat metrics-schema summary of limits and consumption."""
        return {
            "max_expansions": float(self.max_expansions or 0),
            "max_plans": float(self.max_plans or 0),
            "deadline_ticks": float(self.deadline_ticks or 0),
            "expansions": float(self.expansions),
            "plans": float(self.plans),
            "ticks": float(self.ticks),
            "exhausted": float(self.exhausted),
        }

    def __str__(self) -> str:
        limits = ", ".join(
            f"{name}={value}"
            for name, value in (
                ("expansions", self.max_expansions),
                ("plans", self.max_plans),
                ("ticks", self.deadline_ticks),
            )
            if value is not None
        )
        return f"OptimizerBudget({limits or 'unlimited'})"
