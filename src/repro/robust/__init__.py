"""Adaptive mid-query robustness.

The paper's STARs make *enumeration* cheap; this package makes the whole
optimize-execute loop degrade gracefully when enumeration is expensive or
the estimates feeding it are wrong:

* :mod:`repro.robust.budget` — :class:`OptimizerBudget` bounds STAR
  expansion work; on exhaustion the optimizer answers with the best plan
  found so far (anytime behavior) instead of raising.
* :mod:`repro.robust.fallback` — the guaranteed-cheap heuristic plan
  (greedy left-deep over primary access paths) used when the budget dies
  before any complete plan exists.
* :mod:`repro.robust.feedback` — :class:`FeedbackCache` of observed
  cardinalities keyed exactly like the plan table, consulted by the
  selectivity estimator on subsequent optimizations.
* :mod:`repro.robust.checkpoint` — :class:`CheckpointPolicy` /
  :class:`CheckpointIterator` compare actual rows against the property
  vector's CARD at materialization points (SORT / STORE / TEMP).
* :mod:`repro.robust.adaptive` — :class:`AdaptiveExecutor` composes the
  chaos-tolerant :class:`~repro.executor.resilient.ResilientExecutor`
  with checkpoints and re-optimization into a runtime feedback loop.
"""

from repro.robust.adaptive import AdaptiveExecutor, AdaptiveReport
from repro.robust.budget import BudgetExhausted, OptimizerBudget
from repro.robust.checkpoint import CheckpointIterator, CheckpointPolicy
from repro.robust.fallback import heuristic_plan
from repro.robust.feedback import FeedbackCache

__all__ = [
    "AdaptiveExecutor",
    "AdaptiveReport",
    "BudgetExhausted",
    "CheckpointIterator",
    "CheckpointPolicy",
    "FeedbackCache",
    "OptimizerBudget",
    "heuristic_plan",
]
