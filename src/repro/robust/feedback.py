"""The runtime cardinality feedback cache.

Keys match the hashed plan table exactly — ``(frozenset of tables,
frozenset of applied predicates)``, built by the shared
:func:`repro.query.template.canonical_key` — so an observation recorded
at a materialization point of one execution lines up with the
equivalence class the next optimization builds for the same relational
content.  The selectivity estimator consults the cache through
:meth:`Selectivity.adjusted_card <repro.cost.selectivity.Selectivity>`;
a hit overrides the System-R estimate with the observed row count.

The cache is **bounded**: a long-running server process records
observations for every query it ever executes, and an unbounded dict is
a slow memory leak.  ``capacity`` caps the entry count with
least-recently-used eviction (recording and hitting both refresh
recency); evictions are counted and exported as the
``feedback.evictions`` metric.
"""

from __future__ import annotations

from typing import Iterable

from repro.query.predicates import Predicate
from repro.query.template import PlanKey, canonical_key

#: Default entry cap — generous for one process, finite for a server.
DEFAULT_CAPACITY = 4096


class FeedbackCache:
    """Observed cardinalities keyed on (TABLES, PREDS), LRU-bounded.

    ``tracer`` / ``metrics`` (both optional, None = zero overhead) record
    every hit and miss — the loop's observability contract matches the
    plan table's.  ``capacity`` bounds the entry count (None = unbounded,
    for short-lived tooling only).
    """

    def __init__(self, tracer=None, metrics=None,
                 capacity: int | None = DEFAULT_CAPACITY):
        if capacity is not None and capacity < 1:
            raise ValueError(f"capacity must be at least 1 (or None), got {capacity}")
        self._observed: dict[PlanKey, float] = {}
        self.capacity = capacity
        self.hits = 0
        self.misses = 0
        self.records = 0
        self.evictions = 0
        self.tracer = tracer
        self.metrics = metrics

    def __len__(self) -> int:
        return len(self._observed)

    def __bool__(self) -> bool:  # an empty cache is still a cache
        return True

    def _touch(self, key: PlanKey, value: float) -> None:
        """Refresh ``key``'s recency (dicts preserve insertion order)."""
        del self._observed[key]
        self._observed[key] = value

    def record(
        self,
        tables: Iterable[str],
        preds: Iterable[Predicate],
        actual: float,
    ) -> None:
        """Store one observed cardinality (later observations win)."""
        key = canonical_key(tables, preds)
        if key in self._observed:
            del self._observed[key]
        elif self.capacity is not None and len(self._observed) >= self.capacity:
            oldest = next(iter(self._observed))
            del self._observed[oldest]
            self.evictions += 1
            if self.metrics is not None:
                self.metrics.inc("feedback.evictions")
        self._observed[key] = float(actual)
        self.records += 1
        if self.metrics is not None:
            self.metrics.inc("feedback.records")
        if self.tracer is not None:
            self.tracer.instant(
                "robust", "feedback_record",
                tables=",".join(sorted(key[0])),
                preds=len(key[1]),
                actual=float(actual),
            )

    def lookup(
        self, tables: Iterable[str], preds: Iterable[Predicate]
    ) -> float | None:
        """The observed cardinality for this equivalence class, or None."""
        key = canonical_key(tables, preds)
        value = self._observed.get(key)
        if value is None:
            self.misses += 1
            if self.metrics is not None:
                self.metrics.inc("feedback.misses")
            return None
        self._touch(key, value)
        self.hits += 1
        if self.metrics is not None:
            self.metrics.inc("feedback.hits")
        return value

    def peek(
        self, tables: Iterable[str], preds: Iterable[Predicate]
    ) -> float | None:
        """Like :meth:`lookup` but without touching counters or recency —
        for drift *checks* (the serving cache polls every request; a poll
        must not read as estimator traffic or pin the entry hot)."""
        return self._observed.get(canonical_key(tables, preds))

    def adjust(
        self,
        tables: Iterable[str],
        preds: Iterable[Predicate],
        estimated: float,
    ) -> float:
        """``estimated`` corrected by an observation when one exists."""
        observed = self.lookup(tables, preds)
        if observed is None:
            return estimated
        if self.tracer is not None:
            key = canonical_key(tables, preds)
            self.tracer.instant(
                "robust", "feedback_hit",
                tables=",".join(sorted(key[0])),
                estimated=round(float(estimated), 3),
                observed=observed,
            )
        return max(observed, 0.0)

    def as_dict(self) -> dict[str, float]:
        """Flat metrics-schema summary."""
        total = self.hits + self.misses
        return {
            "entries": float(len(self._observed)),
            "capacity": float(self.capacity or 0),
            "records": float(self.records),
            "hits": float(self.hits),
            "misses": float(self.misses),
            "evictions": float(self.evictions),
            "hit_rate": self.hits / total if total else 0.0,
        }

    def entries(self) -> dict[PlanKey, float]:
        return dict(self._observed)

    def restore(self, observed: dict[PlanKey, float]) -> int:
        """Adopt snapshot observations (oldest first), respecting capacity.

        Counters are untouched — a restore is warm-up, not estimator
        traffic (the same contract as :meth:`peek`)."""
        count = 0
        for key, value in observed.items():
            if key in self._observed:
                del self._observed[key]
            elif (
                self.capacity is not None
                and len(self._observed) >= self.capacity
            ):
                oldest = next(iter(self._observed))
                del self._observed[oldest]
            self._observed[key] = float(value)
            count += 1
        return count
