"""The runtime cardinality feedback cache.

Keys match the hashed plan table exactly — ``(frozenset of tables,
frozenset of applied predicates)`` — so an observation recorded at a
materialization point of one execution lines up with the equivalence
class the next optimization builds for the same relational content.
The selectivity estimator consults the cache through
:meth:`Selectivity.adjusted_card <repro.cost.selectivity.Selectivity>`;
a hit overrides the System-R estimate with the observed row count.
"""

from __future__ import annotations

from typing import Iterable

from repro.query.predicates import Predicate
from repro.stars.plantable import PlanKey, plan_key


class FeedbackCache:
    """Observed cardinalities keyed on (TABLES, PREDS).

    ``tracer`` / ``metrics`` (both optional, None = zero overhead) record
    every hit and miss — the loop's observability contract matches the
    plan table's.
    """

    def __init__(self, tracer=None, metrics=None):
        self._observed: dict[PlanKey, float] = {}
        self.hits = 0
        self.misses = 0
        self.records = 0
        self.tracer = tracer
        self.metrics = metrics

    def __len__(self) -> int:
        return len(self._observed)

    def __bool__(self) -> bool:  # an empty cache is still a cache
        return True

    def record(
        self,
        tables: Iterable[str],
        preds: Iterable[Predicate],
        actual: float,
    ) -> None:
        """Store one observed cardinality (later observations win)."""
        key = plan_key(tables, preds)
        self._observed[key] = float(actual)
        self.records += 1
        if self.metrics is not None:
            self.metrics.inc("feedback.records")
        if self.tracer is not None:
            self.tracer.instant(
                "robust", "feedback_record",
                tables=",".join(sorted(key[0])),
                preds=len(key[1]),
                actual=float(actual),
            )

    def lookup(
        self, tables: Iterable[str], preds: Iterable[Predicate]
    ) -> float | None:
        """The observed cardinality for this equivalence class, or None."""
        value = self._observed.get(plan_key(tables, preds))
        if value is None:
            self.misses += 1
            if self.metrics is not None:
                self.metrics.inc("feedback.misses")
            return None
        self.hits += 1
        if self.metrics is not None:
            self.metrics.inc("feedback.hits")
        return value

    def adjust(
        self,
        tables: Iterable[str],
        preds: Iterable[Predicate],
        estimated: float,
    ) -> float:
        """``estimated`` corrected by an observation when one exists."""
        observed = self.lookup(tables, preds)
        if observed is None:
            return estimated
        if self.tracer is not None:
            key = plan_key(tables, preds)
            self.tracer.instant(
                "robust", "feedback_hit",
                tables=",".join(sorted(key[0])),
                estimated=round(float(estimated), 3),
                observed=observed,
            )
        return max(observed, 0.0)

    def as_dict(self) -> dict[str, float]:
        """Flat metrics-schema summary."""
        total = self.hits + self.misses
        return {
            "entries": float(len(self._observed)),
            "records": float(self.records),
            "hits": float(self.hits),
            "misses": float(self.misses),
            "hit_rate": self.hits / total if total else 0.0,
        }

    def entries(self) -> dict[PlanKey, float]:
        return dict(self._observed)
