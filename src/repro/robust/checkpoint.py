"""Cardinality checkpoints at materialization points.

The paper's Glue injects STORE/SORT veneers wherever a stream must be
materialized; those veneers are the one place the runtime holds a
*complete* intermediate result in its hands, so the actual row count is
directly comparable to the property vector's CARD — no sampling, no
per-tuple overhead on pipelined operators.  :class:`CheckpointPolicy`
performs that comparison, always records the observation into the
:class:`~repro.robust.feedback.FeedbackCache`, and raises
:class:`~repro.errors.CardinalityViolation` when the Q-error exceeds the
threshold — the signal the :class:`~repro.robust.adaptive.AdaptiveExecutor`
turns into a re-optimization.

:class:`CheckpointIterator` is the stream-shaped form of the same check
for call sites that cannot buffer rows themselves: it counts rows as they
flow and runs the checkpoint when the wrapped iterator is exhausted.
:class:`CheckpointBatchIterator` is its batch-granular twin for the
vectorized executor: it counts whole :class:`ColumnBatch` lengths as the
batches flow, so checkpoints fire on batch boundaries with exactly the
same counts as the tuple-at-a-time form.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator

from repro.errors import CardinalityViolation
from repro.obs.analyze import q_error
from repro.plans.plan import PlanNode
from repro.robust.feedback import FeedbackCache


class CheckpointPolicy:
    """Decides whether an observed cardinality aborts the execution.

    ``qerror_threshold`` is the abort trigger (Q-error is symmetric and
    ≥ 1, so 10.0 means "off by more than 10× either way").  ``armed``
    False turns the policy into a pure observer: it still feeds the
    cache and metrics but never raises — the adaptive executor's final
    attempt runs disarmed so execution always terminates.
    """

    def __init__(
        self,
        qerror_threshold: float = 10.0,
        feedback: FeedbackCache | None = None,
        tracer=None,
        metrics=None,
        armed: bool = True,
    ):
        if qerror_threshold < 1.0:
            raise ValueError("qerror_threshold must be >= 1.0")
        self.qerror_threshold = qerror_threshold
        self.feedback = feedback if feedback is not None else FeedbackCache()
        self.tracer = tracer
        self.metrics = metrics
        self.armed = armed
        self.checks = 0
        self.violations = 0

    def observe(self, node: PlanNode, actual: int) -> None:
        """One completed materialization of ``node``'s output stream.

        Records the observation, then raises
        :class:`~repro.errors.CardinalityViolation` when armed and the
        Q-error exceeds the threshold.
        """
        props = node.props
        self.checks += 1
        q = q_error(props.card, actual)
        self.feedback.record(props.tables, props.preds, actual)
        if self.metrics is not None:
            self.metrics.inc("checkpoint.checks")
            self.metrics.observe("checkpoint.q_error", q)
        label = node.op if node.flavor is None else f"{node.op}({node.flavor})"
        if self.tracer is not None:
            self.tracer.instant(
                "robust", "checkpoint",
                op=label,
                tables=",".join(sorted(props.tables)),
                estimated=round(props.card, 3),
                actual=actual,
                q=round(q, 3),
                violated=q > self.qerror_threshold,
            )
        if q <= self.qerror_threshold or not self.armed:
            return
        self.violations += 1
        if self.metrics is not None:
            self.metrics.inc("checkpoint.violations")
        raise CardinalityViolation(
            label=label,
            tables=props.tables,
            preds=props.preds,
            estimated=props.card,
            actual=float(actual),
            q=q,
            threshold=self.qerror_threshold,
        )

    def as_dict(self) -> dict[str, float]:
        return {
            "qerror_threshold": self.qerror_threshold,
            "checks": float(self.checks),
            "violations": float(self.violations),
            "armed": float(self.armed),
        }


class CheckpointIterator:
    """Wrap a row stream; checkpoint its producing node on exhaustion.

    Only a *fully drained* stream yields a trustworthy count, so the
    check runs exactly once, when the underlying iterator raises
    ``StopIteration``.  Abandoned iterators (e.g. a LIMIT upstream) never
    check — a partial count would poison the feedback cache.
    """

    def __init__(
        self,
        rows: Iterable,
        node: PlanNode,
        policy: CheckpointPolicy,
    ):
        self._rows = iter(rows)
        self._node = node
        self._policy = policy
        self.count = 0
        self._checked = False

    def __iter__(self) -> Iterator:
        return self

    def __next__(self):
        try:
            row = next(self._rows)
        except StopIteration:
            if not self._checked:
                self._checked = True
                self._policy.observe(self._node, self.count)
            raise
        self.count += 1
        return row


class CheckpointBatchIterator:
    """Wrap a batch stream; checkpoint its producing node on exhaustion.

    The batch-granular twin of :class:`CheckpointIterator`: each yielded
    batch adds its row count, and the checkpoint runs exactly once, when
    the underlying batch iterator is exhausted — so the vectorized SORT
    observes the same stream count at the same materialization boundary
    as the iterator executor.  ``observe`` is a callable rather than a
    policy so the executor can attach its partial stats to a violation
    before it escapes.
    """

    def __init__(
        self,
        batches: Iterable,
        node: PlanNode,
        observe: Callable[[PlanNode, int], None],
    ):
        self._batches = iter(batches)
        self._node = node
        self._observe = observe
        self.count = 0
        self._checked = False

    def __iter__(self) -> Iterator:
        return self

    def __next__(self):
        try:
            batch = next(self._batches)
        except StopIteration:
            if not self._checked:
                self._checked = True
                self._observe(self._node, self.count)
            raise
        self.count += len(batch)
        return batch
