"""Static validation of a STAR rule set.

The paper leaves this open: "we assume that the DBC specifies the STARs
correctly, i.e. without infinite cycles or meaningless sequences of
LOLEPOPs.  An open issue is how to verify that any given set of STARs is
correct" (section 5).  This module closes part of that gap with static
checks:

* every referenced name resolves to a STAR, Glue, a LOLEPOP, or a
  registry function;
* STAR references pass the right number of arguments;
* the STAR reference graph is acyclic (Glue's implicit re-reference of
  ``AccessRoot`` is included as an edge);
* every parameter referenced in a body is bound (a STAR parameter, a
  ``where`` binding, or a ∀ variable);
* a name that denotes both a STAR and a registry function is flagged
  (the engine resolves STARs first, which can silently shadow);
* an *exclusive* STAR (the paper's curly brace: first alternative whose
  condition holds is taken) whose final alternative is still conditional
  is flagged as a warning — when every condition is false the STAR
  produces nothing, which usually means the DBC forgot an ``OTHERWISE``;
* expressions the rule compiler (:mod:`repro.stars.compile`) cannot
  lower to closures — e.g. calls to unregistered names — are flagged as
  warnings, so ``--strict`` surfaces rules that would silently pay the
  interpreter at runtime.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import RuleError
from repro.plans.operators import LOLEPOPS
from repro.stars.ast import (
    Call,
    Compare,
    ForAll,
    Logical,
    Negate,
    Param,
    RuleExpr,
    RuleSet,
    SetExpr,
    SetLiteral,
    StarDef,
    StarRef,
    Term,
)
from repro.stars.engine import ACCESS_ROOT
from repro.stars.registry import FunctionRegistry


@dataclass
class ValidationReport:
    """Problems found in a rule set; ``errors`` make the set unusable,
    ``warnings`` are suspicious but legal."""

    errors: list[str] = field(default_factory=list)
    warnings: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.errors

    def raise_if_invalid(self) -> None:
        if self.errors:
            raise RuleError(
                "invalid rule set:\n" + "\n".join(f"  - {e}" for e in self.errors)
            )


def validate_rules(
    rules: RuleSet,
    registry: FunctionRegistry,
    raise_on_error: bool = False,
) -> ValidationReport:
    """Run all static checks over ``rules``."""
    report = ValidationReport()
    edges: dict[str, set[str]] = {star.name: set() for star in rules}
    uses_glue = False

    for star in rules:
        bound = set(star.params) | {name for name, _ in star.bindings}
        for name, expr in star.bindings:
            _check_expr(expr, star, bound, rules, registry, report, edges)
        for index, alt in enumerate(star.alternatives):
            where = f"{star.name} alternative {index + 1}"
            if alt.condition is not None:
                _check_expr(alt.condition, star, bound, rules, registry, report, edges)
            _check_term(alt.term, star, set(bound), rules, registry, report, edges)
        if star.name in registry.names():
            report.warnings.append(
                f"STAR {star.name} shadows registry function of the same name"
            )
        if star.exclusive:
            final = star.alternatives[-1]
            if not (final.otherwise or final.condition is None):
                report.warnings.append(
                    f"exclusive STAR {star.name} has no unconditional final "
                    f"alternative: when every condition is false it produces "
                    f"no plans (add an OTHERWISE or drop the last condition)"
                )
        for target in edges[star.name]:
            if target == "Glue":
                uses_glue = True

    # Glue implicitly references the top-most single-table STAR.
    if uses_glue and rules.has(ACCESS_ROOT):
        for star in rules:
            if "Glue" in edges[star.name]:
                edges[star.name].add(ACCESS_ROOT)
    for star_edges in edges.values():
        star_edges.discard("Glue")

    cycle = _find_cycle(edges)
    if cycle is not None:
        report.errors.append("cyclic STAR references: " + " -> ".join(cycle))

    if not report.errors:
        # Only meaningful for sets that are otherwise usable: an invalid
        # set would just duplicate its errors as fallback warnings.
        from repro.stars.compile import uncompilable_sites

        report.warnings.extend(uncompilable_sites(rules, registry))

    if raise_on_error:
        report.raise_if_invalid()
    return report


# ---------------------------------------------------------------------------
# Walkers
# ---------------------------------------------------------------------------


def _check_term(
    term: Term | RuleExpr,
    star: StarDef,
    bound: set[str],
    rules: RuleSet,
    registry: FunctionRegistry,
    report: ValidationReport,
    edges: dict[str, set[str]],
) -> None:
    if isinstance(term, StarRef):
        _check_reference(term, star, bound, rules, registry, report, edges)
        return
    if isinstance(term, ForAll):
        _check_expr(term.set_expr, star, bound, rules, registry, report, edges)
        _check_term(term.term, star, bound | {term.var}, rules, registry, report, edges)
        return
    if isinstance(term, RuleExpr):
        _check_expr(term, star, bound, rules, registry, report, edges)
        return
    report.errors.append(f"{star.name}: unknown term node {type(term).__name__}")


def _check_reference(
    ref: StarRef,
    star: StarDef,
    bound: set[str],
    rules: RuleSet,
    registry: FunctionRegistry,
    report: ValidationReport,
    edges: dict[str, set[str]],
) -> None:
    name = ref.name
    if name == "Glue":
        edges[star.name].add("Glue")
    elif name in LOLEPOPS:
        spec = LOLEPOPS[name]
        if spec.flavors and ref.flavor is None and name == "JOIN":
            report.errors.append(f"{star.name}: JOIN reference without a flavor")
    elif rules.has(name):
        edges[star.name].add(name)
        expected = len(rules.get(name).params)
        if len(ref.args) != expected:
            report.errors.append(
                f"{star.name}: reference to {name} passes {len(ref.args)} "
                f"argument(s), expected {expected}"
            )
    else:
        report.errors.append(f"{star.name}: reference to undefined STAR {name!r}")
    for arg in ref.args:
        if isinstance(arg.value, (StarRef, ForAll)):
            _check_term(arg.value, star, bound, rules, registry, report, edges)
        else:
            _check_expr(arg.value, star, bound, rules, registry, report, edges)
        if arg.required is not None:
            for sub in (arg.required.order, arg.required.site, arg.required.paths):
                if sub is not None:
                    _check_expr(sub, star, bound, rules, registry, report, edges)


def _check_expr(
    expr: RuleExpr,
    star: StarDef,
    bound: set[str],
    rules: RuleSet,
    registry: FunctionRegistry,
    report: ValidationReport,
    edges: dict[str, set[str]],
) -> None:
    if isinstance(expr, Param):
        if expr.name not in bound:
            report.errors.append(f"{star.name}: unbound parameter {expr.name!r}")
        return
    if isinstance(expr, Call):
        if rules.has(expr.name):
            edges[star.name].add(expr.name)
            expected = len(rules.get(expr.name).params)
            if len(expr.args) != expected:
                report.errors.append(
                    f"{star.name}: reference to {expr.name} passes "
                    f"{len(expr.args)} argument(s), expected {expected}"
                )
        elif expr.name in LOLEPOPS or expr.name == "Glue":
            pass
        elif not registry.has(expr.name):
            report.errors.append(
                f"{star.name}: unknown function or STAR {expr.name!r}"
            )
        for arg in expr.args:
            _check_expr(arg, star, bound, rules, registry, report, edges)
        return
    if isinstance(expr, (SetExpr, Compare)):
        _check_expr(expr.left, star, bound, rules, registry, report, edges)
        _check_expr(expr.right, star, bound, rules, registry, report, edges)
        return
    if isinstance(expr, Logical):
        for part in expr.parts:
            _check_expr(part, star, bound, rules, registry, report, edges)
        return
    if isinstance(expr, Negate):
        _check_expr(expr.part, star, bound, rules, registry, report, edges)
        return
    if isinstance(expr, SetLiteral):
        for item in expr.items:
            _check_expr(item, star, bound, rules, registry, report, edges)
        return
    # Const and internal wrappers: check nested terms if present.
    term = getattr(expr, "term", None)
    if term is not None:
        _check_term(term, star, bound, rules, registry, report, edges)


def _find_cycle(edges: dict[str, set[str]]) -> list[str] | None:
    """Return one cycle in the reference graph, or None."""
    WHITE, GRAY, BLACK = 0, 1, 2
    color = {node: WHITE for node in edges}
    stack: list[str] = []

    def visit(node: str) -> list[str] | None:
        color[node] = GRAY
        stack.append(node)
        for target in sorted(edges.get(node, ())):
            if target not in color:
                continue
            if color[target] == GRAY:
                return stack[stack.index(target) :] + [target]
            if color[target] == WHITE:
                found = visit(target)
                if found is not None:
                    return found
        stack.pop()
        color[node] = BLACK
        return None

    for node in edges:
        if color[node] == WHITE:
            found = visit(node)
            if found is not None:
                return found
    return None
