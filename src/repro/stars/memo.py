"""The per-optimization STAR expansion memo.

Section 2.3 argues that constructive STARs dispatch cheaply because "the
fanout of any reference of a STAR is limited to just those STARs
referenced in its definition" — but a bottom-up enumeration still
*references* the same STAR with the same arguments many times (every
enclosing alternative re-references the shared fragment, E9).  The memo
makes each distinct reference pay for expansion exactly once.

Keys are ``(star name, canonicalized arguments)`` where canonicalization
(:func:`repro.stars.engine._canonical`) reduces plans and SAPs to their
structural digests and streams to ``(tables, Requirements, pinned plan
digests)`` — so the Requirements accumulated on a stream argument are
part of the key, and two references that differ only in required
properties never alias.

The memo is engine-local state: one :class:`StarMemo` per optimization,
created and discarded with the :class:`~repro.stars.engine.StarEngine`.
It is deliberately *not* shared across re-optimizations — a
:class:`~repro.robust.feedback.FeedbackCache` observation recorded
between two optimizations of the same query changes property vectors,
and a cross-query memo would serve stale cardinalities.

Budget interaction: a memo hit is not an expansion.  The engine charges
:meth:`~repro.robust.budget.OptimizerBudget.charge_expansion` only on a
miss, so a tight budget meters *work*, not references.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Hashable

from repro.obs.metrics import stats_snapshot

if TYPE_CHECKING:
    from repro.plans.sap import SAP


@dataclass
class MemoStats:
    """Instrumentation of one memo's lifetime (one optimization)."""

    lookups: int = 0
    hits: int = 0
    misses: int = 0
    entries: int = 0

    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def as_dict(self) -> dict[str, float]:
        """Serialize through the shared metrics-snapshot path."""
        return stats_snapshot(self, extras={"hit_rate": self.hit_rate()})


class StarMemo:
    """Expansion results keyed by (STAR name, canonicalized arguments)."""

    __slots__ = ("_entries", "stats")

    def __init__(self) -> None:
        self._entries: dict[Hashable, "SAP"] = {}
        self.stats = MemoStats()

    def get(self, key: Hashable) -> "SAP | None":
        self.stats.lookups += 1
        cached = self._entries.get(key)
        if cached is None:
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return cached

    def put(self, key: Hashable, sap: "SAP") -> None:
        self._entries[key] = sap
        self.stats.entries = len(self._entries)

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries
