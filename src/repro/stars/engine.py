"""The STAR interpreter.

Section 2.3: "Each reference of a STAR is evaluated by replacing the
reference with its alternative definitions that satisfy the condition of
applicability, and replacing the parameters of those definitions with the
arguments of the reference.  Unlike transformational rules, this
substitution process is remarkably simple and fast, the fanout of any
reference of a STAR is limited to just those STARs referenced in its
definition."

The engine expands a root STAR reference top-down, memoizes repeated
references (shared plan fragments are evaluated only once — E9), maps
LOLEPOP references over the SAPs of their plan arguments (section 2.2's
LISP map), and delegates required-property matching to Glue.  Everything
is instrumented (:class:`ExpansionStats`) so experiment E6 can compare
the work done against a transformational optimizer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.catalog.catalog import Catalog
from repro.config import OptimizerConfig
from repro.cost.model import CostModel
from repro.cost.propfuncs import PlanFactory
from repro.errors import ExpansionError, ReproError, RuleError
from repro.plans.operators import (
    ACCESS,
    BUILDIX,
    DEDUP,
    FILTER,
    INTERSECT,
    PROJECT,
    GET,
    JOIN,
    LOLEPOPS,
    SHIP,
    SORT,
    STORE,
    UNION,
)
from repro.plans.plan import PlanNode, plan_digest
from repro.plans.properties import Requirements
from repro.plans.sap import SAP, Stream
from repro.query.query import QueryBlock
from repro.stars.ast import (
    Alternative,
    Argument,
    Call,
    Compare,
    Const,
    ForAll,
    Logical,
    Negate,
    Param,
    RequiredSpec,
    RuleExpr,
    RuleSet,
    SetExpr,
    SetLiteral,
    StarDef,
    StarRef,
    Term,
)
from repro.obs.metrics import MetricsRegistry, stats_snapshot
from repro.obs.trace import Tracer, active_tracer
from repro.plans.intern import PlanInterner
from repro.stars.glue import Glue
from repro.stars.memo import StarMemo
from repro.stars.plantable import PlanTable
from repro.stars.registry import FunctionRegistry, default_registry

#: Name of the top-most single-table STAR that Glue re-references when no
#: plans exist yet for a table (section 3.2 step 1).
ACCESS_ROOT = "AccessRoot"


@dataclass
class ExpansionStats:
    """Instrumentation of one engine's lifetime (one query optimization)."""

    star_references: int = 0
    memo_hits: int = 0
    memo_misses: int = 0
    alternatives_considered: int = 0
    conditions_evaluated: int = 0
    lolepop_calls: int = 0
    plans_emitted: int = 0
    combos_skipped: int = 0
    glue_references: int = 0
    forall_iterations: int = 0
    veneers_added: int = 0
    compiled_star_evals: int = 0

    def as_dict(self) -> dict[str, int]:
        """Serialize through the shared metrics-snapshot path, so
        OptimizationError diagnostics, chaos reports and the metrics
        registry all see one schema."""
        return stats_snapshot(self)


class RuleContext:
    """Everything rule functions and Glue can see during expansion."""

    def __init__(
        self,
        catalog: Catalog,
        query: QueryBlock,
        config: OptimizerConfig,
        rules: RuleSet,
        registry: FunctionRegistry,
        factory: PlanFactory,
        plan_table: PlanTable,
        tracer: Tracer | None = None,
        metrics: MetricsRegistry | None = None,
        budget=None,
    ):
        self.catalog = catalog
        self.query = query
        self.config = config
        self.rules = rules
        self.registry = registry
        self.factory = factory
        self.model = factory.model
        self.plan_table = plan_table
        #: Sites no plan may touch: explicitly avoided by config plus any
        #: the catalog has marked down.
        self.avoided_sites = frozenset(config.avoid_sites) | catalog.down_sites()
        self.stats = ExpansionStats()
        self.access_root = ACCESS_ROOT
        self.interesting = query.interesting_order_columns()
        #: Structured observability (None = disabled = zero overhead).
        self.tracer = tracer
        self.metrics = metrics
        #: Optional :class:`~repro.robust.budget.OptimizerBudget`; when
        #: set, STAR expansion and plan-table growth are metered and the
        #: search dies with BudgetExhausted (the optimizer catches it and
        #: assembles the best anytime answer).
        self.budget = budget
        # Back-references installed by StarEngine.__init__.
        self.engine: "StarEngine" = None  # type: ignore[assignment]
        self.glue: Glue = None  # type: ignore[assignment]


class StarEngine:
    """Expands STAR references into SAPs."""

    def __init__(
        self,
        rules: RuleSet,
        catalog: Catalog,
        query: QueryBlock,
        registry: FunctionRegistry | None = None,
        config: OptimizerConfig | None = None,
        model: CostModel | None = None,
        plan_table: PlanTable | None = None,
        tracer: Tracer | None = None,
        metrics: MetricsRegistry | None = None,
        budget=None,
        feedback=None,
    ):
        config = config if config is not None else OptimizerConfig()
        tracer = active_tracer(tracer)
        if tracer is None and config.trace:
            # ``config.trace`` keeps its PR-1 meaning — collect an
            # expansion trace — but the substrate is now structured events.
            tracer = Tracer()
        factory = PlanFactory(
            catalog,
            model,
            avoid_sites=config.avoid_sites,
            feedback=feedback,
            interner=PlanInterner() if config.intern_plans else None,
        )
        factory.tracer = tracer
        if plan_table is None:
            plan_table = PlanTable(
                factory.model,
                prune=config.prune,
                interesting=query.interesting_order_columns(),
                site_diversity=config.retain_site_diversity,
            )
        plan_table.tracer = tracer
        plan_table.budget = budget
        self.ctx = RuleContext(
            catalog=catalog,
            query=query,
            config=config,
            rules=rules,
            registry=registry if registry is not None else default_registry(),
            factory=factory,
            plan_table=plan_table,
            tracer=tracer,
            metrics=metrics,
            budget=budget,
        )
        self.ctx.engine = self
        self.ctx.glue = Glue(self.ctx)
        #: Per-optimization expansion memo (None when ``config.memo_stars``
        #: is off): engine-local, never shared across optimizations.
        self.memo: StarMemo | None = StarMemo() if config.memo_stars else None
        self._depth = 0
        #: Compiled fast path (None when ``config.compile_stars`` is off):
        #: the RuleSet's closures, fetched from (or built into) the
        #: program cache — free after the first engine over a rule set.
        self.compiled = None
        if config.compile_stars:
            from repro.stars.compile import compile_rules

            self.compiled = compile_rules(rules, self.ctx.registry)
        #: Call-site → resolved StarRef cache for the interpreter's
        #: Call-to-STAR dispatch (avoids rebuilding the StarRef + Argument
        #: tuple per evaluation); keyed by AST node identity, which is
        #: stable for this engine's lifetime because ctx.rules owns the
        #: nodes and outlives the engine.
        self._call_refs: dict[int, StarRef] = {}

    # -- public API ---------------------------------------------------------------

    @property
    def stats(self) -> ExpansionStats:
        return self.ctx.stats

    @property
    def plan_table(self) -> PlanTable:
        return self.ctx.plan_table

    def expand(self, name: str, args: tuple = ()) -> SAP:
        """Expand a STAR reference with the given arguments into its SAP."""
        star = self.ctx.rules.get(name)
        return self._expand_star(star, tuple(args))

    def trace(self) -> str:
        """The expansion trace rendered from structured events (empty
        unless tracing is on — ``config.trace`` or an attached Tracer)."""
        tracer = self.ctx.tracer
        if tracer is None:
            return ""
        lines = []
        for event in tracer.events():
            if event.ph == "X" and event.cat == "star":
                lines.append(
                    f"{'  ' * event.depth}{event.name}"
                    f"({event.args.get('args', '')}) -> "
                    f"{event.args.get('plans', 0)} plan(s)"
                )
        return "\n".join(lines)

    @property
    def tracer(self) -> Tracer | None:
        return self.ctx.tracer

    @property
    def metrics(self) -> MetricsRegistry | None:
        return self.ctx.metrics

    # -- STAR expansion --------------------------------------------------------------

    def _expand_star(self, star: StarDef, args: tuple) -> SAP:
        ctx = self.ctx
        ctx.stats.star_references += 1
        if ctx.metrics is not None:
            ctx.metrics.inc(f"optimizer.rule.{star.name}.fired")
        if len(args) != len(star.params):
            raise RuleError(
                f"STAR {star.name} takes {len(star.params)} argument(s), "
                f"got {len(args)}"
            )
        key = None
        if self.memo is not None:
            key = (star.name, tuple(_canonical(a) for a in args))
            cached = self.memo.get(key)
            if cached is not None:
                # A memo hit dispatches in O(1): no alternatives evaluated,
                # no plans built, and — deliberately — no budget charge.
                ctx.stats.memo_hits += 1
                if ctx.tracer is not None:
                    ctx.tracer.instant(
                        "star", star.name, memo_hit=True, plans=len(cached)
                    )
                return cached
            ctx.stats.memo_misses += 1
        if ctx.budget is not None:
            # BudgetExhausted is deliberately NOT a ReproError: it must cut
            # through every per-plan ``except ReproError`` on its way out.
            ctx.budget.charge_expansion(star.name)

        if self._depth >= ctx.config.max_depth:
            raise ExpansionError(
                f"expansion depth limit ({ctx.config.max_depth}) exceeded at "
                f"STAR {star.name}: the rule set likely contains a cycle"
            )
        tracer = ctx.tracer
        span = None
        if tracer is not None:
            span = tracer.begin(
                "star", star.name,
                args=", ".join(_short(a) for a in args),
            )
        self._depth += 1
        result: SAP | None = None
        try:
            compiled_star = None
            if self.compiled is not None:
                compiled_star = self.compiled.stars.get(star.name)
                if compiled_star is not None and compiled_star.star is not star:
                    # The rule set changed under a live engine (replace/
                    # extend after construction): the program is a stale
                    # snapshot for this STAR — use the oracle.
                    compiled_star = None
            if compiled_star is not None:
                ctx.stats.compiled_star_evals += 1
                result = compiled_star.evaluate(self, args)
            else:
                env: dict[str, Any] = dict(zip(star.params, args))
                for bound, expr in star.bindings:
                    env[bound] = self._eval_expr(expr, env)
                result = self._eval_alternatives(star, env)
        finally:
            self._depth -= 1
            if tracer is not None:
                if result is None:
                    tracer.end(span, failed=True)
                else:
                    tracer.end(span, plans=len(result))

        if self.memo is not None:
            self.memo.put(key, result)
        return result

    def _eval_alternatives(self, star: StarDef, env: dict[str, Any]) -> SAP:
        ctx = self.ctx
        limit = ctx.config.max_plans_per_reference
        result = SAP()
        for alt in star.alternatives:
            # Evaluation-order control [LEE 88]: alternatives are tried
            # in definition order; an optional budget stops the search
            # once enough plans exist for this reference.
            if limit is not None and len(result) >= limit:
                break
            ctx.stats.alternatives_considered += 1
            applicable = self._alternative_applies(alt, env)
            if not applicable:
                continue
            result = result.union(self._eval_term(alt.term, env))
            if star.exclusive:
                break
        return result

    def _alternative_applies(self, alt: Alternative, env: dict[str, Any]) -> bool:
        if alt.otherwise or alt.condition is None:
            return True
        self.ctx.stats.conditions_evaluated += 1
        return bool(self._eval_expr(alt.condition, env))

    # -- terms ------------------------------------------------------------------------

    def _eval_term(self, term: Term | RuleExpr, env: dict[str, Any]) -> SAP:
        if isinstance(term, StarRef):
            return self._eval_star_ref(term, env)
        if isinstance(term, ForAll):
            values = self._eval_expr(term.set_expr, env)
            result = SAP()
            for value in values:
                self.ctx.stats.forall_iterations += 1
                child = dict(env)
                child[term.var] = value
                result = result.union(self._eval_term(term.term, child))
            return result
        if isinstance(term, RuleExpr):
            # A Call whose target could not be classified at parse time
            # (STAR vs. registry function); it must produce plans here.
            return _as_sap(self._eval_expr(term, env))
        raise RuleError(f"unknown term type {type(term).__name__}")

    def _eval_star_ref(self, ref: StarRef, env: dict[str, Any]) -> SAP:
        values = [self._eval_argument(arg, env) for arg in ref.args]
        if ref.name == "Glue":
            return self._call_glue(values)
        if ref.name in LOLEPOPS:
            return self._call_lolepop(ref.name, ref.flavor, values)
        star = self.ctx.rules.get(ref.name)
        return self._expand_star(star, tuple(values))

    def _eval_argument(self, arg: Argument, env: dict[str, Any]) -> Any:
        if isinstance(arg.value, Term):
            value: Any = self._eval_term(arg.value, env)
        else:
            value = self._eval_expr(arg.value, env)
        if arg.required is None or arg.required.is_empty():
            return value
        req = self._eval_required(arg.required, env)
        if isinstance(value, Stream):
            return value.require(req)
        if isinstance(value, SAP):
            return self._glue_augment(value, req)
        raise RuleError(
            f"required properties {req} attached to a non-stream argument "
            f"({type(value).__name__})"
        )

    def _eval_required(self, spec: RequiredSpec, env: dict[str, Any]) -> Requirements:
        order = None
        if spec.order is not None:
            order = tuple(self._eval_expr(spec.order, env))
        site = None
        if spec.site is not None:
            site = self._eval_expr(spec.site, env)
        paths = None
        if spec.paths is not None:
            paths = tuple(self._eval_expr(spec.paths, env))
        return Requirements(order=order, site=site, temp=spec.temp, paths=paths)

    # -- Glue and LOLEPOP dispatch ----------------------------------------------------

    def _call_glue(self, values: list[Any]) -> SAP:
        if not values:
            raise RuleError("Glue needs a stream argument")
        target = values[0]
        extra = frozenset(values[1]) if len(values) > 1 and values[1] else frozenset()
        if isinstance(target, Stream):
            key = None
            if self.memo is not None:
                # Glue resolution is deterministic within one optimization:
                # the plan-table class a stream reads is built exactly once
                # and never replaced, so (stream, pushed preds) keys the
                # result.  Both permutations of a merge-join pair request
                # the same sorted sides — this is where the memo pays.
                key = ("Glue", _canonical(target), _canonical(extra))
                cached = self.memo.get(key)
                if cached is not None:
                    self.ctx.stats.memo_hits += 1
                    if self.ctx.tracer is not None:
                        self.ctx.tracer.instant(
                            "glue", "resolve", memo_hit=True, plans=len(cached)
                        )
                    return cached
                self.ctx.stats.memo_misses += 1
            result = self.ctx.glue.resolve(target, extra_preds=extra)
            if self.memo is not None:
                self.memo.put(key, result)
            return result
        if isinstance(target, SAP):
            return self._glue_augment(
                target, Requirements(extra_preds=frozenset(extra))
            )
        raise RuleError(f"Glue target must be a stream, got {type(target).__name__}")

    def _glue_augment(self, sap: SAP, req: Requirements) -> SAP:
        """Memoized veneer application for SAP-valued arguments — the
        ``T[temp]`` / ``[order = ...]`` decorations rules attach."""
        key = None
        if self.memo is not None:
            key = ("Glue.augment", _canonical(sap), req)
            cached = self.memo.get(key)
            if cached is not None:
                self.ctx.stats.memo_hits += 1
                if self.ctx.tracer is not None:
                    self.ctx.tracer.instant(
                        "glue", "augment", memo_hit=True, plans=len(cached)
                    )
                return cached
            self.ctx.stats.memo_misses += 1
        result = self.ctx.glue.augment(sap, req)
        if self.memo is not None:
            self.memo.put(key, result)
        return result

    def _call_lolepop(self, name: str, flavor: str | None, values: list[Any]) -> SAP:
        ctx = self.ctx
        ctx.stats.lolepop_calls += 1
        factory = ctx.factory

        def mapped(sap: SAP, build) -> SAP:
            plans = []
            for plan in sap:
                try:
                    plans.append(build(plan))
                except ReproError:
                    ctx.stats.combos_skipped += 1
            result = SAP(plans)
            ctx.stats.plans_emitted += len(result)
            return result

        if name == JOIN:
            outer, inner = _as_sap(values[0]), _as_sap(values[1])
            join_preds = frozenset(values[2]) if len(values) > 2 and values[2] else frozenset()
            residual = frozenset(values[3]) if len(values) > 3 and values[3] else frozenset()
            plans = []
            for o in outer:
                for i in inner:
                    try:
                        plans.append(factory.join(flavor or "NL", o, i, join_preds, residual))
                    except ReproError:
                        ctx.stats.combos_skipped += 1
            result = SAP(plans)
            ctx.stats.plans_emitted += len(result)
            return result

        if name == SORT:
            sap, order = _as_sap(values[0]), tuple(values[1])
            return mapped(sap, lambda p: factory.sort(p, order))

        if name == SHIP:
            sap, site = _as_sap(values[0]), values[1]
            return mapped(
                sap, lambda p: p if p.props.site == site else factory.ship(p, site)
            )

        if name == ACCESS:
            return self._access(values)

        if name == GET:
            sap = _as_sap(values[0])
            table = values[1]
            columns = _as_colset(values[2])
            preds = frozenset(values[3]) if len(values) > 3 and values[3] else frozenset()
            return mapped(sap, lambda p: factory.get(p, table, columns, preds))

        if name == STORE:
            return mapped(_as_sap(values[0]), factory.store)

        if name == BUILDIX:
            sap, key = _as_sap(values[0]), tuple(values[1])
            return mapped(sap, lambda p: factory.buildix(p, key))

        if name == FILTER:
            sap = _as_sap(values[0])
            preds = frozenset(values[1])
            return mapped(sap, lambda p: factory.filter(p, preds))

        if name == DEDUP:
            sap, key = _as_sap(values[0]), tuple(values[1])
            return mapped(sap, lambda p: factory.dedup(p, key))

        if name == PROJECT:
            sap, columns = _as_sap(values[0]), frozenset(values[1])
            return mapped(sap, lambda p: factory.project(p, columns))

        if name == INTERSECT:
            left, right = _as_sap(values[0]), _as_sap(values[1])
            key = tuple(values[2])
            plans = []
            for a in left:
                for b in right:
                    try:
                        plans.append(factory.intersect(a, b, key))
                    except ReproError:
                        ctx.stats.combos_skipped += 1
            result = SAP(plans)
            ctx.stats.plans_emitted += len(result)
            return result

        if name == UNION:
            left, right = _as_sap(values[0]), _as_sap(values[1])
            plans = []
            for a in left:
                for b in right:
                    try:
                        plans.append(factory.union(a, b))
                    except ReproError:
                        ctx.stats.combos_skipped += 1
            result = SAP(plans)
            ctx.stats.plans_emitted += len(result)
            return result

        raise RuleError(f"no dispatcher for LOLEPOP {name}")

    def _access(self, values: list[Any]) -> SAP:
        """ACCESS dispatch: the flavor follows from the target's type —
        a table name (heap/btree per catalog), an AccessPath (index), or a
        SAP of stored plans (temp re-access, section 4.5.2)."""
        ctx = self.ctx
        factory = ctx.factory
        target = values[0]
        columns = _as_colset(values[1]) if len(values) > 1 else None
        preds = frozenset(values[2]) if len(values) > 2 and values[2] else frozenset()

        if isinstance(target, Stream) and len(target.tables) == 1:
            target = next(iter(target.tables))

        if isinstance(target, str):
            result = SAP(
                factory.access_base(target, columns or frozenset(), preds, site=site)
                for site in self._usable_copies(target)
            )
            ctx.stats.plans_emitted += len(result)
            return result

        from repro.catalog.schema import AccessPath

        if isinstance(target, AccessPath):
            result = SAP(
                factory.access_index(target.table, target, columns, preds, site=site)
                for site in self._usable_copies(target.table)
            )
            ctx.stats.plans_emitted += len(result)
            return result

        if isinstance(target, SAP):
            plans = []
            for p in target:
                try:
                    if p.op == ACCESS and p.flavor == "temp" and p.inputs:
                        plans.append(factory.access_temp(p.inputs[0], columns, preds))
                    elif p.props.stored_as is not None and p.inputs:
                        plans.append(factory.access_temp(p, columns, preds))
                    else:
                        ctx.stats.combos_skipped += 1
                except ReproError:
                    ctx.stats.combos_skipped += 1
            result = SAP(plans)
            ctx.stats.plans_emitted += len(result)
            return result

        raise RuleError(f"ACCESS target must be table/path/plans, got {type(target).__name__}")

    def _usable_copies(self, table: str) -> tuple[str, ...]:
        """Storage sites of ``table`` that plans may read: up, reachable,
        and not config-avoided.  Raises if the table is wholly unreachable
        — no rule can produce any plan then."""
        ctx = self.ctx
        sites = tuple(
            s
            for s in ctx.catalog.reachable_storage_sites(table)
            if s not in ctx.avoided_sites
        )
        if not sites:
            raise ReproError(
                f"no usable copy of table {table}: every storage site is "
                f"down or avoided"
            )
        return sites

    # -- expressions ------------------------------------------------------------------

    def _eval_expr(self, expr: RuleExpr, env: dict[str, Any]) -> Any:
        if isinstance(expr, Param):
            try:
                return env[expr.name]
            except KeyError:
                raise RuleError(f"unbound rule parameter {expr.name!r}") from None
        if isinstance(expr, Const):
            return expr.value
        if isinstance(expr, Call):
            # STARs shadow registry functions: a call to a defined STAR
            # (or to Glue / a LOLEPOP) evaluates to its SAP.
            if (
                self.ctx.rules.has(expr.name)
                or expr.name == "Glue"
                or expr.name in LOLEPOPS
            ):
                ref = self._call_refs.get(id(expr))
                if ref is None:
                    ref = StarRef(
                        expr.name, tuple(Argument(a) for a in expr.args), flavor=None
                    )
                    self._call_refs[id(expr)] = ref
                return self._eval_star_ref(ref, env)
            fn = self.ctx.registry.get(expr.name)
            args = [self._eval_expr(a, env) for a in expr.args]
            return fn(self.ctx, *args)
        if isinstance(expr, SetLiteral):
            return frozenset(self._eval_expr(i, env) for i in expr.items)
        if isinstance(expr, SetExpr):
            left = _as_set(self._eval_expr(expr.left, env))
            right = _as_set(self._eval_expr(expr.right, env))
            if expr.op == "|":
                return left | right
            if expr.op == "&":
                return left & right
            return left - right
        if isinstance(expr, Compare):
            left = self._eval_expr(expr.left, env)
            right = self._eval_expr(expr.right, env)
            return _compare(expr.op, left, right)
        if isinstance(expr, Logical):
            if expr.op == "and":
                return all(bool(self._eval_expr(p, env)) for p in expr.parts)
            return any(bool(self._eval_expr(p, env)) for p in expr.parts)
        if isinstance(expr, Negate):
            return not bool(self._eval_expr(expr.part, env))
        raise RuleError(f"unknown expression type {type(expr).__name__}")


# ---------------------------------------------------------------------------
# Small coercion helpers
# ---------------------------------------------------------------------------


def _as_sap(value: Any) -> SAP:
    if isinstance(value, SAP):
        return value
    if isinstance(value, PlanNode):
        return SAP([value])
    raise RuleError(f"expected a plan set, got {type(value).__name__}")


def _as_set(value: Any) -> frozenset:
    if isinstance(value, frozenset):
        return value
    if isinstance(value, (set, tuple, list)):
        return frozenset(value)
    raise RuleError(f"expected a set, got {type(value).__name__}")


def _as_colset(value: Any) -> Any:
    """Column-set arguments: '*' means "all columns of the source"."""
    if value == "*" or value is None:
        return None
    return frozenset(value)


def _compare(op: str, left: Any, right: Any) -> bool:
    if op == "==":
        return left == right
    if op == "!=":
        return left != right
    if op == "in":
        return left in right
    if isinstance(left, (frozenset, set)) or isinstance(right, (frozenset, set)):
        left_s, right_s = _as_set(left), _as_set(right)
        if op == "<=":
            return left_s <= right_s
        if op == "<":
            return left_s < right_s
        if op == ">=":
            return left_s >= right_s
        if op == ">":
            return left_s > right_s
    if op == "<=":
        return left <= right
    if op == "<":
        return left < right
    if op == ">=":
        return left >= right
    if op == ">":
        return left > right
    raise RuleError(f"unknown comparison {op!r}")


def _canonical(value: Any) -> Any:
    """A hashable, content-based memoization key component."""
    if isinstance(value, Stream):
        fixed = (
            tuple(plan_digest(p) for p in value.fixed_plans)
            if value.fixed_plans is not None
            else None
        )
        return ("stream", value.tables, value.requirements, fixed)
    if isinstance(value, SAP):
        return ("sap", tuple(sorted(plan_digest(p) for p in value)))
    if isinstance(value, PlanNode):
        return ("plan", plan_digest(value))
    if isinstance(value, (list, tuple)):
        return tuple(_canonical(v) for v in value)
    if isinstance(value, (set, frozenset)):
        return frozenset(_canonical(v) for v in value)
    return value


def _short(value: Any) -> str:
    if isinstance(value, frozenset):
        return "{" + ", ".join(sorted(str(v) for v in value)[:3]) + ("…}" if len(value) > 3 else "}")
    text = str(value)
    return text if len(text) <= 40 else text[:37] + "…"
