"""Glue: impedance matching between available and required properties.

Paper section 3.2 — Glue

1. checks if any plans exist for the required relational properties
   (TABLES, COLS, PREDS), referencing the top-most STAR with those
   parameters if not;
2. adds "Glue" operators as a "veneer" to achieve the required physical
   properties (SORT for ORDER, SHIP for SITE, STORE for TEMP, and
   BUILDIX + index ACCESS for the ``paths ≥ IX`` requirement of 4.5.3);
3. either returns the cheapest plan satisfying the requirements or
   (optionally) all plans satisfying the requirements.

Predicate push-down rides along as ``Requirements.extra_preds``: Glue
re-references the single-table STARs with the pushed predicates so plans
can *exploit* them (e.g. probe an index with a converted join predicate)
"rather than retrofitting a FILTER LOLEPOP to existing plans" (4.4).
Predicates that reference tables outside the stream (sideways information
passing) are never baked into a materialized temp — they are applied by
the re-ACCESS of the temp, "to prevent the temp from being re-materialized
for each outer tuple" (4.5.2).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable

from repro.errors import GlueError, ReproError
from repro.plans.operators import ACCESS
from repro.plans.plan import PlanNode
from repro.plans.properties import Requirements, order_satisfies
from repro.plans.sap import SAP, Stream
from repro.query.predicates import Predicate

if TYPE_CHECKING:
    from repro.stars.engine import RuleContext


class Glue:
    """The Glue mechanism, bound to one expansion context."""

    def __init__(self, ctx: "RuleContext"):
        self._ctx = ctx

    # -- entry points -----------------------------------------------------------

    def resolve(
        self,
        stream: Stream,
        extra_preds: Iterable[Predicate] = (),
        mode: str | None = None,
    ) -> SAP:
        """Produce plans for ``stream`` satisfying its accumulated
        requirements, pushing ``extra_preds`` down into the stream."""
        tracer = self._ctx.tracer
        if tracer is None:
            return self._resolve(stream, extra_preds, mode)
        span = tracer.begin("glue", "resolve", stream=str(stream))
        try:
            result = self._resolve(stream, extra_preds, mode)
        except Exception:
            tracer.end(span, failed=True)
            raise
        tracer.end(span, plans=len(result))
        return result

    def _resolve(
        self,
        stream: Stream,
        extra_preds: Iterable[Predicate] = (),
        mode: str | None = None,
    ) -> SAP:
        ctx = self._ctx
        ctx.stats.glue_references += 1
        req = stream.requirements.merged(
            Requirements(extra_preds=frozenset(extra_preds))
        )
        bakeable = frozenset(
            p for p in req.extra_preds if p.tables() <= stream.tables
        )
        sideways = req.extra_preds - bakeable

        if req.paths is not None or req.temp:
            # Materialization path: build candidates WITHOUT sideways
            # predicates (they change per outer tuple), bake only the
            # stream-local ones into the temp.
            candidates = self._candidates(stream, bakeable)
            plans: list[PlanNode] = []
            for plan in candidates:
                plans.extend(self._materialize_veneer(plan, req, sideways))
        else:
            candidates = self._candidates(stream, bakeable | sideways)
            plans = []
            for plan in candidates:
                plans.extend(self._stream_veneer(plan, req))

        result = SAP(plans).satisfying(req.without_preds())
        if not result:
            raise GlueError(
                f"Glue could not satisfy {req} for stream {stream} "
                f"({len(candidates)} candidate plan(s))"
            )
        mode = mode if mode is not None else self._ctx.config.glue_mode
        if mode == "cheapest":
            cheapest = result.cheapest(ctx.model)
            assert cheapest is not None
            return SAP([cheapest])
        if not ctx.config.prune:
            return result
        return result.pruned(
            ctx.model, ctx.interesting,
            site_diversity=ctx.config.retain_site_diversity,
        )

    def augment(self, sap: SAP, req: Requirements) -> SAP:
        """Apply veneers to already-resolved plans (used when a rule puts
        required properties on a SAP-valued argument)."""
        tracer = self._ctx.tracer
        if tracer is None:
            return self._augment(sap, req)
        span = tracer.begin("glue", "augment", req=str(req), candidates=len(sap))
        try:
            result = self._augment(sap, req)
        except Exception:
            tracer.end(span, failed=True)
            raise
        tracer.end(span, plans=len(result))
        return result

    def _augment(self, sap: SAP, req: Requirements) -> SAP:
        plans: list[PlanNode] = []
        for plan in sap:
            if req.paths is not None or req.temp:
                plans.extend(self._materialize_veneer(plan, req, req.extra_preds))
            else:
                missing = req.extra_preds - plan.props.preds
                base = self._ctx.factory.filter(plan, missing) if missing else plan
                plans.extend(self._stream_veneer(base, req))
        result = SAP(plans).satisfying(req.without_preds())
        if not result:
            raise GlueError(f"Glue could not satisfy {req} on given plans")
        if not self._ctx.config.prune:
            return result
        return result.pruned(
            self._ctx.model, self._ctx.interesting,
            site_diversity=self._ctx.config.retain_site_diversity,
        )

    # -- candidate generation (step 1) --------------------------------------------

    def _candidates(self, stream: Stream, push: frozenset[Predicate]) -> SAP:
        """Find or build plans with the required relational properties."""
        ctx = self._ctx
        if stream.fixed_plans is not None:
            plans = []
            for plan in stream.fixed_plans:
                missing = push - plan.props.preds
                plans.append(ctx.factory.filter(plan, missing) if missing else plan)
            return SAP(plans)

        standard = self._standard_preds(stream.tables)
        target = standard | push
        found = ctx.plan_table.lookup(stream.tables, target)
        if found is not None:
            return found

        if len(stream.tables) == 1:
            # Re-reference the top-most single-table STAR with the pushed
            # predicates so access methods can exploit them (section 4.4).
            (table,) = stream.tables
            columns = ctx.query.columns_for_table(table)
            sap = ctx.engine.expand(ctx.access_root, (table, columns, target))
            if not sap:
                raise GlueError(f"no access plans for table {table}")
            return ctx.plan_table.insert(stream.tables, target, sap)

        # Composite stream: plans must have been enumerated already;
        # retrofit a FILTER for any extra predicates.
        base = ctx.plan_table.lookup(stream.tables, standard)
        if base is None:
            raise GlueError(
                f"no plans exist for composite stream over {sorted(stream.tables)}; "
                "join enumeration must populate the plan table bottom-up"
            )
        if not push:
            return base
        filtered = base.map(lambda p: self._try(lambda: ctx.factory.filter(p, push)))
        return ctx.plan_table.insert(stream.tables, target, filtered)

    def _standard_preds(self, tables: frozenset[str]) -> frozenset[Predicate]:
        """Predicates a plan over ``tables`` has applied when built by the
        normal bottom-up enumeration: every query predicate local to the
        table set."""
        return frozenset(
            p for p in self._ctx.query.predicates if p.tables() and p.tables() <= tables
        )

    # -- veneers (step 2) ------------------------------------------------------------

    def _try(self, builder):
        try:
            return builder()
        except ReproError:
            self._ctx.stats.combos_skipped += 1
            return None

    def _stream_veneer(self, plan: PlanNode, req: Requirements) -> list[PlanNode]:
        """SORT / SHIP veneers for a stream requirement.  When both are
        needed, both orderings are generated (Figure 3 shows SHIP∘SORT and
        SORT∘SHIP variants) and cost pruning picks the winner."""
        ctx = self._ctx
        factory = ctx.factory
        props = plan.props
        needs_ship = req.site is not None and props.site != req.site
        needs_sort = req.order is not None and not order_satisfies(props.order, req.order)
        if needs_sort and not frozenset(req.order) <= props.cols:
            return []  # cannot sort on columns the stream does not carry

        variants: list[PlanNode] = []
        if not needs_ship and not needs_sort:
            return [plan]
        if needs_ship and needs_sort:
            first = self._try(lambda: factory.ship(factory.sort(plan, req.order), req.site))
            second = self._try(lambda: factory.sort(factory.ship(plan, req.site), req.order))
            variants.extend(v for v in (first, second) if v is not None)
        elif needs_ship:
            shipped = self._try(lambda: factory.ship(plan, req.site))
            if shipped is not None:
                variants.append(shipped)
        else:
            sorted_plan = self._try(lambda: factory.sort(plan, req.order))
            if sorted_plan is not None:
                variants.append(sorted_plan)
        for variant in variants:
            ctx.stats.veneers_added += 1
            if ctx.tracer is not None:
                ctx.tracer.instant(
                    "glue", "veneer", op=variant.op, flavor=variant.flavor
                )
        return variants

    def _materialize_veneer(
        self,
        plan: PlanNode,
        req: Requirements,
        sideways: frozenset[Predicate],
    ) -> list[PlanNode]:
        """STORE (+ BUILDIX) veneers for ``temp`` / ``paths`` requirements.

        Pipeline: [SHIP] → [SORT] → STORE → [BUILDIX] → ACCESS, with the
        sideways predicates applied only by the final ACCESS so the temp
        is built once and probed many times.
        """
        ctx = self._ctx
        factory = ctx.factory

        current = plan
        if req.site is not None and current.props.site != req.site:
            shipped = self._try(lambda: factory.ship(current, req.site))
            if shipped is None:
                return []
            current = shipped
        if req.order is not None and not order_satisfies(current.props.order, req.order):
            if not frozenset(req.order) <= current.props.cols:
                return []
            sorted_plan = self._try(lambda c=current: factory.sort(c, req.order))
            if sorted_plan is None:
                return []
            current = sorted_plan

        # Reuse an existing materialization when the plan is already a
        # stored temp access; otherwise STORE it.
        if current.op == ACCESS and current.flavor == "temp" and current.inputs:
            stored = current.inputs[0]
        elif current.props.stored_as is not None and current.inputs:
            stored = current
        else:
            stored = self._try(lambda c=current: factory.store(c))
            if stored is None:
                return []

        results: list[PlanNode] = []
        if req.paths is not None:
            key = tuple(req.paths)
            if not frozenset(key) <= stored.props.cols:
                return []
            if stored.props.has_path_on(key):
                indexed = stored
            else:
                indexed = self._try(lambda s=stored: factory.buildix(s, key))
                if indexed is None:
                    return []
            wanted = tuple(c.column for c in key)
            path = next(
                p for p in indexed.props.paths if p.provides_order_prefix(wanted[:1])
            )
            probe = self._try(
                lambda ix=indexed: factory.access_temp_index(ix, path, preds=sideways)
            )
            if probe is not None:
                ctx.stats.veneers_added += 1
                if ctx.tracer is not None:
                    ctx.tracer.instant("glue", "veneer", op="ACCESS", flavor="index")
                results.append(probe)
        else:
            scan = self._try(lambda s=stored: factory.access_temp(s, preds=sideways))
            if scan is not None:
                ctx.stats.veneers_added += 1
                if ctx.tracer is not None:
                    ctx.tracer.instant("glue", "veneer", op="ACCESS", flavor="temp")
                results.append(scan)
        return results
