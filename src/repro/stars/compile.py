"""The STAR rule compiler: AST → Python closures, once per RuleSet.

The paper's STARs are *pure* functional rules ("grammar-like functional
rules", section 2), which makes them ideal compilation targets: nothing
in a condition, ``where`` binding, REQUIRED spec, or alternative term
depends on anything but the rule environment and the (immutable within
one expansion) context.  The interpreter in :mod:`repro.stars.engine`
nevertheless re-walks the AST with an isinstance chain on every
evaluation of every reference.  This module removes that interpretive
overhead the same way PR 5's ``batch_ops`` removed it for executor
predicates — compile once, call closures forever:

* **Static dispatch.**  Call targets are resolved at compile time: a
  name is classified once as STAR / Glue / LOLEPOP / registry function
  and the closure captures the :class:`StarDef` or the registry callable
  directly, instead of re-asking ``ctx.rules.has()`` per evaluation.
* **Slot environments.**  ``Param`` lookups become positional reads of a
  list environment: parameters take slots ``0..n-1``, ``where`` bindings
  the next slots, and each ``∀`` variable a fresh slot of its own (so
  shadowing compiles away instead of costing a dict copy per iteration).
* **Constant folding.**  Pure ``Const``/``SetLiteral`` compositions —
  set algebra, comparisons, boolean connectives over literals, and fully
  literal REQUIRED specs — are evaluated once at compile time.
* **Interpreter fallback.**  Anything the compiler cannot classify (a
  call to a name in no registry, an unknown node type) compiles to a
  closure that rebuilds a dict environment and delegates to the
  interpreter, so compiled and interpreted rule sets always agree on
  semantics — including on the errors they raise.  Fallback sites are
  counted (:class:`CompileStats`) and surfaced as validation warnings.

Every closure has the signature ``fn(engine, env) -> value`` where
``engine`` is the live :class:`~repro.stars.engine.StarEngine` and
``env`` is the slot list.  Plan-producing work still flows through the
engine's own ``_expand_star`` / ``_call_glue`` / ``_call_lolepop``, so
memoization keys, budget charging, tracing, and statistics are shared
verbatim with the interpreter — the compiled path only replaces the
expression/term *dispatch*, never the plan construction underneath.

Programs are cached per RuleSet (weakly) keyed by the rule-set version
and the registry's function fingerprint, so ``compile_rules`` is free
after the first call; mutating a RuleSet (``add``/``replace``/
``extend``) invalidates the cache.  A program snapshots the rule set it
was built from: engines verify per-STAR that the definition they are
expanding is the one that was compiled, and fall back to the interpreter
otherwise.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable
from weakref import WeakKeyDictionary

from repro.errors import RuleError
from repro.obs.metrics import stats_snapshot
from repro.plans.operators import LOLEPOPS
from repro.plans.properties import Requirements
from repro.plans.sap import SAP, Stream
from repro.stars.ast import (
    Alternative,
    Argument,
    Call,
    Compare,
    Const,
    ForAll,
    Logical,
    Negate,
    Param,
    RequiredSpec,
    RuleExpr,
    RuleSet,
    SetExpr,
    SetLiteral,
    StarDef,
    StarRef,
    Term,
)
from repro.stars.engine import _as_sap, _as_set, _compare
from repro.stars.registry import FunctionRegistry

#: Sentinel for "this subtree is not a compile-time constant".
_NOT_CONST = object()

#: Closure signature shared by every compiled expression and term.
ClosureFn = Callable[..., Any]


@dataclass
class CompileStats:
    """What one ``compile_rules`` run did (and how often it was reused)."""

    stars_compiled: int = 0
    exprs_compiled: int = 0
    constant_folds: int = 0
    static_calls: int = 0
    star_refs_bound: int = 0
    lolepop_refs_bound: int = 0
    glue_refs_bound: int = 0
    fallbacks: int = 0
    cache_hits: int = 0
    compile_seconds: float = 0.0

    def as_dict(self) -> dict[str, float]:
        """Serialize through the shared metrics-snapshot path."""
        return stats_snapshot(self)


class CompiledAlternative:
    """One lowered alternative: an optional condition closure + a term
    closure.  ``condition`` is None for unconditional / OTHERWISE
    alternatives, mirroring ``_alternative_applies``."""

    __slots__ = ("condition", "term")

    def __init__(self, condition: ClosureFn | None, term: ClosureFn):
        self.condition = condition
        self.term = term


class CompiledStar:
    """One STAR lowered to closures over a slot environment."""

    __slots__ = ("name", "star", "n_params", "extra_slots", "bindings",
                 "alternatives", "exclusive")

    def __init__(
        self,
        star: StarDef,
        n_slots: int,
        bindings: tuple[tuple[int, ClosureFn], ...],
        alternatives: tuple[CompiledAlternative, ...],
    ):
        self.name = star.name
        self.star = star
        self.n_params = len(star.params)
        self.extra_slots = n_slots - self.n_params
        self.bindings = bindings
        self.alternatives = alternatives
        self.exclusive = star.exclusive

    def evaluate(self, engine, args: tuple) -> SAP:
        """The compiled twin of ``_eval_alternatives`` (plus binding
        evaluation): same stats, same limit/exclusive semantics, same
        result — just without the AST walk."""
        env = list(args)
        if self.extra_slots:
            env.extend([None] * self.extra_slots)
        for slot, fn in self.bindings:
            env[slot] = fn(engine, env)
        ctx = engine.ctx
        stats = ctx.stats
        limit = ctx.config.max_plans_per_reference
        result = SAP()
        for alt in self.alternatives:
            if limit is not None and len(result) >= limit:
                break
            stats.alternatives_considered += 1
            condition = alt.condition
            if condition is not None:
                stats.conditions_evaluated += 1
                if not condition(engine, env):
                    continue
            result = result.union(alt.term(engine, env))
            if self.exclusive:
                break
        return result


@dataclass
class CompiledRuleSet:
    """Every STAR of one RuleSet, compiled; plus what the compiler
    couldn't lower (``fallback_sites`` — surfaced by validation)."""

    stars: dict[str, CompiledStar]
    stats: CompileStats
    fallback_sites: tuple[str, ...] = ()

    def get(self, name: str) -> CompiledStar | None:
        return self.stars.get(name)


# ---------------------------------------------------------------------------
# The compiler
# ---------------------------------------------------------------------------


class _StarCompiler:
    """Compiles one STAR.  Holds the name→slot scope and the slot
    high-water mark while walking the definition."""

    def __init__(
        self,
        star: StarDef,
        rules: RuleSet,
        registry: FunctionRegistry,
        stats: CompileStats,
        fallback_sites: list[str],
    ):
        self.star = star
        self.rules = rules
        self.registry = registry
        self.stats = stats
        self.fallback_sites = fallback_sites
        self.scope: dict[str, int] = {p: i for i, p in enumerate(star.params)}
        self.n_slots = len(star.params)

    def compile(self) -> CompiledStar:
        bindings = []
        for name, expr in self.star.bindings:
            fn = self._expr(expr)
            slot = self.n_slots
            self.n_slots += 1
            self.scope[name] = slot
            bindings.append((slot, fn))
        alternatives = []
        for alt in self.star.alternatives:
            condition = None
            if not alt.otherwise and alt.condition is not None:
                condition = self._expr(alt.condition)
            alternatives.append(
                CompiledAlternative(condition, self._term(alt.term))
            )
        self.stats.stars_compiled += 1
        return CompiledStar(
            self.star, self.n_slots, tuple(bindings), tuple(alternatives)
        )

    # -- expressions ------------------------------------------------------------

    def _expr(self, expr: RuleExpr) -> ClosureFn:
        fn, _ = self._expr_const(expr)
        return fn

    def _expr_const(self, expr: RuleExpr) -> tuple[ClosureFn, Any]:
        """Compile one expression; returns ``(closure, const)`` where
        ``const`` is the compile-time value or ``_NOT_CONST``."""
        self.stats.exprs_compiled += 1

        if isinstance(expr, Const):
            value = expr.value
            return (lambda engine, env: value), value

        if isinstance(expr, Param):
            if expr.name not in self.scope:
                # Parity with the interpreter's unbound-parameter error
                # (validation reports this statically as well).
                name = expr.name

                def unbound(engine, env):
                    raise RuleError(f"unbound rule parameter {name!r}")

                return unbound, _NOT_CONST
            slot = self.scope[expr.name]
            return (lambda engine, env, _s=slot: env[_s]), _NOT_CONST

        if isinstance(expr, Call):
            return self._call(expr)

        if isinstance(expr, SetLiteral):
            compiled = [self._expr_const(i) for i in expr.items]
            if all(c is not _NOT_CONST for _, c in compiled):
                value = frozenset(c for _, c in compiled)
                self.stats.constant_folds += 1
                return (lambda engine, env: value), value
            fns = tuple(fn for fn, _ in compiled)
            return (
                lambda engine, env: frozenset(f(engine, env) for f in fns)
            ), _NOT_CONST

        if isinstance(expr, SetExpr):
            (lfn, lc) = self._expr_const(expr.left)
            (rfn, rc) = self._expr_const(expr.right)
            op = expr.op
            if lc is not _NOT_CONST and rc is not _NOT_CONST:
                try:
                    ls, rs = _as_set(lc), _as_set(rc)
                    value = ls | rs if op == "|" else ls & rs if op == "&" else ls - rs
                except RuleError:
                    pass  # non-set literal: keep the runtime error site
                else:
                    self.stats.constant_folds += 1
                    return (lambda engine, env: value), value
            if op == "|":
                return (
                    lambda engine, env: _as_set(lfn(engine, env)) | _as_set(rfn(engine, env))
                ), _NOT_CONST
            if op == "&":
                return (
                    lambda engine, env: _as_set(lfn(engine, env)) & _as_set(rfn(engine, env))
                ), _NOT_CONST
            return (
                lambda engine, env: _as_set(lfn(engine, env)) - _as_set(rfn(engine, env))
            ), _NOT_CONST

        if isinstance(expr, Compare):
            (lfn, lc) = self._expr_const(expr.left)
            (rfn, rc) = self._expr_const(expr.right)
            op = expr.op
            if lc is not _NOT_CONST and rc is not _NOT_CONST:
                try:
                    value = _compare(op, lc, rc)
                except (RuleError, TypeError):
                    pass  # keep the runtime error site
                else:
                    self.stats.constant_folds += 1
                    return (lambda engine, env: value), value
            if op == "==":
                return (
                    lambda engine, env: lfn(engine, env) == rfn(engine, env)
                ), _NOT_CONST
            if op == "!=":
                return (
                    lambda engine, env: lfn(engine, env) != rfn(engine, env)
                ), _NOT_CONST
            if op == "in":
                return (
                    lambda engine, env: lfn(engine, env) in rfn(engine, env)
                ), _NOT_CONST
            return (
                lambda engine, env: _compare(op, lfn(engine, env), rfn(engine, env))
            ), _NOT_CONST

        if isinstance(expr, Logical):
            compiled = [self._expr_const(p) for p in expr.parts]
            fns = tuple(fn for fn, _ in compiled)
            if all(c is not _NOT_CONST for _, c in compiled):
                values = [bool(c) for _, c in compiled]
                value = all(values) if expr.op == "and" else any(values)
                self.stats.constant_folds += 1
                return (lambda engine, env: value), value
            if expr.op == "and":
                return (
                    lambda engine, env: all(bool(f(engine, env)) for f in fns)
                ), _NOT_CONST
            return (
                lambda engine, env: any(bool(f(engine, env)) for f in fns)
            ), _NOT_CONST

        if isinstance(expr, Negate):
            (fn, c) = self._expr_const(expr.part)
            if c is not _NOT_CONST:
                value = not bool(c)
                self.stats.constant_folds += 1
                return (lambda engine, env: value), value
            return (lambda engine, env: not bool(fn(engine, env))), _NOT_CONST

        return self._fallback_expr(
            expr, f"unknown expression node {type(expr).__name__}"
        ), _NOT_CONST

    def _call(self, expr: Call) -> tuple[ClosureFn, Any]:
        """Call dispatch, resolved statically.  STARs shadow registry
        functions, exactly like the interpreter's Call branch."""
        name = expr.name
        if self.rules.has(name) or name == "Glue" or name in LOLEPOPS:
            ref = StarRef(name, tuple(Argument(a) for a in expr.args), flavor=None)
            return self._star_ref(ref), _NOT_CONST
        if self.registry.has(name):
            fn = self.registry.get(name)
            arg_fns = tuple(self._expr(a) for a in expr.args)
            self.stats.static_calls += 1
            if not arg_fns:
                return (lambda engine, env: fn(engine.ctx)), _NOT_CONST
            if len(arg_fns) == 1:
                a0 = arg_fns[0]
                return (
                    lambda engine, env: fn(engine.ctx, a0(engine, env))
                ), _NOT_CONST
            if len(arg_fns) == 2:
                a0, a1 = arg_fns
                return (
                    lambda engine, env: fn(engine.ctx, a0(engine, env), a1(engine, env))
                ), _NOT_CONST
            if len(arg_fns) == 3:
                a0, a1, a2 = arg_fns
                return (
                    lambda engine, env: fn(
                        engine.ctx, a0(engine, env), a1(engine, env), a2(engine, env)
                    )
                ), _NOT_CONST
            return (
                lambda engine, env: fn(
                    engine.ctx, *[a(engine, env) for a in arg_fns]
                )
            ), _NOT_CONST
        return self._fallback_expr(
            expr, f"call to unregistered name {name!r}"
        ), _NOT_CONST

    # -- terms ------------------------------------------------------------------

    def _term(self, term: Term | RuleExpr) -> ClosureFn:
        if isinstance(term, StarRef):
            return self._star_ref(term)
        if isinstance(term, ForAll):
            return self._forall(term)
        if isinstance(term, RuleExpr):
            fn = self._expr(term)
            return lambda engine, env: _as_sap(fn(engine, env))
        return self._fallback_term(
            term, f"unknown term node {type(term).__name__}"
        )

    def _star_ref(self, ref: StarRef) -> ClosureFn:
        arg_fns = tuple(self._argument(a) for a in ref.args)
        name = ref.name
        if name == "Glue":
            self.stats.glue_refs_bound += 1
            return lambda engine, env: engine._call_glue(
                [f(engine, env) for f in arg_fns]
            )
        if name in LOLEPOPS:
            flavor = ref.flavor
            self.stats.lolepop_refs_bound += 1
            return lambda engine, env: engine._call_lolepop(
                name, flavor, [f(engine, env) for f in arg_fns]
            )
        if self.rules.has(name):
            # The StarDef is captured here: the program is a snapshot of
            # the rule set (mutations bump the version and recompile).
            star = self.rules.get(name)
            self.stats.star_refs_bound += 1
            return lambda engine, env: engine._expand_star(
                star, tuple(f(engine, env) for f in arg_fns)
            )
        return self._fallback_term(
            ref, f"reference to undefined STAR {name!r}"
        )

    def _forall(self, term: ForAll) -> ClosureFn:
        set_fn = self._expr(term.set_expr)
        # A fresh slot per ∀ variable: shadowing an outer name rebinds the
        # scope for the body only, and needs no env copy per iteration
        # because nothing outside the body ever reads this slot.
        slot = self.n_slots
        self.n_slots += 1
        outer = self.scope.get(term.var, None)
        had = term.var in self.scope
        self.scope[term.var] = slot
        try:
            body_fn = self._term(term.term)
        finally:
            if had:
                self.scope[term.var] = outer
            else:
                del self.scope[term.var]

        def forall(engine, env):
            values = set_fn(engine, env)
            stats = engine.ctx.stats
            result = SAP()
            for value in values:
                stats.forall_iterations += 1
                env[slot] = value
                result = result.union(body_fn(engine, env))
            return result

        return forall

    def _argument(self, arg: Argument) -> ClosureFn:
        if isinstance(arg.value, Term):
            value_fn = self._term(arg.value)
        else:
            value_fn = self._expr(arg.value)
        spec = arg.required
        if spec is None or spec.is_empty():
            return value_fn
        req_fn, req_const = self._required(spec)
        if req_const is not None:
            def apply_const(engine, env, _req=req_const):
                value = value_fn(engine, env)
                if isinstance(value, Stream):
                    return value.require(_req)
                if isinstance(value, SAP):
                    return engine._glue_augment(value, _req)
                raise RuleError(
                    f"required properties {_req} attached to a non-stream "
                    f"argument ({type(value).__name__})"
                )

            return apply_const

        def apply(engine, env):
            value = value_fn(engine, env)
            req = req_fn(engine, env)
            if isinstance(value, Stream):
                return value.require(req)
            if isinstance(value, SAP):
                return engine._glue_augment(value, req)
            raise RuleError(
                f"required properties {req} attached to a non-stream "
                f"argument ({type(value).__name__})"
            )

        return apply

    def _required(
        self, spec: RequiredSpec
    ) -> tuple[ClosureFn | None, Requirements | None]:
        """Compile a REQUIRED spec; fully literal specs (the common
        ``[temp]`` / ``[site = 'X']`` decorations) fold to one
        :class:`Requirements` built at compile time."""
        order = self._expr_const(spec.order) if spec.order is not None else None
        site = self._expr_const(spec.site) if spec.site is not None else None
        paths = self._expr_const(spec.paths) if spec.paths is not None else None
        temp = spec.temp
        parts_const = all(
            p is None or p[1] is not _NOT_CONST for p in (order, site, paths)
        )
        if parts_const:
            try:
                req = Requirements(
                    order=tuple(order[1]) if order is not None else None,
                    site=site[1] if site is not None else None,
                    temp=temp,
                    paths=tuple(paths[1]) if paths is not None else None,
                )
            except TypeError:
                pass  # non-iterable literal: keep the runtime error site
            else:
                self.stats.constant_folds += 1
                return None, req
        order_fn = order[0] if order is not None else None
        site_fn = site[0] if site is not None else None
        paths_fn = paths[0] if paths is not None else None

        def build(engine, env):
            return Requirements(
                order=tuple(order_fn(engine, env)) if order_fn is not None else None,
                site=site_fn(engine, env) if site_fn is not None else None,
                temp=temp,
                paths=tuple(paths_fn(engine, env)) if paths_fn is not None else None,
            )

        return build, None

    # -- interpreter fallback ---------------------------------------------------

    def _dict_env(self) -> tuple[tuple[str, int], ...]:
        return tuple(self.scope.items())

    def _fallback_expr(self, expr: RuleExpr, reason: str) -> ClosureFn:
        self._record_fallback(reason)
        items = self._dict_env()

        def run(engine, env):
            return engine._eval_expr(expr, {n: env[s] for n, s in items})

        return run

    def _fallback_term(self, term: Term | RuleExpr, reason: str) -> ClosureFn:
        self._record_fallback(reason)
        items = self._dict_env()

        def run(engine, env):
            return engine._eval_term(term, {n: env[s] for n, s in items})

        return run

    def _record_fallback(self, reason: str) -> None:
        self.stats.fallbacks += 1
        self.fallback_sites.append(
            f"STAR {self.star.name}: {reason} — no compiled fast path, "
            f"interpreted at runtime"
        )


# ---------------------------------------------------------------------------
# Entry points
# ---------------------------------------------------------------------------

#: A placeholder alternative so :func:`compile_expr` can reuse
#: _StarCompiler (StarDef refuses to exist with no alternatives).
_PLACEHOLDER_ALT = Alternative(term=Const(value=frozenset()))

#: RuleSet → {(version, registry fingerprint): CompiledRuleSet}.  Weak on
#: the RuleSet so programs die with their rules; bounded per rule set.
_CACHE: "WeakKeyDictionary[RuleSet, dict]" = WeakKeyDictionary()
_CACHE_LIMIT = 8


def compile_rules(rules: RuleSet, registry: FunctionRegistry) -> CompiledRuleSet:
    """Compile (or fetch the cached program for) every STAR in ``rules``.

    The cache key is the rule set's mutation version plus the registry's
    function fingerprint — two registries holding the same function
    objects under the same names (e.g. ``default_registry()`` copies)
    share one program.
    """
    key = (getattr(rules, "_version", 0), registry.fingerprint())
    per_rules = _CACHE.get(rules)
    if per_rules is not None:
        cached = per_rules.get(key)
        if cached is not None:
            cached.stats.cache_hits += 1
            return cached
    started = time.perf_counter()
    stats = CompileStats()
    fallback_sites: list[str] = []
    stars = {
        star.name: _StarCompiler(
            star, rules, registry, stats, fallback_sites
        ).compile()
        for star in rules
    }
    stats.compile_seconds = time.perf_counter() - started
    program = CompiledRuleSet(
        stars=stars, stats=stats, fallback_sites=tuple(fallback_sites)
    )
    if per_rules is None:
        per_rules = {}
        _CACHE[rules] = per_rules
    if len(per_rules) >= _CACHE_LIMIT:
        per_rules.clear()
    per_rules[key] = program
    return program


def compile_expr(
    expr: RuleExpr,
    params: tuple[str, ...],
    rules: RuleSet | None = None,
    registry: FunctionRegistry | None = None,
) -> tuple[ClosureFn, int, CompileStats]:
    """Compile one expression against a parameter list.

    The unit used by differential tests and the E18 micro benchmark:
    returns ``(closure, n_slots, stats)``; call the closure as
    ``closure(engine, env)`` with ``env`` a list of ``n_slots`` values
    whose first ``len(params)`` slots are the parameters in order.
    """
    stats = CompileStats()
    compiler = _StarCompiler(
        StarDef("<expr>", tuple(params), (_PLACEHOLDER_ALT,)),
        rules if rules is not None else RuleSet(),
        registry if registry is not None else FunctionRegistry(),
        stats,
        [],
    )
    fn = compiler._expr(expr)
    return fn, compiler.n_slots, stats


def uncompilable_sites(
    rules: RuleSet, registry: FunctionRegistry
) -> tuple[str, ...]:
    """Where the compiler had to fall back to the interpreter — what
    ``validate_rules`` surfaces as warnings (and ``--strict`` rejects)."""
    return compile_rules(rules, registry).fallback_sites
