"""STARs: STrategy Alternative Rules — the paper's core contribution.

This package implements:

* the rule AST (:mod:`repro.stars.ast`): named, parametrized STARs with
  inclusive/exclusive alternative definitions, conditions of
  applicability, ∀-clauses, and required-property annotations;
* the textual rule DSL (:mod:`repro.stars.dsl`) so that strategies are
  *data*, not optimizer code (paper sections 1 and 5);
* the condition/argument function registry
  (:mod:`repro.stars.registry`) — the paper's "C functions" for
  conditions, linked to rules by name;
* the STAR interpreter (:mod:`repro.stars.engine`) — macro-expander-like
  expansion with memoization and instrumentation [LEE 88];
* Glue (:mod:`repro.stars.glue`) — impedance matching between available
  and required properties by injecting veneer operators (section 3.2);
* the hashed plan table (:mod:`repro.stars.plantable`);
* the paper's complete rule set (:mod:`repro.stars.builtin_rules`),
  written in the DSL;
* a rule-set validator (:mod:`repro.stars.validate`) addressing the
  paper's open issue "how to verify that any given set of STARs is
  correct";
* the rule compiler (:mod:`repro.stars.compile`) — every STAR lowered to
  Python closures once per RuleSet, with the interpreter retained as the
  parity oracle (toggle :attr:`OptimizerConfig.compile_stars`).
"""

from repro.stars.ast import (
    Alternative,
    Call,
    Compare,
    Const,
    ForAll,
    Logical,
    Negate,
    Param,
    RequiredSpec,
    RuleSet,
    SetExpr,
    StarDef,
    StarRef,
)
from repro.stars.compile import (
    CompiledRuleSet,
    CompiledStar,
    CompileStats,
    compile_expr,
    compile_rules,
    uncompilable_sites,
)
from repro.stars.dsl import parse_rules
from repro.stars.engine import ExpansionStats, RuleContext, StarEngine
from repro.stars.glue import Glue
from repro.stars.plantable import PlanTable
from repro.stars.registry import FunctionRegistry, default_registry, rule_function
from repro.stars.validate import validate_rules

__all__ = [
    "Alternative",
    "Call",
    "Compare",
    "CompileStats",
    "CompiledRuleSet",
    "CompiledStar",
    "Const",
    "ExpansionStats",
    "ForAll",
    "FunctionRegistry",
    "Glue",
    "Logical",
    "Negate",
    "Param",
    "PlanTable",
    "RequiredSpec",
    "RuleContext",
    "RuleSet",
    "SetExpr",
    "StarDef",
    "StarEngine",
    "StarRef",
    "compile_expr",
    "compile_rules",
    "default_registry",
    "parse_rules",
    "rule_function",
    "uncompilable_sites",
    "validate_rules",
]
