"""The paper's rule set, written in the STAR DSL.

``BASE_RULES`` contains the single-table access STARs (simplified from
[LEE 88]) and the R*-repertoire join STARs of sections 4.1-4.4.  The
section 4.5 additions ship as separate ``extend`` snippets so benchmarks
can toggle each strategy on and off *as data* — exactly the section-5
extensibility story.

Use :func:`default_rules` for the base repertoire and
:func:`extended_rules` for everything.
"""

from __future__ import annotations

from repro.stars.ast import RuleSet
from repro.stars.dsl import parse_rules

#: Single-table access rules (simplified versions of the STARs in
#: [LEE 88]) plus the join rules of sections 4.1-4.4.
BASE_RULES = """
// ===== Single-table access ([LEE 88], simplified) ====================

// AccessRoot is the top-most single-table STAR, referenced by Glue when
// no plans exist yet for a table (section 3.2 step 1).
star AccessRoot(T, C, P) {
    alt -> TableAccess(T, C, P);
    alt -> forall i in matching_indexes(T): IndexAccess(T, i, C, P);
}

// TableAccess (section 4.5.2): one flavor per storage-manager type; the
// ACCESS dispatcher picks heap vs. B-tree from the catalog, and handles
// re-accessing a materialized temp when T is a set of stored plans.
star TableAccess(T, C, P) {
    alt -> ACCESS(T, C, P);
}

// IndexAccess: a covering index answers alone; otherwise ACCESS the
// index (key columns + TID, applying the key-column predicates) and GET
// the remaining columns from the base table (Figure 1's inner stream).
star IndexAccess(T, i, C, P) exclusive {
    alt if covering(i, C, P) -> ACCESS(i, C, P);
    otherwise -> GET(ACCESS(i, key_cols(i), index_preds(i, P)),
                     T, C, P - index_preds(i, P));
}

// ===== Joins (paper section 4) =======================================

// 4.1 Join permutation alternatives: either table set may be the outer.
star JoinRoot(T1, T2, P) {
    alt -> PermutedJoin(T1, T2, P);
    alt -> PermutedJoin(T2, T1, P);
}

// 4.2 Join-site alternatives (as in R*).  Local queries skip the
// RemoteJoin STAR; otherwise the join may be dictated to take place at
// any site holding a table of the query, or at the query site.
star PermutedJoin(T1, T2, P) exclusive {
    alt if local_query() -> SitedJoin(T1, T2, P);
    otherwise -> forall s in candidate_sites(): RemoteJoin(T1, T2, P, s);
}

star RemoteJoin(T1, T2, P, s) {
    alt -> SitedJoin(T1 [site = s], T2 [site = s], P);
}

// 4.3 Store inner stream?  Condition C1: the inner is a composite, or
// its stored site differs from its required site.
star SitedJoin(T1, T2, P) exclusive {
    alt if needs_temp(T2) -> JMeth(T1, T2 [temp], P);
    otherwise -> JMeth(T1, T2, P);
}

// 4.4 Alternative join methods: nested-loop (always possible; join and
// inner predicates pushed down to the inner stream as *parameters*, so
// Glue re-references the single-table STARs) and sort-merge (only when
// sortable predicates exist; dictates the order of both inputs).
star JMeth(T1, T2, P) {
    where JP = join_preds(P);
    where IP = inner_preds(P, T2);
    where SP = sortable_preds(P, T1, T2);
    alt -> JOIN(NL, Glue(T1, {}), Glue(T2, JP | IP), JP, P - (JP | IP));
    alt if SP != {} ->
        JOIN(MG, Glue(T1 [order = merge_cols(SP, T1)], {}),
                 Glue(T2 [order = merge_cols(SP, T2)], IP),
                 SP, P - (IP | SP));
}
"""

#: 4.5.1 Hash join: bucketize both streams; only single-table predicates
#: push to the inner; all multi-table predicates stay residual (hash
#: collisions must be rechecked).
HASH_JOIN_RULES = """
extend JMeth {
    where HP = hashable_preds(P, T1, T2);
    alt if HP != {} -> JOIN(HA, Glue(T1, {}), Glue(T2, IP), HP, P - IP);
}
"""

#: 4.5.2 Forcing projection: materialize the selected/projected inner as
#: a temp and re-ACCESS it (all columns, '*'), pushing the join predicates
#: down only to that access so the temp is built once.
FORCED_PROJECTION_RULES = """
extend JMeth {
    alt -> JOIN(NL, Glue(T1, {}),
                ACCESS(Glue(T2 [temp], IP), *, JP),
                JP, P - (IP | JP));
}
"""

#: 4.5.3 Dynamic indexes: force Glue to ensure the inner has an access
#: path on the columns of the single-table and indexable predicates
#: ('=' predicates first), creating the index if necessary.
DYNAMIC_INDEX_RULES = """
extend JMeth {
    where XP = indexable_preds(P, T1, T2);
    where IX = index_cols(IP, XP, T2);
    alt if XP != {} ->
        JOIN(NL, Glue(T1, {}),
             Glue(T2 [paths >= IX], XP | IP),
             XP - IP, P - (XP | IP));
}
"""

#: TID-sorting (listed among the strategies the paper omitted "for
#: brevity"): sort the TIDs taken from an unordered index before GETting,
#: so data-page I/O happens in physical page order.  The resulting stream
#: loses the index's column order but fetches each page at most once.
TID_SORT_RULES = """
extend AccessRoot {
    alt -> forall i in matching_indexes(T): TidSortedAccess(T, i, C, P);
}

star TidSortedAccess(T, i, C, P) exclusive {
    alt if covering(i, C, P) -> ACCESS(i, C, P);
    otherwise -> GET(SORT(ACCESS(i, key_cols(i), index_preds(i, P)), tid_of(T)),
                     T, C, P - index_preds(i, P));
}
"""

#: OR-ing of multiple indexes (also on the paper's omitted-for-brevity
#: list): a two-branch disjunction whose branches are each sargable on an
#: index becomes a UNION of TID-only index scans, deduplicated on TID,
#: then a GET of the needed columns applying the full predicate set.
OR_INDEX_RULES = """
extend AccessRoot {
    alt -> forall d in or_splittable(T, P): OrIndexAccess(T, d, C, P);
}

star OrIndexAccess(T, d, C, P) {
    alt -> GET(DEDUP(UNION(BranchAccess(T, left_branch(d)),
                           BranchAccess(T, right_branch(d))),
                     tid_of(T)),
               T, C, P);
}

star BranchAccess(T, b) {
    alt -> forall i in branch_indexes(T, b): ACCESS(i, tid_cols(T), pred_set(b));
}
"""

#: AND-ing of multiple indexes (the other half of the paper's omitted
#: "ANDing and ORing of multiple indexes"): two conjunct predicates each
#: sargable on a different index become two TID-only index probes whose
#: TID streams are intersected before a single GET.
AND_INDEX_RULES = """
extend AccessRoot {
    alt -> forall pr in and_splittable(T, P): AndIndexAccess(T, pr, C, P);
}

star AndIndexAccess(T, pr, C, P) {
    alt -> GET(INTERSECT(AndBranchAccess(T, pair_first(pr)),
                         AndBranchAccess(T, pair_second(pr)),
                         tid_of(T)),
               T, C, P);
}

star AndBranchAccess(T, b) {
    alt -> forall i in branch_indexes(T, b): ACCESS(i, tid_cols(T), pred_set(b));
}
"""

#: Semijoin filtration (the paper's omitted "filtration methods such as
#: semi-joins and Bloom-joins" [BERN 81]): instead of shipping the whole
#: remote inner, ship only the outer's join-column projection to the
#: inner's home site, semijoin-filter the inner there, and ship back just
#: the surviving rows for the final hash join.
SEMIJOIN_RULES = """
extend JMeth {
    where HPS = hashable_preds(P, T1, T2);
    alt if HPS != {} and semijoin_applicable(T2) ->
        JOIN(HA, Glue(T1, {}),
             SHIP(JOIN(SJ,
                       Glue(bare_stream(T2), IP),
                       SHIP(PROJECT(Glue(bare_stream(T1), {}),
                                    side_cols(HPS, T1)),
                            home_site(T2)),
                       HPS, {}),
                  required_site(T2)),
             HPS, P - IP);
}
"""

#: The section-2 OrderedStream example, used by tests and the quickstart
#: to demonstrate rule authoring (not part of the join repertoire).
ORDERED_STREAM_RULES = """
star OrderedStream(T, C, P, ord) {
    alt -> SORT(ACCESS(T, C, P), ord);
    alt -> forall i in matching_indexes(T):
               OrderedIndexStream(T, i, C, P, ord);
}

star OrderedIndexStream(T, i, C, P, ord) exclusive {
    alt if prefix_matches(ord, i) -> GET(ACCESS(i, key_cols(i), {}), T, C, P);
    otherwise -> SORT(ACCESS(T, C, P), ord);
}
"""


def default_rules() -> RuleSet:
    """The base repertoire: single-table access + sections 4.1-4.4."""
    return parse_rules(BASE_RULES)


def extended_rules(
    hash_join: bool = True,
    forced_projection: bool = True,
    dynamic_index: bool = True,
    tid_sort: bool = False,
    or_index: bool = False,
    and_index: bool = False,
    semijoin: bool = False,
) -> RuleSet:
    """The base repertoire plus the requested section 4.5 strategies
    (and, optionally, the paper's omitted TID-sort, index-OR/AND-ing and
    semijoin-filtration strategies)."""
    rules = default_rules()
    if hash_join:
        parse_rules(HASH_JOIN_RULES, base=rules)
    if forced_projection:
        parse_rules(FORCED_PROJECTION_RULES, base=rules)
    if dynamic_index:
        parse_rules(DYNAMIC_INDEX_RULES, base=rules)
    if tid_sort:
        parse_rules(TID_SORT_RULES, base=rules)
    if or_index:
        parse_rules(OR_INDEX_RULES, base=rules)
    if and_index:
        parse_rules(AND_INDEX_RULES, base=rules)
    if semijoin:
        parse_rules(SEMIJOIN_RULES, base=rules)
    return rules
