"""The STAR rule DSL.

Rules are data (paper sections 1 and 5): "If the STARs are treated as
input data to a rule interpreter, then new STARs can be added to that
file without impacting the Starburst system code at all [LEE 88]."
This module parses that input data.

Syntax (paper section 4 notation → DSL)::

    // JoinRoot, 4.1 — inclusive alternatives ([ in the paper)
    star JoinRoot(T1, T2, P) {
        alt -> PermutedJoin(T1, T2, P);
        alt -> PermutedJoin(T2, T1, P);
    }

    // PermutedJoin, 4.2 — exclusive alternatives ({ in the paper),
    // a condition, an OTHERWISE, and a ∀-clause
    star PermutedJoin(T1, T2, P) exclusive {
        alt if local_query() -> SitedJoin(T1, T2, P);
        otherwise -> forall s in candidate_sites():
                         RemoteJoin(T1, T2, P, s);
    }

    // Required properties in [brackets] next to the affected argument
    star RemoteJoin(T1, T2, P, s) {
        alt -> SitedJoin(T1 [site = s], T2 [site = s], P);
    }

    // where-bindings, set algebra, LOLEPOP terminals with flavors
    star JMeth(T1, T2, P) {
        where JP = join_preds(P);
        where IP = inner_preds(P, T2);
        alt -> JOIN(NL, Glue(T1, {}), Glue(T2, JP | IP),
                    JP, P - (JP | IP));
    }

    // section 5 extensibility: add alternatives to an existing STAR
    extend JMeth {
        alt if nonempty(hashable_preds(P, T1, T2)) -> ...;
    }

Comments run from ``//`` or ``#`` to end of line.  Conditions and
computed arguments reference registry functions by name (the paper's
compiled "C functions").  ``{}`` is the empty set (the paper's φ); ``*``
means "all columns" in ACCESS references (the paper's ``*`` in 4.5.2).
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.errors import ParseError
from repro.plans.operators import LOLEPOPS
from repro.stars.ast import (
    Alternative,
    Argument,
    Call,
    Compare,
    Const,
    ForAll,
    Logical,
    Negate,
    Param,
    RequiredSpec,
    RuleExpr,
    RuleSet,
    SetExpr,
    SetLiteral,
    StarDef,
    StarRef,
    Term,
)

_KEYWORDS = {
    "star", "extend", "exclusive", "inclusive", "where", "alt", "otherwise",
    "if", "forall", "in", "and", "or", "not", "temp", "order", "site",
    "paths", "true", "false",
}

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+|//[^\n]*|\#[^\n]*)
  | (?P<number>\d+\.\d+|\d+)
  | (?P<string>'(?:[^']|'')*')
  | (?P<ident>[A-Za-z_][A-Za-z_0-9]*)
  | (?P<op>->|==|!=|<=|>=|[(){}\[\],;:=<>|&*-])
    """,
    re.VERBOSE,
)


@dataclass(frozen=True, slots=True)
class _Token:
    kind: str
    text: str
    line: int
    column: int


def _tokenize(text: str) -> list[_Token]:
    tokens: list[_Token] = []
    pos = 0
    line = 1
    line_start = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            raise ParseError(
                f"unexpected character {text[pos]!r} in rule text",
                line,
                pos - line_start + 1,
            )
        kind = match.lastgroup or ""
        tok = match.group()
        if kind == "ws":
            newlines = tok.count("\n")
            if newlines:
                line += newlines
                line_start = pos + tok.rfind("\n") + 1
        else:
            tokens.append(_Token(kind, tok, line, pos - line_start + 1))
        pos = match.end()
    tokens.append(_Token("eof", "", line, pos - line_start + 1))
    return tokens


class _RuleParser:
    def __init__(self, text: str):
        self._tokens = _tokenize(text)
        self._pos = 0

    # -- plumbing ----------------------------------------------------------------

    def _peek(self, ahead: int = 0) -> _Token:
        index = min(self._pos + ahead, len(self._tokens) - 1)
        return self._tokens[index]

    def _advance(self) -> _Token:
        token = self._tokens[self._pos]
        if token.kind != "eof":
            self._pos += 1
        return token

    def _error(self, message: str) -> ParseError:
        token = self._peek()
        return ParseError(
            f"{message}, got {token.text or 'end of input'!r}",
            token.line,
            token.column,
        )

    def _at(self, text: str) -> bool:
        token = self._peek()
        return token.text == text and token.kind in ("op", "ident")

    def _accept(self, text: str) -> bool:
        if self._at(text):
            self._advance()
            return True
        return False

    def _expect(self, text: str) -> None:
        if not self._accept(text):
            raise self._error(f"expected {text!r}")

    def _expect_name(self) -> str:
        token = self._peek()
        if token.kind != "ident" or token.text in _KEYWORDS:
            raise self._error("expected a name")
        self._advance()
        return token.text

    # -- top level -----------------------------------------------------------------

    def parse(self, base: RuleSet | None = None) -> RuleSet:
        rules = base if base is not None else RuleSet()
        while self._peek().kind != "eof":
            if self._accept("star"):
                rules.add(self._parse_star())
            elif self._accept("extend"):
                name = self._expect_name()
                bindings, alternatives = self._parse_body()
                rules.extend(name, tuple(alternatives), tuple(bindings))
            else:
                raise self._error("expected 'star' or 'extend'")
        return rules

    def _parse_star(self) -> StarDef:
        name = self._expect_name()
        self._expect("(")
        params: list[str] = []
        if not self._at(")"):
            params.append(self._expect_name())
            while self._accept(","):
                params.append(self._expect_name())
        self._expect(")")
        exclusive = False
        if self._accept("exclusive"):
            exclusive = True
        else:
            self._accept("inclusive")
        bindings, alternatives = self._parse_body()
        return StarDef(
            name=name,
            params=tuple(params),
            alternatives=tuple(alternatives),
            exclusive=exclusive,
            bindings=tuple(bindings),
        )

    def _parse_body(self):
        self._expect("{")
        bindings: list[tuple[str, RuleExpr]] = []
        alternatives: list[Alternative] = []
        while not self._accept("}"):
            if self._accept("where"):
                bound = self._expect_name()
                self._expect("=")
                bindings.append((bound, self._parse_expr()))
                self._expect(";")
            elif self._accept("alt"):
                condition = None
                if self._accept("if"):
                    condition = self._parse_expr()
                self._expect("->")
                term = self._parse_term()
                self._expect(";")
                alternatives.append(Alternative(term=term, condition=condition))
            elif self._accept("otherwise"):
                self._expect("->")
                term = self._parse_term()
                self._expect(";")
                alternatives.append(Alternative(term=term, otherwise=True))
            else:
                raise self._error("expected 'where', 'alt', 'otherwise' or '}'")
        return bindings, alternatives

    # -- terms ------------------------------------------------------------------------

    def _parse_term(self) -> Term | RuleExpr:
        if self._accept("forall"):
            var = self._expect_name()
            self._expect("in")
            set_expr = self._parse_expr()
            self._expect(":")
            return ForAll(var=var, set_expr=set_expr, term=self._parse_term())
        return _unwrap(self._parse_expr())

    # -- expressions (precedence: or < and < not < compare < setops < primary) ---------

    def _parse_expr(self) -> RuleExpr:
        parts = [self._parse_and()]
        while self._accept("or"):
            parts.append(self._parse_and())
        return parts[0] if len(parts) == 1 else Logical("or", tuple(parts))

    def _parse_and(self) -> RuleExpr:
        parts = [self._parse_not()]
        while self._accept("and"):
            parts.append(self._parse_not())
        return parts[0] if len(parts) == 1 else Logical("and", tuple(parts))

    def _parse_not(self) -> RuleExpr:
        if self._accept("not"):
            return Negate(self._parse_not())
        return self._parse_compare()

    def _parse_compare(self) -> RuleExpr:
        left = self._parse_setop()
        for op in ("==", "!=", "<=", ">=", "<", ">", "in"):
            if self._at(op):
                self._advance()
                return Compare(op, left, self._parse_setop())
        return left

    def _parse_setop(self) -> RuleExpr:
        left = self._parse_primary()
        while True:
            if self._at("|") or self._at("&") or self._at("-"):
                op = self._advance().text
                left = SetExpr(op, left, self._parse_primary())
            else:
                return left

    def _parse_primary(self) -> RuleExpr:
        token = self._peek()
        if token.kind == "number":
            self._advance()
            value = float(token.text) if "." in token.text else int(token.text)
            return Const(value)
        if token.kind == "string":
            self._advance()
            return Const(token.text[1:-1].replace("''", "'"))
        if self._accept("*"):
            return Const("*")
        if self._accept("true"):
            return Const(True)
        if self._accept("false"):
            return Const(False)
        if self._accept("{"):
            items: list[RuleExpr] = []
            if not self._at("}"):
                items.append(self._parse_expr())
                while self._accept(","):
                    items.append(self._parse_expr())
            self._expect("}")
            if not items:
                return Const(frozenset())
            return SetLiteral(tuple(items))
        if self._accept("("):
            expr = self._parse_expr()
            self._expect(")")
            return expr
        if token.kind == "ident" and token.text not in _KEYWORDS:
            name = self._advance().text
            if self._at("("):
                return self._parse_reference(name)
            return Param(name)
        raise self._error("expected an expression")

    def _parse_reference(self, name: str) -> RuleExpr:
        """A call: LOLEPOP (with optional flavor), Glue, STAR, or registry
        function.  LOLEPOPs and Glue are recognized statically and become
        :class:`StarRef` terms; other names stay :class:`Call` expressions
        and are resolved by the engine (STARs take precedence)."""
        self._expect("(")
        flavor = None
        spec = LOLEPOPS.get(name)
        if spec is not None and spec.flavors:
            token = self._peek()
            if token.kind == "ident" and token.text in spec.flavors:
                self._advance()
                flavor = token.text
                self._accept(",")
        args: list[Argument] = []
        if not self._at(")"):
            args.append(self._parse_argument())
            while self._accept(","):
                args.append(self._parse_argument())
        self._expect(")")
        if spec is not None or name == "Glue":
            return _TermExpr(StarRef(name, tuple(args), flavor=flavor))
        plain = tuple(a.value for a in args)
        if any(a.required is not None for a in args):
            # Required properties force term treatment even for names we
            # cannot classify statically.
            return _TermExpr(StarRef(name, tuple(args), flavor=None))
        if all(isinstance(v, RuleExpr) for v in plain):
            return Call(name, plain)  # engine resolves STAR vs. function
        return _TermExpr(StarRef(name, tuple(args), flavor=None))

    def _parse_argument(self) -> Argument:
        value: Term | RuleExpr
        if self._at("forall"):
            value = self._parse_term()
        else:
            value = self._parse_expr()
        if isinstance(value, _TermExpr):
            value = value.term
        required = None
        if self._accept("["):
            required = self._parse_required()
        return Argument(value=value, required=required)

    def _parse_required(self) -> RequiredSpec:
        order = site = paths = None
        temp = False
        while True:
            if self._accept("order"):
                self._expect("=")
                order = self._strip(self._parse_expr())
            elif self._accept("site"):
                self._expect("=")
                site = self._strip(self._parse_expr())
            elif self._accept("temp"):
                temp = True
            elif self._accept("paths"):
                self._expect(">=")
                paths = self._strip(self._parse_expr())
            else:
                raise self._error("expected a required property")
            if self._accept("]"):
                return RequiredSpec(order=order, site=site, temp=temp, paths=paths)
            self._expect(",")

    def _strip(self, expr: RuleExpr) -> RuleExpr:
        if isinstance(expr, _TermExpr):
            token = self._peek()
            raise ParseError(
                "plan terms cannot appear inside required properties",
                token.line,
                token.column,
            )
        return expr


@dataclass(frozen=True, slots=True)
class _TermExpr(RuleExpr):
    """Internal wrapper letting the expression grammar carry a Term; it is
    unwrapped at argument boundaries and where a term is expected."""

    term: Term


def _unwrap(value: Term | RuleExpr) -> Term | RuleExpr:
    if isinstance(value, _TermExpr):
        return value.term
    return value


def parse_rules(text: str, base: RuleSet | None = None) -> RuleSet:
    """Parse rule text into a :class:`RuleSet` (optionally extending an
    existing one in place)."""
    parser = _RuleParser(text)
    rules = parser.parse(base)
    return rules
