"""The hashed plan table.

Section 4.4: "In Starburst, a data structure hashed on the tables and
predicates facilitates finding all such plans, if they exist."  Keys are
``(frozenset of tables, frozenset of applied predicates)``; values are
the surviving (non-dominated) alternative plans for that relational
equivalence class.

The table is instrumented for experiment E9 ("alternative plans may
incorporate the same plan fragment, whose alternatives need be evaluated
only once"): every lookup, hit, miss, and insertion is counted, and
:meth:`expansions_for` reports how often each equivalence class was
*built* versus *reused*.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.cost.model import CostModel
from repro.obs.metrics import stats_snapshot
from repro.plans.plan import PlanNode
from repro.plans.sap import SAP, merge_pruned
from repro.query.predicates import Predicate
from repro.query.template import PlanKey, canonical_key


def plan_key(tables: Iterable[str], preds: Iterable[Predicate]) -> PlanKey:
    """The hashed plan table's key — the shared canonical key, so the
    plan table, the feedback cache and the serving layer can never
    diverge on what an equivalence class is."""
    return canonical_key(tables, preds)


@dataclass
class PlanTableStats:
    """Instrumentation counters."""

    lookups: int = 0
    hits: int = 0
    misses: int = 0
    inserts: int = 0
    plans_inserted: int = 0
    plans_pruned: int = 0

    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def as_dict(self) -> dict[str, float]:
        """Serialize through the shared metrics-snapshot path."""
        return stats_snapshot(self, extras={"hit_rate": self.hit_rate()})


class PlanTable:
    """Alternative plans per (TABLES, PREDS) equivalence class."""

    def __init__(self, model: CostModel, prune: bool = True,
                 interesting: frozenset | None = None,
                 site_diversity: bool = False):
        self._model = model
        self._prune = prune
        self._interesting = interesting
        self._site_diversity = site_diversity
        self._entries: dict[PlanKey, SAP] = {}
        self._build_counts: dict[PlanKey, int] = {}
        self.stats = PlanTableStats()
        #: Structured-event tracer (installed by StarEngine; None = off).
        self.tracer = None
        #: Optional OptimizerBudget (installed by StarEngine; None = off):
        #: every plan entering an equivalence class is charged against it.
        self.budget = None

    def __len__(self) -> int:
        return len(self._entries)

    def lookup(
        self, tables: Iterable[str], preds: Iterable[Predicate]
    ) -> SAP | None:
        key = plan_key(tables, preds)
        self.stats.lookups += 1
        sap = self._entries.get(key)
        if self.tracer is not None:
            self.tracer.instant(
                "plantable", "probe",
                tables=",".join(sorted(key[0])),
                preds=len(key[1]),
                hit=sap is not None,
            )
        if sap is None:
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return sap

    def insert(
        self,
        tables: Iterable[str],
        preds: Iterable[Predicate],
        plans: Iterable[PlanNode],
    ) -> SAP:
        """Merge plans into an equivalence class, pruning dominated ones.
        Returns the surviving SAP for the class."""
        key = plan_key(tables, preds)
        existing = self._entries.get(key)
        incoming = SAP(plans)
        if self.budget is not None:
            self.budget.charge_plans(len(incoming))
        if existing is None:
            before = len(incoming)
            merged = incoming
            if self._prune:
                merged = incoming.pruned(
                    self._model, self._interesting,
                    site_diversity=self._site_diversity,
                )
        elif self._prune:
            # The stored SAP is non-dominated by construction, so the
            # merge only has to judge the new plans against the class —
            # O(new × total) instead of re-pruning the union from scratch.
            known = {q.digest for q in existing}
            before = len(existing) + sum(
                1 for p in incoming if p.digest not in known
            )
            merged = merge_pruned(
                existing, incoming, self._model, self._interesting,
                site_diversity=self._site_diversity,
            )
        else:
            merged = existing.union(incoming)
            before = len(merged)
        self.stats.inserts += 1
        self.stats.plans_inserted += before
        self.stats.plans_pruned += before - len(merged)
        self._entries[key] = merged
        self._build_counts[key] = self._build_counts.get(key, 0) + 1
        if self.tracer is not None:
            self.tracer.instant(
                "plantable", "insert",
                tables=",".join(sorted(key[0])),
                inserted=before,
                pruned=before - len(merged),
                surviving=len(merged),
            )
        return merged

    def keys(self) -> tuple[PlanKey, ...]:
        return tuple(self._entries)

    def all_plans(self) -> tuple[PlanNode, ...]:
        plans: list[PlanNode] = []
        for sap in self._entries.values():
            plans.extend(sap)
        return tuple(plans)

    def expansions_for(self, tables: Iterable[str]) -> int:
        """How many times classes over exactly these tables were built
        (E9: should be 1 per class when memoization works)."""
        wanted = frozenset(tables)
        return sum(
            count for (tbls, _), count in self._build_counts.items() if tbls == wanted
        )

    def build_counts(self) -> dict[PlanKey, int]:
        return dict(self._build_counts)
