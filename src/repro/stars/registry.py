"""The condition / argument function registry.

Paper section 5: "any STAR having a condition not yet defined would
require defining a C function for that condition, compiling that
function, and relinking".  Here the "C functions" are Python callables
registered by name; rule text references them by name only, keeping the
rules themselves pure data.

Every registry function takes the expansion context first (catalog,
query, configuration — see :class:`repro.stars.engine.RuleContext`) and
then its rule-level arguments.  Stream-typed arguments are
:class:`repro.plans.sap.Stream`; predicate sets are frozensets of
:class:`repro.query.predicates.Predicate`; access paths are
:class:`repro.catalog.schema.AccessPath`.
"""

from __future__ import annotations

from typing import Any, Callable, TYPE_CHECKING

from repro.catalog.schema import AccessPath
from repro.errors import RuleError
from repro.plans.sap import Stream
from repro.query.expressions import ColumnRef
from repro.query.predicates import (
    Comparison,
    Predicate,
    hashable_predicates,
    indexable_predicates,
    inner_only_predicates,
    join_predicates,
    sargable_column,
    sortable_predicates,
)
from repro.storage.table import tid_column

if TYPE_CHECKING:
    from repro.stars.engine import RuleContext


RuleFunction = Callable[..., Any]


class FunctionRegistry:
    """Named condition/argument functions available to rule text."""

    def __init__(self, functions: dict[str, RuleFunction] | None = None):
        self._functions: dict[str, RuleFunction] = dict(functions or {})

    def register(self, name: str, fn: RuleFunction, replace: bool = False) -> None:
        if name in self._functions and not replace:
            raise RuleError(f"rule function {name!r} already registered")
        self._functions[name] = fn

    def get(self, name: str) -> RuleFunction:
        try:
            return self._functions[name]
        except KeyError:
            raise RuleError(f"unknown rule function {name!r}") from None

    def has(self, name: str) -> bool:
        return name in self._functions

    def names(self) -> tuple[str, ...]:
        return tuple(sorted(self._functions))

    def fingerprint(self) -> tuple[tuple[str, int], ...]:
        """Identity of the name → function bindings, used to key compiled
        rule programs (:mod:`repro.stars.compile`): two registries holding
        the same function objects under the same names — e.g. copies of
        the default registry — fingerprint equal and share one program."""
        return tuple(sorted((name, id(fn)) for name, fn in self._functions.items()))

    def copy(self) -> "FunctionRegistry":
        return FunctionRegistry(self._functions)


_DEFAULT = FunctionRegistry()


def rule_function(name: str) -> Callable[[RuleFunction], RuleFunction]:
    """Decorator registering a function in the default registry."""

    def decorate(fn: RuleFunction) -> RuleFunction:
        _DEFAULT.register(name, fn)
        return fn

    return decorate


def default_registry() -> FunctionRegistry:
    """A fresh copy of the builtin registry (safe to extend per-session)."""
    return _DEFAULT.copy()


# ---------------------------------------------------------------------------
# Helpers shared by the builtin functions
# ---------------------------------------------------------------------------


def _stream_tables(value: Stream | str) -> frozenset[str]:
    if isinstance(value, Stream):
        return value.tables
    return frozenset([value])


def _pred_side(pred: Comparison, tables: frozenset[str]) -> ColumnRef | None:
    """The bare-column side of ``pred`` belonging to ``tables``."""
    for side in (pred.left, pred.right):
        if isinstance(side, ColumnRef) and side.table in tables:
            return side
    return None


# ---------------------------------------------------------------------------
# Query-level conditions (sections 4.2, 4.3)
# ---------------------------------------------------------------------------


@rule_function("local_query")
def fn_local_query(ctx: "RuleContext") -> bool:
    """True when every table of the query is stored at the query site."""
    site = ctx.catalog.query_site
    return all(ctx.catalog.table(t).site == site for t in ctx.query.tables)


@rule_function("candidate_sites")
def fn_candidate_sites(ctx: "RuleContext") -> tuple[str, ...]:
    """σ: the sites at which tables of the query are stored (any copy —
    primary or replica), plus the query site (section 4.2).  Sites that
    are down or config-avoided are excluded: no join may execute there."""
    sites: set[str] = set()
    for t in ctx.query.tables:
        sites.update(ctx.catalog.storage_sites(t))
    sites.add(ctx.catalog.query_site)
    avoided = getattr(ctx, "avoided_sites", frozenset())
    return tuple(
        s for s in sorted(sites) if s not in avoided and ctx.catalog.site_is_up(s)
    )


@rule_function("query_site")
def fn_query_site(ctx: "RuleContext") -> str:
    return ctx.catalog.query_site


@rule_function("needs_temp")
def fn_needs_temp(ctx: "RuleContext", inner: Stream) -> bool:
    """Condition C1 of section 4.3: the inner is a composite, or its
    stored site differs from its required site."""
    if len(inner.tables) > 1:
        return True
    required = inner.requirements.site
    if required is None:
        return False
    table = next(iter(inner.tables))
    return ctx.catalog.table(table).site != required


# ---------------------------------------------------------------------------
# Predicate classification (sections 4.4, 4.5)
# ---------------------------------------------------------------------------


@rule_function("join_preds")
def fn_join_preds(ctx: "RuleContext", preds: frozenset[Predicate]) -> frozenset[Predicate]:
    return join_predicates(preds)


@rule_function("sortable_preds")
def fn_sortable_preds(
    ctx: "RuleContext",
    preds: frozenset[Predicate],
    outer: Stream | str,
    inner: Stream | str,
) -> frozenset[Predicate]:
    return sortable_predicates(
        preds,
        _stream_tables(outer),
        _stream_tables(inner),
        equality_only=ctx.config.equality_merge_only,
    )


@rule_function("hashable_preds")
def fn_hashable_preds(
    ctx: "RuleContext",
    preds: frozenset[Predicate],
    outer: Stream | str,
    inner: Stream | str,
) -> frozenset[Predicate]:
    return hashable_predicates(preds, _stream_tables(outer), _stream_tables(inner))


@rule_function("indexable_preds")
def fn_indexable_preds(
    ctx: "RuleContext",
    preds: frozenset[Predicate],
    outer: Stream | str,
    inner: Stream | str,
) -> frozenset[Predicate]:
    return indexable_predicates(preds, _stream_tables(outer), _stream_tables(inner))


@rule_function("inner_preds")
def fn_inner_preds(
    ctx: "RuleContext", preds: frozenset[Predicate], inner: Stream | str
) -> frozenset[Predicate]:
    return inner_only_predicates(preds, _stream_tables(inner))


@rule_function("merge_cols")
def fn_merge_cols(
    ctx: "RuleContext", sortable: frozenset[Predicate], stream: Stream | str
) -> tuple[ColumnRef, ...]:
    """χ(SP) ∩ χ(T): this stream's side of the sortable predicates, as an
    ordered column list.

    The outer and inner references must pair up column-by-column for the
    merge to be correct, so the predicates are ordered deterministically
    (by text) before taking sides.
    """
    tables = _stream_tables(stream)
    ordered: list[ColumnRef] = []
    for pred in sorted(sortable, key=str):
        if not isinstance(pred, Comparison):
            continue
        side = _pred_side(pred, tables)
        if side is not None and side not in ordered:
            ordered.append(side)
    return tuple(ordered)


@rule_function("index_cols")
def fn_index_cols(
    ctx: "RuleContext",
    inner_only: frozenset[Predicate],
    indexable: frozenset[Predicate],
    inner: Stream | str,
) -> tuple[ColumnRef, ...]:
    """IX of section 4.5.3: ``(χ(IP) ∪ χ(XP)) ∩ χ(T2)``, with columns of
    '=' predicates first."""
    tables = _stream_tables(inner)
    eq_cols: list[ColumnRef] = []
    other_cols: list[ColumnRef] = []
    for pred in sorted(inner_only | indexable, key=str):
        for col in sorted(pred.columns(), key=str):
            if col.table not in tables or col in eq_cols or col in other_cols:
                continue
            bucket = eq_cols if isinstance(pred, Comparison) and pred.op == "=" else other_cols
            bucket.append(col)
    return tuple(eq_cols + [c for c in other_cols if c not in eq_cols])


# ---------------------------------------------------------------------------
# Set / stream utilities
# ---------------------------------------------------------------------------


@rule_function("nonempty")
def fn_nonempty(ctx: "RuleContext", value: Any) -> bool:
    return bool(value)


@rule_function("empty")
def fn_empty(ctx: "RuleContext", value: Any) -> bool:
    return not bool(value)


@rule_function("composite")
def fn_composite(ctx: "RuleContext", stream: Stream) -> bool:
    """Is this stream the result of a join (more than one table)?"""
    return len(stream.tables) > 1


@rule_function("cols_of")
def fn_cols_of(ctx: "RuleContext", stream: Stream | str) -> frozenset[ColumnRef]:
    """The paper's χ(T): all columns of the stream's tables."""
    return ctx.catalog.columns_of(_stream_tables(stream))


@rule_function("needed_cols")
def fn_needed_cols(ctx: "RuleContext", stream: Stream | str) -> frozenset[ColumnRef]:
    """Columns the query requires from this stream (projection plus any
    predicate and ordering columns)."""
    refs = set()
    for table in _stream_tables(stream):
        refs.update(ctx.query.columns_for_table(table))
    return frozenset(refs)


@rule_function("table_preds")
def fn_table_preds(ctx: "RuleContext", stream: Stream | str) -> frozenset[Predicate]:
    """The query's single-table predicates for this (single-table) stream."""
    tables = _stream_tables(stream)
    preds: set[Predicate] = set()
    for table in tables:
        preds.update(ctx.query.single_table_predicates(table))
    return frozenset(preds)


# ---------------------------------------------------------------------------
# Access-path helpers (single-table access STARs, [LEE 88])
# ---------------------------------------------------------------------------


@rule_function("matching_indexes")
def fn_matching_indexes(
    ctx: "RuleContext", table: str | Stream
) -> tuple[AccessPath, ...]:
    """The set I of access paths available on a stored table (section
    2.2's IndexAccess example iterates over it)."""
    tables = _stream_tables(table)
    if len(tables) != 1:
        return ()
    (name,) = tables
    if not ctx.catalog.has_table(name):
        return ()
    return tuple(sorted(ctx.catalog.paths_for(name), key=lambda p: p.name))


@rule_function("bare_stream")
def fn_bare_stream(ctx: "RuleContext", stream: Stream) -> Stream:
    """The stream with its accumulated requirements stripped — plans for
    it at its home site (the semijoin strategy filters *before* the
    shipment that the requirement would otherwise force)."""
    return stream.bare()


@rule_function("home_site")
def fn_home_site(ctx: "RuleContext", stream: Stream | str) -> str:
    """The stored site of a single-table stream."""
    tables = _stream_tables(stream)
    if len(tables) != 1:
        raise RuleError("home_site needs a single-table stream")
    (name,) = tables
    return ctx.catalog.table(name).site


@rule_function("required_site")
def fn_required_site(ctx: "RuleContext", stream: Stream) -> str:
    """The site a stream's accumulated requirements demand (defaulting to
    the query site)."""
    if isinstance(stream, Stream) and stream.requirements.site is not None:
        return stream.requirements.site
    return ctx.catalog.query_site


@rule_function("semijoin_applicable")
def fn_semijoin_applicable(ctx: "RuleContext", inner: Stream) -> bool:
    """Is the semijoin filtration strategy worth considering for this
    inner?  A single base table whose home site differs from its required
    site (i.e., it would otherwise be shipped whole)."""
    if not isinstance(inner, Stream) or len(inner.tables) != 1:
        return False
    required = inner.requirements.site
    if required is None:
        return False
    (name,) = inner.tables
    if not ctx.catalog.has_table(name):
        return False
    return ctx.catalog.table(name).site != required


@rule_function("side_cols")
def fn_side_cols(
    ctx: "RuleContext", preds: frozenset[Predicate], stream: Stream | str
) -> frozenset[ColumnRef]:
    """χ(P) ∩ χ(T): the predicate columns belonging to one stream (the
    projection the semijoin ships)."""
    tables = _stream_tables(stream)
    return frozenset(
        c for p in preds for c in p.columns() if c.table in tables
    )


@rule_function("stream_of")
def fn_stream_of(ctx: "RuleContext", target: str | Stream) -> Stream:
    """Coerce a table name to a requirement-free stream (for rules that
    receive table names but need to reference Glue)."""
    if isinstance(target, Stream):
        return target
    return Stream(frozenset([target]))


@rule_function("tid_of")
def fn_tid_of(ctx: "RuleContext", table: str | Stream) -> tuple[ColumnRef, ...]:
    """The TID pseudo-column of a (single-table) stream, as an order spec
    (for the TID-sort strategy)."""
    tables = _stream_tables(table)
    if len(tables) != 1:
        raise RuleError("tid_of needs a single-table stream")
    (name,) = tables
    return (tid_column(name),)


@rule_function("key_cols")
def fn_key_cols(ctx: "RuleContext", path: AccessPath) -> frozenset[ColumnRef]:
    """The columns an index access delivers: key columns plus the TID."""
    refs = {ColumnRef(path.table, c) for c in path.columns}
    refs.add(tid_column(path.table))
    return frozenset(refs)


@rule_function("index_preds")
def fn_index_preds(
    ctx: "RuleContext", path: AccessPath, preds: frozenset[Predicate]
) -> frozenset[Predicate]:
    """Predicates applicable while scanning ``path``: all of their columns
    on the indexed table appear in the key."""
    key = set(path.columns)
    applicable = []
    for pred in preds:
        own_cols = {c.column for c in pred.columns() if c.table == path.table}
        if own_cols and own_cols <= key:
            applicable.append(pred)
    return frozenset(applicable)


@rule_function("covering")
def fn_covering(
    ctx: "RuleContext",
    path: AccessPath,
    columns: frozenset[ColumnRef],
    preds: frozenset[Predicate],
) -> bool:
    """Can ``path`` alone deliver ``columns`` and apply all of ``preds``
    (no GET needed)?  Clustered paths deliver every column."""
    available = {ColumnRef(path.table, c) for c in path.columns}
    available.add(tid_column(path.table))
    if path.clustered:
        available |= set(ctx.catalog.columns_of([path.table]))
    if not columns <= available:
        return False
    for pred in preds:
        own = {c for c in pred.columns() if c.table == path.table}
        if not own <= available:
            return False
    return True


@rule_function("prefix_matches")
def fn_prefix_matches(
    ctx: "RuleContext", order: tuple[ColumnRef, ...], path: AccessPath
) -> bool:
    """The paper's ``order ⊑ a`` test (section 2.1)."""
    return path.provides_order_prefix(tuple(c.column for c in order))


@rule_function("tid_cols")
def fn_tid_cols(ctx: "RuleContext", table: str | Stream) -> frozenset[ColumnRef]:
    """Just the TID pseudo-column, as a column set (TID-only streams for
    the index OR-ing strategy)."""
    tables = _stream_tables(table)
    if len(tables) != 1:
        raise RuleError("tid_cols needs a single-table stream")
    (name,) = tables
    return frozenset([tid_column(name)])


def _branch_sarg_column(pred: Predicate, table: str) -> ColumnRef | None:
    """The single sargable column of an OR branch, or None."""
    sarg = sargable_column(pred, table, bound_tables=pred.tables() - {table})
    if sarg is None:
        return None
    own = {c for c in pred.columns() if c.table == table}
    if own != {sarg[0]}:
        return None
    return sarg[0]


@rule_function("or_splittable")
def fn_or_splittable(
    ctx: "RuleContext", table: str | Stream, preds: frozenset[Predicate]
) -> tuple[Predicate, ...]:
    """Two-branch disjunctions whose branches are each sargable on the
    leading key column of some index of ``table`` — the candidates for
    the index OR-ing strategy (listed among the strategies the paper
    omitted for brevity)."""
    from repro.query.predicates import Disjunction

    tables = _stream_tables(table)
    if len(tables) != 1:
        return ()
    (name,) = tables
    if not ctx.catalog.has_table(name):
        return ()
    leading = {p.columns[0] for p in ctx.catalog.paths_for(name)}
    result = []
    for pred in sorted(preds, key=str):
        if not isinstance(pred, Disjunction) or len(pred.parts) != 2:
            continue
        columns = [_branch_sarg_column(part, name) for part in pred.parts]
        if all(c is not None and c.column in leading for c in columns):
            result.append(pred)
    return tuple(result)


@rule_function("and_splittable")
def fn_and_splittable(
    ctx: "RuleContext", table: str | Stream, preds: frozenset[Predicate]
) -> tuple[tuple[Predicate, Predicate], ...]:
    """Pairs of conjunct predicates each sargable on the leading key
    column of some index (on *different* columns) — candidates for the
    index AND-ing strategy (TID intersection)."""
    tables = _stream_tables(table)
    if len(tables) != 1:
        return ()
    (name,) = tables
    if not ctx.catalog.has_table(name):
        return ()
    leading = {p.columns[0] for p in ctx.catalog.paths_for(name)}
    candidates = []
    for pred in sorted(preds, key=str):
        column = _branch_sarg_column(pred, name)
        if column is not None and column.column in leading:
            candidates.append((pred, column.column))
    pairs = []
    for i, (p1, c1) in enumerate(candidates):
        for p2, c2 in candidates[i + 1 :]:
            if c1 != c2:
                pairs.append((p1, p2))
    return tuple(pairs)


@rule_function("pair_first")
def fn_pair_first(ctx: "RuleContext", pair) -> Predicate:
    return pair[0]


@rule_function("pair_second")
def fn_pair_second(ctx: "RuleContext", pair) -> Predicate:
    return pair[1]


@rule_function("left_branch")
def fn_left_branch(ctx: "RuleContext", disjunction) -> Predicate:
    return disjunction.parts[0]


@rule_function("right_branch")
def fn_right_branch(ctx: "RuleContext", disjunction) -> Predicate:
    return disjunction.parts[1]


@rule_function("pred_set")
def fn_pred_set(ctx: "RuleContext", pred: Predicate) -> frozenset[Predicate]:
    return frozenset([pred])


@rule_function("branch_indexes")
def fn_branch_indexes(
    ctx: "RuleContext", table: str | Stream, branch: Predicate
) -> tuple[AccessPath, ...]:
    """Indexes whose leading key column matches the branch's sargable
    column."""
    tables = _stream_tables(table)
    if len(tables) != 1:
        return ()
    (name,) = tables
    column = _branch_sarg_column(branch, name)
    if column is None:
        return ()
    return tuple(
        sorted(
            (p for p in ctx.catalog.paths_for(name) if p.columns[0] == column.column),
            key=lambda p: p.name,
        )
    )


@rule_function("sargable_on")
def fn_sargable_on(
    ctx: "RuleContext", preds: frozenset[Predicate], table: str | Stream
) -> frozenset[Predicate]:
    """Predicates usable as search arguments on a single table, treating
    other tables' columns as bound (sideways information passing)."""
    tables = _stream_tables(table)
    if len(tables) != 1:
        return frozenset()
    (name,) = tables
    return frozenset(
        p
        for p in preds
        if sargable_column(p, name, bound_tables=p.tables() - {name}) is not None
    )
