"""The STAR rule AST.

A STAR (paper section 2.2) "defines a named, parametrized object ... in
terms of one or more alternative definitions, each of which may have a
condition of applicability, and defines a plan by referencing one or more
LOLEPOPs or other STARs, specifying arguments for their parameters."

Notation mapping (paper section 4 → AST):

===============================  ==========================================
paper                            here
===============================  ==========================================
left square bracket              ``StarDef(exclusive=False)`` (inclusive)
left curly brace                 ``StarDef(exclusive=True)``
``IF <cond>``                    ``Alternative.condition``
``OTHERWISE``                    ``Alternative.otherwise = True``
``∀ s ∈ σ : ...``                ``ForAll(var, set_expr, term)``
``T1[site = s]``                 ``StarRef`` argument with ``RequiredSpec``
``where SP = ...``               ``StarDef.bindings``
===============================  ==========================================

Expressions inside rules (conditions, ``where`` bindings, arguments) are a
small functional language: parameters, constants, set literals/operators,
comparisons, boolean connectives, and calls into the function registry
(the paper's compiled "C functions", section 5).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.errors import RuleError

# ---------------------------------------------------------------------------
# Value expressions
# ---------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class RuleExpr:
    """Base class of rule value expressions."""


@dataclass(frozen=True, slots=True)
class Param(RuleExpr):
    """Reference to a STAR parameter, ``where`` binding, or ∀ variable."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True, slots=True)
class Const(RuleExpr):
    """A literal: number, string, boolean, or the empty set ``{}``."""

    value: object

    def __str__(self) -> str:
        if isinstance(self.value, frozenset) and not self.value:
            return "{}"
        if isinstance(self.value, str):
            return f"'{self.value}'"
        return str(self.value)


@dataclass(frozen=True, slots=True)
class Call(RuleExpr):
    """A call to a registry function: ``sortable_preds(P, T1, T2)``."""

    name: str
    args: tuple[RuleExpr, ...] = ()

    def __str__(self) -> str:
        return f"{self.name}({', '.join(str(a) for a in self.args)})"


@dataclass(frozen=True, slots=True)
class SetLiteral(RuleExpr):
    """A set display: ``{a, b, c}`` (elements are expressions)."""

    items: tuple[RuleExpr, ...] = ()

    def __str__(self) -> str:
        return "{" + ", ".join(str(i) for i in self.items) + "}"


@dataclass(frozen=True, slots=True)
class SetExpr(RuleExpr):
    """Set algebra: union ``|``, intersection ``&``, difference ``-``."""

    op: str
    left: RuleExpr
    right: RuleExpr

    def __post_init__(self) -> None:
        if self.op not in ("|", "&", "-"):
            raise RuleError(f"unknown set operator {self.op!r}")

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


@dataclass(frozen=True, slots=True)
class Compare(RuleExpr):
    """Comparison: ``==``, ``!=``, ``in``, ``<=`` (subset), ``<``, ``>``, ``>=``."""

    op: str
    left: RuleExpr
    right: RuleExpr

    def __post_init__(self) -> None:
        if self.op not in ("==", "!=", "in", "<=", "<", ">", ">="):
            raise RuleError(f"unknown comparison operator {self.op!r}")

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


@dataclass(frozen=True, slots=True)
class Logical(RuleExpr):
    """Boolean connective over conditions: ``and`` / ``or``."""

    op: str
    parts: tuple[RuleExpr, ...]

    def __post_init__(self) -> None:
        if self.op not in ("and", "or"):
            raise RuleError(f"unknown logical operator {self.op!r}")
        if len(self.parts) < 2:
            raise RuleError("logical expression needs two or more parts")

    def __str__(self) -> str:
        return "(" + f" {self.op} ".join(str(p) for p in self.parts) + ")"


@dataclass(frozen=True, slots=True)
class Negate(RuleExpr):
    """Boolean negation: ``not <cond>``."""

    part: RuleExpr

    def __str__(self) -> str:
        return f"(not {self.part})"


# ---------------------------------------------------------------------------
# Required properties on arguments
# ---------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class RequiredSpec:
    """The ``[square bracket]`` annotation on a stream argument.

    Each field is an unevaluated :class:`RuleExpr` (evaluated in the
    rule's environment at expansion time) or None when not required.
    """

    order: RuleExpr | None = None
    site: RuleExpr | None = None
    temp: bool = False
    paths: RuleExpr | None = None

    def is_empty(self) -> bool:
        return (
            self.order is None
            and self.site is None
            and not self.temp
            and self.paths is None
        )

    def __str__(self) -> str:
        parts = []
        if self.order is not None:
            parts.append(f"order = {self.order}")
        if self.site is not None:
            parts.append(f"site = {self.site}")
        if self.temp:
            parts.append("temp")
        if self.paths is not None:
            parts.append(f"paths >= {self.paths}")
        return f"[{', '.join(parts)}]"


# ---------------------------------------------------------------------------
# Terms: the plan-producing side of an alternative
# ---------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class Term:
    """Base class of plan-producing terms."""


@dataclass(frozen=True, slots=True)
class Argument:
    """One argument of a STAR/LOLEPOP reference: an expression or a nested
    term, optionally decorated with required properties."""

    value: "RuleExpr | Term"
    required: RequiredSpec | None = None

    def __str__(self) -> str:
        text = str(self.value)
        if self.required is not None and not self.required.is_empty():
            text += " " + str(self.required)
        return text


@dataclass(frozen=True, slots=True)
class StarRef(Term):
    """A reference to a STAR, to Glue, or to a LOLEPOP (terminals are
    "LOLEPOPs operating on constants", section 2.3 — the engine decides
    which of the three a name denotes)."""

    name: str
    args: tuple[Argument, ...] = ()
    #: LOLEPOP flavor when this reference is a flavored terminal
    #: (``JOIN(NL, ...)``); None otherwise.
    flavor: str | None = None

    def __str__(self) -> str:
        inner = ", ".join(str(a) for a in self.args)
        if self.flavor is not None:
            inner = f"{self.flavor}, {inner}" if inner else self.flavor
        return f"{self.name}({inner})"


@dataclass(frozen=True, slots=True)
class ForAll(Term):
    """``∀ var ∈ set : term`` — produce the union of the term's plans over
    every element of the set (section 2.2's IndexAccess example)."""

    var: str
    set_expr: RuleExpr
    term: "Term | RuleExpr"

    def __str__(self) -> str:
        return f"forall {self.var} in {self.set_expr}: {self.term}"


# ---------------------------------------------------------------------------
# STAR definitions and rule sets
# ---------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class Alternative:
    """One alternative definition of a STAR.

    ``term`` may also be a :class:`RuleExpr` (a :class:`Call`) when the
    referenced name's nature — STAR or registry function — is unknown at
    parse time; the engine resolves it (STARs take precedence).
    """

    term: Term | RuleExpr
    condition: RuleExpr | None = None
    otherwise: bool = False

    def __post_init__(self) -> None:
        if self.otherwise and self.condition is not None:
            raise RuleError("an OTHERWISE alternative cannot also have a condition")

    def __str__(self) -> str:
        if self.otherwise:
            return f"otherwise -> {self.term}"
        if self.condition is not None:
            return f"if {self.condition} -> {self.term}"
        return f"-> {self.term}"


@dataclass(frozen=True, slots=True)
class StarDef:
    """A named, parametrized STAR with alternative definitions.

    ``exclusive=True`` is the paper's curly brace (the first alternative
    whose condition holds is taken); ``False`` is the square bracket (all
    alternatives whose conditions hold contribute plans).
    """

    name: str
    params: tuple[str, ...]
    alternatives: tuple[Alternative, ...]
    exclusive: bool = False
    bindings: tuple[tuple[str, RuleExpr], ...] = ()

    def __post_init__(self) -> None:
        if not self.alternatives:
            raise RuleError(f"STAR {self.name} has no alternative definitions")
        if len(set(self.params)) != len(self.params):
            raise RuleError(f"STAR {self.name} has duplicate parameters")
        names = set(self.params)
        for bound, _ in self.bindings:
            if bound in names:
                raise RuleError(f"STAR {self.name}: binding {bound} shadows a name")
            names.add(bound)
        if self.exclusive:
            for alt in self.alternatives[:-1]:
                if alt.otherwise:
                    raise RuleError(
                        f"STAR {self.name}: OTHERWISE must be the last alternative"
                    )

    def __str__(self) -> str:
        mode = "exclusive" if self.exclusive else "inclusive"
        lines = [f"star {self.name}({', '.join(self.params)}) {mode} {{"]
        for name, expr in self.bindings:
            lines.append(f"  where {name} = {expr};")
        for alt in self.alternatives:
            if alt.otherwise:
                lines.append(f"  {alt};")
            else:
                lines.append(f"  alt {alt};")
        lines.append("}")
        return "\n".join(lines)


class RuleSet:
    """An ordered collection of STAR definitions.

    Supports the section-5 extension story: :meth:`extend` adds
    alternatives to an existing STAR (used to plug in the 4.5.x join
    methods as pure rule data), :meth:`add` defines new STARs.
    """

    def __init__(self, stars: tuple[StarDef, ...] = ()):
        self._stars: dict[str, StarDef] = {}
        #: Mutation counter: every add/replace/extend bumps it, which
        #: invalidates any compiled program cached for this rule set
        #: (see :mod:`repro.stars.compile`).
        self._version = 0
        for star in stars:
            self.add(star)

    def add(self, star: StarDef) -> None:
        if star.name in self._stars:
            raise RuleError(f"STAR {star.name} already defined")
        self._stars[star.name] = star
        self._version += 1

    def replace(self, star: StarDef) -> None:
        self._stars[star.name] = star
        self._version += 1

    def extend(self, name: str, extra: tuple[Alternative, ...],
               extra_bindings: tuple[tuple[str, RuleExpr], ...] = ()) -> None:
        """Append alternatives (and bindings) to an existing STAR."""
        star = self.get(name)
        self._stars[name] = StarDef(
            name=star.name,
            params=star.params,
            alternatives=star.alternatives + extra,
            exclusive=star.exclusive,
            bindings=star.bindings + extra_bindings,
        )
        self._version += 1

    def get(self, name: str) -> StarDef:
        try:
            return self._stars[name]
        except KeyError:
            raise RuleError(f"unknown STAR {name!r}") from None

    def has(self, name: str) -> bool:
        return name in self._stars

    def names(self) -> tuple[str, ...]:
        return tuple(self._stars)

    def __iter__(self) -> Iterator[StarDef]:
        return iter(self._stars.values())

    def __len__(self) -> int:
        return len(self._stars)

    def merged(self, other: "RuleSet") -> "RuleSet":
        """A new rule set with ``other``'s STARs added (no overlap allowed)."""
        result = RuleSet(tuple(self))
        for star in other:
            result.add(star)
        return result
