"""Bottom-up (System R style) join enumeration over the STAR engine.

The enumerator walks table subsets by increasing size.  For each feasible
subset it references the ``JoinRoot`` STAR once per unordered partition
into two previously-planned streams (JoinRoot itself generates both
permutations, section 4.1), passing the *newly* eligible predicates
(section 2.3).  Results land in the hashed plan table keyed on
``(TABLES, PREDS)``, where dominated alternatives are pruned — so shared
plan fragments are evaluated exactly once (E9).

"The default is to give preference to those streams having an eligible
join predicate linking them, as did System R and R*, but this can be
overridden to also consider Cartesian products" — the
``cartesian_products`` config flag.  ``composite_inners`` enables
plans like (A*B)*(C*D).
"""

from __future__ import annotations

from itertools import combinations

from repro.errors import OptimizationError
from repro.plans.sap import SAP, Stream
from repro.query.query import QueryBlock
from repro.stars.engine import StarEngine


class JoinEnumerator:
    """Drives JoinRoot bottom-up over all feasible table subsets."""

    def __init__(self, engine: StarEngine, join_root: str = "JoinRoot"):
        self._engine = engine
        self._join_root = join_root
        #: Number of JoinRoot references made (join pairs considered).
        self.pairs_considered = 0
        #: Subsets that could not be formed without a Cartesian product.
        self.subsets_skipped = 0

    def run(self) -> SAP:
        """Enumerate all join orders; returns the final SAP over all
        tables (also available from the plan table)."""
        ctx = self._engine.ctx
        query: QueryBlock = ctx.query
        tables = tuple(query.tables)
        config = ctx.config

        # Level 1: plans for every single table (AccessRoot via Glue).
        for table in tables:
            ctx.glue.resolve(Stream(frozenset([table])))

        if len(tables) == 1:
            only = frozenset([tables[0]])
            sap = ctx.plan_table.lookup(only, self._standard_preds(only))
            assert sap is not None
            return sap

        edges = query.join_graph_edges()
        feasible: set[frozenset[str]] = {frozenset([t]) for t in tables}

        for size in range(2, len(tables) + 1):
            for subset_tuple in combinations(tables, size):
                subset = frozenset(subset_tuple)
                if not config.cartesian_products and not _connected(subset, edges):
                    self.subsets_skipped += 1
                    continue
                plans = []
                for left, right in self._partitions(subset, feasible, config):
                    eligible = query.eligible_predicates(left, right)
                    if not eligible and not config.cartesian_products:
                        continue
                    self.pairs_considered += 1
                    sap = self._engine.expand(
                        self._join_root, (Stream(left), Stream(right), eligible)
                    )
                    plans.extend(sap)
                if not plans:
                    if config.cartesian_products or _connected(subset, edges):
                        # Connected but no partition produced plans: every
                        # split was infeasible (e.g. composite inners off
                        # and no single-table split linked by a predicate).
                        self.subsets_skipped += 1
                    continue
                feasible.add(subset)
                ctx.plan_table.insert(subset, self._standard_preds(subset), plans)

        final = frozenset(tables)
        sap = ctx.plan_table.lookup(final, self._standard_preds(final))
        if sap is None or not sap:
            raise OptimizationError(
                f"no plan joins all tables {sorted(final)}; enable "
                "cartesian_products if the join graph is disconnected"
            )
        return sap

    # -- helpers -------------------------------------------------------------

    def _standard_preds(self, tables: frozenset[str]):
        query = self._engine.ctx.query
        return frozenset(
            p for p in query.predicates if p.tables() and p.tables() <= tables
        )

    def _partitions(self, subset: frozenset[str], feasible, config):
        """Unordered partitions of ``subset`` into two feasible streams.

        The partition is anchored on an arbitrary fixed element so each
        unordered pair is produced once; JoinRoot handles permutation.
        """
        members = sorted(subset)
        anchor = members[0]
        rest = members[1:]
        for take in range(0, len(rest) + 1):
            for chosen in combinations(rest, take):
                left = frozenset((anchor, *chosen))
                right = subset - left
                if not right:
                    continue
                if left not in feasible or right not in feasible:
                    continue
                if not config.composite_inners and len(left) > 1 and len(right) > 1:
                    continue
                yield left, right


def _connected(subset: frozenset[str], edges: frozenset[frozenset[str]]) -> bool:
    """Is the join graph restricted to ``subset`` connected?"""
    if len(subset) <= 1:
        return True
    nodes = set(subset)
    start = next(iter(nodes))
    seen = {start}
    frontier = [start]
    while frontier:
        node = frontier.pop()
        for edge in edges:
            if node in edge and edge <= subset:
                for other in edge:
                    if other not in seen:
                        seen.add(other)
                        frontier.append(other)
    return seen == nodes
