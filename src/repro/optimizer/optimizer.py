"""The public optimizer facade.

:class:`StarburstOptimizer` ties the pieces together: parse (or accept) a
query block, spin up a fresh STAR engine (rules + registry + plan table),
enumerate joins bottom-up, and deliver the result stream with the query's
required properties (ORDER BY via SORT, result site via SHIP) through one
final Glue reference.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.catalog.catalog import Catalog
from repro.config import OptimizerConfig
from repro.cost.model import CostModel, CostWeights
from repro.errors import GlueError, OptimizationError, ReproError
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer, active_tracer
from repro.optimizer.enumerator import JoinEnumerator
from repro.plans.plan import PlanNode
from repro.plans.properties import Requirements
from repro.plans.sap import SAP, Stream
from repro.query.parser import parse_query
from repro.query.query import QueryBlock
from repro.robust.budget import BudgetExhausted, OptimizerBudget
from repro.robust.fallback import heuristic_plan
from repro.stars.ast import RuleSet
from repro.stars.builtin_rules import extended_rules
from repro.stars.compile import compile_rules
from repro.stars.engine import ExpansionStats, StarEngine
from repro.stars.plantable import PlanTableStats
from repro.stars.registry import FunctionRegistry, default_registry
from repro.stars.validate import validate_rules


@dataclass
class OptimizationResult:
    """Everything one optimization produced."""

    query: QueryBlock
    best_plan: PlanNode
    alternatives: SAP
    stats: ExpansionStats
    plan_table_stats: PlanTableStats
    pairs_considered: int
    elapsed_seconds: float
    engine: StarEngine
    #: True when the optimization budget died before the search finished;
    #: ``best_plan`` is then the best *anytime* answer, never an error.
    budget_exhausted: bool = False
    #: True when even the anytime answer needed the search-free greedy
    #: fallback (no complete plan existed when the budget died).
    heuristic_fallback: bool = False

    @property
    def best_cost(self) -> float:
        return self.engine.ctx.model.total(self.best_plan.props.cost)

    def explain(self) -> str:
        """Human-readable summary: the chosen plan and where it came from."""
        from repro.plans.plan import render_tree

        lines = [
            f"query: {self.query}",
            f"alternatives surviving: {len(self.alternatives)}",
        ]
        if self.budget_exhausted:
            lines.append(
                "optimization budget exhausted — anytime plan"
                + (" (heuristic fallback)" if self.heuristic_fallback else "")
            )
        lines += [
            f"estimated cost: {self.best_cost:.1f} "
            f"({self.best_plan.props.cost})",
            f"estimated cardinality: {self.best_plan.props.card:.1f}",
            "chosen plan:",
            render_tree(self.best_plan, show_properties=True),
        ]
        trace = self.engine.trace()
        if trace:
            lines.append("expansion trace:")
            lines.append(trace)
        return "\n".join(lines)


class StarburstOptimizer:
    """Rule-driven query optimizer in the style of Starburst.

    >>> optimizer = StarburstOptimizer(catalog)
    >>> result = optimizer.optimize("SELECT * FROM EMP WHERE ENO = 7")
    >>> print(result.explain())

    ``rules`` defaults to the paper's full repertoire (sections 4.1-4.5).
    The rule set is validated once at construction — an invalid set fails
    fast, not mid-optimization.
    """

    def __init__(
        self,
        catalog: Catalog,
        rules: RuleSet | None = None,
        registry: FunctionRegistry | None = None,
        config: OptimizerConfig | None = None,
        weights: CostWeights | None = None,
        tracer: Tracer | None = None,
        metrics: MetricsRegistry | None = None,
        budget: OptimizerBudget | None = None,
        feedback=None,
    ):
        self.catalog = catalog
        self.rules = rules if rules is not None else extended_rules()
        self.registry = registry if registry is not None else default_registry()
        self.config = config if config is not None else OptimizerConfig()
        self.weights = weights
        #: Structured observability, threaded into every engine this
        #: optimizer spins up (None = disabled = zero overhead).
        self.tracer = active_tracer(tracer)
        self.metrics = metrics
        #: Optional OptimizerBudget, reset at the start of every
        #: :meth:`optimize` call; on exhaustion the search stops and the
        #: best anytime plan is returned — optimize never raises for this.
        self.budget = budget
        #: Optional FeedbackCache consulted by the selectivity estimator —
        #: the adaptive executor installs one here so re-optimizations see
        #: runtime-observed cardinalities.
        self.feedback = feedback
        validate_rules(self.rules, self.registry, raise_on_error=True)
        #: Compiled closures for the rule set, built exactly once here at
        #: validate time (and cached on the RuleSet), so the per-optimize
        #: engines never pay compile cost — they fetch the same program.
        self.compiled = (
            compile_rules(self.rules, self.registry)
            if self.config.compile_stars
            else None
        )

    def optimize(self, query: QueryBlock | str) -> OptimizationResult:
        """Optimize a query block (or SQL text) into its best plan."""
        if isinstance(query, str):
            query = parse_query(query, self.catalog)
        started = time.perf_counter()
        result_site = query.result_site or self.catalog.query_site
        avoided = frozenset(self.config.avoid_sites) | self.catalog.down_sites()
        if result_site in avoided:
            raise OptimizationError(
                f"result site {result_site} is down or avoided; "
                f"no plan can deliver the result"
            )
        model = CostModel(self.catalog, self.weights)
        if self.budget is not None:
            self.budget.reset()
        engine = StarEngine(
            rules=self.rules,
            catalog=self.catalog,
            query=query,
            registry=self.registry,
            config=self.config,
            model=model,
            tracer=self.tracer,
            metrics=self.metrics,
            budget=self.budget,
            feedback=self.feedback,
        )
        tracer = engine.tracer
        span = None
        if tracer is not None:
            span = tracer.begin("optimizer", "optimize", query=str(query))
        requirements = Requirements(
            order=query.required_order() or None,
            site=result_site,
        )
        budget_exhausted = False
        heuristic_fallback = False
        enumerator = JoinEnumerator(engine)
        try:
            enumerator.run()
            final_stream = Stream(query.table_set, requirements)
            alternatives = engine.ctx.glue.resolve(final_stream)
        except BudgetExhausted as exc:
            budget_exhausted = True
            try:
                alternatives, heuristic_fallback = self._anytime(
                    engine, query, requirements, exc
                )
            except OptimizationError:
                if tracer is not None:
                    tracer.end(span, failed=True)
                raise
        except OptimizationError:
            if tracer is not None:
                tracer.end(span, failed=True)
            raise
        except (GlueError, ReproError) as exc:
            if tracer is not None:
                tracer.end(span, failed=True)
            # Surface how much search had happened when optimization died
            # — the diagnostics a DBC needs to see whether rules fired at
            # all or pruning starved the plan table.  Both stat blocks go
            # through the shared metrics-snapshot schema.
            raise OptimizationError(
                f"optimization failed for query {query}: {exc}",
                expansion_stats=engine.stats.as_dict(),
                plan_table_stats=engine.plan_table.stats.as_dict(),
            ) from exc
        best = alternatives.cheapest(engine.ctx.model)
        if best is None:
            if tracer is not None:
                tracer.end(span, failed=True)
            raise OptimizationError(
                f"no plan produced for query {query}",
                expansion_stats=engine.stats.as_dict(),
                plan_table_stats=engine.plan_table.stats.as_dict(),
            )
        elapsed = time.perf_counter() - started
        if tracer is not None:
            tracer.end(
                span,
                plans=len(alternatives),
                cost=round(engine.ctx.model.total(best.props.cost), 3),
                budget_exhausted=budget_exhausted,
            )
        if self.metrics is not None:
            self.metrics.ingest(engine.stats.as_dict(), prefix="optimizer.")
            self.metrics.ingest(
                engine.plan_table.stats.as_dict(), prefix="plantable."
            )
            if engine.memo is not None:
                self.metrics.ingest(engine.memo.stats.as_dict(), prefix="memo.")
            interner = engine.ctx.factory.interner
            if interner is not None:
                self.metrics.ingest(interner.stats.as_dict(), prefix="intern.")
            if engine.compiled is not None:
                self.metrics.ingest(
                    engine.compiled.stats.as_dict(), prefix="compile."
                )
            self.metrics.observe(
                "optimizer.elapsed_seconds", elapsed
            )
            if self.budget is not None:
                self.metrics.ingest(self.budget.as_dict(), prefix="budget.")
        return OptimizationResult(
            query=query,
            best_plan=best,
            alternatives=alternatives,
            stats=engine.stats,
            plan_table_stats=engine.plan_table.stats,
            pairs_considered=enumerator.pairs_considered,
            elapsed_seconds=elapsed,
            engine=engine,
            budget_exhausted=budget_exhausted,
            heuristic_fallback=heuristic_fallback,
        )

    def optimize_heuristic(self, query: QueryBlock | str) -> OptimizationResult:
        """The search-free greedy plan, packaged like an optimization.

        Builds the engine context (rules validated, factory, cost model)
        but references no STAR at all — the plan is
        :func:`~repro.robust.fallback.heuristic_plan`'s greedy left-deep
        chain over primary access paths.  This is the serving layer's
        deepest *computed* degradation tier: O(tables² · predicates)
        regardless of load, never charged against any budget.
        """
        if isinstance(query, str):
            query = parse_query(query, self.catalog)
        started = time.perf_counter()
        result_site = query.result_site or self.catalog.query_site
        avoided = frozenset(self.config.avoid_sites) | self.catalog.down_sites()
        if result_site in avoided:
            raise OptimizationError(
                f"result site {result_site} is down or avoided; "
                f"no plan can deliver the result"
            )
        model = CostModel(self.catalog, self.weights)
        engine = StarEngine(
            rules=self.rules,
            catalog=self.catalog,
            query=query,
            registry=self.registry,
            config=self.config,
            model=model,
            tracer=self.tracer,
            metrics=self.metrics,
            feedback=self.feedback,
        )
        requirements = Requirements(
            order=query.required_order() or None,
            site=result_site,
        )
        tracer = engine.tracer
        span = None
        if tracer is not None:
            span = tracer.begin(
                "optimizer", "optimize_heuristic", query=str(query)
            )
        try:
            plan = heuristic_plan(engine.ctx, query, requirements)
        except OptimizationError:
            if tracer is not None:
                tracer.end(span, failed=True)
            raise
        alternatives = SAP([plan])
        elapsed = time.perf_counter() - started
        if tracer is not None:
            tracer.end(
                span, cost=round(model.total(plan.props.cost), 3)
            )
        if self.metrics is not None:
            self.metrics.inc("optimizer.heuristic_plans")
            self.metrics.observe("optimizer.elapsed_seconds", elapsed)
        return OptimizationResult(
            query=query,
            best_plan=plan,
            alternatives=alternatives,
            stats=engine.stats,
            plan_table_stats=engine.plan_table.stats,
            pairs_considered=0,
            elapsed_seconds=elapsed,
            engine=engine,
            budget_exhausted=False,
            heuristic_fallback=True,
        )

    def _anytime(
        self,
        engine: StarEngine,
        query: QueryBlock,
        requirements: Requirements,
        exhausted: BudgetExhausted,
    ) -> tuple[SAP, bool]:
        """Assemble the best answer available when the budget dies.

        With charging suspended, first let Glue deliver the final stream
        from whatever the plan table already holds (partial search often
        has complete plans for the full table set); only when no complete
        plan exists fall back to the search-free greedy heuristic.  Either
        way the caller gets a runnable plan — exhaustion never raises.
        """
        ctx = engine.ctx
        tracer = engine.tracer
        with ctx.budget.suspend():
            alternatives = SAP()
            try:
                alternatives = ctx.glue.resolve(
                    Stream(query.table_set, requirements)
                )
            except (GlueError, ReproError):
                alternatives = SAP()
            heuristic = alternatives.cheapest(ctx.model) is None
            if heuristic:
                alternatives = SAP([heuristic_plan(ctx, query, requirements)])
        if tracer is not None:
            tracer.instant(
                "robust", "budget_exhausted",
                reason=ctx.budget.exhausted_reason or str(exhausted),
                heuristic=heuristic,
                plans=len(alternatives),
            )
        if self.metrics is not None:
            self.metrics.inc("budget.exhaustions")
            if heuristic:
                self.metrics.inc("budget.heuristic_fallbacks")
        return alternatives, heuristic
