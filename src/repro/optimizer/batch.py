"""Parallel batch optimization: many queries, many worker processes.

The north star says the reproduction should "serve heavy traffic" — an
optimizer that plans one query at a time on one core does not.  This
driver fans a batch of queries out over a process pool:

* **Picklable inputs.**  Workers are primed once per process with the
  catalog, rule set, config and cost weights (all plain dataclasses);
  queries travel as :class:`~repro.query.query.QueryBlock`s or SQL text.
* **Per-query isolation.**  Each ``optimize`` call spins up a fresh
  :class:`~repro.stars.engine.StarEngine`, so the STAR memo, plan
  interner, plan table and budget counters are never shared between
  queries — a property the memoization-correctness tests pin down.
* **Deterministic results.**  Output order matches input order whatever
  the scheduling; a failed query yields a :class:`BatchResult` carrying
  the error instead of poisoning the batch.

``workers <= 1`` runs inline (no pool, no pickling) — the same code path
the benchmarks use as the serial baseline.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field, replace

from repro.catalog.catalog import Catalog
from repro.config import OptimizerConfig
from repro.cost.model import CostWeights
from repro.errors import ReproError
from repro.plans.plan import PlanNode
from repro.query.query import QueryBlock
from repro.query.template import PlanKey, query_key
from repro.robust.budget import OptimizerBudget
from repro.stars.ast import RuleSet


@dataclass(frozen=True)
class BatchSpec:
    """Everything a worker needs to rebuild the optimizer (picklable)."""

    catalog: Catalog
    rules: RuleSet | None = None
    config: OptimizerConfig | None = None
    weights: CostWeights | None = None
    budget: OptimizerBudget | None = None


@dataclass
class BatchResult:
    """The outcome of optimizing one query of a batch."""

    index: int
    query: str
    ok: bool
    best_plan: PlanNode | None = None
    best_cost: float = 0.0
    plan_digest: str = ""
    alternatives: int = 0
    elapsed_seconds: float = 0.0
    expansion_stats: dict[str, float] = field(default_factory=dict)
    plan_table_stats: dict[str, float] = field(default_factory=dict)
    memo_stats: dict[str, float] = field(default_factory=dict)
    budget_exhausted: bool = False
    heuristic_fallback: bool = False
    #: True when this result was copied from an identical query earlier
    #: in the batch (``optimize_many(dedup=True)``) instead of optimized.
    deduped: bool = False
    error: str | None = None

    def as_dict(self) -> dict:
        """JSON-ready summary (plan omitted; its digest identifies it)."""
        return {
            "index": self.index,
            "query": self.query,
            "ok": self.ok,
            "best_cost": self.best_cost,
            "plan_digest": self.plan_digest,
            "alternatives": self.alternatives,
            "elapsed_seconds": self.elapsed_seconds,
            "budget_exhausted": self.budget_exhausted,
            "heuristic_fallback": self.heuristic_fallback,
            "deduped": self.deduped,
            "error": self.error,
        }


#: Per-process optimizer, built once by :func:`_init_worker` so repeated
#: queries in one worker amortize rule validation and catalog setup.
_WORKER_OPTIMIZER = None


def _build_optimizer(spec: BatchSpec):
    from repro.optimizer.optimizer import StarburstOptimizer

    return StarburstOptimizer(
        spec.catalog,
        rules=spec.rules,
        config=spec.config,
        weights=spec.weights,
        budget=spec.budget,
    )


def _init_worker(spec: BatchSpec) -> None:
    global _WORKER_OPTIMIZER
    _WORKER_OPTIMIZER = _build_optimizer(spec)


def _optimize_one(payload: tuple[int, QueryBlock | str]) -> BatchResult:
    index, query = payload
    return _run_query(_WORKER_OPTIMIZER, index, query)


def _run_query(optimizer, index: int, query: QueryBlock | str) -> BatchResult:
    started = time.perf_counter()
    try:
        result = optimizer.optimize(query)
    except ReproError as exc:
        return BatchResult(
            index=index,
            query=str(query),
            ok=False,
            elapsed_seconds=time.perf_counter() - started,
            error=str(exc),
        )
    return BatchResult(
        index=index,
        query=str(result.query),
        ok=True,
        best_plan=result.best_plan,
        best_cost=result.best_cost,
        plan_digest=result.best_plan.digest,
        alternatives=len(result.alternatives),
        elapsed_seconds=time.perf_counter() - started,
        expansion_stats=result.stats.as_dict(),
        plan_table_stats=result.plan_table_stats.as_dict(),
        memo_stats=(
            result.engine.memo.stats.as_dict()
            if result.engine.memo is not None
            else {}
        ),
        budget_exhausted=result.budget_exhausted,
        heuristic_fallback=result.heuristic_fallback,
    )


def _dedup_plan(
    catalog: Catalog, queries: list[QueryBlock | str]
) -> tuple[list[tuple[int, QueryBlock | str]], dict[int, int]]:
    """Split a batch into unique payloads and a clone → original map.

    Queries sharing the exact canonical (TABLES, PREDS) key (the shared
    :func:`repro.query.template.query_key` — table/predicate order never
    matters) are provably the same optimization problem; only the first
    of each class is optimized, the rest copy its result.  SQL text is
    parsed once here so string and block spellings of one query dedup
    together; the parsed block is what travels to the worker.
    """
    from repro.query.parser import parse_query

    unique: list[tuple[int, QueryBlock | str]] = []
    clones: dict[int, int] = {}
    first_for_key: dict[PlanKey, int] = {}
    for index, query in enumerate(queries):
        block = parse_query(query, catalog) if isinstance(query, str) else query
        key = query_key(block)
        original = first_for_key.get(key)
        if original is None:
            first_for_key[key] = index
            unique.append((index, block))
        else:
            clones[index] = original
    return unique, clones


def optimize_many(
    catalog: Catalog,
    queries: list[QueryBlock | str],
    rules: RuleSet | None = None,
    config: OptimizerConfig | None = None,
    weights: CostWeights | None = None,
    budget: OptimizerBudget | None = None,
    workers: int = 1,
    dedup: bool = False,
) -> list[BatchResult]:
    """Optimize every query of ``queries``; results in input order.

    ``workers`` > 1 distributes the batch over a process pool (each
    worker primes one optimizer and serves queries off the shared queue);
    otherwise the batch runs inline.  Either way query *i*'s result is at
    position *i* and each optimization is fully isolated — memo, interner,
    plan table and budget state live and die with its engine.

    ``dedup`` optimizes each exact (TABLES, PREDS) equivalence class once
    and fans the result out to its duplicates (marked ``deduped``) — the
    batch-side counterpart of the serving layer's plan-template cache.
    """
    spec = BatchSpec(
        catalog=catalog, rules=rules, config=config, weights=weights,
        budget=budget,
    )
    if dedup:
        payloads, clones = _dedup_plan(catalog, queries)
    else:
        payloads, clones = list(enumerate(queries)), {}
    if workers <= 1 or len(payloads) <= 1:
        optimizer = _build_optimizer(spec)
        results = [_run_query(optimizer, i, q) for i, q in payloads]
    else:
        with ProcessPoolExecutor(
            max_workers=min(workers, len(payloads)),
            initializer=_init_worker,
            initargs=(spec,),
        ) as pool:
            # ``map`` preserves input order; chunksize 1 keeps long queries
            # from serializing behind each other in one worker's chunk.
            results = list(pool.map(_optimize_one, payloads, chunksize=1))
    if not clones:
        return results
    by_index = {r.index: r for r in results}
    for clone_index, original_index in clones.items():
        by_index[clone_index] = replace(
            by_index[original_index],
            index=clone_index,
            deduped=True,
            elapsed_seconds=0.0,
        )
    return [by_index[i] for i in range(len(queries))]
