"""The optimizer: bottom-up join enumeration driving the STAR engine.

Section 2.3: "For any given SQL query, we build plans bottom up, first
referencing the AccessRoot STAR to build plans to access individual
tables, and then repeatedly referencing the JoinRoot STAR to join plans
that were generated earlier, until all tables have been joined."
"""

from repro.optimizer.batch import BatchResult, BatchSpec, optimize_many
from repro.optimizer.enumerator import JoinEnumerator
from repro.optimizer.optimizer import OptimizationResult, StarburstOptimizer

__all__ = [
    "BatchResult",
    "BatchSpec",
    "JoinEnumerator",
    "OptimizationResult",
    "StarburstOptimizer",
    "optimize_many",
]
