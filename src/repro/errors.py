"""Exception hierarchy for the STARs reproduction.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still being able to distinguish the subsystem that failed.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class CatalogError(ReproError):
    """A catalog lookup or registration failed (unknown table, duplicate
    definition, unknown column, unknown site, ...)."""


class StorageError(ReproError):
    """A storage-manager operation failed (bad RID, schema mismatch,
    duplicate key in a unique index, ...)."""


class QueryError(ReproError):
    """A query is malformed (unknown table or column, type mismatch in a
    predicate, unsupported construct, ...)."""


class ParseError(QueryError):
    """Raised by the SQL parser and the STAR DSL parser on invalid input.

    Carries the offending line and column so a Database Customizer can fix
    the rule text.
    """

    def __init__(self, message: str, line: int | None = None, column: int | None = None):
        self.line = line
        self.column = column
        if line is not None:
            message = f"{message} (line {line}, column {column})"
        super().__init__(message)


class RuleError(ReproError):
    """A STAR rule set is invalid: undefined STAR reference, arity
    mismatch, cyclic definition, unknown condition function, ..."""


class ExpansionError(ReproError):
    """STAR expansion failed at optimization time (e.g. a rule referenced
    an unbound parameter, or recursion exceeded the safety limit)."""


class GlueError(ReproError):
    """Glue could not satisfy a set of required properties."""


class OptimizationError(ReproError):
    """The optimizer could not produce any plan for a query.

    When raised by :meth:`StarburstOptimizer.optimize`, carries the
    expansion statistics and plan-table statistics of the failed
    optimization (``expansion_stats`` / ``plan_table_stats``) so that
    "no plan produced" failures are debuggable: the counters show how far
    the search got before it came up empty.
    """

    def __init__(self, message: str, *, expansion_stats=None, plan_table_stats=None):
        self.expansion_stats = expansion_stats
        self.plan_table_stats = plan_table_stats
        details = []
        if expansion_stats is not None:
            details.append(f"expansion: {expansion_stats}")
        if plan_table_stats is not None:
            details.append(f"plan table: {plan_table_stats}")
        if details:
            message = f"{message} [{'; '.join(details)}]"
        super().__init__(message)


class ExecutionError(ReproError):
    """The query evaluator failed while interpreting a plan."""


class BackendError(ReproError):
    """A plan-compilation backend failed (malformed plan, missing TID
    stream, emitted artifact rejected by the target engine, ...)."""


class UnsupportedPlanError(BackendError):
    """A backend cannot lower this plan shape.

    This is the *expected* escape hatch, not a bug: backends declare a
    supported subset (see ``docs/backends.md``) and callers fall back to
    the in-process engines for everything else.  Carries the offending
    operator/reason so coverage reports can aggregate why plans fell
    back."""

    def __init__(self, reason: str, op: str | None = None):
        self.reason = reason
        self.op = op
        message = reason if op is None else f"{op}: {reason}"
        super().__init__(message)


class CardinalityViolation(ExecutionError):
    """A runtime cardinality checkpoint tripped: the actual row count at a
    materialization point diverged from the property vector's CARD by more
    than the configured Q-error threshold.  Carries everything the
    adaptive loop needs to re-optimize: the violated equivalence class,
    both cardinalities, and (attached by the executor before the exception
    escapes) the partial :class:`~repro.executor.runtime.ExecutionStats`
    of the aborted attempt."""

    def __init__(
        self,
        label: str,
        tables: frozenset,
        preds: frozenset,
        estimated: float,
        actual: float,
        q: float,
        threshold: float,
    ):
        super().__init__(
            f"cardinality checkpoint at {label} over {sorted(tables)}: "
            f"estimated {estimated:.1f} row(s), observed {actual:.0f} "
            f"(Q-error {q:.1f} > threshold {threshold:.1f})"
        )
        self.label = label
        self.tables = tables
        self.preds = preds
        self.estimated = estimated
        self.actual = actual
        self.q = q
        self.threshold = threshold
        #: Filled by the executor when the violation aborts a running plan.
        self.partial_stats = None


class NetworkError(ExecutionError):
    """A failure of the simulated distributed system (site or link)."""


class SiteUnavailableError(NetworkError):
    """A site of the simulated distributed system is down (permanent for
    the current execution; plan failover may route around it)."""

    def __init__(self, site: str, message: str | None = None):
        self.site = site
        super().__init__(message or f"site {site} is unavailable")


class LinkError(NetworkError):
    """A site-to-site link failed permanently (scheduled outage, or a
    transfer whose bounded retries were exhausted)."""

    def __init__(self, from_site: str, to_site: str, message: str | None = None):
        self.from_site = from_site
        self.to_site = to_site
        super().__init__(message or f"link {from_site}->{to_site} is down")


class TransientNetworkError(LinkError):
    """One transfer attempt failed transiently; the sender may retry
    (with backoff) up to its :class:`~repro.executor.chaos.RetryPolicy`."""

    def __init__(self, from_site: str, to_site: str, message: str | None = None):
        super().__init__(
            from_site,
            to_site,
            message or f"transient failure on link {from_site}->{to_site}",
        )
