"""Exception hierarchy for the STARs reproduction.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still being able to distinguish the subsystem that failed.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class CatalogError(ReproError):
    """A catalog lookup or registration failed (unknown table, duplicate
    definition, unknown column, unknown site, ...)."""


class StorageError(ReproError):
    """A storage-manager operation failed (bad RID, schema mismatch,
    duplicate key in a unique index, ...)."""


class QueryError(ReproError):
    """A query is malformed (unknown table or column, type mismatch in a
    predicate, unsupported construct, ...)."""


class ParseError(QueryError):
    """Raised by the SQL parser and the STAR DSL parser on invalid input.

    Carries the offending line and column so a Database Customizer can fix
    the rule text.
    """

    def __init__(self, message: str, line: int | None = None, column: int | None = None):
        self.line = line
        self.column = column
        if line is not None:
            message = f"{message} (line {line}, column {column})"
        super().__init__(message)


class RuleError(ReproError):
    """A STAR rule set is invalid: undefined STAR reference, arity
    mismatch, cyclic definition, unknown condition function, ..."""


class ExpansionError(ReproError):
    """STAR expansion failed at optimization time (e.g. a rule referenced
    an unbound parameter, or recursion exceeded the safety limit)."""


class GlueError(ReproError):
    """Glue could not satisfy a set of required properties."""


class OptimizationError(ReproError):
    """The optimizer could not produce any plan for a query."""


class ExecutionError(ReproError):
    """The query evaluator failed while interpreting a plan."""
