"""Schema descriptors: columns, tables, access paths, and sites.

All descriptors are immutable dataclasses so they can be stored inside the
frozen property vectors of plans (the ``PATHS`` property is a set of
:class:`AccessPath`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import CatalogError

COLUMN_TYPES = ("int", "float", "str")

#: Default byte width per column type, used for row-size estimation.
_TYPE_WIDTHS = {"int": 4, "float": 8, "str": 16}

#: Storage-manager kinds understood by ``TableAccess`` (paper section 4.5.2,
#: after [LIND 87]): a physically-sequential heap or a B-tree organization.
STORAGE_KINDS = ("heap", "btree")


@dataclass(frozen=True, slots=True)
class ColumnDef:
    """One column of a stored table."""

    name: str
    ctype: str = "int"
    width: int | None = None
    nullable: bool = False

    def __post_init__(self) -> None:
        if self.ctype not in COLUMN_TYPES:
            raise CatalogError(f"unknown column type {self.ctype!r} for {self.name}")

    @property
    def byte_width(self) -> int:
        """Estimated storage width in bytes."""
        if self.width is not None:
            return self.width
        return _TYPE_WIDTHS[self.ctype]


@dataclass(frozen=True, slots=True)
class AccessPath:
    """An access path (index or base-table organization) on a table.

    Matches the ``PATHS`` property of Figure 2: "set of available access
    paths on (set of) tables, each element an ordered list of columns".

    ``columns`` is the ordered key: the paper's prefix test
    ``order ⊑ a`` (section 2.1) asks whether a required order's columns are
    a prefix of ``columns``.
    """

    name: str
    table: str
    columns: tuple[str, ...]
    kind: str = "btree"
    unique: bool = False
    clustered: bool = False

    def __post_init__(self) -> None:
        if not self.columns:
            raise CatalogError(f"access path {self.name} must have key columns")
        if self.kind not in ("btree",):
            raise CatalogError(f"unknown access path kind {self.kind!r}")

    def provides_order_prefix(self, order_columns: tuple[str, ...]) -> bool:
        """The paper's ``order ⊑ a`` test: is ``order_columns`` a prefix of
        this path's key columns?"""
        if len(order_columns) > len(self.columns):
            return False
        return tuple(self.columns[: len(order_columns)]) == tuple(order_columns)

    def __str__(self) -> str:
        flags = []
        if self.unique:
            flags.append("unique")
        if self.clustered:
            flags.append("clustered")
        suffix = f" [{', '.join(flags)}]" if flags else ""
        return f"{self.name}({self.table}: {', '.join(self.columns)}){suffix}"


@dataclass(frozen=True, slots=True)
class TableDef:
    """A stored base table.

    ``storage`` selects the storage-manager flavor (section 4.5.2): a
    ``heap`` is scanned physically sequentially and stores tuples in no
    particular order; a ``btree`` table is stored ordered on ``key``.
    ``site`` is the node of the (simulated) distributed system holding the
    table (section 4.2, after R*).
    """

    name: str
    columns: tuple[ColumnDef, ...]
    site: str = "local"
    storage: str = "heap"
    key: tuple[str, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if self.storage not in STORAGE_KINDS:
            raise CatalogError(f"unknown storage kind {self.storage!r} for {self.name}")
        names = [c.name for c in self.columns]
        if len(set(names)) != len(names):
            raise CatalogError(f"duplicate column names in table {self.name}")
        if self.storage == "btree" and not self.key:
            raise CatalogError(f"btree table {self.name} needs a key")
        for col in self.key:
            if col not in names:
                raise CatalogError(f"key column {col} not in table {self.name}")

    @property
    def column_names(self) -> tuple[str, ...]:
        return tuple(c.name for c in self.columns)

    def column(self, name: str) -> ColumnDef:
        for col in self.columns:
            if col.name == name:
                return col
        raise CatalogError(f"table {self.name} has no column {name!r}")

    def has_column(self, name: str) -> bool:
        return any(c.name == name for c in self.columns)

    def row_width(self, columns: tuple[str, ...] | None = None) -> int:
        """Estimated bytes per tuple (optionally for a column subset)."""
        names = columns if columns is not None else self.column_names
        return sum(self.column(n).byte_width for n in names)


@dataclass(frozen=True, slots=True)
class SiteDef:
    """A node of the simulated distributed system.

    ``cpu_factor`` scales CPU cost at this site, which lets a benchmark
    model the paper's remark that "if a site with a particularly efficient
    join engine were available, then that site could easily be added"
    (section 4.2).
    """

    name: str
    cpu_factor: float = 1.0

    def __post_init__(self) -> None:
        if self.cpu_factor <= 0:
            raise CatalogError(f"site {self.name}: cpu_factor must be positive")
