"""The system catalog object.

A :class:`Catalog` is pure metadata: schemas, access paths, sites and
statistics.  Stored data lives in :class:`repro.storage.table.Database`,
which wraps a catalog.  The optimizer consults only the catalog; the query
evaluator consults the database.
"""

from __future__ import annotations

from typing import Iterable

from repro.catalog.schema import AccessPath, ColumnDef, SiteDef, TableDef
from repro.catalog.statistics import ColumnStats, TableStats
from repro.errors import CatalogError
from repro.query.expressions import ColumnRef

DEFAULT_PAGE_SIZE = 4096

#: Name suffix for the synthesized access path describing a B-tree-organized
#: base table (its primary organization is itself an ordered path).
PRIMARY_PATH_SUFFIX = "__primary"


class Catalog:
    """Registry of tables, access paths, sites and statistics."""

    def __init__(self, query_site: str = "local", page_size: int = DEFAULT_PAGE_SIZE):
        self._tables: dict[str, TableDef] = {}
        self._paths: dict[str, dict[str, AccessPath]] = {}
        self._sites: dict[str, SiteDef] = {SiteDef(query_site).name: SiteDef(query_site)}
        self._table_stats: dict[str, TableStats] = {}
        self._column_stats: dict[tuple[str, str], ColumnStats] = {}
        self._replicas: dict[str, set[str]] = {}
        self._down_sites: set[str] = set()
        self.query_site = query_site
        self.page_size = page_size

    # -- registration -------------------------------------------------------

    def add_site(self, site: SiteDef | str) -> SiteDef:
        """Register a site (by descriptor or name); returns the descriptor."""
        if isinstance(site, str):
            site = SiteDef(site)
        self._sites[site.name] = site
        return site

    def add_table(self, table: TableDef, stats: TableStats | None = None) -> TableDef:
        """Register a table (and its site) with optional statistics."""
        if table.name in self._tables:
            raise CatalogError(f"table {table.name} already defined")
        if table.site not in self._sites:
            self.add_site(table.site)
        self._tables[table.name] = table
        self._paths.setdefault(table.name, {})
        self._table_stats[table.name] = stats or TableStats()
        if table.storage == "btree":
            primary = AccessPath(
                name=table.name + PRIMARY_PATH_SUFFIX,
                table=table.name,
                columns=table.key,
                kind="btree",
                unique=True,
                clustered=True,
            )
            self._paths[table.name][primary.name] = primary
        return table

    def add_index(self, path: AccessPath) -> AccessPath:
        """Register an access path, checking its key columns exist."""
        table = self.table(path.table)
        for col in path.columns:
            if not table.has_column(col):
                raise CatalogError(
                    f"index {path.name}: column {col} not in table {table.name}"
                )
        per_table = self._paths.setdefault(path.table, {})
        if path.name in per_table:
            raise CatalogError(f"access path {path.name} already defined")
        per_table[path.name] = path
        return path

    def drop_index(self, table: str, name: str) -> None:
        """Remove an access path from a table."""
        try:
            del self._paths[table][name]
        except KeyError:
            raise CatalogError(f"no access path {name} on table {table}") from None

    def add_replica(self, table: str, site: SiteDef | str) -> None:
        """Register a full replica of ``table`` at ``site``.

        Replicas mirror the primary's rows and access paths, so the
        optimizer may ACCESS whichever copy is cheapest (R*'s replicated
        tables) — and the Set of Alternative Plans then holds plans that
        survive an outage of the primary's site.
        """
        tdef = self.table(table)
        site = self.add_site(site)
        if site.name == tdef.site:
            raise CatalogError(
                f"table {table} is already stored at its primary site {site.name}"
            )
        self._replicas.setdefault(table, set()).add(site.name)

    def storage_sites(self, table: str) -> tuple[str, ...]:
        """Every site holding a copy of ``table``: primary first, then
        replicas in name order."""
        primary = self.table(table).site
        replicas = sorted(self._replicas.get(table, ()))
        return (primary, *replicas)

    def reachable_storage_sites(self, table: str) -> tuple[str, ...]:
        """Storage sites of ``table`` that are currently up."""
        return tuple(s for s in self.storage_sites(table) if self.site_is_up(s))

    # -- site health ---------------------------------------------------------

    def mark_site_down(self, name: str) -> None:
        """Record a site outage: the optimizer plans around down sites
        (no table access at them, no SHIP to them)."""
        self.site(name)
        self._down_sites.add(name)

    def mark_site_up(self, name: str) -> None:
        """Clear a site's outage flag."""
        self.site(name)
        self._down_sites.discard(name)

    def site_is_up(self, name: str) -> bool:
        """Is the site currently healthy?  (Unknown sites raise.)"""
        self.site(name)
        return name not in self._down_sites

    def down_sites(self) -> frozenset[str]:
        """Names of all sites currently marked down."""
        return frozenset(self._down_sites)

    def up_sites(self) -> tuple[SiteDef, ...]:
        """All registered sites that are currently up."""
        return tuple(s for s in self._sites.values() if s.name not in self._down_sites)

    def set_table_stats(self, table: str, stats: TableStats) -> None:
        """Replace a table's statistics."""
        self.table(table)
        self._table_stats[table] = stats

    def set_column_stats(self, table: str, column: str, stats: ColumnStats) -> None:
        """Replace one column's statistics."""
        self.table(table).column(column)
        self._column_stats[(table, column)] = stats

    # -- lookup --------------------------------------------------------------

    def table(self, name: str) -> TableDef:
        """The table definition for ``name`` (CatalogError if unknown)."""
        try:
            return self._tables[name]
        except KeyError:
            raise CatalogError(f"unknown table {name!r}") from None

    def has_table(self, name: str) -> bool:
        """Is ``name`` a registered table?"""
        return name in self._tables

    def tables(self) -> tuple[TableDef, ...]:
        """All registered table definitions."""
        return tuple(self._tables.values())

    def table_names(self) -> tuple[str, ...]:
        """Names of all registered tables."""
        return tuple(self._tables)

    def paths_for(self, table: str) -> tuple[AccessPath, ...]:
        """All access paths defined on ``table``."""
        self.table(table)
        return tuple(self._paths.get(table, {}).values())

    def path(self, table: str, name: str) -> AccessPath:
        """One access path by name (CatalogError if unknown)."""
        try:
            return self._paths[table][name]
        except KeyError:
            raise CatalogError(f"no access path {name} on table {table}") from None

    def sites(self) -> tuple[SiteDef, ...]:
        """All registered sites."""
        return tuple(self._sites.values())

    def site(self, name: str) -> SiteDef:
        """One site by name (CatalogError if unknown)."""
        try:
            return self._sites[name]
        except KeyError:
            raise CatalogError(f"unknown site {name!r}") from None

    def table_stats(self, table: str) -> TableStats:
        """The table's statistics (defaults if never analyzed)."""
        self.table(table)
        return self._table_stats[table]

    def column_stats(self, table: str, column: str) -> ColumnStats:
        """The column's statistics, with a System R style default when
        none were collected."""
        self.table(table).column(column)
        stats = self._column_stats.get((table, column))
        if stats is not None:
            return stats
        # System R style default when no statistics were collected.
        card = self._table_stats[table].card
        return ColumnStats(n_distinct=max(1.0, min(10.0, card)))

    # -- derived helpers -----------------------------------------------------

    def columns_of(self, tables: Iterable[str]) -> frozenset[ColumnRef]:
        """The paper's χ(T): all column references of a set of tables."""
        refs: set[ColumnRef] = set()
        for name in tables:
            table = self.table(name)
            refs.update(ColumnRef(name, c) for c in table.column_names)
        return frozenset(refs)

    def resolve_column(self, column: str, among: Iterable[str]) -> ColumnRef:
        """Resolve an unqualified column name among candidate tables."""
        matches = [t for t in among if self.table(t).has_column(column)]
        if not matches:
            raise CatalogError(f"column {column!r} not found in {sorted(among)}")
        if len(matches) > 1:
            raise CatalogError(
                f"column {column!r} is ambiguous among tables {sorted(matches)}"
            )
        return ColumnRef(matches[0], column)

    def row_width(self, table: str, columns: Iterable[str] | None = None) -> int:
        """Estimated bytes per row (optionally for a column subset)."""
        tdef = self.table(table)
        cols = tuple(columns) if columns is not None else None
        return tdef.row_width(cols)

    def page_count(self, table: str) -> float:
        """Estimated pages the table occupies."""
        tdef = self.table(table)
        return self.table_stats(table).page_count(tdef.row_width(), self.page_size)


def make_columns(*specs: tuple[str, str] | str) -> tuple[ColumnDef, ...]:
    """Shorthand column factory: ``make_columns(("DNO", "int"), "NAME")``.

    A bare string gets type ``int``; a pair is ``(name, type)``.
    """
    cols = []
    for spec in specs:
        if isinstance(spec, str):
            cols.append(ColumnDef(spec))
        else:
            name, ctype = spec
            cols.append(ColumnDef(name, ctype))
    return tuple(cols)
