"""System catalog: table schemas, access paths, sites, and statistics.

The catalog plays the role described in section 3.1 of the paper: the
properties of stored objects (tables and access methods) are *initially*
determined from the system catalogs — constituent columns (COLS), the SITE
at which the table is stored, and the access PATHS defined on it.
"""

from repro.catalog.schema import (
    AccessPath,
    ColumnDef,
    SiteDef,
    TableDef,
)
from repro.catalog.statistics import ColumnStats, TableStats
from repro.catalog.catalog import Catalog

__all__ = [
    "AccessPath",
    "Catalog",
    "ColumnDef",
    "ColumnStats",
    "SiteDef",
    "TableDef",
    "TableStats",
]
