"""Table and column statistics for cardinality and cost estimation.

The shapes follow System R [SELI 79] and the validated R* cost model
[MACK 86]: per-table cardinality and page counts, per-column distinct
counts and value ranges.  Statistics can be declared (synthetic workloads)
or collected from stored data (``collect_column_stats``).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Iterable


@dataclass(frozen=True, slots=True)
class ColumnStats:
    """Statistics for one column."""

    n_distinct: float = 10.0
    low: Any = None
    high: Any = None
    null_fraction: float = 0.0

    def __post_init__(self) -> None:
        if self.n_distinct < 1:
            object.__setattr__(self, "n_distinct", 1.0)

    def value_fraction(self, value: Any) -> float:
        """Estimated fraction of rows equal to ``value`` (1/n_distinct)."""
        return 1.0 / self.n_distinct

    def range_fraction(self, op: str, value: Any) -> float | None:
        """Estimated fraction of rows satisfying ``col op value``.

        Uses linear interpolation over [low, high] when the range is known
        and numeric; returns None otherwise (caller falls back to the
        System R default of 1/3).
        """
        if self.low is None or self.high is None:
            return None
        if not isinstance(self.low, (int, float)) or not isinstance(value, (int, float)):
            return None
        span = float(self.high) - float(self.low)
        if span <= 0:
            return None
        if op in ("<", "<="):
            frac = (float(value) - float(self.low)) / span
        elif op in (">", ">="):
            frac = (float(self.high) - float(value)) / span
        else:
            return None
        return min(max(frac, 0.0), 1.0)


@dataclass(frozen=True, slots=True)
class TableStats:
    """Statistics for one stored table."""

    card: float = 1000.0
    pages: float | None = None

    def page_count(self, row_width: int, page_size: int) -> float:
        """Pages occupied, derived from row width if not declared."""
        if self.pages is not None:
            return self.pages
        rows_per_page = max(1, page_size // max(1, row_width))
        return max(1.0, self.card / rows_per_page)

    def with_card(self, card: float) -> "TableStats":
        return replace(self, card=card, pages=None)


def collect_column_stats(values: Iterable[Any]) -> ColumnStats:
    """Compute :class:`ColumnStats` from actual column values."""
    seen: set[Any] = set()
    low: Any = None
    high: Any = None
    nulls = 0
    total = 0
    for value in values:
        total += 1
        if value is None:
            nulls += 1
            continue
        seen.add(value)
        if low is None or value < low:
            low = value
        if high is None or value > high:
            high = value
    n_distinct = float(len(seen)) if seen else 1.0
    null_fraction = (nulls / total) if total else 0.0
    return ColumnStats(n_distinct=n_distinct, low=low, high=high, null_fraction=null_fraction)
